//! Differential fuzzing of the whole pipeline.
//!
//! Generates random (but well-formed) array programs — fresh arrays,
//! layout transforms, lambda maps (including nested mapnests that read
//! outer arrays), slice updates, concats, rotations — and checks that the
//! pure value-semantics interpretation, the unoptimized memory machine,
//! and the short-circuited memory machine all produce identical results.
//! This is the strongest executable form of the paper's claim that memory
//! annotations, and the short-circuiting rewrites on them, have no
//! semantic meaning.
//!
//! Every optimized program additionally runs under `Mode::Checked` in one
//! shared session, so later programs recycle earlier programs' released
//! blocks: the shadow-memory sanitizer must stay silent across the whole
//! corpus (no uninitialized reads, no use-after-release, no map races,
//! every short-circuited footprint pair concretely disjoint).
//!
//! Programs use `i64` elements and constant shapes so equality is exact.
//! Set `ARRAYMEM_SLOW=1` to raise the iteration counts ~3-5x.

use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, KernelRegistry, Mode, OutputValue, Session};
use arraymem_ir::{BinOp, Builder, ElemType, Program, ScalarExp, SliceSpec, Var};
use arraymem_lmad::{Transform, TripletSlice};
use arraymem_symbolic::{Poly, Rng64};

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// Iteration scale: the default keeps CI fast; `ARRAYMEM_SLOW=1` opts
/// into the deeper sweep.
fn scale(fast: usize, slow: usize) -> usize {
    match std::env::var("ARRAYMEM_SLOW") {
        Ok(v) if v == "1" => slow,
        _ => fast,
    }
}

#[derive(Clone)]
struct GenArray {
    var: Var,
    shape: Vec<i64>,
    /// Alias class; consumed together when any member is updated.
    class: usize,
}

struct Gen {
    body: arraymem_ir::builder::BlockBuilder,
    pool: Vec<GenArray>,
    rng: Rng64,
    next_class: usize,
    fill: i64,
}

impl Gen {
    fn fresh_class(&mut self) -> usize {
        self.next_class += 1;
        self.next_class
    }

    fn pick(&mut self) -> Option<GenArray> {
        if self.pool.is_empty() {
            return None;
        }
        let i = self.rng.usize_in(self.pool.len());
        Some(self.pool[i].clone())
    }

    fn pick_rank(&mut self, rank: usize) -> Option<GenArray> {
        let cands: Vec<GenArray> = self
            .pool
            .iter()
            .filter(|a| a.shape.len() == rank)
            .cloned()
            .collect();
        if cands.is_empty() {
            return None;
        }
        Some(cands[self.rng.usize_in(cands.len())].clone())
    }

    fn replicate(&mut self, shape: Vec<i64>) -> GenArray {
        self.fill += 1;
        let v = self.body.replicate_typed(
            "g_rep",
            ElemType::I64,
            shape.iter().map(|&d| c(d)).collect(),
            ScalarExp::i64(self.fill * 7),
        );
        let class = self.fresh_class();
        GenArray {
            var: v,
            shape,
            class,
        }
    }

    fn random_shape(&mut self) -> Vec<i64> {
        let rank = self.rng.i64_incl(1, 2);
        (0..rank).map(|_| self.rng.i64_incl(1, 5)).collect()
    }

    /// One random statement; pushes results into the pool.
    fn step(&mut self) {
        match self.rng.i64_in(0, 12) {
            0 => {
                let shape = self.random_shape();
                let a = self.replicate(shape);
                self.pool.push(a);
            }
            1 => {
                let n = self.rng.i64_incl(1, 8);
                let v = self.body.iota("g_iota", c(n));
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: vec![n],
                    class,
                });
            }
            2 => {
                if let Some(src) = self.pick() {
                    let v = self.body.copy("g_copy", src.var);
                    let class = self.fresh_class();
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class,
                    });
                }
            }
            3 => {
                // Permute a rank-2 array.
                if let Some(src) = self.pick_rank(2) {
                    let v = self
                        .body
                        .transform("g_perm", src.var, Transform::Permute(vec![1, 0]));
                    self.pool.push(GenArray {
                        var: v,
                        shape: vec![src.shape[1], src.shape[0]],
                        class: src.class,
                    });
                }
            }
            4 => {
                if let Some(src) = self.pick() {
                    let d = self.rng.usize_in(src.shape.len());
                    let v = self.body.transform("g_rev", src.var, Transform::Reverse(d));
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class: src.class,
                    });
                }
            }
            5 => {
                // Triplet slice (step 1 or 2 when it fits).
                if let Some(src) = self.pick() {
                    let mut ts = Vec::new();
                    let mut shape = Vec::new();
                    for &d in &src.shape {
                        let start = self.rng.i64_in(0, d);
                        let step = if d - start >= 3 && self.rng.chance(0.3) {
                            2
                        } else {
                            1
                        };
                        let max_len = (d - start + step - 1) / step;
                        let len = self.rng.i64_incl(1, max_len);
                        ts.push(TripletSlice::range(c(start), c(len), c(step)));
                        shape.push(len);
                    }
                    let v = self
                        .body
                        .transform("g_slice", src.var, Transform::Slice(ts));
                    self.pool.push(GenArray {
                        var: v,
                        shape,
                        class: src.class,
                    });
                }
            }
            6 => {
                // Flatten a rank-2 array.
                if let Some(src) = self.pick_rank(2) {
                    let total = src.shape[0] * src.shape[1];
                    let v =
                        self.body
                            .transform("g_flat", src.var, Transform::Reshape(vec![c(total)]));
                    self.pool.push(GenArray {
                        var: v,
                        shape: vec![total],
                        class: src.class,
                    });
                }
            }
            7 => {
                // Lambda map over a rank-1 array: x*3 + 1.
                if let Some(src) = self.pick_rank(1) {
                    let v = self.body.map_lambda(
                        "g_map",
                        c(src.shape[0]),
                        vec![src.var],
                        ElemType::I64,
                        |lb, ps| {
                            let t = lb.scalar(
                                "g_t",
                                ElemType::I64,
                                ScalarExp::bin(
                                    BinOp::Add,
                                    ScalarExp::bin(
                                        BinOp::Mul,
                                        ScalarExp::var(ps[0]),
                                        ScalarExp::i64(3),
                                    ),
                                    ScalarExp::i64(1),
                                ),
                            );
                            vec![t]
                        },
                    );
                    let class = self.fresh_class();
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class,
                    });
                }
            }
            8 => {
                // In-place update of a random sub-slice with a fresh (or
                // fresh-through-a-transform) source — the circuit-point
                // shape the optimizer hunts for.
                let Some(dst) = self.pick() else { return };
                let mut ts = Vec::new();
                let mut sshape = Vec::new();
                for &d in &dst.shape {
                    let start = self.rng.i64_in(0, d);
                    let len = self.rng.i64_incl(1, d - start);
                    ts.push(TripletSlice::range(c(start), c(len), c(1)));
                    sshape.push(len);
                }
                let src = self.replicate(sshape.clone());
                let src_var = if sshape.len() == 1 && self.rng.chance(0.4) {
                    // A layout transform between the fresh array and the
                    // circuit point exercises web rebasing.

                    self.body
                        .transform("g_src_rev", src.var, Transform::Reverse(0))
                } else {
                    src.var
                };
                // Occasionally keep the source visible afterwards so the
                // last-use condition sometimes fails.
                if self.rng.chance(0.25) {
                    self.pool.push(GenArray {
                        var: src_var,
                        shape: sshape,
                        class: src.class,
                    });
                }
                let v = self
                    .body
                    .update("g_upd", dst.var, SliceSpec::Triplet(ts), src_var);
                // The destination's whole alias class is consumed.
                self.pool.retain(|a| a.class != dst.class);
                self.pool.push(GenArray {
                    var: v,
                    shape: dst.shape,
                    class: dst.class,
                });
            }
            9 => {
                // Concat along the outer dimension: the first pick sets
                // the inner shape, further compatible pool entries (or the
                // pick itself again) join it. When the optimizer proves an
                // argument's last use, it constructs it directly in the
                // destination slot.
                let Some(first) = self.pick() else { return };
                let mut args = vec![first.var];
                let mut outer = first.shape[0];
                let compatible: Vec<GenArray> = self
                    .pool
                    .iter()
                    .filter(|a| {
                        a.shape.len() == first.shape.len() && a.shape[1..] == first.shape[1..]
                    })
                    .cloned()
                    .collect();
                let extra = self.rng.i64_incl(1, 2);
                for _ in 0..extra {
                    let pickd = &compatible[self.rng.usize_in(compatible.len())];
                    args.push(pickd.var);
                    outer += pickd.shape[0];
                }
                let v = self.body.concat("g_cat", args);
                let mut shape = first.shape.clone();
                shape[0] = outer;
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape,
                    class,
                });
            }
            10 => {
                // Rotate a rank-1 array by k: concat of its two halves.
                // Both arguments alias the same source memory, which the
                // elision analysis must treat soundly.
                let Some(src) = self.pick_rank(1) else { return };
                let d = src.shape[0];
                if d < 2 {
                    return;
                }
                let k = self.rng.i64_in(1, d);
                let hi = self.body.transform(
                    "g_rot_hi",
                    src.var,
                    Transform::Slice(vec![TripletSlice::range(c(k), c(d - k), c(1))]),
                );
                let lo = self.body.transform(
                    "g_rot_lo",
                    src.var,
                    Transform::Slice(vec![TripletSlice::range(c(0), c(k), c(1))]),
                );
                let v = self.body.concat("g_rot", vec![hi, lo]);
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: vec![d],
                    class,
                });
            }
            11 => {
                // Nested mapnest: the outer lambda body runs an inner map
                // over a second (outer-scope) array and combines one of
                // its elements with the outer element — inner maps
                // allocate and release per outer iteration, and the
                // gather-style `Index` read crosses scopes.
                let Some(src) = self.pick_rank(1) else { return };
                let Some(other) = self.pick_rank(1) else {
                    return;
                };
                let m = other.shape[0];
                let j = self.rng.i64_in(0, m);
                let other_var = other.var;
                let v = self.body.map_lambda(
                    "g_nest",
                    c(src.shape[0]),
                    vec![src.var],
                    ElemType::I64,
                    |lb, ps| {
                        let inner = lb.map_lambda(
                            "g_nest_in",
                            c(m),
                            vec![other_var],
                            ElemType::I64,
                            |ib, ips| {
                                let t = ib.scalar(
                                    "g_nt",
                                    ElemType::I64,
                                    ScalarExp::bin(
                                        BinOp::Mul,
                                        ScalarExp::var(ips[0]),
                                        ScalarExp::i64(2),
                                    ),
                                );
                                vec![t]
                            },
                        );
                        let t = lb.scalar(
                            "g_gather",
                            ElemType::I64,
                            ScalarExp::bin(
                                BinOp::Add,
                                ScalarExp::Index(inner, vec![ScalarExp::i64(j)]),
                                ScalarExp::var(ps[0]),
                            ),
                        );
                        vec![t]
                    },
                );
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: src.shape,
                    class,
                });
            }
            _ => unreachable!(),
        }
    }
}

/// Build a random program from a seed.
fn random_program(seed: u64, len: usize) -> Option<Program> {
    let bld = Builder::new("fuzz");
    let mut g = Gen {
        body: bld.block(),
        pool: Vec::new(),
        rng: Rng64::new(seed),
        next_class: 0,
        fill: 0,
    };
    // Seed the pool.
    let a = g.replicate(vec![4, 3]);
    g.pool.push(a);
    let b = g.replicate(vec![6]);
    g.pool.push(b);
    for _ in 0..len {
        g.step();
    }
    if g.pool.is_empty() {
        return None;
    }
    // Return up to two distinct arrays (one per alias class — returning
    // two aliases of the same memory is fine, but keep it simple).
    let mut results: Vec<Var> = Vec::new();
    let mut seen_classes = Vec::new();
    for entry in g.pool.iter().rev() {
        if results.len() == 2 {
            break;
        }
        if seen_classes.contains(&entry.class) {
            continue;
        }
        seen_classes.push(entry.class);
        results.push(entry.var);
    }
    let block = g.body.finish(results);
    Some(bld.finish(block))
}

fn run_all_modes(
    prog: &Program,
    checked_session: &mut Session,
    par_session: &mut Session,
    label: &str,
) -> (
    Vec<OutputValue>,
    Vec<OutputValue>,
    Vec<OutputValue>,
    u64,
    u64,
) {
    let kernels = KernelRegistry::new();
    let unopt = compile(prog, &Options::default()).expect("unopt compile");
    let opt = compile(prog, &Options::optimized()).expect("opt compile");
    let (pure_out, _) = run_program(prog, &[], &kernels, Mode::Pure, 1).expect("pure");
    let (u_out, u_stats) =
        run_program(&unopt.program, &[], &kernels, Mode::Memory, 1).expect("unopt");
    let (o_out, o_stats) = run_program(&opt.program, &[], &kernels, Mode::Memory, 1).expect("opt");
    // Fourth leg: the optimized program under the shadow-memory
    // sanitizer, in a session shared across the whole corpus so this
    // program's allocations recycle earlier programs' released blocks.
    // Every successful short-circuit's recorded footprints are
    // cross-checked concretely.
    let checks: Vec<_> = opt.report.checks().cloned().collect();
    let (c_out, c_stats) = checked_session
        .run_full(
            &opt.program,
            &[],
            &kernels,
            Mode::Checked,
            1,
            &checks,
            &opt.report.merges,
            &opt.report.par_safety,
        )
        .expect("checked");
    assert_eq!(o_out, c_out, "checked mode changed the output ({label})");
    assert!(
        c_stats.diagnostics.is_empty() && c_stats.diagnostics_suppressed == 0,
        "sanitizer fired on {label}:\n{c_stats}"
    );
    // Fifth leg: thread-count sweep. The optimized program runs at one
    // worker and at max workers through one shared session (same cached
    // plan, recycled blocks) — work-stealing dispatch of `par_safety`-
    // proven maps must be bit-identical to serial execution.
    for threads in [1usize, 8] {
        let (p_out, _) = par_session
            .run_full(
                &opt.program,
                &[],
                &kernels,
                Mode::Memory,
                threads,
                &[],
                &opt.report.merges,
                &opt.report.par_safety,
            )
            .unwrap_or_else(|e| panic!("par sweep at {threads} threads failed ({label}): {e}"));
        assert_eq!(
            o_out, p_out,
            "{threads}-worker run diverged from the serial leg ({label})"
        );
    }
    (
        pure_out,
        u_out,
        o_out,
        u_stats.bytes_copied,
        o_stats.bytes_copied,
    )
}

/// The paper's central invariant, fuzzed: every random program means
/// the same thing under pure semantics, unoptimized memory semantics,
/// and short-circuited memory semantics — and the optimizer never
/// increases copy traffic. (Hand-rolled sampling; each case prints its
/// seed on failure so it reproduces exactly.)
#[test]
fn prop_three_way_equivalence() {
    let mut meta = Rng64::new(0xD1FF);
    let mut checked = Session::new();
    let mut par_sweep = Session::new();
    for _ in 0..scale(200, 1000) {
        let seed = meta.next_u64();
        let len = meta.usize_in(13) + 3;
        let Some(prog) = random_program(seed, len) else {
            continue;
        };
        arraymem_ir::validate::validate(&prog).expect("generator must produce valid programs");
        let label = format!("seed {seed}, len {len}");
        let (pure_out, u_out, o_out, u_copied, o_copied) =
            run_all_modes(&prog, &mut checked, &mut par_sweep, &label);
        assert_eq!(pure_out, u_out, "pure vs unopt (seed {seed}, len {len})");
        assert_eq!(pure_out, o_out, "pure vs opt (seed {seed}, len {len})");
        assert!(
            o_copied <= u_copied,
            "optimizer increased copies ({u_copied} -> {o_copied}) for seed {seed}"
        );
    }
}

/// A fixed regression sweep over many seeds (faster than proptest's
/// machinery, catches deterministic breakage at a glance).
#[test]
fn seeded_sweep() {
    let n = scale(300, 1000) as u64;
    let mut elisions = 0u64;
    let mut checked = Session::new();
    let mut par_sweep = Session::new();
    for seed in 0..n {
        let Some(prog) = random_program(seed, 10) else {
            continue;
        };
        let label = format!("seed {seed}");
        let (pure_out, u_out, o_out, u_copied, o_copied) =
            run_all_modes(&prog, &mut checked, &mut par_sweep, &label);
        assert_eq!(pure_out, u_out, "seed {seed}");
        assert_eq!(pure_out, o_out, "seed {seed}");
        assert!(o_copied <= u_copied, "seed {seed}");
        if o_copied < u_copied {
            elisions += 1;
        }
    }
    // The generator must actually exercise the optimizer: a healthy
    // fraction of programs should have at least one elided copy.
    assert!(
        elisions > n / 10,
        "only {elisions}/{n} random programs exercised short-circuiting"
    );
}

/// Toggling the block-merging pass must never change results. Each random
/// program is compiled with and without merging and both variants run
/// through ONE session (so the merged variant reuses blocks the unmerged
/// variant released), with bit-identical outputs. The corpus must
/// actually exercise the pass — at least one program has to merge — or
/// the sweep proves nothing. (Peak memory is deliberately *not* asserted
/// here: folding a small victim into a larger host extends the host's
/// lifetime, so on adversarial size mixes a merge can trade a small peak
/// for a longer-lived large block — the workload suite asserts the peak
/// reductions where they are claimed.)
#[test]
fn merge_toggle_equivalence() {
    let kernels = KernelRegistry::new();
    let mut session = Session::new();
    let mut merged_programs = 0u64;
    let n = scale(150, 500) as u64;
    for seed in 5000..5000 + n {
        let Some(prog) = random_program(seed, 10) else {
            continue;
        };
        let on = compile(&prog, &Options::optimized()).expect("merge-on compile");
        let off = compile(
            &prog,
            &Options {
                merge: false,
                ..Options::optimized()
            },
        )
        .expect("merge-off compile");
        let (off_out, _off_stats) = session
            .run_full(&off.program, &[], &kernels, Mode::Memory, 1, &[], &[], &[])
            .expect("merge-off run");
        let (on_out, on_stats) = session
            .run_full(
                &on.program,
                &[],
                &kernels,
                Mode::Memory,
                1,
                &[],
                &on.report.merges,
                &[],
            )
            .expect("merge-on run");
        assert_eq!(
            off_out, on_out,
            "merge toggle changed results (seed {seed})"
        );
        if on_stats.blocks_merged > 0 {
            merged_programs += 1;
        }
    }
    assert!(
        merged_programs > 0,
        "no random program exercised the merge pass across {n} seeds"
    );
}
