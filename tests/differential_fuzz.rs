//! Corpus-driven differential fuzzing of the whole memory pipeline.
//!
//! Built on `arraymem_fuzz`: random decision traces ([`GenOp`]) are
//! interpreted into programs (including gather/scatter and other
//! runtime-indexed shapes), run through every semantics — pure value,
//! unoptimized memory, optimized memory, checked, and a 1/8-worker
//! thread sweep — and the first divergence is delta-debugged to a
//! minimal trace before the test panics with a paste-ready repro
//! (seed, corpus-format trace, pretty IR).
//!
//! The committed corpus under `crates/fuzz/corpus/` participates three
//! ways: `seeds/` replays through all modes, `regressions/` must keep
//! firing the structured rejection each entry was minimized for, and
//! the coverage bitmap that curated the seeds is re-demonstrated from
//! scratch by [`coverage_signal_grows_the_corpus_beyond_its_first_seed`].
//! Regenerate the corpus with
//! `cargo test -p arraymem-bench --test differential_fuzz -- --ignored regen_corpus`.
//!
//! Set `ARRAYMEM_SLOW=1` to raise the iteration counts ~3-5x.

use arraymem_bench::tables::{table_cases, KNOWN_BENCHMARKS};
use arraymem_core::{compile, MergeReject, Options, ParReject, RejectReason, RemarkKind};
use arraymem_exec::{run_program, KernelRegistry, Mode, Session};
use arraymem_fuzz::corpus::{self, CorpusEntry};
use arraymem_fuzz::diff::fail_with_repro;
use arraymem_fuzz::{build_program, minimize, random_ops, run_all_modes, Coverage, GenOp};
use arraymem_symbolic::Rng64;
use arraymem_workloads::harness::scale;

/// Whether the optimized compile merged any memory blocks. The compile
/// report is the authoritative signal: `Stats::blocks_merged` counts
/// lowered merge *records*, which the record-less `run_program` entry
/// point never receives.
fn merged_in_report(r: &arraymem_fuzz::DiffReport) -> bool {
    r.opt_report
        .remarks
        .iter()
        .any(|rm| matches!(rm.kind, RemarkKind::BlocksMerged))
}

/// Build + run one trace through every semantics, reusing the shared
/// sessions so block recycling is exercised across programs.
fn diff_trace(
    ops: &[GenOp],
    checked: &mut Session,
    par: &mut Session,
) -> Result<Option<arraymem_fuzz::DiffReport>, String> {
    match build_program(ops) {
        Some(prog) => run_all_modes(&prog, checked, par).map(Some),
        None => Ok(None),
    }
}

/// A failing trace's predicate for the minimizer: fresh sessions each
/// probe so shrinking cannot be confused by recycled block state.
fn still_diverges(ops: &[GenOp]) -> bool {
    match build_program(ops) {
        Some(prog) => run_all_modes(&prog, &mut Session::new(), &mut Session::new()).is_err(),
        None => false,
    }
}

/// Minimize, rebuild, and panic with the full repro dossier.
fn shrink_and_fail(failure: &str, seed_desc: &str, ops: &[GenOp]) -> ! {
    let min = if still_diverges(ops) {
        minimize(ops, still_diverges)
    } else {
        // Failure depended on shared-session state; report the raw trace.
        ops.to_vec()
    };
    let prog = build_program(&min).expect("minimized trace still builds");
    fail_with_repro(failure, seed_desc, &min, &prog);
}

/// The headline property: every generated program computes the same
/// outputs under value semantics, unoptimized memory semantics, fully
/// optimized memory semantics, checked mode (silent sanitizer), and a
/// work-stealing thread sweep — and the optimizer never adds copies.
#[test]
fn prop_three_way_equivalence() {
    let n = scale(150, 1000);
    let mut meta = Rng64::new(0xD1FF);
    let mut checked = Session::new();
    let mut par = Session::new();
    for i in 0..n {
        let seed = meta.next_u64();
        let len = 3 + (meta.next_u64() % 14) as usize;
        let ops = random_ops(seed, len);
        if let Err(e) = diff_trace(&ops, &mut checked, &mut par) {
            shrink_and_fail(
                &e,
                &format!("meta 0xD1FF iteration {i}: random_ops({seed:#x}, {len})"),
                &ops,
            );
        }
    }
}

/// Health check: across a seeded sweep the optimizer actually earns its
/// keep — a nontrivial share of programs see copies elided, at least
/// one merges blocks, and a nontrivial share exercises the
/// runtime-indexed (gather/scatter) rejection paths. Guards against the
/// generator drifting into shapes where every pass silently rejects.
#[test]
fn seeded_sweep_exercises_the_optimizer() {
    let n = scale(120, 600);
    let mut checked = Session::new();
    let mut par = Session::new();
    let mut improved = 0usize;
    let mut merged = 0usize;
    let mut runtime_indexed = 0usize;
    for k in 0..n as u64 {
        let seed = k.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5A5);
        let ops = random_ops(seed, 10);
        match diff_trace(&ops, &mut checked, &mut par) {
            Ok(Some(r)) => {
                if r.opt_copied < r.unopt_copied {
                    improved += 1;
                }
                if merged_in_report(&r) {
                    merged += 1;
                }
                let mut cov = Coverage::new();
                cov.observe_report(&r.opt_report);
                if cov
                    .reject_reasons
                    .contains(&RejectReason::RuntimeIndexedWrite)
                    || cov.merge_rejects.contains(&MergeReject::RuntimeIndexed)
                    || cov.par_rejects.contains(&ParReject::RuntimeIndexedWrite)
                {
                    runtime_indexed += 1;
                }
            }
            Ok(None) => {}
            Err(e) => shrink_and_fail(&e, &format!("sweep seed {seed:#x}, len 10"), &ops),
        }
    }
    assert!(
        improved > n / 10,
        "only {improved}/{n} programs saw copies elided"
    );
    assert!(merged > 0, "no program in the sweep merged blocks");
    assert!(
        runtime_indexed > n / 20,
        "only {runtime_indexed}/{n} programs exercised runtime-indexed rejection paths"
    );
}

/// Toggling the merge pass must never change outputs; `run_all_modes`
/// compares the merge-on optimized build against the merge-off default
/// build on every leg, so this sweep just has to hit programs where the
/// toggle is live.
#[test]
fn merge_toggle_equivalence() {
    let n = scale(80, 400);
    let mut checked = Session::new();
    let mut par = Session::new();
    let mut merged_programs = 0usize;
    for k in 0..n as u64 {
        let ops = random_ops(5000 + k, 12);
        match diff_trace(&ops, &mut checked, &mut par) {
            Ok(Some(r)) => {
                if merged_in_report(&r) {
                    merged_programs += 1;
                }
            }
            Ok(None) => {}
            Err(e) => shrink_and_fail(&e, &format!("merge sweep seed {}", 5000 + k), &ops),
        }
    }
    assert!(
        merged_programs > 0,
        "merge toggle was never live across {n} programs"
    );
}

/// Replay the whole committed corpus — seeds and regressions — through
/// every semantics, 1 and 8 workers, Memory and Checked. This is the
/// tier scripts/verify.sh runs.
#[test]
fn corpus_replays_clean_in_every_mode() {
    let seeds = corpus::load_dir(&corpus::seeds_dir()).expect("load seeds");
    let regressions = corpus::load_dir(&corpus::regressions_dir()).expect("load regressions");
    assert!(
        seeds.len() >= 8,
        "seed corpus too small ({} entries) — regenerate with regen_corpus",
        seeds.len()
    );
    assert!(
        regressions.len() >= 3,
        "regression corpus too small ({} entries)",
        regressions.len()
    );
    let mut checked = Session::new();
    let mut par = Session::new();
    let mut carried = 0usize;
    for entry in seeds.iter().chain(regressions.iter()) {
        let prog = build_program(&entry.ops)
            .unwrap_or_else(|| panic!("corpus entry {} builds no program", entry.name));
        match run_all_modes(&prog, &mut checked, &mut par) {
            Ok(r) => {
                if r.opt_report
                    .remarks
                    .iter()
                    .any(|rm| matches!(rm.kind, RemarkKind::CarriedRelease))
                {
                    carried += 1;
                }
            }
            Err(e) => fail_with_repro(
                &e,
                &format!("corpus entry {}", entry.name),
                &entry.ops,
                &prog,
            ),
        }
    }
    assert!(
        carried > 0 || !arraymem_core::coloring_default(),
        "no corpus entry exercises the coloring pass's carried-release scheduling"
    );
}

/// Which structured rejection a regression entry was minimized for,
/// parsed from its `note: ... expects=<Variant> ...` marker.
fn expected_variant(entry: &CorpusEntry) -> Option<&str> {
    let idx = entry.note.find("expects=")?;
    let rest = &entry.note[idx + "expects=".len()..];
    Some(rest.split_whitespace().next().unwrap_or(""))
}

fn coverage_constructs(cov: &Coverage, variant: &str) -> bool {
    cov.reject_reasons
        .iter()
        .any(|r| format!("{r:?}") == variant)
        || cov
            .merge_rejects
            .iter()
            .any(|r| format!("{r:?}") == variant)
        || cov.par_rejects.iter().any(|r| format!("{r:?}") == variant)
}

/// Every committed regression keeps firing the structured rejection it
/// was distilled for — the remark proves the pass still *rejects* the
/// shape rather than silently skipping (or unsoundly accepting) it.
/// The historical and the new runtime-indexed bug classes must all be
/// represented.
#[test]
fn corpus_regressions_keep_firing_their_remarks() {
    let regressions = corpus::load_dir(&corpus::regressions_dir()).expect("load regressions");
    assert!(!regressions.is_empty(), "no regression entries");
    let mut seen = Vec::new();
    for entry in &regressions {
        let variant = expected_variant(entry).unwrap_or_else(|| {
            panic!(
                "regression {} carries no `expects=<Variant>` note: {:?}",
                entry.name, entry.note
            )
        });
        let prog = build_program(&entry.ops).expect("regression builds");
        let compiled = compile(&prog, &Options::optimized()).expect("compile");
        let mut cov = Coverage::new();
        cov.observe_report(&compiled.compile_report);
        assert!(
            coverage_constructs(&cov, variant),
            "regression {} no longer constructs {variant}; remarks: {:#?}",
            entry.name,
            compiled.compile_report.remarks
        );
        seen.push(variant.to_string());
    }
    for class in [
        "DestinationVacated",
        "AliasingConcatArg",
        "RuntimeIndexedWrite",
    ] {
        assert!(
            seen.iter().any(|v| v == class),
            "no regression entry covers historical bug class {class} (have {seen:?})"
        );
    }
}

/// Observe one trace's compile report and run stats into a coverage map.
fn observe_trace(
    cov: &mut Coverage,
    ops: &[GenOp],
    checked: &mut Session,
    par: &mut Session,
) -> bool {
    match diff_trace(ops, checked, par) {
        Ok(Some(r)) => {
            let mut grew = cov.observe_report(&r.opt_report);
            grew |= cov.observe_stats(&r.opt_stats);
            grew |= cov.observe_stats(&r.checked_stats);
            grew
        }
        Ok(None) => false,
        Err(e) => shrink_and_fail(&e, "coverage trace", ops),
    }
}

/// The corpus-growth demonstration: starting from the single trivial
/// trace the campaign began with, the (remark-kind × pass) bitmap plus
/// mechanism counters admit a stream of random traces into the corpus —
/// strictly growing coverage well beyond the initial seed. This is the
/// same loop `regen_corpus` used to produce `corpus/seeds/`.
#[test]
fn coverage_signal_grows_the_corpus_beyond_its_first_seed() {
    let mut checked = Session::new();
    let mut par = Session::new();
    let mut cov = Coverage::new();
    let first = random_ops(0xBEEF, 2);
    observe_trace(&mut cov, &first, &mut checked, &mut par);
    let initial = cov.popcount();
    assert!(initial > 0, "even the trivial trace lights some bits");

    let mut admitted: Vec<CorpusEntry> = Vec::new();
    let mut meta = Rng64::new(0xC0FFEE);
    for k in 0..scale(150, 500) {
        let seed = meta.next_u64();
        let len = 3 + (meta.next_u64() % 14) as usize;
        let ops = random_ops(seed, len);
        if observe_trace(&mut cov, &ops, &mut checked, &mut par) {
            admitted.push(CorpusEntry {
                name: format!("grown-{k:03}"),
                note: format!("admitted by coverage growth; random_ops({seed:#x}, {len})"),
                ops,
            });
        }
    }
    assert!(
        cov.popcount() > initial,
        "random traces never grew coverage past the first seed ({initial} bits)"
    );
    assert!(
        admitted.len() >= 3,
        "only {} traces were admitted by the coverage signal",
        admitted.len()
    );

    // Round-trip the grown corpus through the on-disk format.
    let dir = std::env::temp_dir().join(format!("arraymem-fuzz-grown-{}", std::process::id()));
    for entry in &admitted {
        corpus::save(&dir, entry).expect("save grown entry");
    }
    let reloaded = corpus::load_dir(&dir).expect("reload grown corpus");
    assert_eq!(reloaded.len(), admitted.len());
    assert_eq!(reloaded[0].ops, admitted[0].ops);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Predicate for the minimizer demo: under the `force_unsafe_merge`
/// mutation hook, rejected merges are taken anyway and the compiled
/// program's outputs corrupt. The risky replay runs **out of process**:
/// an unsafely shared block can put a copy's source and destination
/// views on overlapping bytes, which trips the standard library's
/// non-unwinding overlap check and aborts the whole process — abnormal
/// exit IS a divergence verdict. (This is exactly why production
/// fuzzers isolate each execution.) A cheap in-process pre-filter skips
/// the subprocess unless the hook actually flipped a rejected merge.
fn injected_merge_diverges(ops: &[GenOp]) -> bool {
    let Some(prog) = build_program(ops) else {
        return false;
    };
    let kernels = KernelRegistry::new();
    if run_program(&prog, &[], &kernels, Mode::Pure, 1).is_err() {
        return false;
    }
    let mut opts = Options::optimized();
    opts.force_unsafe_merge = true;
    let Ok(compiled) = compile(&prog, &opts) else {
        return false;
    };
    let hook_was_live = compiled.compile_report.remarks.iter().any(|rm| {
        matches!(rm.kind, RemarkKind::BlocksMerged)
            && rm.message.contains("forced past interference")
    });
    if !hook_was_live {
        return false;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "--ignored",
            "--nocapture",
            "--exact",
            "replay_forced_merge_child",
        ])
        .env(
            "ARRAYMEM_FORCED_MERGE_TRACE",
            arraymem_fuzz::diff::ops_text(ops),
        )
        .output()
        .expect("spawn forced-merge replay child");
    !out.status.success() || String::from_utf8_lossy(&out.stdout).contains("FORCED-MERGE-DIVERGED")
}

/// Child entry point for [`injected_merge_diverges`]: replays the trace
/// from the environment under the forced-merge mutation and prints a
/// verdict. Runs in its own process so memory corruption cannot take
/// the parent test run down with it.
#[test]
#[ignore = "child entry point spawned by the forced-merge oracle, not a test"]
fn replay_forced_merge_child() {
    let Ok(text) = std::env::var("ARRAYMEM_FORCED_MERGE_TRACE") else {
        return;
    };
    let entry = corpus::parse_entry("child", &text).expect("parent sends a valid trace");
    let Some(prog) = build_program(&entry.ops) else {
        println!("FORCED-MERGE-CLEAN");
        return;
    };
    let kernels = KernelRegistry::new();
    let Ok((pure_out, _)) = run_program(&prog, &[], &kernels, Mode::Pure, 1) else {
        println!("FORCED-MERGE-CLEAN");
        return;
    };
    let mut opts = Options::optimized();
    opts.force_unsafe_merge = true;
    let compiled = compile(&prog, &opts).expect("parent pre-filtered the compile");
    match run_program(&compiled.program, &[], &kernels, Mode::Memory, 1) {
        Ok((out, _)) if out == pure_out => println!("FORCED-MERGE-CLEAN"),
        _ => println!("FORCED-MERGE-DIVERGED"),
    }
}

/// End-to-end minimizer demonstration on a *real* miscompile: force the
/// merge pass to take every rejected candidate, find a trace whose
/// outputs corrupt (or whose process aborts), and shrink it to a
/// 1-minimal repro — exactly what a genuine fuzz failure goes through
/// before being committed under `corpus/regressions/`.
#[test]
fn minimizer_shrinks_an_injected_miscompile_to_one_minimal() {
    let mut found = None;
    let mut meta = Rng64::new(0x5EED);
    for _ in 0..scale(400, 2000) {
        let seed = meta.next_u64();
        let ops = random_ops(seed, 12);
        if injected_merge_diverges(&ops) {
            found = Some((seed, ops));
            break;
        }
    }
    let (seed, ops) = found.expect("forcing unsafe merges should corrupt some trace");
    let min = minimize(&ops, injected_merge_diverges);
    assert!(
        min.len() < ops.len(),
        "minimizer removed nothing from seed {seed:#x}"
    );
    assert!(
        injected_merge_diverges(&min),
        "minimized trace no longer fails"
    );
    // 1-minimal: removing any single op loses the failure.
    for i in 0..min.len() {
        let mut probe = min.clone();
        probe.remove(i);
        assert!(
            probe.is_empty() || !injected_merge_diverges(&probe),
            "trace is not 1-minimal: op {i} of {} is removable",
            min.len()
        );
    }
}

/// Taxonomy completeness: every closed reject variant — all of
/// `RejectReason::ALL`, `MergeReject::ALL`, `ParReject::ALL` — is
/// constructed by at least one corpus entry, one benchmark workload, or
/// one of the dedicated trigger programs below. A variant nothing can
/// construct is dead taxonomy and fails here by name.
#[test]
fn every_reject_variant_is_constructed_somewhere() {
    let mut cov = Coverage::new();

    // 1. The committed corpus.
    for dir in [corpus::seeds_dir(), corpus::regressions_dir()] {
        for entry in corpus::load_dir(&dir).expect("load corpus") {
            let prog = build_program(&entry.ops).expect("corpus entry builds");
            let compiled = compile(&prog, &Options::optimized()).expect("compile");
            cov.observe_report(&compiled.compile_report);
        }
    }

    // 2. Every benchmark workload (quick datasets), fully optimized.
    for benchmark in KNOWN_BENCHMARKS {
        for case in table_cases(benchmark, true).expect("known benchmark") {
            cov.observe_report(&case.compile(true).compile_report);
        }
    }

    // 3. Dedicated trigger programs for variants the generated shapes
    //    cannot reach, each compiled with the options that expose it.
    for (prog, opts) in trigger_programs() {
        let compiled = compile(&prog, &opts).expect("trigger compiles");
        cov.observe_report(&compiled.compile_report);
    }

    // 4. Workload ablations: disabling one ingredient defeats candidates
    //    with a specific structured reason.
    {
        use arraymem_workloads as w;
        // Without hoisting, concat parts' destinations are not allocated
        // at their fresh definitions (property 2).
        let case = w::hotspot::case("r", 16, 2, 2);
        let compiled = compile(
            &case.program,
            &Options {
                hoist: false,
                ..Options::optimized().with_env(case.env.clone())
            },
        )
        .expect("hotspot compiles without hoisting");
        cov.observe_report(&compiled.compile_report);
        // Without in-place mapnest marking, proven-safe row kernels keep
        // their private buffers (ParReject::PrivateBuffer).
        let case = w::nw::case("r", 64, 16, 2);
        let compiled = compile(
            &case.program,
            &Options {
                mapnest_in_place: false,
                ..Options::optimized().with_env(case.env.clone())
            },
        )
        .expect("nw compiles without in-place maps");
        cov.observe_report(&compiled.compile_report);
    }

    // 5. Direct-pass constructions for analysis fallbacks the full
    //    pipeline cannot produce (same sabotage idiom as checked_mode's
    //    par-safety cross-check test).
    direct_pass_constructions(&mut cov);

    let missing_reject: Vec<_> = RejectReason::ALL
        .iter()
        .filter(|r| !cov.reject_reasons.contains(r))
        .collect();
    let missing_merge: Vec<_> = MergeReject::ALL
        .iter()
        .filter(|m| !cov.merge_rejects.contains(m))
        .collect();
    let missing_par: Vec<_> = ParReject::ALL
        .iter()
        .filter(|p| !cov.par_rejects.contains(p))
        .collect();
    assert!(
        missing_reject.is_empty() && missing_merge.is_empty() && missing_par.is_empty(),
        "unconstructed reject variants:\n  RejectReason: {missing_reject:?}\n  \
         MergeReject: {missing_merge:?}\n  ParReject: {missing_par:?}"
    );
}

/// Hand-built programs covering reject variants that neither the fuzz
/// generator nor the benchmark workloads reach. Each block is commented
/// with the variant it exists for.
fn trigger_programs() -> Vec<(arraymem_ir::Program, Options)> {
    use arraymem_ir::{BinOp, Builder, ElemType, ScalarExp, SliceSpec};
    use arraymem_lmad::TripletSlice;
    use arraymem_symbolic::Poly;
    let c = Poly::from;
    let full_range = || SliceSpec::Triplet(vec![TripletSlice::range(0i64, 4i64, 1i64)]);
    let mut progs = Vec::new();

    // RejectReason::DestinationVacated — the stale-rebase bug class: an
    // inner update whose destination block is itself circuited away.
    {
        let b = Builder::new("trigger_vacated");
        let mut body = b.block();
        let as_ = body.replicate("as", vec![c(16)], ScalarExp::f32(1.0));
        let es = body.replicate("es", vec![c(4)], ScalarExp::f32(3.0));
        let bs = body.replicate("bs", vec![c(8)], ScalarExp::f32(2.0));
        let bs2 = body.update("bs2", bs, full_range(), es);
        let as2 = body.update(
            "as2",
            as_,
            SliceSpec::Triplet(vec![TripletSlice::range(8i64, 8i64, 1i64)]),
            bs2,
        );
        let blk = body.finish(vec![as2]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::AliasingConcatArg — `concat bs bs` (footnote 17).
    {
        let b = Builder::new("trigger_alias_concat");
        let mut body = b.block();
        let bs = body.replicate("bs", vec![c(4)], ScalarExp::f32(2.0));
        let cs = body.concat("cs", vec![bs, bs]);
        let blk = body.finish(vec![cs]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::SliceNotExpressible — a point update at a
    // data-dependent row index: no static transform describes the slice.
    {
        let b = Builder::new("trigger_point_slice");
        let mut body = b.block();
        let idxs = body.iota("idxs", 4i64);
        let a = body.replicate("a", vec![c(4), c(4)], ScalarExp::f32(0.0));
        let row = body.replicate("row", vec![c(4)], ScalarExp::f32(2.0));
        let a2 = body.update(
            "a2",
            a,
            SliceSpec::Point(vec![ScalarExp::Index(idxs, vec![ScalarExp::i64(0)])]),
            row,
        );
        let blk = body.finish(vec![a2]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::IxfnNotInScope — the circuit offset is a scalar
    // defined *after* the source's fresh definition, with a
    // data-dependent (non-polynomial) definition, so the rebased index
    // function cannot be translated into scope.
    {
        let b = Builder::new("trigger_ixfn_scope");
        let mut body = b.block();
        let idxs = body.iota("idxs", 8i64);
        let a = body.replicate("a", vec![c(16)], ScalarExp::f32(1.0));
        let s = body.replicate("s", vec![c(4)], ScalarExp::f32(2.0));
        let k = body.scalar(
            "k",
            ElemType::I64,
            ScalarExp::Index(idxs, vec![ScalarExp::i64(0)]),
        );
        let a2 = body.update(
            "a2",
            a,
            SliceSpec::Triplet(vec![TripletSlice::range(Poly::var(k), c(4), c(1))]),
            s,
        );
        let blk = body.finish(vec![a2]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::OverlapTestFailed — the destination memory is read
    // (by `r`) between the source's fresh definition and the update, and
    // the read region overlaps the region the circuit would write early.
    {
        let b = Builder::new("trigger_overlap");
        let mut body = b.block();
        let a = body.replicate("a", vec![c(16)], ScalarExp::f32(1.0));
        let s = body.replicate("s", vec![c(4)], ScalarExp::f32(2.0));
        let r = body.map_lambda("r", c(16), vec![a], ElemType::F32, |lb, ps| {
            vec![lb.scalar(
                "d",
                ElemType::F32,
                ScalarExp::bin(BinOp::Mul, ScalarExp::var(ps[0]), ScalarExp::f32(2.0)),
            )]
        });
        let a2 = body.update("a2", a, full_range(), s);
        let blk = body.finish(vec![a2, r]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::MergeParamOrder — Fig. 5b condition 3: the loop's
    // merge parameter is read again after the web's fresh definition.
    {
        let b = Builder::new("trigger_param_order");
        let mut body = b.block();
        let a = body.replicate("a", vec![c(16)], ScalarExp::f32(1.0));
        let init_f = body.replicate("init_f", vec![c(4)], ScalarExp::f32(0.0));
        let init_g = body.replicate("init_g", vec![c(4)], ScalarExp::f32(5.0));
        let p_ = body.loop_param("p", init_f);
        let q_ = body.loop_param("q", init_g);
        let i = body.loop_index("i");
        let mut lb = b.block();
        let fb = lb.map_lambda("fb", c(4), vec![p_], ElemType::F32, |bb, ps| {
            vec![bb.scalar(
                "x1",
                ElemType::F32,
                ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::f32(1.0)),
            )]
        });
        let gb = lb.map_lambda("gb", c(4), vec![p_], ElemType::F32, |bb, ps| {
            vec![bb.scalar(
                "x2",
                ElemType::F32,
                ScalarExp::bin(BinOp::Mul, ScalarExp::var(ps[0]), ScalarExp::f32(2.0)),
            )]
        });
        let lblk = lb.finish(vec![fb, gb]);
        let tys = (b.ty(init_f), b.ty(init_g));
        let outs = body.loop_(
            vec!["f", "g"],
            vec![(p_, tys.0), (q_, tys.1)],
            vec![init_f, init_g],
            i,
            2i64,
            lblk,
        );
        let a2 = body.update("a2", a, full_range(), outs[0]);
        let blk = body.finish(vec![a2, outs[1]]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // RejectReason::FreshDefNotFound — the circuit source is a loop
    // whose body result is defined outside the body: the backward walk
    // never reaches a fresh definition.
    {
        let b = Builder::new("trigger_no_fresh");
        let mut body = b.block();
        let a = body.replicate("a", vec![c(16)], ScalarExp::f32(1.0));
        let outer = body.replicate("outer", vec![c(4)], ScalarExp::f32(3.0));
        let init = body.replicate("init", vec![c(4)], ScalarExp::f32(0.0));
        let p_ = body.loop_param("p", init);
        let i = body.loop_index("i");
        let lb = b.block();
        let lblk = lb.finish(vec![outer]);
        let ty = b.ty(init);
        let outs = body.loop_(vec!["f"], vec![(p_, ty)], vec![init], i, 2i64, lblk);
        let a2 = body.update("a2", a, full_range(), outs[0]);
        let blk = body.finish(vec![a2]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    // MergeReject::ElemMismatch — the only lifetime-compatible hosts for
    // the f32 block hold i64 elements.
    {
        let b = Builder::new("trigger_elem_mismatch");
        let mut body = b.block();
        let a = body.replicate_typed("a", ElemType::I64, vec![c(8)], ScalarExp::i64(7));
        let _t = body.map_lambda("t", c(8), vec![a], ElemType::I64, |bb, ps| {
            vec![bb.scalar(
                "y1",
                ElemType::I64,
                ScalarExp::bin(BinOp::Mul, ScalarExp::var(ps[0]), ScalarExp::i64(2)),
            )]
        });
        let bf = body.replicate("bf", vec![c(8)], ScalarExp::f32(1.0));
        let u = body.map_lambda("u", c(8), vec![bf], ElemType::F32, |bb, ps| {
            vec![bb.scalar(
                "y2",
                ElemType::F32,
                ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::f32(1.0)),
            )]
        });
        let blk = body.finish(vec![u]);
        progs.push((b.finish(blk), Options::optimized()));
    }

    progs
}

/// Constructions that go through a pass entry point directly — the same
/// idiom checked_mode.rs uses for its par-safety cross-check: compile an
/// honest program, surgically rewrite its memory annotations into the
/// shape the fallback guards against, and re-run the analysis.
fn direct_pass_constructions(cov: &mut Coverage) {
    use arraymem_core::merge::merge_blocks;
    use arraymem_core::par_safety::par_safety;
    use arraymem_ir::{Builder, ElemType, Exp, MemBinding, ScalarExp};
    use arraymem_lmad::{IndexFn, Lmad};
    use arraymem_symbolic::{Env, Poly};

    let build = || {
        let bld = Builder::new("trigger_par");
        let mut b = bld.block();
        let src = b.replicate_typed(
            "src",
            ElemType::I64,
            vec![Poly::from(64i64)],
            ScalarExp::i64(1),
        );
        let m = b.map_kernel(
            "m",
            "bump",
            Poly::from(64i64),
            vec![],
            ElemType::I64,
            vec![src],
            vec![],
        );
        bld.finish(b.finish(vec![m]))
    };
    let env = Env::default();
    let harvest_par = |cov: &mut Coverage, prog: &arraymem_ir::Program| {
        for r in par_safety(prog, &env, false) {
            if let Some(why) = r.reject {
                cov.par_rejects.insert(why);
            }
        }
    };

    // ParReject::NoMemBinding — the analysis on a source program, before
    // memory introduction: the map result has no binding to derive a
    // write LMAD from.
    let prog = build();
    harvest_par(cov, &prog);

    // ParReject::RowNotExtractable — a rank-0 result index function has
    // no outer dimension to fix, so no per-iteration row exists.
    let mut compiled = compile(&prog, &Options::optimized()).expect("compile");
    for stm in &mut compiled.program.body.stms {
        if let Exp::Map(_) = stm.exp {
            let mb = stm.pat[0].mem.as_mut().expect("compiled map has memory");
            mb.ixfn = IndexFn {
                lmads: vec![Lmad::new(Poly::from(0i64), vec![])],
            };
        }
    }
    harvest_par(cov, &compiled.program);

    // ParReject::InputInterference — rebind the kernel input into the
    // result's block shifted by one cell: iteration i reads the cell
    // iteration i+1 writes, and no disjointness is provable.
    let mut compiled = compile(&prog, &Options::optimized()).expect("compile");
    let out_mb = compiled
        .program
        .body
        .stms
        .iter()
        .find_map(|s| {
            matches!(s.exp, Exp::Map(_)).then(|| s.pat[0].mem.clone().expect("map has memory"))
        })
        .expect("program has a map");
    for stm in &mut compiled.program.body.stms {
        if matches!(stm.exp, Exp::Replicate { .. }) {
            let shifted = Lmad::new(
                out_mb.ixfn.lmads[0].offset.clone() + Poly::from(1i64),
                out_mb.ixfn.lmads[0].dims.clone(),
            );
            stm.pat[0].mem = Some(MemBinding {
                block: out_mb.block,
                ixfn: IndexFn {
                    lmads: vec![shifted],
                },
            });
        }
    }
    harvest_par(cov, &compiled.program);

    // RejectReason::UnsupportedDefinition — a web member defined by a
    // non-array expression. No source program produces this (scratch is
    // a fresh creator; raw allocs only exist after memory introduction),
    // so rewrite the circuit source's definition into a scalar and rerun
    // the pass.
    {
        use arraymem_core::short_circuit::short_circuit_with;
        let bld = Builder::new("trigger_unsupported");
        let mut b = bld.block();
        let a = b.replicate("a", vec![Poly::from(16i64)], ScalarExp::f32(1.0));
        let s = b.replicate("s", vec![Poly::from(4i64)], ScalarExp::f32(2.0));
        let a2 = b.update(
            "a2",
            a,
            arraymem_ir::SliceSpec::Triplet(vec![arraymem_lmad::TripletSlice::range(
                0i64, 4i64, 1i64,
            )]),
            s,
        );
        let prog = bld.finish(b.finish(vec![a2]));
        let mut compiled = compile(&prog, &Options::default()).expect("compile");
        for stm in &mut compiled.program.body.stms {
            if stm.pat[0].var == s {
                stm.exp = Exp::Scalar(ScalarExp::f32(2.0));
            }
        }
        let report = short_circuit_with(&mut compiled.program, &env, true);
        for cand in &report.candidates {
            if let Some(why) = cand.rejection {
                cov.reject_reasons.insert(why);
            }
        }
    }

    // MergeReject::Escapes — a block variable handed to the caller as a
    // raw program result cannot be renamed into a host.
    let mut compiled = compile(&prog, &Options::optimized()).expect("compile");
    let block_var = compiled
        .program
        .body
        .stms
        .iter()
        .find_map(|s| matches!(s.exp, Exp::Alloc { .. }).then(|| s.pat[0].var))
        .expect("compiled program has an alloc");
    compiled.program.body.result.push(block_var);
    let report = merge_blocks(&mut compiled.program, &env, true, false);
    for (_, why) in &report.rejected {
        cov.merge_rejects.insert(*why);
    }
}

/// Regenerate the committed corpus. Run explicitly:
/// `cargo test -p arraymem-bench --test differential_fuzz -- --ignored regen_corpus`
///
/// Seeds: greedy coverage-growth admission over a deterministic stream
/// of random traces. Regressions: for each target bug class, find a
/// trace whose optimized compile constructs the class's structured
/// rejection, then minimize while preserving it.
#[test]
#[ignore]
fn regen_corpus() {
    let mut checked = Session::new();
    let mut par = Session::new();

    // --- seeds/ -----------------------------------------------------
    // Three independent growth streams (random restarts over different
    // trace-length regimes) so the committed seeds are coverage-diverse
    // rather than just the first stream's greedy frontier.
    let streams: [(u64, u64, u64); 3] = [
        (0xC0FFEE, 3, 14), // mixed lengths — the main stream
        (0xFEED01, 2, 4),  // short traces — minimal shapes per feature
        (0xFEED02, 12, 5), // long traces — dense pass interaction
    ];
    let mut admitted: Vec<CorpusEntry> = Vec::new();
    for (si, (meta_seed, base, span)) in streams.iter().enumerate() {
        let mut cov = Coverage::new();
        let mut meta = Rng64::new(*meta_seed);
        for _ in 0..600 {
            let seed = meta.next_u64();
            let len = (base + meta.next_u64() % span) as usize;
            let ops = random_ops(seed, len);
            if observe_trace(&mut cov, &ops, &mut checked, &mut par) {
                let idx = admitted.len();
                admitted.push(CorpusEntry {
                    name: format!("seed-{idx:03}"),
                    note: format!(
                        "stream {si} coverage-admitted trace; random_ops({seed:#x}, {len}); \
                         stream popcount after admission: {}",
                        cov.popcount()
                    ),
                    ops,
                });
            }
        }
        println!(
            "stream {si}: corpus now {} entries, stream popcount {}",
            admitted.len(),
            cov.popcount()
        );
    }
    let dir = corpus::seeds_dir();
    let _ = std::fs::remove_dir_all(&dir);
    for entry in &admitted {
        corpus::save(&dir, entry).expect("save seed");
    }
    println!("wrote {} seeds", admitted.len());

    // --- regressions/ -----------------------------------------------
    let classes: [(&str, &str); 5] = [
        (
            "DestinationVacated",
            "stale rebase: candidate destination vacated by another web's circuit",
        ),
        (
            "AliasingConcatArg",
            "aliasing concat args: one alias web behind two concat arguments",
        ),
        (
            "RuntimeIndexedWrite",
            "scatter write: short-circuit must reject the runtime-indexed footprint",
        ),
        (
            "RuntimeIndexed",
            "runtime-indexed block: merge pass has no affine footprint to prove disjointness",
        ),
        (
            "NotLastUse",
            "source used past the circuit point: property 1 rejection",
        ),
    ];
    let constructs = |ops: &[GenOp], variant: &str| -> bool {
        let Some(prog) = build_program(ops) else {
            return false;
        };
        let Ok(compiled) = compile(&prog, &Options::optimized()) else {
            return false;
        };
        let mut c = Coverage::new();
        c.observe_report(&compiled.compile_report);
        coverage_constructs(&c, variant)
    };
    let rdir = corpus::regressions_dir();
    let _ = std::fs::remove_dir_all(&rdir);
    for (variant, desc) in classes {
        let mut found = None;
        let mut search = Rng64::new(0x7A6E_5D4C);
        'search: for len in [8usize, 12, 16, 20] {
            for _ in 0..4000 {
                let seed = search.next_u64();
                let ops = random_ops(seed, len);
                if constructs(&ops, variant) {
                    found = Some(ops);
                    break 'search;
                }
            }
        }
        let Some(ops) = found else {
            println!("NO TRACE FOUND for {variant} — needs a handwritten entry");
            continue;
        };
        let min = minimize(&ops, |c| constructs(c, variant));
        assert!(constructs(&min, variant));
        let entry = CorpusEntry {
            name: format!("reject-{}", variant.to_lowercase()),
            note: format!("expects={variant} — {desc}; minimized to {} ops", min.len()),
            ops: min,
        };
        corpus::save(&rdir, &entry).expect("save regression");
        println!("wrote regression {} ({} ops)", entry.name, entry.ops.len());
    }
}
