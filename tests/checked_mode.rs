//! Mutation-style self-tests of the checked-mode sanitizer.
//!
//! A sanitizer that never fires is indistinguishable from one that does
//! not work. Each test here *injects* one class of memory bug the
//! optimizer's static reasoning normally rules out — a short-circuit
//! forced past its failing non-overlap check, a read of a recycled block
//! that was never rewritten, a release plan skewed one statement early, a
//! map whose result index function collapses iterations onto one cell —
//! and asserts the corresponding diagnostic fires and names the offending
//! statement.

use arraymem_core::{compile, Options, ReleasePlan};
use arraymem_exec::{Diagnostic, KernelRegistry, Mode, Session};
use arraymem_ir::{BinOp, Builder, ElemType, Exp, Program, ScalarExp, SliceSpec};
use arraymem_lmad::{Dim, IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::Poly;

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

fn opts(short_circuit: bool) -> Options {
    if short_circuit {
        Options::optimized()
    } else {
        Options::default()
    }
}

/// `xss[0:3] ← bs` while `y = copy xss[1:4]` still reads the overlap:
/// constructing `bs` directly in `xss`'s memory would clobber cells the
/// later read needs, so the static write check must reject the candidate —
/// and when the test-only `force_unsafe_short_circuit` hook pushes it
/// through anyway, the runtime footprint cross-check must catch it.
fn overlapping_update_program() -> Program {
    let bld = Builder::new("forced_overlap");
    let mut b = bld.block();
    let xss = b.replicate_typed("xss", ElemType::I64, vec![c(6)], ScalarExp::i64(1));
    let bs = b.replicate_typed("bs", ElemType::I64, vec![c(3)], ScalarExp::i64(7));
    let s = b.transform(
        "s",
        xss,
        Transform::Slice(vec![TripletSlice::range(c(1), c(3), c(1))]),
    );
    let y = b.copy("y", s);
    let xss2 = b.update(
        "xss2",
        xss,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), c(3), c(1))]),
        bs,
    );
    bld.finish(b.finish(vec![xss2, y]))
}

#[test]
fn static_check_rejects_the_overlapping_update() {
    let prog = overlapping_update_program();
    let normal = compile(&prog, &opts(true)).expect("compile");
    assert!(
        normal
            .report
            .candidates
            .iter()
            .any(|cand| cand.reason.contains("may overlap")),
        "the overlapping candidate must fail the static write check; report: {:?}",
        normal
            .report
            .candidates
            .iter()
            .map(|cand| (&cand.root, &cand.reason))
            .collect::<Vec<_>>()
    );
    // No forced candidates without the hook.
    assert!(!normal
        .report
        .candidates
        .iter()
        .any(|c| c.reason.contains("forced")));
}

#[test]
fn forced_illegal_short_circuit_is_caught_by_the_footprint_cross_check() {
    let prog = overlapping_update_program();
    let forced = compile(
        &prog,
        &Options {
            force_unsafe_short_circuit: true,
            ..opts(true)
        },
    )
    .expect("compile");
    assert!(
        forced
            .report
            .candidates
            .iter()
            .any(|c| c.reason.contains("forced")),
        "the hook must push the failing candidate through"
    );
    let checks: Vec<_> = forced.report.checks().cloned().collect();
    assert!(
        !checks.is_empty(),
        "forced circuits must still record their footprints"
    );
    let kernels = KernelRegistry::new();
    let (_, stats) = Session::new()
        .run_with_checks(&forced.program, &[], &kernels, Mode::Checked, 1, &checks)
        .expect("checked run");
    let hit = stats.diagnostics.iter().find_map(|d| match d {
        Diagnostic::CircuitOverlap { stm, root, .. } => Some((stm.clone(), root.clone())),
        _ => None,
    });
    let (stm, _root) = hit.unwrap_or_else(|| {
        panic!(
            "expected a CircuitOverlap diagnostic; got {:?}",
            stats.diagnostics
        )
    });
    assert!(
        stm.contains("xss2"),
        "diagnostic must name the circuit statement: {stm}"
    );
    // The rendered finding names statement, offset, and both footprints.
    let shown = format!("{}", &stats.diagnostics[0]);
    assert!(
        shown.contains("offset") && shown.contains("intersects"),
        "{shown}"
    );
}

#[test]
fn reading_a_recycled_never_written_block_is_an_uninit_read() {
    // `y = copy s` of an unwritten scratch array: legal but undefined in
    // content. The first run gets a fresh zero-filled block (clean); the
    // second run in the same session recycles the first run's blocks
    // without zero-fill, so the same read now sees stale cells — exactly
    // the gamble the zeroing elision takes, made visible.
    let bld = Builder::new("stale_scratch");
    let mut b = bld.block();
    let s = b.scratch("s", ElemType::I64, vec![c(4)]);
    let y = b.copy("y", s);
    let prog = bld.finish(b.finish(vec![y]));
    let compiled = compile(&prog, &opts(false)).expect("compile");
    let kernels = KernelRegistry::new();
    let mut session = Session::new();
    let (_, first) = session
        .run_with_checks(&compiled.program, &[], &kernels, Mode::Checked, 1, &[])
        .expect("first run");
    assert!(
        first.diagnostics.is_empty(),
        "fresh blocks are zero-filled; nothing to report: {first}"
    );
    let (_, second) = session
        .run_with_checks(&compiled.program, &[], &kernels, Mode::Checked, 1, &[])
        .expect("second run");
    let stm = second
        .diagnostics
        .iter()
        .find_map(|d| match d {
            Diagnostic::UninitRead { stm, .. } => Some(stm.clone()),
            _ => None,
        })
        .unwrap_or_else(|| {
            panic!(
                "expected an UninitRead on the recycled block; got {:?}",
                second.diagnostics
            )
        });
    assert!(
        stm.contains('y'),
        "diagnostic must blame the reading statement: {stm}"
    );
}

#[test]
fn skewed_release_plan_triggers_use_after_release() {
    // `a` is read by both copies; the skewed plan frees its block right
    // after the first one.
    let bld = Builder::new("early_release");
    let mut bb = bld.block();
    let a = bb.iota("a", c(6));
    let _b = bb.copy("b", a);
    let cc = bb.copy("c", a);
    let prog = bld.finish(bb.finish(vec![cc]));
    let compiled = compile(&prog, &opts(false)).expect("compile");
    let kernels = KernelRegistry::new();
    // The honest plan is clean…
    let (_, honest) = Session::new()
        .run_with_checks(&compiled.program, &[], &kernels, Mode::Checked, 1, &[])
        .expect("honest run");
    assert!(honest.diagnostics.is_empty(), "{honest}");
    // …the skewed plan is not.
    let plan = ReleasePlan::compute_skewed_early(&compiled.program);
    let (_, skewed) = Session::new()
        .run_with_plan(
            &compiled.program,
            &[],
            &kernels,
            Mode::Checked,
            1,
            &[],
            &plan,
        )
        .expect("skewed run");
    let (stm, released_after) = skewed
        .diagnostics
        .iter()
        .find_map(|d| match d {
            Diagnostic::UseAfterRelease {
                stm,
                released_after,
                ..
            } => Some((stm.clone(), released_after.clone())),
            _ => None,
        })
        .unwrap_or_else(|| panic!("expected a UseAfterRelease; got {:?}", skewed.diagnostics));
    assert!(
        stm.contains('c'),
        "the second copy does the bad read: {stm}"
    );
    assert!(
        released_after.contains('b'),
        "the release fired after the first copy: {released_after}"
    );
}

#[test]
fn overlapping_map_result_layout_is_a_map_race() {
    let bld = Builder::new("race");
    let mut b = bld.block();
    let src = b.iota("src", c(2));
    let m = b.map_lambda("m", c(2), vec![src], ElemType::I64, |lb, ps| {
        let t = lb.scalar(
            "t",
            ElemType::I64,
            ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::i64(1)),
        );
        vec![t]
    });
    let prog = bld.finish(b.finish(vec![m]));
    let mut compiled = compile(&prog, &opts(false)).expect("compile");
    // Sabotage the compiled program: give the map result a zero-stride
    // outer dimension, so both iterations write the same cell — the
    // layout bug the in-place mapnest rules exist to prevent.
    let mut sabotaged = false;
    for stm in &mut compiled.program.body.stms {
        if let Exp::Map(_) = stm.exp {
            let mb = stm.pat[0].mem.as_mut().expect("compiled map has memory");
            mb.ixfn = IndexFn {
                lmads: vec![Lmad::new(c(0), vec![Dim::new(c(2), c(0))])],
            };
            sabotaged = true;
        }
    }
    assert!(sabotaged, "test must find the map statement");
    let kernels = KernelRegistry::new();
    let (_, stats) = Session::new()
        .run_with_checks(&compiled.program, &[], &kernels, Mode::Checked, 1, &[])
        .expect("checked run");
    let hit = stats.diagnostics.iter().find_map(|d| match d {
        Diagnostic::MapRace {
            stm,
            iter_a,
            iter_b,
            ..
        } => Some((stm.clone(), *iter_a, *iter_b)),
        _ => None,
    });
    let (stm, ia, ib) =
        hit.unwrap_or_else(|| panic!("expected a MapRace diagnostic; got {:?}", stats.diagnostics));
    assert!(
        stm.contains('m'),
        "diagnostic must name the map statement: {stm}"
    );
    assert!(ia != ib, "the two colliding iterations must differ");
}

/// Two same-size arrays read together by a `concat`: their live ranges
/// and footprints both overlap, so the merge pass must reject the pair —
/// and when the test-only `force_unsafe_merge` hook folds them into one
/// block anyway, the checked VM's merge cross-check must refute the
/// recorded footprint pairs concretely.
fn interfering_blocks_program() -> Program {
    let bld = Builder::new("forced_merge");
    let mut b = bld.block();
    let xs = b.replicate_typed("xs", ElemType::I64, vec![c(6)], ScalarExp::i64(1));
    let ys = b.replicate_typed("ys", ElemType::I64, vec![c(6)], ScalarExp::i64(7));
    let z = b.concat("z", vec![xs, ys]);
    bld.finish(b.finish(vec![z]))
}

#[test]
fn merge_pass_rejects_the_interfering_pair() {
    let prog = interfering_blocks_program();
    // Short-circuiting off, so the concat arguments keep their own blocks
    // and reach the merge pass as live, overlapping candidates.
    let normal = compile(
        &prog,
        &Options {
            merge: true,
            ..Options::default()
        },
    )
    .expect("compile");
    assert!(
        normal.report.merges.is_empty(),
        "interfering blocks must not merge: {:?}",
        normal.report.merges
    );
}

#[test]
fn forced_illegal_merge_is_caught_by_the_merge_cross_check() {
    let prog = interfering_blocks_program();
    let forced = compile(
        &prog,
        &Options {
            merge: true,
            force_unsafe_merge: true,
            ..Options::default()
        },
    )
    .expect("compile");
    assert_eq!(forced.report.merges.len(), 1, "the hook must force a merge");
    assert!(
        matches!(
            &forced.report.merges[0],
            arraymem_core::MergeRecord::Share { pairs, .. } if !pairs.is_empty()
        ),
        "a forced merge must carry footprint pairs for the VM to refute"
    );
    let kernels = KernelRegistry::new();
    let (_, stats) = Session::new()
        .run_full(
            &forced.program,
            &[],
            &kernels,
            Mode::Checked,
            1,
            &[],
            &forced.report.merges,
            &[],
        )
        .expect("checked run");
    let hit = stats.diagnostics.iter().find_map(|d| match d {
        Diagnostic::MergeOverlap { host, victim, .. } => Some((host.clone(), victim.clone())),
        _ => None,
    });
    let (host, victim) = hit.unwrap_or_else(|| {
        panic!(
            "expected a MergeOverlap diagnostic; got {:?}",
            stats.diagnostics
        )
    });
    assert_ne!(host, victim);
    // The rendered finding names both blocks, the footprints and the
    // first clashing offset.
    let shown = stats
        .diagnostics
        .iter()
        .map(|d| format!("{d}"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        shown.contains("merge overlap") && shown.contains("offset"),
        "{shown}"
    );
}

/// A map whose result layout collapses every iteration onto one cell:
/// the `par_safety` analysis must reject it (`WriteOverlapNotProven`),
/// the test-only `force_unsafe_parallel` hook must promote the rejected
/// map to `Safe` anyway, and the checked VM's pre-dispatch re-proof must
/// refute the forced verdict as a [`Diagnostic::ParOverlap`] and run the
/// map serially.
#[test]
fn forced_parallel_verdict_is_refuted_as_par_overlap() {
    use arraymem_core::par_safety::par_safety;
    use arraymem_core::{ParLevel, ParReject};
    let bld = Builder::new("forced_par");
    let mut b = bld.block();
    let src = b.iota("src", c(512));
    let m = b.map_kernel(
        "m",
        "bump",
        c(512),
        vec![],
        ElemType::I64,
        vec![src],
        vec![],
    );
    let prog = bld.finish(b.finish(vec![m]));
    let mut compiled = compile(&prog, &opts(true)).expect("compile");
    // The honest compile proves the fresh row-major result parallel-safe.
    assert!(
        compiled
            .report
            .par_safety
            .iter()
            .any(|r| r.level == ParLevel::Safe),
        "{:?}",
        compiled.report.par_safety
    );
    // Sabotage the compiled program: a zero-stride outer dimension makes
    // every iteration write cell 0.
    let mut sabotaged = false;
    for stm in &mut compiled.program.body.stms {
        if let Exp::Map(_) = stm.exp {
            let mb = stm.pat[0].mem.as_mut().expect("compiled map has memory");
            mb.ixfn = IndexFn {
                lmads: vec![Lmad::new(c(0), vec![Dim::new(c(512), c(0))])],
            };
            sabotaged = true;
        }
    }
    assert!(sabotaged, "test must find the map statement");
    // Re-analysing the sabotaged program rejects the map...
    let env = arraymem_symbolic::Env::default();
    let honest = par_safety(&compiled.program, &env, false);
    assert!(
        honest
            .iter()
            .any(|r| r.level == ParLevel::Serial
                && r.reject == Some(ParReject::WriteOverlapNotProven)),
        "{honest:?}"
    );
    // ...and the mutation hook forces it through, keeping the genuine
    // rejection reason for the remark.
    let forced = par_safety(&compiled.program, &env, true);
    let fr = forced
        .iter()
        .find(|r| r.forced)
        .expect("the hook must force the rejected map");
    assert_eq!(fr.level, ParLevel::Safe);
    assert_eq!(fr.reject, Some(ParReject::WriteOverlapNotProven));
    let mut kernels = KernelRegistry::new();
    kernels.register("bump", |ctx| {
        let v = ctx.inputs[0].get_i64(&[ctx.i]);
        ctx.out.set_i64(&[], v + 1);
    });
    let (_, stats) = Session::new()
        .run_full(
            &compiled.program,
            &[],
            &kernels,
            Mode::Checked,
            4,
            &[],
            &[],
            &forced,
        )
        .expect("checked run");
    let hit = stats.diagnostics.iter().find_map(|d| match d {
        Diagnostic::ParOverlap {
            stm,
            iter_a,
            iter_b,
            ..
        } => Some((stm.clone(), *iter_a, *iter_b)),
        _ => None,
    });
    let (stm, ia, ib) = hit.unwrap_or_else(|| {
        panic!(
            "expected a ParOverlap diagnostic; got {:?}",
            stats.diagnostics
        )
    });
    assert!(stm.contains('m'), "diagnostic must name the map: {stm}");
    assert_ne!(ia, ib, "the two colliding iterations must differ");
    assert_eq!(
        stats.par_checks_verified, 0,
        "a refuted verdict must not count as verified"
    );
    let shown = stats
        .diagnostics
        .iter()
        .map(|d| format!("{d}"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        shown.contains("parallel overlap") && shown.contains("ran serially"),
        "{shown}"
    );
}

/// `force_unsafe_parallel` flows through [`Options`] into the pipeline:
/// NW's diagonal mapnest — which the analysis genuinely rejects — is
/// promoted to `Safe`, and the checked VM re-proves the promoted verdict
/// concretely before dispatching. NW's per-iteration writes *are*
/// disjoint (only the symbolic proof is out of reach), so the re-proof
/// verifies the promotion and the outputs stay identical.
#[test]
fn options_force_unsafe_parallel_promotes_rejected_maps() {
    use arraymem_core::ParLevel;
    let case = arraymem_workloads::nw::case("forced", 16, 16, 2);
    let honest = compile(
        &case.program,
        &Options::optimized().with_env(case.env.clone()),
    )
    .expect("compile");
    assert!(
        honest
            .report
            .par_safety
            .iter()
            .any(|r| r.level == ParLevel::Serial),
        "{:?}",
        honest.report.par_safety
    );
    assert!(honest.report.par_safety.iter().all(|r| !r.forced));
    let forced = compile(
        &case.program,
        &Options {
            force_unsafe_parallel: true,
            ..Options::optimized().with_env(case.env.clone())
        },
    )
    .expect("compile");
    let promoted: Vec<_> = forced
        .report
        .par_safety
        .iter()
        .filter(|r| r.forced)
        .collect();
    assert!(
        !promoted.is_empty(),
        "the hook must promote NW's rejected map"
    );
    assert!(promoted.iter().all(|r| r.level == ParLevel::Safe));
    let mut s1 = Session::new();
    let (honest_out, honest_stats) = case.run_checked_in_at(&mut s1, &honest, 4);
    let mut s2 = Session::new();
    let (forced_out, forced_stats) = case.run_checked_in_at(&mut s2, &forced, 4);
    assert_eq!(
        format!("{honest_out:?}"),
        format!("{forced_out:?}"),
        "the forced promotion must not change outputs"
    );
    assert!(
        forced_stats.par_checks_verified > honest_stats.par_checks_verified,
        "the promoted map must be re-proved per dispatch: {} vs {}",
        forced_stats.par_checks_verified,
        honest_stats.par_checks_verified
    );
    assert!(
        forced_stats.diagnostics.is_empty(),
        "{:?}",
        forced_stats.diagnostics
    );
}

/// The coloring pass's carried-release records are real claims about
/// loop-carried lifetimes, and checked mode must re-prove them: the
/// test-only skewed lowering anchors each `ReleaseCarried` at the yield
/// allocation — *before* the loop body has finished reading the carried
/// block — and the sanitizer must catch the resulting read.
#[test]
fn skewed_carried_release_triggers_use_after_release() {
    let case = arraymem_workloads::hotspot::case("64", 64, 6, 2);
    let opts = Options {
        coloring: true,
        ..Options::optimized()
    }
    .with_env(case.env.clone());
    let compiled = compile(&case.program, &opts).expect("compile");
    assert!(
        compiled
            .report
            .merges
            .iter()
            .any(|r| matches!(r, arraymem_core::MergeRecord::CarriedRelease { .. })),
        "hotspot's ping-pong loop must produce a carried-release record"
    );
    let checks: Vec<_> = compiled.report.checks().cloned().collect();
    // The honest lowering is clean under the sanitizer…
    let mut honest = Session::new();
    let h = honest
        .prepare_full(
            &compiled.program,
            &case.kernels,
            &checks,
            &compiled.report.merges,
            &compiled.report.par_safety,
        )
        .expect("prepare");
    let (_, honest_stats) = honest
        .run_plan(h, &case.inputs, &case.kernels, Mode::Checked, 1)
        .expect("honest run");
    assert!(honest_stats.diagnostics.is_empty(), "{honest_stats}");
    assert!(
        honest_stats.carried_releases > 0,
        "the honest run must actually exercise the carried release"
    );
    // …the skewed one is not: the carried block is parked in its color
    // slab while the stencil still reads it.
    let (_, skewed) = Session::new()
        .run_carried_skewed(
            &compiled.program,
            &case.inputs,
            &case.kernels,
            Mode::Checked,
            1,
            &checks,
            &compiled.report.merges,
            &compiled.report.par_safety,
        )
        .expect("skewed run");
    assert!(
        skewed
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::UseAfterRelease { .. })),
        "expected a UseAfterRelease from the premature carried release; got {:?}",
        skewed.diagnostics
    );
}
