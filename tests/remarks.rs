//! Structured optimization remarks (the `-Rpass` analogue): every
//! decision the short-circuiting pass takes — positive or negative — must
//! surface as a machine-readable [`arraymem_core::Remark`] with a
//! statement anchor, and every rejection must carry a structured
//! [`arraymem_core::RejectReason`], not just prose. The two historical
//! fuzzer bug classes (stale rebase of a vacated destination; aliasing
//! concat arguments) map to *distinct* remark kinds.

use arraymem_bench::tables::{table_cases, KNOWN_BENCHMARKS};
use arraymem_core::{compile, Options, RejectReason, RemarkKind};
use arraymem_ir::{Builder, Program, ScalarExp, SliceSpec};
use arraymem_lmad::TripletSlice;
use arraymem_symbolic::Poly;

/// Every candidate on every workload is accounted for in the remark
/// stream: one `CircuitElided` per success, one `CircuitRejected` with a
/// non-empty structured reason per failure, one `MapInPlace` per in-place
/// mapnest — all anchored at a statement.
#[test]
fn every_candidate_on_every_workload_carries_a_structured_remark() {
    for benchmark in KNOWN_BENCHMARKS {
        let case = &table_cases(benchmark, true).expect("known benchmark")[0];
        let compiled = case.compile(true);
        let report = &compiled.report;
        let cr = &compiled.compile_report;

        let mut elided = 0usize;
        let mut rejected = 0usize;
        let mut in_place = 0usize;
        for r in cr.remarks_for("short_circuit") {
            assert!(r.stm.is_some(), "{benchmark}: unanchored remark {r}");
            assert!(!r.message.is_empty(), "{benchmark}: empty remark message");
            match &r.kind {
                RemarkKind::CircuitElided => elided += 1,
                RemarkKind::CircuitRejected(reason) => {
                    rejected += 1;
                    // The structured reason is real, not a catch-all
                    // wrapper around prose.
                    let _: RejectReason = *reason;
                }
                RemarkKind::MapInPlace => in_place += 1,
                other => panic!("{benchmark}: unexpected short_circuit remark kind {other:?}"),
            }
        }
        assert_eq!(
            elided,
            report.successes(),
            "{benchmark}: one CircuitElided per successful candidate"
        );
        assert_eq!(
            rejected,
            report.candidates.len() - report.successes(),
            "{benchmark}: one CircuitRejected per failed candidate"
        );
        assert_eq!(
            in_place, report.in_place_maps,
            "{benchmark}: one MapInPlace per in-place mapnest"
        );
        for c in &report.candidates {
            if !c.succeeded {
                assert!(
                    c.rejection.is_some(),
                    "{benchmark}: failed candidate {} has no structured rejection: {}",
                    c.root,
                    c.reason
                );
                assert!(!c.reason.is_empty(), "{benchmark}: empty rejection prose");
            } else {
                assert!(
                    c.rejection.is_none(),
                    "{benchmark}: success with a rejection"
                );
            }
        }
    }
}

fn compile_candidates(prog: &Program) -> Vec<arraymem_core::CandidateOutcome> {
    compile(prog, &Options::optimized())
        .expect("compile")
        .report
        .candidates
}

/// Historical fuzzer bug class 1 — a candidate whose destination memory
/// was itself short-circuited away by another candidate's rebase (the
/// "stale rebase" bug). It must be rejected as `DestinationVacated`.
#[test]
fn vacated_destination_is_rejected_with_its_own_kind() {
    let b = Builder::new("vacate");
    let mut body = b.block();
    let as_ = body.replicate("as", vec![Poly::from(16i64)], ScalarExp::f32(1.0));
    let es = body.replicate("es", vec![Poly::from(4i64)], ScalarExp::f32(3.0));
    let bs = body.replicate("bs", vec![Poly::from(8i64)], ScalarExp::f32(2.0));
    let bs2 = body.update(
        "bs2",
        bs,
        SliceSpec::Triplet(vec![TripletSlice::range(0i64, 4i64, 1i64)]),
        es,
    );
    let as2 = body.update(
        "as2",
        as_,
        SliceSpec::Triplet(vec![TripletSlice::range(8i64, 8i64, 1i64)]),
        bs2,
    );
    let blk = body.finish(vec![as2]);
    let prog = b.finish(blk);
    let cands = compile_candidates(&prog);
    assert!(
        cands.iter().any(|c| c.succeeded),
        "the outer update must still circuit: {cands:?}"
    );
    let vacated: Vec<_> = cands
        .iter()
        .filter(|c| c.rejection == Some(RejectReason::DestinationVacated))
        .collect();
    assert_eq!(
        vacated.len(),
        1,
        "the inner update's destination was rebased away: {cands:?}"
    );
}

/// Historical fuzzer bug class 2 — `concat bs bs`: both arguments belong
/// to one alias web, so eliding both would rebase the same memory onto
/// two destinations (footnote 17). Each argument must be rejected as
/// `AliasingConcatArg` — a kind distinct from `DestinationVacated`.
#[test]
fn aliasing_concat_args_are_rejected_with_their_own_kind() {
    let b = Builder::new("alias_concat");
    let mut body = b.block();
    let bs = body.replicate("bs", vec![Poly::from(4i64)], ScalarExp::f32(2.0));
    let cs = body.concat("cs", vec![bs, bs]);
    let blk = body.finish(vec![cs]);
    let prog = b.finish(blk);
    let cands = compile_candidates(&prog);
    assert!(
        !cands.is_empty(),
        "concat args must be recorded as candidates"
    );
    assert!(
        cands
            .iter()
            .all(|c| c.rejection == Some(RejectReason::AliasingConcatArg)),
        "{cands:?}"
    );
    // The two bug classes are distinguishable by kind alone.
    assert_ne!(
        RejectReason::AliasingConcatArg,
        RejectReason::DestinationVacated
    );
}
