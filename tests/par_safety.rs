//! End-to-end acceptance of the `par_safety` stage: LMAD-proven maps run
//! **parallel and in place** (no private-row copy) across the benchmark
//! suite, with bit-identical results in Memory and Checked mode at every
//! thread count.

use arraymem_bench::tables::{table_cases, KNOWN_BENCHMARKS};
use arraymem_core::ParLevel;
use arraymem_exec::{OutputValue, Session};

/// Compile every benchmark with optimizations and report the verdict mix
/// (probe used by the assertions below; run with `--nocapture` to see it).
fn verdicts() -> Vec<(String, usize, usize, usize)> {
    let mut rows = Vec::new();
    for name in KNOWN_BENCHMARKS {
        for case in table_cases(name, true).unwrap() {
            let compiled = case.compile(true);
            let recs = &compiled.report.par_safety;
            let safe = recs.iter().filter(|r| r.level == ParLevel::Safe).count();
            let buf = recs
                .iter()
                .filter(|r| r.level == ParLevel::NeedsBuffer)
                .count();
            let serial = recs.iter().filter(|r| r.level == ParLevel::Serial).count();
            println!(
                "{name:<14} {}: safe {safe:>2} | buffered {buf:>2} | serial {serial:>2}  {:?}",
                case.dataset,
                recs.iter().map(|r| (r.level, r.reject)).collect::<Vec<_>>()
            );
            rows.push((name.to_string(), safe, buf, serial));
        }
    }
    rows
}

#[test]
fn the_suite_proves_parallel_safety_somewhere() {
    let rows = verdicts();
    let with_safe = rows.iter().filter(|(_, s, _, _)| *s > 0).count();
    assert!(
        with_safe >= 3,
        "expected >=3 workloads with a Safe mapnest, got {with_safe}: {rows:?}"
    );
}

fn bytes_of(out: &[OutputValue]) -> Vec<u8> {
    let mut b = Vec::new();
    for o in out {
        b.extend_from_slice(format!("{o:?}").as_bytes());
    }
    b
}

/// Acceptance: at least three workloads execute a mapnest parallel **and**
/// in place (`maps_parallel_in_place > 0` — dispatched to the pool,
/// writing result memory directly under a `par_safety` proof), and their
/// outputs are bit-identical across Memory and Checked mode at 1, 2, and
/// max threads.
#[test]
fn proven_maps_run_parallel_in_place_with_identical_outputs() {
    let max = 8;
    let mut parallel_in_place = 0usize;
    for name in KNOWN_BENCHMARKS {
        for case in table_cases(name, true).unwrap() {
            let compiled = case.compile(true);
            let mut golden: Option<Vec<u8>> = None;
            let mut copies: Option<u64> = None;
            let mut best = 0u64;
            for threads in [1usize, 2, max] {
                let mut session = Session::new();
                let (out, stats) = case.run_in_at(&mut session, &compiled, threads);
                // Parallelism must not introduce copies: a proven map
                // writes its result memory directly at every thread
                // count, so copy traffic (updates/concats/buffered maps)
                // is thread-invariant.
                match copies {
                    None => copies = Some(stats.bytes_copied),
                    Some(c) => assert_eq!(
                        c, stats.bytes_copied,
                        "{name}/{}: thread count changed copy traffic (threads {threads})",
                        case.dataset
                    ),
                }
                best = best.max(stats.maps_parallel_in_place);
                let b = bytes_of(&out);
                match &golden {
                    None => golden = Some(b),
                    Some(g) => assert_eq!(
                        g, &b,
                        "{name}/{}: Memory-mode output differs at {threads} threads",
                        case.dataset
                    ),
                }
            }
            for threads in [1usize, max] {
                let mut session = Session::new();
                let (out, stats) = case.run_checked_in_at(&mut session, &compiled, threads);
                assert!(
                    stats.diagnostics.is_empty(),
                    "{name}/{}: checked run at {threads} threads found {:?}",
                    case.dataset,
                    stats.diagnostics
                );
                assert_eq!(
                    golden.as_ref().unwrap(),
                    &bytes_of(&out),
                    "{name}/{}: Checked-mode output differs at {threads} threads",
                    case.dataset
                );
            }
            if best > 0 {
                parallel_in_place += 1;
            }
        }
    }
    assert!(
        parallel_in_place >= 3,
        "expected >=3 workloads executing a mapnest parallel-and-in-place, \
         got {parallel_in_place}"
    );
}
