//! Integration: the short-circuiting *reports* match what the paper says
//! happens on each benchmark (§VI case studies) — which candidates
//! succeed, which fail, and why.

use arraymem_workloads as w;

fn report_of(case: &w::Case) -> arraymem_core::Report {
    case.compile(true).report
}

#[test]
fn nw_both_halves_circuit() {
    let r = report_of(&w::nw::case("r", 6, 4, 2));
    // Two update candidates (first and second half), both succeed.
    assert_eq!(r.candidates.len(), 2, "{:?}", r.candidates);
    assert_eq!(r.successes(), 2, "{:?}", r.candidates);
    // Both anti-diagonal mapnests construct their blocks in place.
    assert!(r.in_place_maps >= 2);
}

/// Without the `n = q·b + 1` shape relation, NW's Fig. 9 proof cannot go
/// through and the compiler must fail conservatively (paper §III-D: the
/// failure costs 1.1-1.5× but is never wrong).
#[test]
fn nw_without_env_fails_conservatively() {
    let case = w::nw::case("r", 6, 4, 2);
    let compiled =
        arraymem_core::compile(&case.program, &arraymem_core::Options::optimized()).unwrap();
    assert_eq!(compiled.report.successes(), 0);
    // And it still computes the right answer.
    let (out, _) = arraymem_exec::run_program(
        &compiled.program,
        &case.inputs,
        &case.kernels,
        arraymem_exec::Mode::Memory,
        1,
    )
    .unwrap();
    let (_, expect) = (case.reference)(&case.inputs);
    assert!(expect[0].approx_eq(&out[0], 0.0));
}

#[test]
fn lud_diagonal_fails_perimeter_and_interior_succeed() {
    let r = report_of(&w::lud::case("r", 4, 8, 2));
    let diag_fails = r
        .candidates
        .iter()
        .filter(|c| c.root.starts_with("diagX") && !c.succeeded)
        .count();
    assert_eq!(diag_fails, 1, "{:?}", r.candidates);
    // Every failed candidate carries a structured rejection kind, not
    // just a prose reason.
    assert!(r
        .candidates
        .iter()
        .all(|c| c.succeeded || c.rejection.is_some()));
    let successes: Vec<&str> = r
        .candidates
        .iter()
        .filter(|c| c.succeeded)
        .map(|c| c.root.as_str())
        .collect();
    assert!(successes.iter().any(|s| s.starts_with("rowX")));
    assert!(successes.iter().any(|s| s.starts_with("colX")));
    assert!(successes.iter().any(|s| s.starts_with("intX")));
}

#[test]
fn hotspot_concat_elides_all_three_parts() {
    let r = report_of(&w::hotspot::case("r", 16, 2, 2));
    // top, mid, bottom — all constructed in the result memory.
    assert_eq!(r.successes(), 3, "{:?}", r.candidates);
    assert!(r
        .candidates
        .iter()
        .all(|c| c.kind == arraymem_core::short_circuit::CandidateKind::Concat));
}

#[test]
fn lbm_mapnest_is_in_place() {
    let r = report_of(&w::lbm::case("r", (4, 4, 2), 2, 2));
    assert!(r.in_place_maps >= 1);
}

#[test]
fn nn_reduce_result_circuits() {
    let r = report_of(&w::nn::case("r", 128, 4, 2));
    assert_eq!(r.successes(), 1, "{:?}", r.candidates);
}

#[test]
fn optionpricing_reduction_update_circuits() {
    let r = report_of(&w::optionpricing::case("r", 64, 8, 2));
    assert!(r.successes() >= 1, "{:?}", r.candidates);
    assert!(r.in_place_maps >= 1); // the path-generation mapnest
}

#[test]
fn locvolcalib_mapnest_is_in_place() {
    let r = report_of(&w::locvolcalib::case("r", 4, 16, 4, 2));
    assert!(r.in_place_maps >= 1);
}

/// The pipeline's own report: every enabled stage runs, in its declared
/// order, and each [`arraymem_core::PassRun`] carries before/after stats.
#[test]
fn compile_report_lists_stages_in_order_with_timings() {
    let case = w::nw::case("r", 6, 4, 2);
    let compiled = case.compile(true);
    let names: Vec<&str> = compiled
        .compile_report
        .passes
        .iter()
        .map(|p| p.name)
        .collect();
    assert_eq!(
        names,
        [
            "introduce",
            "antiunify",
            "hoist",
            "short_circuit",
            "merge",
            "cleanup",
            "par_safety",
            "release"
        ],
        "standard pipeline stage order"
    );
    let intro = compiled.compile_report.pass("introduce").unwrap();
    assert!(
        intro.after.allocs > intro.before.allocs,
        "introduce must insert allocs: {:?} -> {:?}",
        intro.before,
        intro.after
    );
    let sc = compiled.compile_report.pass("short_circuit").unwrap();
    assert!(
        sc.after.elided_updates > sc.before.elided_updates,
        "short_circuit must elide NW's updates: {:?} -> {:?}",
        sc.before,
        sc.after
    );
    assert!(compiled.compile_report.total_time >= intro.time);
    // An unoptimized compile skips the short-circuit stage entirely.
    let unopt = case.compile(false);
    assert!(unopt.compile_report.pass("short_circuit").is_none());
    assert!(unopt.compile_report.pass("introduce").is_some());
    // And the two configurations stamp different pipeline fingerprints.
    assert_ne!(
        compiled.program.pipeline_fingerprint,
        unopt.program.pipeline_fingerprint
    );
    assert_eq!(
        compiled.program.pipeline_fingerprint,
        compiled.compile_report.pipeline_fingerprint
    );
}

/// Compile-time sanity: short-circuiting adds bounded overhead (the paper
/// reports ~10%, with NW the worst at 17s due to the SMT solver; our
/// symbolic engine stays well under a second even for NW).
#[test]
fn compile_time_is_bounded() {
    let case = w::nw::case("r", 64, 16, 2);
    let t0 = std::time::Instant::now();
    let _ = case.compile(true);
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "short-circuiting took {:?}",
        t0.elapsed()
    );
}

/// Ablation mechanisms: each disabled ingredient defeats exactly the
/// candidates it enables.
#[test]
fn ablation_no_hoisting_defeats_hotspot_concat() {
    let case = w::hotspot::case("r", 16, 2, 2);
    let compiled = arraymem_core::compile(
        &case.program,
        &arraymem_core::Options {
            hoist: false,
            ..arraymem_core::Options::optimized().with_env(case.env.clone())
        },
    )
    .unwrap();
    // Without hoisting, the concat's allocation comes after the parts'
    // definitions: safety property 2 fails for all three — and the
    // structured rejection says so, machine-readably.
    assert_eq!(
        compiled.report.successes(),
        0,
        "{:?}",
        compiled.report.candidates
    );
    assert!(compiled
        .report
        .candidates
        .iter()
        .all(|c| c.rejection == Some(arraymem_core::RejectReason::DestinationNotAllocated)));
    // The same rejections surface as pipeline remarks anchored at the
    // candidates' statements.
    let rejected: Vec<_> = compiled.compile_report.rejections().collect();
    assert_eq!(rejected.len(), compiled.report.candidates.len());
    assert!(rejected.iter().all(|(r, kind)| r.pass == "short_circuit"
        && r.stm.is_some()
        && *kind == arraymem_core::RejectReason::DestinationNotAllocated));
    // Still correct.
    let (out, _) = arraymem_exec::run_program(
        &compiled.program,
        &case.inputs,
        &case.kernels,
        arraymem_exec::Mode::Memory,
        1,
    )
    .unwrap();
    let (_, expect) = (case.reference)(&case.inputs);
    assert!(expect[0].approx_eq(&out[0], case.tol));
}

#[test]
fn ablation_no_mapnest_restores_row_copies() {
    let case = w::lbm::case("r", (4, 4, 2), 2, 2);
    let compiled = arraymem_core::compile(
        &case.program,
        &arraymem_core::Options {
            mapnest_in_place: false,
            ..arraymem_core::Options::optimized().with_env(case.env.clone())
        },
    )
    .unwrap();
    assert_eq!(compiled.report.in_place_maps, 0);
    let (out, stats) = arraymem_exec::run_program(
        &compiled.program,
        &case.inputs,
        &case.kernels,
        arraymem_exec::Mode::Memory,
        1,
    )
    .unwrap();
    assert!(stats.bytes_copied > 0, "row copies must be back");
    let (_, expect) = (case.reference)(&case.inputs);
    assert!(expect[0].approx_eq(&out[0], case.tol));
}
