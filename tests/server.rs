//! Multi-tenant server correctness: the concurrency tier.
//!
//! These tests pin the server layer's three contended mechanisms under
//! real thread interleavings:
//!
//! - the sharded plan cache's **single-flight** guarantee (a stampede of
//!   identical requests lowers once; an options-toggle race never
//!   collides keys);
//! - **tenant isolation** over the shared arena (recycling keeps its
//!   zero-fill elision inside a tenant, scrubs across tenants, and the
//!   checked-mode shadow keeps firing on either side of the boundary);
//! - **admission control** (bounded in-flight, FIFO overflow queue,
//!   typed rejection, and truthful metrics).
//!
//! Run with `ARRAYMEM_THREADS=8` (scripts/verify.sh does) so the
//! work-stealing pool is wide enough to interleave for real.

use arraymem_bench::tables::table_cases;
use arraymem_core::{compile, Options};
use arraymem_exec::{Diagnostic, KernelRegistry, Mode, OutputValue, PlanCache, Stats};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp};
use arraymem_server::{ExecRequest, Server, ServerConfig, ServerError};
use arraymem_symbolic::Poly;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// Two `replicate [4] 7` blocks — nonzero i64 cells, so a cross-tenant
/// byte leak is distinguishable from a correct scrub-to-zero. Two blocks
/// because the reader below allocates twice (scratch + copy target) and
/// both allocations must find a stale donation to adopt.
fn writer_program() -> Program {
    let bld = Builder::new("writer");
    let mut b = bld.block();
    let xs = b.replicate_typed("xs", ElemType::I64, vec![c(4)], ScalarExp::i64(7));
    let ys = b.replicate_typed("ys", ElemType::I64, vec![c(4)], ScalarExp::i64(7));
    bld.finish(b.finish(vec![xs, ys]))
}

/// `y = copy s` of an unwritten scratch array: whatever bytes the
/// allocator handed out escape to the caller. The one legal program
/// whose output *is* the recycled block's content.
fn scratch_reader_program() -> Program {
    let bld = Builder::new("reader");
    let mut b = bld.block();
    let s = b.scratch("s", ElemType::I64, vec![c(4)]);
    let y = b.copy("y", s);
    bld.finish(b.finish(vec![y]))
}

/// Every `Stats` counter must aggregate, and must aggregate correctly.
/// The struct literals below carry no `..Default::default()` rest, so
/// adding a field to `Stats` breaks this test (and `Stats::merge`'s own
/// destructuring) until its aggregation semantics are decided.
#[test]
fn stats_merge_aggregates_every_field() {
    let ms = Duration::from_millis;
    let a = Stats {
        bytes_allocated: 1,
        num_allocs: 2,
        blocks_reused: 3,
        bytes_zeroing_elided: 4,
        arena_blocks_adopted: 5,
        bytes_cross_tenant_scrubbed: 6,
        peak_bytes_live: 700,
        blocks_merged: 8,
        carried_releases: 29,
        color_slab_hits: 30,
        pool_dispatches: 9,
        maps_parallel_in_place: 10,
        par_chunks: 11,
        par_chunks_stolen: 12,
        par_workers_engaged: 13,
        par_workers_offered: 14,
        par_checks_verified: 15,
        bytes_copied: 16,
        num_copies: 17,
        bytes_elided: 18,
        num_elided: 19,
        kernel_launches: 20,
        kernel_time: ms(21),
        copy_time: ms(22),
        total_time: ms(23),
        cells_checked: 24,
        circuits_verified: 25,
        merges_verified: 26,
        diagnostics: vec![Diagnostic::UninitRead {
            stm: "a".into(),
            block: 1,
            offset: 2,
            ixfn: "ix".into(),
        }],
        diagnostics_suppressed: 27,
        plan_cache_hit: true,
        plan_build_time: ms(28),
    };
    let b = Stats {
        bytes_allocated: 100,
        num_allocs: 200,
        blocks_reused: 300,
        bytes_zeroing_elided: 400,
        arena_blocks_adopted: 500,
        bytes_cross_tenant_scrubbed: 600,
        peak_bytes_live: 70, // smaller than a's: max must keep 700
        blocks_merged: 800,
        carried_releases: 2900,
        color_slab_hits: 3000,
        pool_dispatches: 900,
        maps_parallel_in_place: 1000,
        par_chunks: 1100,
        par_chunks_stolen: 1200,
        par_workers_engaged: 1300,
        par_workers_offered: 1400,
        par_checks_verified: 1500,
        bytes_copied: 1600,
        num_copies: 1700,
        bytes_elided: 1800,
        num_elided: 1900,
        kernel_launches: 2000,
        kernel_time: ms(2100),
        copy_time: ms(2200),
        total_time: ms(2300),
        cells_checked: 2400,
        circuits_verified: 2500,
        merges_verified: 2600,
        diagnostics: vec![
            Diagnostic::UninitRead {
                stm: "b1".into(),
                block: 3,
                offset: 4,
                ixfn: "ix".into(),
            },
            Diagnostic::UninitRead {
                stm: "b2".into(),
                block: 5,
                offset: 6,
                ixfn: "ix".into(),
            },
        ],
        diagnostics_suppressed: 2700,
        plan_cache_hit: false,
        plan_build_time: ms(2800),
    };
    let mut m = a.clone();
    m.merge(&b);
    assert_eq!(m.bytes_allocated, 101);
    assert_eq!(m.num_allocs, 202);
    assert_eq!(m.blocks_reused, 303);
    assert_eq!(m.bytes_zeroing_elided, 404);
    assert_eq!(m.arena_blocks_adopted, 505);
    assert_eq!(m.bytes_cross_tenant_scrubbed, 606);
    assert_eq!(m.peak_bytes_live, 700, "peak is a max, not a sum");
    assert_eq!(m.blocks_merged, 808);
    assert_eq!(m.carried_releases, 2929);
    assert_eq!(m.color_slab_hits, 3030);
    assert_eq!(m.pool_dispatches, 909);
    assert_eq!(m.maps_parallel_in_place, 1010);
    assert_eq!(m.par_chunks, 1111);
    assert_eq!(m.par_chunks_stolen, 1212);
    assert_eq!(m.par_workers_engaged, 1313);
    assert_eq!(m.par_workers_offered, 1414);
    assert_eq!(m.par_checks_verified, 1515);
    assert_eq!(m.bytes_copied, 1616);
    assert_eq!(m.num_copies, 1717);
    assert_eq!(m.bytes_elided, 1818);
    assert_eq!(m.num_elided, 1919);
    assert_eq!(m.kernel_launches, 2020);
    assert_eq!(m.kernel_time, ms(2121));
    assert_eq!(m.copy_time, ms(2222));
    assert_eq!(m.total_time, ms(2323));
    assert_eq!(m.cells_checked, 2424);
    assert_eq!(m.circuits_verified, 2525);
    assert_eq!(m.merges_verified, 2626);
    assert_eq!(m.diagnostics.len(), 3, "diagnostics append");
    assert_eq!(m.diagnostics_suppressed, 2727);
    assert!(!m.plan_cache_hit, "one miss poisons the AND");
    assert_eq!(m.plan_build_time, ms(2828));
    // AND of two hits stays a hit.
    let mut both = a.clone();
    both.merge(&a);
    assert!(both.plan_cache_hit);
}

/// K identical concurrent prepares lower exactly once. The build hook
/// holds the winning build open until every other thread has parked on
/// the in-flight key, so all K-1 are *forced* through the coalescing
/// path — no scheduling luck involved.
#[test]
fn stampede_of_identical_prepares_lowers_once() {
    const K: usize = 8;
    let release = Arc::new(AtomicBool::new(false));
    let mut cache = PlanCache::new(4);
    let gate = Arc::clone(&release);
    cache.build_hook = Some(Box::new(move || {
        while !gate.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }));
    let cache = Arc::new(cache);
    let kernels = KernelRegistry::new();
    let prog = writer_program();
    let barrier = Barrier::new(K);
    let plans = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let cache = &cache;
                let kernels = &kernels;
                let prog = &prog;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    cache
                        .prepare_full(prog, kernels, &[], &[], &[])
                        .expect("prepare")
                })
            })
            .collect();
        // The builder is parked in the hook; everyone else must reach the
        // wait before the build can publish.
        while cache.stats().stampedes_coalesced < (K - 1) as u64 {
            std::thread::yield_now();
        }
        release.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("prepare thread panicked"))
            .collect::<Vec<_>>()
    });
    let s = cache.stats();
    assert_eq!(s.builds, 1, "single-flight: one lowering for K requests");
    assert_eq!(s.cache_hits, (K - 1) as u64);
    assert_eq!(s.stampedes_coalesced, (K - 1) as u64);
    assert_eq!(cache.len(), 1);
    let (first, _) = &plans[0];
    let mut built = 0;
    for (plan, outcome) in &plans {
        assert!(Arc::ptr_eq(first, plan), "every caller adopts one plan");
        if !outcome.hit {
            built += 1;
        } else {
            assert!(outcome.coalesced, "all non-builders were forced to park");
        }
    }
    assert_eq!(built, 1);
}

/// Checked-mode and memory-mode prepares of the *same program* race on
/// the same cache: the circuit-check records are part of the key, so the
/// two must never collide — a collision would hand the sanitizer a plan
/// with no shadow bookkeeping (or tax memory mode with it).
#[test]
fn options_toggle_race_never_collides_keys() {
    let case = &table_cases("nw", true).expect("nw cases")[0];
    let compiled = case.compile(true);
    let kernels = &case.kernels;
    let checks: Vec<_> = compiled.report.checks().cloned().collect();
    assert!(!checks.is_empty(), "nw must record circuit checks");
    let memory_key = PlanCache::key(
        &compiled.program,
        kernels,
        &[],
        &compiled.report.merges,
        &compiled.report.par_safety,
    );
    let checked_key = PlanCache::key(
        &compiled.program,
        kernels,
        &checks,
        &compiled.report.merges,
        &compiled.report.par_safety,
    );
    assert_ne!(memory_key, checked_key, "check records must key the plan");
    for _ in 0..20 {
        // Single shard: both keys contend on the same single-flight lock.
        let cache = PlanCache::new(1);
        let barrier = Barrier::new(2);
        let (mem, chk) = std::thread::scope(|scope| {
            let mem = scope.spawn(|| {
                barrier.wait();
                cache
                    .prepare_full(
                        &compiled.program,
                        kernels,
                        &[],
                        &compiled.report.merges,
                        &compiled.report.par_safety,
                    )
                    .expect("memory prepare")
            });
            let chk = scope.spawn(|| {
                barrier.wait();
                cache
                    .prepare_full(
                        &compiled.program,
                        kernels,
                        &checks,
                        &compiled.report.merges,
                        &compiled.report.par_safety,
                    )
                    .expect("checked prepare")
            });
            (mem.join().expect("memory"), chk.join().expect("checked"))
        });
        assert_eq!(mem.1.key, memory_key);
        assert_eq!(chk.1.key, checked_key);
        assert!(
            !Arc::ptr_eq(&mem.0, &chk.0),
            "distinct options must lower distinct plans"
        );
        let s = cache.stats();
        assert_eq!(
            (s.builds, s.cache_hits, s.stampedes_coalesced),
            (2, 0, 0),
            "two keys, two builds, nothing coalesced"
        );
        assert_eq!(cache.len(), 2);
    }
}

/// The shared arena's tenant boundary, end to end through the server:
/// recycling inside a tenant keeps the zero-fill elision (stale bytes
/// stay visible), recycling across tenants scrubs (the other tenant's
/// bytes never appear) — and the checked-mode shadow calls the read
/// uninitialized in *both* cases.
#[test]
fn cross_tenant_recycling_scrubs_but_same_tenant_elides() {
    let writer = compile(&writer_program(), &Options::default()).expect("compile writer");
    let reader = compile(&scratch_reader_program(), &Options::default()).expect("compile reader");
    let kernels = KernelRegistry::new();
    let server = Server::new(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // Tenant A fills a block with 7s; the server donates it to the arena.
    let write_req = ExecRequest::from_compiled(&writer, &kernels, &[], &[], Mode::Memory);
    let (out, _) = server.execute("a", write_req).expect("writer run");
    assert_eq!(
        out,
        vec![
            OutputValue::ArrayI64(vec![7, 7, 7, 7]),
            OutputValue::ArrayI64(vec![7, 7, 7, 7]),
        ]
    );

    // Same tenant reads scratch: its own donation comes back *unscrubbed*
    // — zero-fill elision across runs, the optimization being protected.
    let read_req = ExecRequest::from_compiled(&reader, &kernels, &[], &[], Mode::Memory);
    let (out, stats) = server.execute("a", read_req).expect("same-tenant read");
    assert_eq!(
        out,
        vec![OutputValue::ArrayI64(vec![7, 7, 7, 7])],
        "same-tenant recycling must keep the stale bytes (elided zero-fill)"
    );
    assert_eq!(stats.arena_blocks_adopted, 2);
    assert_eq!(stats.bytes_cross_tenant_scrubbed, 0);
    assert!(
        stats.bytes_zeroing_elided >= 64,
        "2 × 4 × i64 elided: {stats}"
    );

    // Tenant B runs the same scratch-reader: it adopts A's donated bytes,
    // which must arrive scrubbed — and under the sanitizer the read must
    // still be flagged uninitialized (adoption never launders provenance).
    let checked_req = ExecRequest::from_compiled(&reader, &kernels, &[], &[], Mode::Checked);
    let (out, stats) = server.execute("b", checked_req).expect("cross-tenant read");
    assert_eq!(
        out,
        vec![OutputValue::ArrayI64(vec![0, 0, 0, 0])],
        "tenant B must never observe tenant A's bytes"
    );
    assert!(stats.arena_blocks_adopted >= 1, "{stats}");
    assert!(
        stats.bytes_cross_tenant_scrubbed >= 32,
        "the adopted block must be scrubbed: {stats}"
    );
    assert!(
        stats
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::UninitRead { .. })),
        "shadow provenance must keep firing across the tenant boundary: {stats}"
    );

    let arena = server.arena_stats();
    assert!(arena.adopted_same_tenant >= 1, "{arena:?}");
    assert!(arena.adopted_cross_tenant >= 1, "{arena:?}");
    assert_eq!(server.tenant_stats("a").expect("tenant a").runs, 2);
    assert_eq!(server.tenant_stats("b").expect("tenant b").runs, 1);
    assert_eq!(server.global_stats().runs, 3);
}

/// Adversarial oversized donation through the server: tenant A donates a
/// block strictly larger than tenant B's request, so the adoption keeps a
/// capacity tail beyond the kept prefix. Tenant B's scratch read must
/// come back all zeros (never A's bytes), and the sanitizer must still
/// flag the read — scrubbing is isolation, not initialization.
#[test]
fn oversized_cross_tenant_donation_never_leaks() {
    let bld = Builder::new("big_writer");
    let mut b = bld.block();
    let xs = b.replicate_typed("xs", ElemType::I64, vec![c(16)], ScalarExp::i64(7));
    let ys = b.replicate_typed("ys", ElemType::I64, vec![c(16)], ScalarExp::i64(7));
    let big_writer = bld.finish(b.finish(vec![xs, ys]));
    let writer = compile(&big_writer, &Options::default()).expect("compile writer");
    let reader = compile(&scratch_reader_program(), &Options::default()).expect("compile reader");
    let kernels = KernelRegistry::new();
    let server = Server::new(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // Tenant A parks two 16-element blocks of 7s in the arena.
    let write_req = ExecRequest::from_compiled(&writer, &kernels, &[], &[], Mode::Memory);
    let (out, _) = server.execute("a", write_req).expect("writer run");
    assert_eq!(
        out,
        vec![
            OutputValue::ArrayI64(vec![7; 16]),
            OutputValue::ArrayI64(vec![7; 16]),
        ]
    );

    // Tenant B asks for 4 elements: the only parked blocks are A's 16s,
    // strictly larger cross-tenant fits.
    let checked_req = ExecRequest::from_compiled(&reader, &kernels, &[], &[], Mode::Checked);
    let (out, stats) = server.execute("b", checked_req).expect("cross-tenant read");
    assert_eq!(
        out,
        vec![OutputValue::ArrayI64(vec![0, 0, 0, 0])],
        "tenant B must never observe tenant A's bytes"
    );
    assert!(stats.arena_blocks_adopted >= 1, "{stats}");
    assert!(
        stats.bytes_cross_tenant_scrubbed >= 32,
        "the kept prefix must be scrubbed: {stats}"
    );
    assert!(
        stats
            .diagnostics
            .iter()
            .any(|d| matches!(d, Diagnostic::UninitRead { .. })),
        "a scrubbed-but-unwritten read must still be flagged: {stats}"
    );
    let arena = server.arena_stats();
    assert!(arena.adopted_cross_tenant >= 1, "{arena:?}");
}

/// Admission control under a held execution slot: with one permit and a
/// one-deep queue, the second request queues, the third is rejected with
/// a typed error naming the load, and the metrics record all of it.
#[test]
fn admission_queues_then_rejects_under_load() {
    let mut kernels = KernelRegistry::new();
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let g = Arc::clone(&gate);
    kernels.register("block_until_released", move |ctx| {
        let (lock, cv) = &*g;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = cv.wait(released).unwrap();
        }
        ctx.out.set_f32(&[], 1.0);
    });
    let bld = Builder::new("blocker");
    let mut b = bld.block();
    let xs = b.map_kernel(
        "xs",
        "block_until_released",
        c(2),
        vec![],
        ElemType::F32,
        vec![],
        vec![],
    );
    let prog = bld.finish(b.finish(vec![xs]));
    let compiled = compile(&prog, &Options::default()).expect("compile blocker");
    let server = Server::new(ServerConfig {
        max_in_flight: 1,
        queue_depth: 1,
        threads: 1,
        ..ServerConfig::default()
    });
    let req = ExecRequest::from_compiled(&compiled, &kernels, &[], &[], Mode::Memory);

    std::thread::scope(|scope| {
        let t1 = scope.spawn(|| server.execute("t1", req).expect("first request runs"));
        // Wait until the first request holds the only permit…
        while server.load().0 < 1 {
            std::thread::yield_now();
        }
        let t2 = scope.spawn(|| server.execute("t2", req).expect("queued request runs"));
        // …and the second is parked in the overflow queue.
        while server.load().1 < 1 {
            std::thread::yield_now();
        }
        // The third finds slot and queue full: typed rejection.
        match server.execute("t3", req) {
            Err(ServerError::Overloaded { in_flight, queued }) => {
                assert_eq!((in_flight, queued), (1, 1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Release the kernel; both held requests complete.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let (out1, _) = t1.join().expect("t1 panicked");
        let (out2, _) = t2.join().expect("t2 panicked");
        assert_eq!(out1, vec![OutputValue::ArrayF32(vec![1.0, 1.0])]);
        assert_eq!(out1, out2);
    });

    let m = server.admission_metrics();
    assert_eq!(m.admitted, 2, "{m:?}");
    assert_eq!(m.rejected, 1, "{m:?}");
    assert_eq!(m.queued, 1, "{m:?}");
    assert_eq!(m.peak_in_flight, 1, "{m:?}");
    assert_eq!(m.peak_queue_depth, 1, "{m:?}");
    assert!(m.total_queue_wait > Duration::ZERO, "{m:?}");
    assert!(m.avg_queue_wait() > Duration::ZERO, "{m:?}");
    assert_eq!(server.load(), (0, 0), "permits all returned");
}

/// Four tenants run four *different* real workloads through one server
/// concurrently, twice each: every output matches the workload's
/// reference implementation, the shared cache lowers one plan per
/// program, and the per-tenant aggregates sum to the global view.
#[test]
fn four_tenants_run_distinct_workloads_concurrently() {
    let benchmarks = ["nw", "hotspot", "lud", "nn"];
    let prepared: Vec<_> = benchmarks
        .iter()
        .map(|b| {
            let mut cases = table_cases(b, true).expect("known benchmark");
            let case = cases.remove(0);
            let compiled = case.compile(true);
            let (_, expect) = (case.reference)(&case.inputs);
            (case, compiled, expect)
        })
        .collect();
    let server = Server::new(ServerConfig {
        max_in_flight: 4,
        threads: 2,
        ..ServerConfig::default()
    });
    std::thread::scope(|scope| {
        for (i, (case, compiled, expect)) in prepared.iter().enumerate() {
            let server = &server;
            // Only the Sync parts of the case cross the thread boundary.
            let kernels = &case.kernels;
            let inputs = &case.inputs;
            let (name, tol) = (&case.name, case.tol);
            scope.spawn(move || {
                let tenant = format!("tenant-{i}");
                let req = ExecRequest::from_compiled(compiled, kernels, &[], inputs, Mode::Memory);
                for run in 0..2 {
                    let (out, _) = server
                        .execute(&tenant, req)
                        .unwrap_or_else(|e| panic!("{name} run {run}: {e}"));
                    assert_eq!(out.len(), expect.len(), "{name}: arity");
                    for (k, (e, o)) in expect.iter().zip(&out).enumerate() {
                        assert!(
                            e.approx_eq(o, tol),
                            "{name} run {run}: output {k} diverged from the reference"
                        );
                    }
                }
            });
        }
    });
    let plan = server.plan_stats();
    assert_eq!(plan.builds, 4, "one lowering per distinct program");
    assert_eq!(plan.cache_hits, 4, "each tenant's second run hits");
    let global = server.global_stats();
    assert_eq!(global.runs, 8);
    let names = server.tenant_names();
    assert_eq!(names.len(), 4);
    let per_tenant: u64 = names
        .iter()
        .map(|n| server.tenant_stats(n).expect("ran").runs)
        .sum();
    assert_eq!(per_tenant, global.runs, "tenant aggregates sum to global");
    // The arena-level high-water sees every tenant's live bytes at once;
    // the per-tenant max (what `Stats::merge` reports) is only a lower
    // bound on it.
    let arena = server.arena_stats();
    assert_eq!(global.arena_peak_bytes_live, arena.peak_bytes_live);
    assert!(
        arena.peak_bytes_live >= global.stats.peak_bytes_live,
        "arena high-water {} below the per-tenant max {}",
        arena.peak_bytes_live,
        global.stats.peak_bytes_live
    );
    assert!(arena.peak_bytes_live > 0);
    for n in &names {
        assert_eq!(
            server.tenant_stats(n).expect("ran").arena_peak_bytes_live,
            0,
            "per-tenant views must not claim the arena-wide figure"
        );
    }
    assert_eq!(
        global.stats.kernel_launches,
        names
            .iter()
            .map(|n| server.tenant_stats(n).expect("ran").stats.kernel_launches)
            .sum::<u64>()
    );
}
