//! Plan-cache correctness: a cache hit must replay the *same* plan.
//!
//! For every workload, a cold `prepare` + run and a warm (cache-hit) run
//! in the same session must produce bit-identical outputs — in plain
//! memory mode and under the checked-mode sanitizer. A golden snapshot of
//! the lowered NW instruction stream pins the plan format itself, so an
//! accidental lowering change shows up as a readable diff instead of a
//! silent perf or semantics shift. Re-bless with `ARRAYMEM_BLESS=1`.

use arraymem_bench::tables::{table_cases, KNOWN_BENCHMARKS};
use arraymem_exec::{Mode, Session};
use arraymem_workloads as w;

/// Cold-vs-warm equivalence for one mode. The *same* session serves both
/// runs, so the warm run also recycles the cold run's released blocks —
/// the harshest setting for "the cached plan behaves identically".
fn fresh_vs_cached(mode: Mode) {
    for benchmark in KNOWN_BENCHMARKS {
        let case = &table_cases(benchmark, true).expect("known benchmark")[0];
        let compiled = case.compile(true);
        let checks: Vec<_> = compiled.report.checks().cloned().collect();
        let threads = if matches!(mode, Mode::Checked) { 1 } else { 2 };
        let mut session = Session::new();
        let run = |s: &mut Session| {
            let h = s
                .prepare_with_checks(&compiled.program, &case.kernels, &checks)
                .expect("prepare");
            s.run_plan(h, &case.inputs, &case.kernels, mode, threads)
                .expect("run")
        };
        let (cold_out, cold_stats) = run(&mut session);
        let (warm_out, warm_stats) = run(&mut session);
        assert!(
            !cold_stats.plan_cache_hit,
            "{benchmark}: first prepare must lower"
        );
        assert!(
            warm_stats.plan_cache_hit,
            "{benchmark}: second prepare must hit the cache"
        );
        assert_eq!(
            cold_out, warm_out,
            "{benchmark}: cache-hit run diverged from the cold run ({mode:?})"
        );
        let plan = session.plan_stats();
        assert_eq!(
            (plan.builds, plan.cache_hits),
            (1, 1),
            "{benchmark}: exactly one lowering, one hit"
        );
        if matches!(mode, Mode::Checked) {
            assert!(
                cold_stats.diagnostics.is_empty() && warm_stats.diagnostics.is_empty(),
                "{benchmark}: sanitizer findings on a legal program"
            );
        }
    }
}

#[test]
fn cached_runs_are_bit_identical_in_memory_mode() {
    fresh_vs_cached(Mode::Memory);
}

#[test]
fn cached_runs_are_bit_identical_in_checked_mode() {
    fresh_vs_cached(Mode::Checked);
}

/// Distinct programs get distinct cache entries; re-preparing either one
/// afterwards still hits.
#[test]
fn distinct_programs_do_not_collide() {
    let a = w::nw::case("a", 4, 4, 1);
    let b = w::hotspot::case("b", 16, 2, 1);
    let ca = a.compile(true);
    let cb = b.compile(true);
    let mut session = Session::new();
    let ha = session.prepare(&ca.program, &a.kernels).expect("prepare a");
    let hb = session.prepare(&cb.program, &b.kernels).expect("prepare b");
    assert_ne!(ha, hb, "different programs must not share a plan");
    assert_eq!(
        session
            .prepare(&ca.program, &a.kernels)
            .expect("re-prepare a"),
        ha
    );
    assert_eq!(
        session
            .prepare(&cb.program, &b.kernels)
            .expect("re-prepare b"),
        hb
    );
    let stats = session.plan_stats();
    assert_eq!((stats.builds, stats.cache_hits), (2, 2));
}

/// The pipeline fingerprint is part of the plan-cache key: two compiles
/// of the *same source program* under different pass configurations must
/// not share a cached plan, even when the optimized IR happens to be
/// identical. A trivial program (`iota` and return) is unchanged by every
/// pass, so only the fingerprint distinguishes the variants.
#[test]
fn pass_configuration_is_part_of_the_cache_key() {
    use arraymem_core::{compile, Options};
    use arraymem_ir::{Builder, ElemType};
    use arraymem_symbolic::Poly;

    let mut b = Builder::new("trivial");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let a = body.iota("a", Poly::var(n));
    let blk = body.finish(vec![a]);
    let prog = b.finish(blk);
    let variants: Vec<Options> = vec![
        Options::default(),
        Options {
            hoist: false,
            ..Options::default()
        },
        Options::optimized(),
        Options {
            mapnest_in_place: false,
            ..Options::optimized()
        },
    ];
    let compiled: Vec<_> = variants
        .iter()
        .map(|o| compile(&prog, o).expect("compile"))
        .collect();
    // The program is untouched by every pass (modulo freshness counters)…
    let scrubbed = |p: &arraymem_ir::Program| {
        arraymem_ir::pretty::scrub_uniques(&arraymem_ir::pretty::program_to_string(p))
    };
    for c in &compiled {
        assert_eq!(
            scrubbed(&c.program),
            scrubbed(&compiled[0].program),
            "trivial program must be pass-invariant"
        );
    }
    // …yet every pass configuration gets its own plan cache entry.
    let kernels = arraymem_exec::KernelRegistry::default();
    let mut session = Session::new();
    let handles: Vec<_> = compiled
        .iter()
        .map(|c| session.prepare(&c.program, &kernels).expect("prepare"))
        .collect();
    for (i, hi) in handles.iter().enumerate() {
        for hj in &handles[i + 1..] {
            assert_ne!(hi, hj, "distinct pass configurations must not share a plan");
        }
    }
    let stats = session.plan_stats();
    assert_eq!(
        (stats.builds, stats.cache_hits),
        (4, 0),
        "each configuration lowers its own plan"
    );
    // Re-preparing any of them is a pure cache hit.
    for (c, h) in compiled.iter().zip(&handles) {
        assert_eq!(
            session.prepare(&c.program, &kernels).expect("re-prepare"),
            *h
        );
    }
    let stats = session.plan_stats();
    assert_eq!((stats.builds, stats.cache_hits), (4, 4));
}

/// The merge toggle alone separates cache entries: the same source
/// compiled with and without block merging must lower two distinct
/// plans — even for a program the pass leaves untouched, where only the
/// pipeline fingerprint tells the variants apart. A stale plan served
/// across the toggle would silently execute the wrong allocation layout.
#[test]
fn merge_toggle_is_part_of_the_cache_key() {
    use arraymem_core::{compile, Options};
    use arraymem_ir::{Builder, ElemType};
    use arraymem_symbolic::Poly;

    let mut b = Builder::new("trivial_merge");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let a = body.iota("a", Poly::var(n));
    let blk = body.finish(vec![a]);
    let prog = b.finish(blk);

    let on = compile(&prog, &Options::optimized()).expect("merge-on compile");
    let off = compile(
        &prog,
        &arraymem_core::Options {
            merge: false,
            ..Options::optimized()
        },
    )
    .expect("merge-off compile");
    // One `iota` gives the merge pass nothing to do: the optimized IR is
    // identical either way…
    let scrubbed = |p: &arraymem_ir::Program| {
        arraymem_ir::pretty::scrub_uniques(&arraymem_ir::pretty::program_to_string(p))
    };
    assert_eq!(
        scrubbed(&on.program),
        scrubbed(&off.program),
        "trivial program must be merge-invariant"
    );
    assert!(on.report.merges.is_empty());
    // …yet each toggle state lowers its own plan, and re-preparing
    // either is a pure hit.
    let kernels = arraymem_exec::KernelRegistry::default();
    let mut session = Session::new();
    let h_on = session.prepare(&on.program, &kernels).expect("prepare on");
    let h_off = session
        .prepare(&off.program, &kernels)
        .expect("prepare off");
    assert_ne!(h_on, h_off, "merge toggle must miss the plan cache");
    assert_eq!(
        session.prepare(&on.program, &kernels).expect("re-prepare"),
        h_on
    );
    let stats = session.plan_stats();
    assert_eq!((stats.builds, stats.cache_hits), (2, 1));
}

/// The `par_safety` toggle alone separates cache entries: the same
/// source compiled with and without the parallel-safety stage must lower
/// two distinct plans — a stale plan served across the toggle would
/// execute the wrong map schedule (parallel where the legacy schedule
/// was requested, or vice versa). Identical pipelines still hit.
#[test]
fn par_safety_toggle_is_part_of_the_cache_key() {
    use arraymem_core::{compile, Options};
    use arraymem_ir::{Builder, ElemType};
    use arraymem_symbolic::Poly;

    let mut b = Builder::new("trivial_par");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let a = body.iota("a", Poly::var(n));
    let blk = body.finish(vec![a]);
    let prog = b.finish(blk);

    let on = compile(&prog, &Options::optimized()).expect("par-on compile");
    let off = compile(
        &prog,
        &Options {
            par_safety: false,
            ..Options::optimized()
        },
    )
    .expect("par-off compile");
    // A lone `iota` carries no kernel map, so the stage records nothing
    // and the optimized IR is identical either way…
    let scrubbed = |p: &arraymem_ir::Program| {
        arraymem_ir::pretty::scrub_uniques(&arraymem_ir::pretty::program_to_string(p))
    };
    assert_eq!(
        scrubbed(&on.program),
        scrubbed(&off.program),
        "trivial program must be par_safety-invariant"
    );
    assert!(on.report.par_safety.is_empty());
    assert!(off.report.par_safety.is_empty());
    // …yet each toggle state lowers its own plan, and re-preparing
    // either is a pure hit.
    let kernels = arraymem_exec::KernelRegistry::default();
    let mut session = Session::new();
    let h_on = session.prepare(&on.program, &kernels).expect("prepare on");
    let h_off = session
        .prepare(&off.program, &kernels)
        .expect("prepare off");
    assert_ne!(h_on, h_off, "par_safety toggle must miss the plan cache");
    assert_eq!(
        session.prepare(&on.program, &kernels).expect("re-prepare"),
        h_on
    );
    assert_eq!(
        session.prepare(&off.program, &kernels).expect("re-prepare"),
        h_off
    );
    let stats = session.plan_stats();
    assert_eq!((stats.builds, stats.cache_hits), (2, 2));
}

/// Golden snapshot of the lowered NW plan (tiny dataset, optimized
/// pipeline). Catches unintended lowering changes; regenerate with
/// `ARRAYMEM_BLESS=1 cargo test -p arraymem-bench --test plan_cache`.
#[test]
fn nw_plan_snapshot() {
    let case = w::nw::case("snap", 2, 3, 1);
    let compiled = case.compile(true);
    let mut session = Session::new();
    let h = session
        .prepare(&compiled.program, &case.kernels)
        .expect("prepare");
    let got = session.plan(h).pretty();
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots/nw_plan.txt");
    if std::env::var_os("ARRAYMEM_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing snapshot {path:?} ({e}); run with ARRAYMEM_BLESS=1 to create it")
    });
    assert!(
        got == want,
        "lowered NW plan drifted from tests/snapshots/nw_plan.txt;\n\
         re-bless with ARRAYMEM_BLESS=1 if the change is intentional.\n\
         --- got ---\n{got}\n--- want ---\n{want}"
    );
}
