//! Golden per-pass IR snapshots for NW: the program as each pipeline
//! stage leaves it, pretty-printed with freshness suffixes scrubbed so
//! the text is stable across runs. Catches an unintended change to *any*
//! stage's output as a readable diff against the stage that drifted.
//! Regenerate with `ARRAYMEM_BLESS=1 cargo test -p arraymem-bench --test
//! pass_snapshots`.

use arraymem_core::{compile_observed, Options};
use arraymem_ir::pretty::{program_to_string, scrub_uniques};
use arraymem_workloads as w;

#[test]
fn nw_ir_snapshots_per_pass() {
    let case = w::nw::case("snap", 2, 3, 1);
    let mut stages: Vec<(String, String)> = Vec::new();
    let compiled = compile_observed(
        &case.program,
        &Options::optimized().with_env(case.env.clone()),
        &mut |stage, prog| {
            stages.push((stage.to_string(), scrub_uniques(&program_to_string(prog))));
        },
    )
    .expect("compile");
    // The optimized pipeline visits every stage, in its declared order,
    // starting from the raw input.
    let names: Vec<&str> = stages.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "input",
            "introduce",
            "antiunify",
            "hoist",
            "short_circuit",
            "merge",
            "cleanup",
            "par_safety",
            "release"
        ],
        "observed stage sequence"
    );
    // NW's two update candidates both circuit on this dataset — the
    // snapshots below capture the elisions, so make sure they happened.
    assert_eq!(compiled.report.successes(), 2);

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/snapshots");
    let bless = std::env::var_os("ARRAYMEM_BLESS").is_some();
    let mut drifted = Vec::new();
    for (idx, (stage, got)) in stages.iter().enumerate() {
        let path = dir.join(format!("nw_ir_{idx}_{stage}.txt"));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing snapshot {path:?} ({e}); run with ARRAYMEM_BLESS=1 to create it")
        });
        if *got != want {
            drifted.push(format!(
                "stage `{stage}` drifted from {path:?}:\n--- got ---\n{got}\n--- want ---\n{want}"
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "{} stage snapshot(s) drifted; re-bless with ARRAYMEM_BLESS=1 if \
         the change is intentional.\n\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}
