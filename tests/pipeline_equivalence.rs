//! Integration: for every benchmark, the pure value-semantics
//! interpretation, the unoptimized memory machine, and the short-circuited
//! memory machine must all agree with the hand-written reference — the
//! end-to-end statement of the paper's "memory annotations have no
//! semantic meaning" invariant.

use arraymem_exec::{run_program, Mode};
use arraymem_workloads as w;

fn check(case: &w::Case) {
    // Reference vs both memory-mode variants.
    let (u_stats, o_stats) = case.validate();
    // Pure mode vs reference, on the *source* program.
    let (pure_out, _) =
        run_program(&case.program, &case.inputs, &case.kernels, Mode::Pure, 1).expect("pure run");
    let (_, expect) = (case.reference)(&case.inputs);
    for (e, p) in expect.iter().zip(&pure_out) {
        assert!(
            e.approx_eq(p, case.tol.max(1e-6)),
            "{}: pure interpretation differs from reference",
            case.name
        );
    }
    // The optimizer must never *increase* copy traffic.
    assert!(
        o_stats.bytes_copied <= u_stats.bytes_copied,
        "{}: optimization increased copies",
        case.name
    );
}

#[test]
fn nw_all_versions_agree() {
    check(&w::nw::case("it", 6, 4, 2));
}

#[test]
fn lud_all_versions_agree() {
    check(&w::lud::case("it", 6, 8, 2));
}

#[test]
fn hotspot_all_versions_agree() {
    check(&w::hotspot::case("it", 24, 3, 2));
}

#[test]
fn lbm_all_versions_agree() {
    check(&w::lbm::case("it", (6, 6, 4), 2, 2));
}

#[test]
fn optionpricing_all_versions_agree() {
    check(&w::optionpricing::case("it", 256, 8, 2));
}

#[test]
fn locvolcalib_all_versions_agree() {
    check(&w::locvolcalib::case("it", 4, 16, 4, 2));
}

#[test]
fn nn_all_versions_agree() {
    check(&w::nn::case("it", 1024, 5, 2));
}

/// Different block sizes exercise different LMAD proofs.
#[test]
fn nw_various_block_sizes() {
    for (q, b) in [(2, 2), (3, 5), (5, 3), (8, 2)] {
        check(&w::nw::case("it", q, b, 2));
    }
}

#[test]
fn lud_various_block_sizes() {
    for (q, b) in [(2, 4), (4, 4), (3, 8)] {
        check(&w::lud::case("it", q, b, 2));
    }
}
