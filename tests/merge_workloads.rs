//! The merge pass (greedy and whole-program coloring) on every workload
//! — bit-identical outputs, lower peak memory, no sanitizer findings.
//!
//! One persistent [`Session`] runs every workload three ways (merge off;
//! greedy merge; merge with coloring) in both `Memory` and `Checked`
//! mode, so merged plans prove themselves against block recycling from
//! *other* programs' runs too.

use arraymem_core::{compile, Options};
use arraymem_exec::{Mode, OutputValue, Session, Stats};
use arraymem_workloads as w;
use arraymem_workloads::Case;

fn smoke_cases() -> Vec<Case> {
    vec![
        w::nw::case("256", 16, 16, 2),
        w::lud::case("128", 8, 16, 2),
        w::hotspot::case("128", 128, 8, 2),
        w::lbm::case("short", (16, 16, 8), 3, 2),
        w::optionpricing::case("medium", 2048, 32, 2),
        w::locvolcalib::case("small", 16, 64, 16, 2),
        w::nn::case("8552", 8552, 8, 2),
    ]
}

fn run(
    case: &Case,
    session: &mut Session,
    merge: bool,
    coloring: bool,
    mode: Mode,
) -> (Vec<OutputValue>, Stats) {
    let opts = Options {
        merge,
        coloring,
        ..Options::optimized()
    }
    .with_env(case.env.clone());
    let compiled = compile(&case.program, &opts)
        .unwrap_or_else(|e| panic!("{}: compile failed: {e}", case.name));
    let checks: Vec<_> = compiled.report.checks().cloned().collect();
    let h = session
        .prepare_full(
            &compiled.program,
            &case.kernels,
            &checks,
            &compiled.report.merges,
            &compiled.report.par_safety,
        )
        .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", case.name));
    let threads = if mode == Mode::Checked { 1 } else { 2 };
    session
        .run_plan(h, &case.inputs, &case.kernels, mode, threads)
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", case.name))
}

fn assert_bit_identical(case: &Case, off: &[OutputValue], on: &[OutputValue]) {
    assert_eq!(off.len(), on.len(), "{}: arity changed by merge", case.name);
    for (k, (a, b)) in off.iter().zip(on).enumerate() {
        assert!(
            a.approx_eq(b, 0.0),
            "{}: output {k} not bit-identical with merging enabled",
            case.name
        );
    }
}

/// Merging is invisible in outputs, visible in the peak-live ledger: never
/// higher, strictly lower wherever the pass actually engaged (a Share
/// merge or a carried release) — and the pass must engage on a
/// meaningful share of the suite.
#[test]
fn merge_reduces_peak_memory_with_identical_outputs() {
    let mut session = Session::new();
    let mut fired = Vec::new();
    for case in smoke_cases() {
        for mode in [Mode::Memory, Mode::Checked] {
            let (out_off, stats_off) = run(&case, &mut session, false, false, mode);
            let (out_greedy, stats_greedy) = run(&case, &mut session, true, false, mode);
            let (out_on, stats_on) = run(&case, &mut session, true, true, mode);
            assert_bit_identical(&case, &out_off, &out_greedy);
            assert_bit_identical(&case, &out_off, &out_on);
            assert_eq!(
                stats_off.blocks_merged, 0,
                "{}: unmerged baseline",
                case.name
            );
            assert_eq!(
                stats_greedy.carried_releases, 0,
                "{}: carried releases are a coloring-only mechanism",
                case.name
            );
            assert!(
                stats_greedy.peak_bytes_live <= stats_off.peak_bytes_live,
                "{}/{mode:?}: greedy merging raised peak live bytes ({} -> {})",
                case.name,
                stats_off.peak_bytes_live,
                stats_greedy.peak_bytes_live
            );
            // Coloring subsumes the greedy pass: never worse than it.
            assert!(
                stats_on.peak_bytes_live <= stats_greedy.peak_bytes_live,
                "{}/{mode:?}: coloring raised peak over greedy ({} -> {})",
                case.name,
                stats_greedy.peak_bytes_live,
                stats_on.peak_bytes_live
            );
            let engaged = stats_on.blocks_merged > 0 || stats_on.carried_releases > 0;
            if engaged {
                assert!(
                    stats_on.peak_bytes_live < stats_off.peak_bytes_live,
                    "{}/{mode:?}: pass engaged ({} merged, {} carried) but peak unchanged ({} B)",
                    case.name,
                    stats_on.blocks_merged,
                    stats_on.carried_releases,
                    stats_off.peak_bytes_live
                );
            }
            if stats_on.carried_releases > 0 {
                assert!(
                    stats_on.color_slab_hits > 0,
                    "{}/{mode:?}: carried releases never recycled through the slab",
                    case.name
                );
            }
            for stats in [&stats_greedy, &stats_on] {
                assert!(
                    stats.diagnostics.is_empty(),
                    "{}/{mode:?}: sanitizer findings under merging: {:?}",
                    case.name,
                    stats.diagnostics
                );
            }
            if mode == Mode::Memory {
                println!(
                    "{:>14}: merged {} blocks, {} carried releases, peak {} -> {} (greedy) -> {} B",
                    case.name,
                    stats_on.blocks_merged,
                    stats_on.carried_releases,
                    stats_off.peak_bytes_live,
                    stats_greedy.peak_bytes_live,
                    stats_on.peak_bytes_live
                );
                if engaged {
                    fired.push(case.name.clone());
                }
            }
        }
    }
    assert!(
        fired.len() >= 5,
        "merge pass engaged on only {} of 7 workloads: {fired:?}",
        fired.len()
    );
}
