//! Integration: the figure artifacts regenerate and contain what the
//! paper's figures show.

use arraymem_bench::figures;

/// Count marker characters on the grid lines only (lines made purely of
/// grid glyphs), skipping the prose header.
fn grid_count(s: &str, ch: char) -> i64 {
    s.lines()
        .filter(|l| !l.is_empty() && l.chars().all(|c| ".WvhGBYRTM".contains(c)))
        .flat_map(|l| l.chars())
        .filter(|&x| x == ch)
        .count() as i64
}

#[test]
fn fig2_pattern_counts_match_the_lmads() {
    // On anti-diagonal d of a q·b+1 matrix: (d+1)·b² written cells,
    // (d+1)·(b+1) vertical reads, (d+1)·b horizontal reads.
    let (q, b, d) = (4i64, 3i64, 2i64);
    let s = figures::fig2_nw_pattern(q, b, d);
    assert_eq!(grid_count(&s, 'W'), (d + 1) * b * b);
    // The union of read bars: (2b+1) cells per block, minus the d cells
    // where adjacent blocks' bars touch.
    assert_eq!(
        grid_count(&s, 'v') + grid_count(&s, 'h'),
        (d + 1) * (2 * b + 1) - d
    );
    let _ = q;
}

#[test]
fn fig3_chain_reproduces_the_paper() {
    let s = figures::fig3_chain();
    // The intermediate index functions of the figure.
    assert!(s.contains("flat offset 59"), "{s}");
}

#[test]
fn fig9_nw_proof_goes_through() {
    let s = figures::fig9_proof();
    assert!(s.contains("VERDICT: disjoint = true"), "{s}");
    // The derivation uses the splitting heuristic, as in the paper.
    assert!(s.contains("splitting"), "{s}");
}

#[test]
fn fig10_block_counts() {
    let s = figures::fig10_patterns();
    // LUD at k=1, q=4, b=2: 1 green block, 2 blue, 2 yellow, 4 red
    // (each b² = 4 cells). Count only the LUD half of the figure ('B' also
    // appears in the Hotspot rendering below it).
    let lud = s.split("Fig. 10b").next().unwrap();
    assert_eq!(grid_count(lud, 'G'), 4);
    assert_eq!(grid_count(lud, 'B'), 8);
    assert_eq!(grid_count(lud, 'Y'), 8);
    assert_eq!(grid_count(lud, 'R'), 16);
}

/// The quick table harness runs end to end for every table, and the
/// mechanism rows carry the substrate counters.
#[test]
fn all_tables_quick() {
    for spec in arraymem_bench::all_tables() {
        let out = arraymem_bench::tables::run_table(&spec, arraymem_bench::RunMode::Quick)
            .expect("known benchmark");
        assert!(
            out.contains("Opt. Impact"),
            "table {} malformed",
            spec.number
        );
        assert!(
            out.contains("blocks_reused") && out.contains("pool_dispatches"),
            "table {} lacks substrate mechanism rows",
            spec.number
        );
    }
}
