//! Hotspot: the concat short-circuit (paper §VI-D).
//!
//! The stencil computes boundary rows and the interior separately and
//! concatenates them; short-circuiting constructs all three parts directly
//! in the result grid, turning the concatenation into a no-op — the
//! paper's up-to-2× case.
//!
//! ```sh
//! cargo run --release --example hotspot_stencil
//! ```

use arraymem_workloads::{hotspot, measure_case};

fn main() {
    println!("{}", arraymem_bench::figures::fig10_patterns());

    let case = hotspot::case("512", 512, 16, 3);
    let opt = case.compile(true);
    println!("short-circuiting report (one concat per time step):");
    for c in &opt.report.candidates {
        println!(
            "  part {} -> {}",
            c.root,
            if c.succeeded {
                "built in the result grid"
            } else {
                &c.reason
            }
        );
    }

    let m = measure_case(&case);
    println!(
        "\n512x512 grid, 16 steps:\n\
         reference:     {:8.2?}\n\
         unoptimized:   {:8.2?} ({:.2}x of ref) — copies the whole grid every step\n\
         optimized:     {:8.2?} ({:.2}x of ref)\n\
         impact:        {:.2}x  (paper: 1.78–2.05x)",
        m.reference,
        m.unopt,
        m.unopt_rel(),
        m.opt,
        m.opt_rel(),
        m.impact()
    );
}
