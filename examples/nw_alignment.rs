//! Needleman-Wunsch end to end: the paper's running example.
//!
//! Prints the anti-diagonal access pattern (Fig. 2), the machine-checked
//! non-overlap proof (Fig. 9), and then runs the benchmark, showing the
//! impact of short-circuiting on a real alignment.
//!
//! ```sh
//! cargo run --release --example nw_alignment
//! ```

use arraymem_bench::figures;
use arraymem_workloads::{measure_case, nw};

fn main() {
    println!("{}", figures::fig2_nw_pattern(4, 3, 2));
    println!("{}", figures::fig9_proof());

    println!("Running NW (q=64 blocks of b=16 → n=1025) ...\n");
    let case = nw::case("1024", 64, 16, 3);

    // Show what the optimizer decided.
    let opt = case.compile(true);
    println!("short-circuiting report:");
    for c in &opt.report.candidates {
        println!(
            "  {:?} candidate {} -> {}",
            c.kind,
            c.root,
            if c.succeeded { "elided" } else { &c.reason }
        );
    }
    println!(
        "  mapnests building blocks in place: {}\n",
        opt.report.in_place_maps
    );

    let m = measure_case(&case);
    println!(
        "reference (hand-written sequential): {:8.2?}\n\
         unoptimized Futhark-style:           {:8.2?} ({:.2}x of ref)\n\
         short-circuited:                     {:8.2?} ({:.2}x of ref)\n\
         optimization impact:                 {:.2}x",
        m.reference,
        m.unopt,
        m.unopt_rel(),
        m.opt,
        m.opt_rel(),
        m.impact()
    );
    println!(
        "\nmechanism: unopt copied {} B per run; opt copied {} B (elided {} B)",
        m.unopt_stats.bytes_copied, m.opt_stats.bytes_copied, m.opt_stats.bytes_elided
    );
}
