//! Quickstart: build the paper's Fig. 1 (left) program — add to each
//! diagonal element of a matrix the corresponding element of the first
//! row — compile it with and without array short-circuiting, run both,
//! and watch the update copy disappear.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, InputValue, KernelRegistry, Mode};
use arraymem_ir::{BinOp, Builder, ElemType, ScalarExp, SliceSpec};
use arraymem_lmad::{Dim, Lmad, Transform};
use arraymem_symbolic::{Env, Poly};

fn main() {
    // ---- 1. Build the program with the IR builder.
    let mut b = Builder::new("diag_plus_first_row");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![Poly::var(n) * Poly::var(n)]);
    let mut body = b.block();

    // The diagonal of the flattened n×n matrix, as a generalized LMAD
    // slice: offset 0, n points, stride n+1.
    let diag_lmad = Lmad::new(0, vec![Dim::new(Poly::var(n), Poly::var(n) + Poly::constant(1))]);
    let diag = body.slice("diag", a, Transform::LmadSlice(diag_lmad.clone()));
    let row = body.slice(
        "row",
        a,
        Transform::LmadSlice(Lmad::new(0, vec![Dim::new(Poly::var(n), 1)])),
    );
    // X = map2 (λd r → d + r) diag row
    let x = body.map_lambda("X", Poly::var(n), vec![diag, row], ElemType::F32, |lb, ps| {
        let s = lb.scalar(
            "s",
            ElemType::F32,
            ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
        );
        vec![s]
    });
    // A[diagonal] = X
    let a2 = body.update("A2", a, SliceSpec::Lmad(diag_lmad), x);
    let program = b.finish(body.finish(vec![a2]));

    println!("=== Source program ===");
    println!("{}", arraymem_ir::pretty::program_to_string(&program));

    // ---- 2. Compile twice: without and with short-circuiting.
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let unopt = compile(
        &program,
        &Options { short_circuit: false, env: env.clone(), ..Options::default() },
    )
    .unwrap();
    let opt = compile(
        &program,
        &Options { short_circuit: true, env, ..Options::default() },
    )
    .unwrap();

    println!("=== Short-circuiting report ===");
    for c in &opt.report.candidates {
        println!("  {} -> {} ({})", c.root, if c.succeeded { "SHORT-CIRCUITED" } else { "kept" }, c.reason);
    }

    println!("\n=== Optimized program (X now lives in A's memory) ===");
    println!("{}", arraymem_ir::pretty::program_to_string(&opt.program));

    // ---- 3. Run both and compare.
    let nn = 6usize;
    let data: Vec<f32> = (0..nn * nn).map(|i| i as f32).collect();
    let inputs = vec![InputValue::I64(nn as i64), InputValue::ArrayF32(data)];
    let kernels = KernelRegistry::new();
    let (out_u, stats_u) =
        run_program(&unopt.program, &inputs, &kernels, Mode::Memory, 1).unwrap();
    let (out_o, stats_o) = run_program(&opt.program, &inputs, &kernels, Mode::Memory, 1).unwrap();
    assert_eq!(out_u, out_o, "same results either way");

    println!("=== Execution statistics ===");
    println!("unoptimized: {stats_u}");
    println!("optimized:   {stats_o}");
    println!(
        "\nThe update's {} copied bytes became {} — the map wrote the \
         diagonal of A directly.",
        stats_u.bytes_copied, stats_o.bytes_copied
    );
}
