//! Quickstart: build the paper's Fig. 1 (left) program — add to each
//! diagonal element of a matrix the corresponding element of the first
//! row — compile it with and without array short-circuiting, run both,
//! and watch the update copy disappear.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use arraymem_core::{compile, Options};
use arraymem_exec::{InputValue, KernelRegistry, Mode, Session};
use arraymem_ir::{BinOp, Builder, ElemType, ScalarExp, SliceSpec};
use arraymem_lmad::{Dim, Lmad, Transform};
use arraymem_symbolic::{Env, Poly};

fn main() {
    // ---- 1. Build the program with the IR builder.
    let mut b = Builder::new("diag_plus_first_row");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![Poly::var(n) * Poly::var(n)]);
    let mut body = b.block();

    // The diagonal of the flattened n×n matrix, as a generalized LMAD
    // slice: offset 0, n points, stride n+1.
    let diag_lmad = Lmad::new(
        0,
        vec![Dim::new(Poly::var(n), Poly::var(n) + Poly::constant(1))],
    );
    let diag = body.slice("diag", a, Transform::LmadSlice(diag_lmad.clone()));
    let row = body.slice(
        "row",
        a,
        Transform::LmadSlice(Lmad::new(0, vec![Dim::new(Poly::var(n), 1)])),
    );
    // X = map2 (λd r → d + r) diag row
    let x = body.map_lambda(
        "X",
        Poly::var(n),
        vec![diag, row],
        ElemType::F32,
        |lb, ps| {
            let s = lb.scalar(
                "s",
                ElemType::F32,
                ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
            );
            vec![s]
        },
    );
    // A[diagonal] = X
    let a2 = body.update("A2", a, SliceSpec::Lmad(diag_lmad), x);
    let program = b.finish(body.finish(vec![a2]));

    println!("=== Source program ===");
    println!("{}", arraymem_ir::pretty::program_to_string(&program));

    // ---- 2. Compile twice: without and with short-circuiting.
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let unopt = compile(&program, &Options::default().with_env(env.clone())).unwrap();
    let opt = compile(&program, &Options::optimized().with_env(env)).unwrap();

    println!("=== Short-circuiting report ===");
    for c in &opt.report.candidates {
        println!(
            "  {} -> {} ({})",
            c.root,
            if c.succeeded {
                "SHORT-CIRCUITED"
            } else {
                "kept"
            },
            c.reason
        );
    }

    println!("\n=== Optimized program (X now lives in A's memory) ===");
    println!("{}", arraymem_ir::pretty::program_to_string(&opt.program));

    // ---- 3. Prepare (lower to an executable plan) and run both.
    // `Session::prepare` flattens the program into a linear instruction
    // stream once; repeated runs replay the cached plan and recycle the
    // previous run's memory blocks.
    let nn = 6usize;
    let data: Vec<f32> = (0..nn * nn).map(|i| i as f32).collect();
    let inputs = vec![InputValue::I64(nn as i64), InputValue::ArrayF32(data)];
    let kernels = KernelRegistry::new();
    let mut session = Session::new();
    let hu = session.prepare(&unopt.program, &kernels).unwrap();
    let ho = session.prepare(&opt.program, &kernels).unwrap();
    let (out_u, stats_u) = session
        .run_plan(hu, &inputs, &kernels, Mode::Memory, 1)
        .unwrap();
    let (out_o, stats_o) = session
        .run_plan(ho, &inputs, &kernels, Mode::Memory, 1)
        .unwrap();
    assert_eq!(out_u, out_o, "same results either way");
    // A second prepare of the same program is a cache hit — no re-lowering.
    assert_eq!(session.prepare(&opt.program, &kernels).unwrap(), ho);
    assert_eq!(session.plan_stats().cache_hits, 1);

    println!("=== Execution statistics ===");
    println!("unoptimized: {stats_u}");
    println!("optimized:   {stats_o}");
    println!(
        "\nThe update's {} copied bytes became {} — the map wrote the \
         diagonal of A directly.",
        stats_u.bytes_copied, stats_o.bytes_copied
    );
}
