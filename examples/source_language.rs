//! The textual source language (paper §III-B: LMAD slicing "allows a
//! shorter and nicer notation" at the language level): parse a program,
//! compile it with short-circuiting, and run it.
//!
//! ```sh
//! cargo run --example source_language
//! ```

use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, InputValue, KernelRegistry, Mode};
use arraymem_lang::parse_program;

const SRC: &str = r"
    -- Add the first row of a (flattened) n*n matrix to its diagonal.
    -- The generalized LMAD slices below are exactly the paper's notation.
    assume n >= 1
    fn diag_plus_row(n: i64, A: [n*n]f32) =
      let diag = A[lmad 0 + {(n : n+1)}] in
      let row  = A[lmad 0 + {(n : 1)}] in
      let X    = map (\d r -> d + r) diag row in
      let A2   = A with [lmad 0 + {(n : n+1)}] = X in
      A2
";

fn main() {
    println!("--- source ---\n{SRC}");
    let elab = parse_program(SRC).expect("parse");
    println!("--- elaborated IR ---");
    println!("{}", arraymem_ir::pretty::program_to_string(&elab.program));

    let opt = compile(
        &elab.program,
        &Options::optimized().with_env(elab.env.clone()),
    )
    .expect("compile");
    println!("--- short-circuiting ---");
    for c in &opt.report.candidates {
        println!(
            "  {} -> {}",
            c.root,
            if c.succeeded { "elided" } else { &c.reason }
        );
    }
    // The pipeline's structured remark stream (the `-Rpass` analogue):
    // every stage's decisions, anchored at statements, plus per-stage
    // timings. `ARRAYMEM_PRINT_IR=1` additionally dumps the IR after
    // every stage.
    println!("--- optimization remarks ---");
    for r in &opt.compile_report.remarks {
        println!("  {r}");
    }
    println!("--- pipeline ---");
    for p in &opt.compile_report.passes {
        println!(
            "  {:<13} {:>8.3}ms | stms {:>2} -> {:>2} | remarks {}",
            p.name,
            p.time.as_secs_f64() * 1e3,
            p.before.stms,
            p.after.stms,
            p.remarks
        );
    }

    let n = 4usize;
    let data: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let (out, stats) = run_program(
        &opt.program,
        &[InputValue::I64(n as i64), InputValue::ArrayF32(data)],
        &KernelRegistry::new(),
        Mode::Memory,
        1,
    )
    .expect("run");
    println!("--- result ---\n{:?}", out[0]);
    println!("--- stats ---\n{stats}");
}
