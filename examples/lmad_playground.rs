//! LMAD playground: index functions, O(1) layout changes, and the static
//! non-overlap test — the paper's §II and §IV machinery, interactively.
//!
//! ```sh
//! cargo run --example lmad_playground
//! ```

use arraymem_lmad::overlap::non_overlap_traced;
use arraymem_lmad::{Dim, IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{sym, Env, Poly};

fn v(name: &str) -> Poly {
    Poly::var(sym(name))
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

fn main() {
    // ---- The Fig. 3 chain, step by step.
    println!("{}", arraymem_bench::figures::fig3_chain());

    // ---- Symbolic layouts: a transposed slice of an n×m matrix.
    let a = IndexFn::row_major(&[v("n"), v("m")]);
    println!("A : [n][m]            ixfn {a:?}");
    let t = a.transform(&Transform::Permute(vec![1, 0])).unwrap();
    println!("transpose A           ixfn {t:?}");
    let s = t
        .transform(&Transform::Slice(vec![
            TripletSlice::range(c(1), v("m") - c(2), c(1)),
            TripletSlice::full(v("n")),
        ]))
        .unwrap();
    println!("(transpose A)[1:m-1]  ixfn {s:?}");
    println!("  (all O(1): no elements moved)\n");

    // ---- The aggregation example of §II-B.
    let mut env = Env::new();
    for (name, lo) in [("m", 1), ("n", 1), ("k", 1), ("i", 0), ("j", 0)] {
        env.assume_ge(sym(name), lo);
    }
    let w_ij = Lmad::new(v("t") + v("i") * v("m") + v("j") * v("k"), vec![]);
    let w_i = arraymem_lmad::aggregate::aggregate(&w_ij, sym("j"), &v("n"), &env).unwrap();
    let w = arraymem_lmad::aggregate::aggregate(&w_i, sym("i"), &v("m"), &env).unwrap();
    println!("aggregating A[t + i*m + j*k] over j<n then i<m:");
    println!("  W_ij = {w_ij:?}");
    println!("  W_i  = {w_i:?}");
    println!("  W    = {w:?}\n");

    // ---- Non-overlap: evens vs odds.
    let evens = Lmad::new(c(0), vec![Dim::new(v("n"), c(2))]);
    let odds = Lmad::new(c(1), vec![Dim::new(v("n"), c(2))]);
    let proof = non_overlap_traced(&evens, &odds, &env);
    println!("evens ∩ odds = ∅?  {}", proof.disjoint);
    for line in &proof.trace {
        println!("  {line}");
    }
    println!();

    // ---- And the paper's flagship: the NW proof.
    println!("{}", arraymem_bench::figures::fig9_proof());
}
