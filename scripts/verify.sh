#!/usr/bin/env sh
# Tier-1 verification gate, runnable on an air-gapped machine.
#
# The workspace has no external dependencies, so everything below works
# with an empty cargo registry (--offline). Run from the repo root:
#
#   scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== format (rustfmt, check only) =="
cargo fmt --check

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== lint (clippy, warnings are errors) =="
cargo clippy --offline --all-targets -- -D warnings

echo "== tests (offline) =="
cargo test --release --offline --workspace -q

echo "== smoke tables (tiny datasets, one measured run each) =="
cargo run --release --offline -p arraymem-bench --bin tables -- --smoke

echo "== checked tier (shadow-memory sanitizer over all workloads) =="
# Exit 1 on any sanitizer finding: uninitialized read of a recycled
# block, use-after-release, map race, or a short-circuit whose concrete
# footprints overlap.
cargo run --release --offline -p arraymem-bench --bin tables -- --smoke --check

echo "== checked fuzz smoke (500 random programs under the sanitizer) =="
cargo test --release --offline -p arraymem-bench --test differential_fuzz -q

echo "== corpus tier (committed fuzz corpus: all modes, 1 and 8 workers) =="
# Every committed seed replays through pure, unoptimized, optimized,
# checked (shared session, silent sanitizer) and a 1/8-worker sweep;
# every committed regression must keep firing the structured rejection
# named in its `note: expects=...` header.
cargo test --release --offline -p arraymem-bench --test differential_fuzz -q corpus_

echo "== merge tier (block merging: workload peaks + on/off toggle fuzz) =="
# Every workload runs merge-off, greedy merge, and merge-with-coloring
# through one session with bit-identical outputs and a strictly lower
# peak wherever the pass engaged; the differential fuzzer then toggles
# the pass per random program.
cargo test --release --offline -p arraymem-bench --test merge_workloads -q
cargo test --release --offline -p arraymem-bench --test differential_fuzz -q merge_toggle_equivalence

echo "== coloring tier (whole-program coloring on/off, 1 and 8 workers) =="
# ARRAYMEM_COLORING=0 holds Options::optimized() to the legacy greedy
# pairwise merge; the default is whole-program coloring with per-color
# arena slabs. The full suite must pass in both positions of the toggle
# at both schedule widths — outputs may never depend on either knob.
ARRAYMEM_COLORING=0 ARRAYMEM_THREADS=1 cargo test --release --offline --workspace -q
ARRAYMEM_COLORING=0 ARRAYMEM_THREADS=8 cargo test --release --offline --workspace -q
ARRAYMEM_THREADS=1 cargo test --release --offline -p arraymem-bench --test merge_workloads -q
ARRAYMEM_THREADS=8 cargo test --release --offline -p arraymem-bench --test merge_workloads -q

echo "== threads tier (suite at 1 worker and at 8 workers) =="
# ARRAYMEM_THREADS pins the worker pool's default width: the whole test
# suite must pass with parallel dispatch disabled (1) and with maps
# oversubscribed onto 8 workers — proven-parallel maps must be
# bit-identical either way (the par_safety/differential suites assert
# this explicitly, but every other test also runs under both schedules).
ARRAYMEM_THREADS=1 cargo test --release --offline --workspace -q
ARRAYMEM_THREADS=8 cargo test --release --offline --workspace -q

echo "== server tier (multi-tenant concurrency under an 8-wide pool) =="
# Single-flight stampede coalescing, options-toggle key races,
# cross-tenant arena isolation under the sanitizer, admission-control
# queueing/rejection, and four tenants running distinct workloads
# concurrently through one server.
ARRAYMEM_THREADS=8 cargo test --release --offline -p arraymem-bench --test server -q

echo "== per-pass IR snapshots (NW, interleaved IR validation forced on) =="
# ARRAYMEM_VERIFY_IR re-runs the full structural+memory validator after
# every pipeline stage even in this release build; a violation panics
# naming the offending pass.
ARRAYMEM_VERIFY_IR=1 cargo test --release --offline -p arraymem-bench --test pass_snapshots -q

echo "== verify: OK =="
