#!/usr/bin/env sh
# Tier-1 verification gate, runnable on an air-gapped machine.
#
# The workspace has no external dependencies, so everything below works
# with an empty cargo registry (--offline). Run from the repo root:
#
#   scripts/verify.sh
set -eu

cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== tests (offline) =="
cargo test --release --offline --workspace -q

echo "== smoke tables (tiny datasets, one measured run each) =="
cargo run --release --offline -p arraymem-bench --bin tables -- --smoke

echo "== verify: OK =="
