//! A convenience builder for constructing IR programs in tests, examples
//! and the benchmark workloads.

use crate::exp::*;
use crate::types::{ElemType, Type};
use arraymem_lmad::{Lmad, Transform};
use arraymem_symbolic::{Poly, Sym};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

#[derive(Default)]
struct Ctx {
    types: HashMap<Var, Type>,
}

/// Builds a [`Program`]: declares parameters, hands out [`BlockBuilder`]s,
/// and tracks variable types so helpers can infer result types.
pub struct Builder {
    ctx: Rc<RefCell<Ctx>>,
    name: String,
    params: Vec<(Var, Type)>,
}

impl Builder {
    pub fn new(name: &str) -> Builder {
        Builder {
            ctx: Rc::new(RefCell::new(Ctx::default())),
            name: name.to_string(),
            params: Vec::new(),
        }
    }

    fn register(&self, v: Var, ty: Type) {
        self.ctx.borrow_mut().types.insert(v, ty);
    }

    /// Declare a scalar parameter. `i64` parameters may appear in symbolic
    /// sizes (as their `Sym`).
    pub fn scalar_param(&mut self, name: &str, elem: ElemType) -> Var {
        let v = Sym::fresh(name);
        self.register(v, Type::Scalar(elem));
        self.params.push((v, Type::Scalar(elem)));
        v
    }

    /// Declare an array parameter.
    pub fn array_param(&mut self, name: &str, elem: ElemType, shape: Vec<Poly>) -> Var {
        let v = Sym::fresh(name);
        let ty = Type::array(elem, shape);
        self.register(v, ty.clone());
        self.params.push((v, ty));
        v
    }

    /// A new block builder sharing this builder's type context.
    pub fn block(&self) -> BlockBuilder {
        BlockBuilder {
            ctx: Rc::clone(&self.ctx),
            stms: Vec::new(),
        }
    }

    /// The type of a declared variable.
    pub fn ty(&self, v: Var) -> Type {
        self.ctx.borrow().types[&v].clone()
    }

    pub fn finish(self, body: Block) -> Program {
        Program {
            name: self.name,
            params: self.params,
            body,
            pipeline_fingerprint: 0,
        }
    }
}

/// Builds one [`Block`]; nested blocks (loop/if/lambda bodies) come from
/// [`Builder::block`] and are finished independently.
pub struct BlockBuilder {
    ctx: Rc<RefCell<Ctx>>,
    stms: Vec<Stm>,
}

impl BlockBuilder {
    fn fresh(&self, name: &str, ty: Type) -> Var {
        let v = Sym::fresh(name);
        self.ctx.borrow_mut().types.insert(v, ty);
        v
    }

    /// The type of a variable (parameter or already bound).
    pub fn ty(&self, v: Var) -> Type {
        self.ctx.borrow().types[&v].clone()
    }

    fn shape(&self, v: Var) -> Vec<Poly> {
        self.ty(v).shape().to_vec()
    }

    /// Bind `exp` to a fresh variable of type `ty`.
    pub fn bind(&mut self, name: &str, ty: Type, exp: Exp) -> Var {
        let v = self.fresh(name, ty.clone());
        self.stms.push(Stm {
            pat: vec![PatElem::new(v, ty)],
            exp,
        });
        v
    }

    /// Bind `exp` to several fresh variables (multi-result expressions).
    pub fn bind_multi(&mut self, pats: Vec<(&str, Type)>, exp: Exp) -> Vec<Var> {
        let pes: Vec<PatElem> = pats
            .into_iter()
            .map(|(n, ty)| {
                let v = self.fresh(n, ty.clone());
                PatElem::new(v, ty)
            })
            .collect();
        let vars = pes.iter().map(|p| p.var).collect();
        self.stms.push(Stm { pat: pes, exp });
        vars
    }

    /// Declare a loop merge parameter (same type as its initializer).
    pub fn loop_param(&self, name: &str, init: Var) -> Var {
        self.fresh(name, self.ty(init))
    }

    /// Declare a loop index variable.
    pub fn loop_index(&self, name: &str) -> Var {
        self.fresh(name, Type::Scalar(ElemType::I64))
    }

    /// Declare a lambda parameter of the given type.
    pub fn lambda_param(&self, name: &str, ty: Type) -> Var {
        self.fresh(name, ty)
    }

    pub fn iota(&mut self, name: &str, n: impl Into<Poly>) -> Var {
        let n = n.into();
        self.bind(
            name,
            Type::array(ElemType::I64, vec![n.clone()]),
            Exp::Iota(n),
        )
    }

    pub fn scratch(&mut self, name: &str, elem: ElemType, shape: Vec<Poly>) -> Var {
        self.bind(
            name,
            Type::array(elem, shape.clone()),
            Exp::Scratch { elem, shape },
        )
    }

    pub fn replicate(&mut self, name: &str, shape: Vec<Poly>, value: ScalarExp) -> Var {
        let elem = match &value {
            ScalarExp::Const(c) => c.elem_type(),
            _ => ElemType::F32,
        };
        self.bind(
            name,
            Type::array(elem, shape.clone()),
            Exp::Replicate { shape, value },
        )
    }

    pub fn replicate_typed(
        &mut self,
        name: &str,
        elem: ElemType,
        shape: Vec<Poly>,
        value: ScalarExp,
    ) -> Var {
        self.bind(
            name,
            Type::array(elem, shape.clone()),
            Exp::Replicate { shape, value },
        )
    }

    pub fn copy(&mut self, name: &str, src: Var) -> Var {
        self.bind(name, self.ty(src), Exp::Copy(src))
    }

    pub fn concat(&mut self, name: &str, args: Vec<Var>) -> Var {
        assert!(!args.is_empty());
        let t0 = self.ty(args[0]);
        let mut outer = Poly::zero();
        for &a in &args {
            outer = outer + self.shape(a)[0].clone();
        }
        let mut shape = t0.shape().to_vec();
        shape[0] = outer;
        let elided = vec![false; args.len()];
        self.bind(
            name,
            Type::array(t0.elem().unwrap(), shape),
            Exp::Concat { args, elided },
        )
    }

    pub fn transform(&mut self, name: &str, src: Var, tr: Transform) -> Var {
        let t = self.ty(src);
        let shape = tr.result_shape(t.shape());
        self.bind(
            name,
            Type::array(t.elem().unwrap(), shape),
            Exp::Transform { src, tr },
        )
    }

    /// Read-slice sugar: `let x = a[slice]` as a transform.
    pub fn slice(&mut self, name: &str, src: Var, tr: Transform) -> Var {
        self.transform(name, src, tr)
    }

    /// A kernel map: `width` parallel iterations each producing a row of
    /// shape `row_shape` (empty = scalar element) of type `elem`.
    #[allow(clippy::too_many_arguments)]
    pub fn map_kernel(
        &mut self,
        name: &str,
        kernel: &str,
        width: impl Into<Poly>,
        row_shape: Vec<Poly>,
        elem: ElemType,
        inputs: Vec<Var>,
        args: Vec<ScalarExp>,
    ) -> Var {
        self.map_kernel_acc(name, kernel, width, row_shape, elem, inputs, args, vec![])
    }

    /// As [`Self::map_kernel`], declaring some inputs (by index) as read
    /// arbitrarily rather than row-wise.
    #[allow(clippy::too_many_arguments)]
    pub fn map_kernel_acc(
        &mut self,
        name: &str,
        kernel: &str,
        width: impl Into<Poly>,
        row_shape: Vec<Poly>,
        elem: ElemType,
        inputs: Vec<Var>,
        args: Vec<ScalarExp>,
        whole_inputs: Vec<usize>,
    ) -> Var {
        let width = width.into();
        let mut shape = vec![width.clone()];
        shape.extend(row_shape.iter().cloned());
        self.bind(
            name,
            Type::array(elem, shape),
            Exp::Map(MapExp {
                width,
                inputs,
                body: MapBody::Kernel {
                    name: kernel.to_string(),
                    elem,
                    row_shape,
                    args,
                    whole_inputs,
                },
                in_place_result: false,
            }),
        )
    }

    /// An interpreted elementwise map over rank-1 inputs. `f` receives a
    /// body builder and the parameter variables and returns the body's
    /// result variables (one per output).
    pub fn map_lambda<F>(
        &mut self,
        name: &str,
        width: impl Into<Poly>,
        inputs: Vec<Var>,
        out_elem: ElemType,
        f: F,
    ) -> Var
    where
        F: FnOnce(&mut BlockBuilder, &[Var]) -> Vec<Var>,
    {
        let width = width.into();
        let params: Vec<(Var, Type)> = inputs
            .iter()
            .map(|&v| {
                let el = self.ty(v).elem().unwrap();
                (self.lambda_param("p", Type::Scalar(el)), Type::Scalar(el))
            })
            .collect();
        let mut body_b = BlockBuilder {
            ctx: Rc::clone(&self.ctx),
            stms: Vec::new(),
        };
        let pvars: Vec<Var> = params.iter().map(|(v, _)| *v).collect();
        let result = f(&mut body_b, &pvars);
        let body = body_b.finish(result);
        self.bind(
            name,
            Type::array(out_elem, vec![width.clone()]),
            Exp::Map(MapExp {
                width,
                inputs,
                body: MapBody::Lambda { params, body },
                in_place_result: false,
            }),
        )
    }

    /// `let g = gather src [idx]` — a fresh rank-1 array with
    /// `g[i] = src[idx[i]]`. `idx` must be a rank-1 `i64` array; its
    /// length is the result's length.
    pub fn gather(&mut self, name: &str, src: Var, idx: Var) -> Var {
        let elem = self.ty(src).elem().unwrap();
        let len = self.shape(idx)[0].clone();
        self.bind(name, Type::array(elem, vec![len]), Exp::Gather { src, idx })
    }

    /// `let dst' = dst with [scatter idx] = src` —
    /// `dst[idx[k]] = src[k]` for `k` ascending. `dst`, `idx` and `src`
    /// must all be rank-1; `idx` and `src` have one length.
    pub fn scatter(&mut self, name: &str, dst: Var, idx: Var, src: Var) -> Var {
        self.update(name, dst, SliceSpec::Scatter(idx), src)
    }

    /// `let dst' = dst with [slice] = src`.
    pub fn update(&mut self, name: &str, dst: Var, slice: SliceSpec, src: Var) -> Var {
        self.bind(
            name,
            self.ty(dst),
            Exp::Update {
                dst,
                slice,
                src: UpdateSrc::Array(src),
                elided: false,
            },
        )
    }

    /// `let dst' = dst with [point] = scalar`.
    pub fn update_scalar(
        &mut self,
        name: &str,
        dst: Var,
        point: Vec<ScalarExp>,
        value: ScalarExp,
    ) -> Var {
        self.bind(
            name,
            self.ty(dst),
            Exp::Update {
                dst,
                slice: SliceSpec::Point(point),
                src: UpdateSrc::Scalar(value),
                elided: false,
            },
        )
    }

    /// Update at an LMAD slice.
    pub fn update_lmad(&mut self, name: &str, dst: Var, slice: Lmad, src: Var) -> Var {
        self.update(name, dst, SliceSpec::Lmad(slice), src)
    }

    pub fn scalar(&mut self, name: &str, elem: ElemType, exp: ScalarExp) -> Var {
        self.bind(name, Type::Scalar(elem), Exp::Scalar(exp))
    }

    /// Bind a loop: `params` were created with [`Self::loop_param`], the
    /// body with a separate block builder.
    pub fn loop_(
        &mut self,
        names: Vec<&str>,
        params: Vec<(Var, Type)>,
        inits: Vec<Var>,
        index: Var,
        count: impl Into<Poly>,
        body: Block,
    ) -> Vec<Var> {
        let tys: Vec<Type> = params.iter().map(|(_, t)| t.clone()).collect();
        let params = params
            .into_iter()
            .map(|(v, ty)| PatElem::new(v, ty))
            .collect();
        self.bind_multi(
            names.into_iter().zip(tys).collect(),
            Exp::Loop {
                params,
                inits,
                index,
                count: count.into(),
                body,
            },
        )
    }

    /// Bind an if-expression.
    pub fn if_(
        &mut self,
        names: Vec<&str>,
        tys: Vec<Type>,
        cond: ScalarExp,
        then_b: Block,
        else_b: Block,
    ) -> Vec<Var> {
        self.bind_multi(
            names.into_iter().zip(tys).collect(),
            Exp::If {
                cond,
                then_b,
                else_b,
            },
        )
    }

    pub fn finish(self, result: Vec<Var>) -> Block {
        Block {
            stms: self.stms,
            result,
        }
    }
}
