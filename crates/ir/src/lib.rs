//! The functional array IR (paper §II-C).
//!
//! A standard first-order functional language where parallelism is
//! expressed with `map` (generalized to kernels computing array rows),
//! plus:
//!
//! - creation of *fresh* arrays: `iota`, `scratch`, `replicate`, `copy`,
//!   `concat`, `map`;
//! - "free" index-space transformations: `reshape`, `transpose` (any
//!   permutation), slicing in triplet or LMAD notation, `reverse`;
//! - sequential `loop`s and `if`s that may return arrays;
//! - in-place slice **updates** `let A[W] = X`, whose copy the
//!   short-circuiting optimization (crate `arraymem-core`) elides.
//!
//! Memory is *not* part of the language semantics: every statement pattern
//! carries an optional [`MemBinding`] annotation which is `None` until the
//! memory-introduction pass runs, and which can be deleted without changing
//! program meaning (paper §I: memory information is an operational
//! "add-on").

pub mod alias;
pub mod builder;
pub mod exp;
pub mod lastuse;
pub mod pretty;
pub mod types;
pub mod validate;

pub use builder::Builder;
pub use exp::{
    Block, Exp, MapBody, MapExp, MemBinding, PatElem, Program, ScalarExp, SliceSpec, Stm,
    UpdateSrc, Var,
};
pub use exp::{BinOp, UnOp};
pub use types::{Constant, ElemType, Type};

#[cfg(test)]
mod tests;
