//! The functional array IR (paper §II-C).
//!
//! A standard first-order functional language where parallelism is
//! expressed with `map` (generalized to kernels computing array rows),
//! plus:
//!
//! - creation of *fresh* arrays: `iota`, `scratch`, `replicate`, `copy`,
//!   `concat`, `map`;
//! - "free" index-space transformations: `reshape`, `transpose` (any
//!   permutation), slicing in triplet or LMAD notation, `reverse`;
//! - sequential `loop`s and `if`s that may return arrays;
//! - in-place slice **updates** `let A[W] = X`, whose copy the
//!   short-circuiting optimization (crate `arraymem-core`) elides.
//!
//! Memory is *not* part of the language semantics: every statement pattern
//! carries an optional [`MemBinding`] annotation which is `None` until the
//! memory-introduction pass runs, and which can be deleted without changing
//! program meaning (paper §I: memory information is an operational
//! "add-on").

pub mod alias;
pub mod builder;
pub mod exp;
pub mod lastuse;
pub mod pretty;
pub mod types;
pub mod validate;

pub use builder::Builder;
pub use exp::{BinOp, UnOp};
pub use exp::{
    Block, Exp, MapBody, MapExp, MemBinding, PatElem, Program, ScalarExp, SliceSpec, Stm,
    UpdateSrc, Var,
};
pub use types::{Constant, ElemType, Type};

/// The memory block variable synthesized for an array *parameter*:
/// parameters arrive in caller-provided row-major blocks named
/// `<param>_mem`. This is the one canonical definition — the memory
/// passes (`arraymem-core`), the validator and the executor's lowerer
/// must all agree on it, or parameter memory would silently split into
/// distinct blocks across layers.
pub fn param_block_sym(param: Var) -> Var {
    arraymem_symbolic::sym(&format!("{param}_mem"))
}

#[cfg(test)]
mod tests;
