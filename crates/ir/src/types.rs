//! Scalar and array types.

use arraymem_symbolic::Poly;

/// Primitive element types. The benchmarks use `F32` and `I64`; `F64` and
/// `Bool` round out scalar computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ElemType {
    F32,
    F64,
    I64,
    Bool,
}

impl ElemType {
    /// Storage size of one element in the runtime. Booleans are stored as
    /// 64-bit words so the VM's integer accessors apply uniformly.
    pub fn size_bytes(self) -> usize {
        match self {
            ElemType::F32 => 4,
            ElemType::F64 | ElemType::I64 | ElemType::Bool => 8,
        }
    }
}

impl std::fmt::Display for ElemType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElemType::F32 => "f32",
            ElemType::F64 => "f64",
            ElemType::I64 => "i64",
            ElemType::Bool => "bool",
        };
        write!(f, "{s}")
    }
}

/// The type of a binding: a scalar, an array with a symbolic shape, or a
/// memory block (memory blocks appear only after memory introduction).
#[derive(Clone, PartialEq, Debug)]
pub enum Type {
    Scalar(ElemType),
    Array { elem: ElemType, shape: Vec<Poly> },
    Mem,
}

impl Type {
    pub fn array(elem: ElemType, shape: Vec<Poly>) -> Type {
        Type::Array { elem, shape }
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array { .. })
    }

    pub fn elem(&self) -> Option<ElemType> {
        match self {
            Type::Scalar(e) | Type::Array { elem: e, .. } => Some(*e),
            Type::Mem => None,
        }
    }

    pub fn shape(&self) -> &[Poly] {
        match self {
            Type::Array { shape, .. } => shape,
            _ => &[],
        }
    }

    pub fn rank(&self) -> usize {
        self.shape().len()
    }

    /// Total number of elements (product of the shape).
    pub fn num_elems(&self) -> Poly {
        self.shape()
            .iter()
            .fold(Poly::constant(1), |a, d| a * d.clone())
    }
}

/// Scalar constants.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Constant {
    F32(f32),
    F64(f64),
    I64(i64),
    Bool(bool),
}

impl Constant {
    pub fn elem_type(&self) -> ElemType {
        match self {
            Constant::F32(_) => ElemType::F32,
            Constant::F64(_) => ElemType::F64,
            Constant::I64(_) => ElemType::I64,
            Constant::Bool(_) => ElemType::Bool,
        }
    }
}

impl std::fmt::Display for Constant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Constant::F32(x) => write!(f, "{x}f32"),
            Constant::F64(x) => write!(f, "{x}f64"),
            Constant::I64(x) => write!(f, "{x}i64"),
            Constant::Bool(x) => write!(f, "{x}"),
        }
    }
}
