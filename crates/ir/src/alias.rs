//! Alias analysis: which array variables may share memory.
//!
//! Change-of-layout transforms alias their source; `if`/`loop` results
//! alias the arrays flowing through them; updates alias (and consume)
//! their destination. Fresh-array constructors (`iota`, `scratch`,
//! `replicate`, `copy`, `concat`, `map`) alias nothing.

use crate::exp::{Block, Exp, Program, Var};
use std::collections::HashMap;

/// Union-find over variables; `root(v)` identifies v's alias class.
#[derive(Clone, Default, Debug)]
pub struct AliasMap {
    parent: HashMap<Var, Var>,
}

impl AliasMap {
    pub fn root(&self, v: Var) -> Var {
        let mut cur = v;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            cur = p;
        }
        cur
    }

    fn union(&mut self, a: Var, b: Var) {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    pub fn same_class(&self, a: Var, b: Var) -> bool {
        self.root(a) == self.root(b)
    }

    /// All variables known to this map that share `v`'s class (including
    /// `v` itself).
    pub fn class_members(&self, v: Var) -> Vec<Var> {
        let r = self.root(v);
        let mut out: Vec<Var> = self
            .parent
            .keys()
            .copied()
            .filter(|&k| self.root(k) == r)
            .collect();
        if !out.contains(&v) {
            out.push(v);
        }
        out
    }
}

/// Compute the alias classes of a program.
pub fn aliases(prog: &Program) -> AliasMap {
    let mut am = AliasMap::default();
    // Seed every parameter and pattern variable as its own class.
    for (v, _) in &prog.params {
        am.parent.insert(*v, *v);
    }
    walk_block(&prog.body, &mut am);
    am
}

fn walk_block(block: &Block, am: &mut AliasMap) {
    for stm in &block.stms {
        for pe in &stm.pat {
            am.parent.entry(pe.var).or_insert(pe.var);
        }
        match &stm.exp {
            Exp::Transform { src, .. } => {
                am.union(stm.pat[0].var, *src);
            }
            Exp::Update { dst, .. } => {
                am.union(stm.pat[0].var, *dst);
            }
            Exp::If { then_b, else_b, .. } => {
                walk_block(then_b, am);
                walk_block(else_b, am);
                for (pe, (t, e)) in stm.pat.iter().zip(then_b.result.iter().zip(&else_b.result)) {
                    if pe.ty.is_array() {
                        am.union(pe.var, *t);
                        am.union(pe.var, *e);
                    }
                }
            }
            Exp::Loop {
                params,
                inits,
                body,
                ..
            } => {
                for (pp, init) in params.iter().zip(inits) {
                    am.parent.entry(pp.var).or_insert(pp.var);
                    if pp.ty.is_array() {
                        am.union(pp.var, *init);
                    }
                }
                walk_block(body, am);
                for (pp, r) in params.iter().zip(&body.result) {
                    if pp.ty.is_array() {
                        am.union(pp.var, *r);
                    }
                }
                for (pe, pp) in stm.pat.iter().zip(params) {
                    if pe.ty.is_array() {
                        am.union(pe.var, pp.var);
                    }
                }
            }
            Exp::Map(m) => {
                if let crate::exp::MapBody::Lambda { body, .. } = &m.body {
                    walk_block(body, am);
                }
            }
            _ => {}
        }
    }
}
