//! Pretty-printing of IR programs, in a notation close to the paper's:
//! `let (x : [n][m]f32 @ xmem → 0 + {(n:m),(m:1)}) = ...`.

use crate::exp::*;
use crate::types::Type;
use std::fmt::Write;

pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    write!(s, "fn {}(", p.name).unwrap();
    for (i, (v, t)) in p.params.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "{v} : {}", type_str(t)).unwrap();
    }
    s.push_str(") =\n");
    block_to_string(&p.body, 1, &mut s);
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

pub fn block_to_string(b: &Block, level: usize, s: &mut String) {
    for stm in &b.stms {
        indent(s, level);
        s.push_str("let (");
        for (i, pe) in stm.pat.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            write!(s, "{} : {}", pe.var, type_str(&pe.ty)).unwrap();
            if let Some(mb) = &pe.mem {
                write!(s, " @ {} → {:?}", mb.block, mb.ixfn).unwrap();
            }
        }
        s.push_str(") = ");
        exp_to_string(&stm.exp, level, s);
        s.push('\n');
    }
    indent(s, level);
    s.push_str("in (");
    for (i, v) in b.result.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        write!(s, "{v}").unwrap();
    }
    s.push_str(")\n");
}

fn type_str(t: &Type) -> String {
    match t {
        Type::Scalar(e) => format!("{e}"),
        Type::Array { elem, shape } => {
            let dims: String = shape.iter().map(|d| format!("[{d:?}]")).collect();
            format!("{dims}{elem}")
        }
        Type::Mem => "mem".into(),
    }
}

fn exp_to_string(e: &Exp, level: usize, s: &mut String) {
    match e {
        Exp::Scalar(se) => write!(s, "{}", scalar_str(se)).unwrap(),
        Exp::Alloc { elem, size } => write!(s, "alloc {size:?} × {elem}").unwrap(),
        Exp::Iota(n) => write!(s, "iota {n:?}").unwrap(),
        Exp::Scratch { elem, shape } => {
            write!(s, "scratch {elem}").unwrap();
            for d in shape {
                write!(s, " [{d:?}]").unwrap();
            }
        }
        Exp::Replicate { shape, value } => {
            write!(s, "replicate").unwrap();
            for d in shape {
                write!(s, " [{d:?}]").unwrap();
            }
            write!(s, " {}", scalar_str(value)).unwrap();
        }
        Exp::Copy(v) => write!(s, "copy {v}").unwrap(),
        Exp::Concat { args, elided } => {
            write!(s, "concat").unwrap();
            for (a, e) in args.iter().zip(elided) {
                write!(s, " {a}{}", if *e { "·elided" } else { "" }).unwrap();
            }
        }
        Exp::Transform { src, tr } => write!(s, "{tr:?} {src}").unwrap(),
        Exp::Gather { src, idx } => write!(s, "gather {src} [{idx}]").unwrap(),
        Exp::Map(m) => {
            let ip = if m.in_place_result { " (in-place)" } else { "" };
            match &m.body {
                MapBody::Lambda { params, body } => {
                    write!(s, "map{ip} ({:?} < {:?}) λ", params, m.width).unwrap();
                    let _ = body;
                    write!(s, "...").unwrap();
                }
                MapBody::Kernel { name, .. } => {
                    write!(s, "mapnest{ip} (i < {:?}) kernel {name}(", m.width).unwrap();
                    for (i, v) in m.inputs.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        write!(s, "{v}").unwrap();
                    }
                    s.push(')');
                }
            }
        }
        Exp::Update {
            dst,
            slice,
            src,
            elided,
        } => {
            let e = if *elided { " (elided)" } else { "" };
            write!(s, "{dst} with [{}] = ", slice_str(slice)).unwrap();
            match src {
                UpdateSrc::Array(v) => write!(s, "{v}{e}").unwrap(),
                UpdateSrc::Scalar(se) => write!(s, "{}{e}", scalar_str(se)).unwrap(),
            }
        }
        Exp::If {
            cond,
            then_b,
            else_b,
        } => {
            writeln!(s, "if {}", scalar_str(cond)).unwrap();
            indent(s, level);
            s.push_str("then\n");
            block_to_string(then_b, level + 1, s);
            indent(s, level);
            s.push_str("else\n");
            block_to_string(else_b, level + 1, s);
        }
        Exp::Loop {
            params,
            inits,
            index,
            count,
            body,
        } => {
            s.push_str("loop (");
            for (i, (pp, init)) in params.iter().zip(inits).enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write!(s, "{} = {init}", pp.var).unwrap();
            }
            writeln!(s, ") for {index} < {count:?} do").unwrap();
            block_to_string(body, level + 1, s);
        }
    }
}

fn slice_str(sl: &SliceSpec) -> String {
    match sl {
        SliceSpec::Triplet(ts) => ts
            .iter()
            .map(|t| match t {
                arraymem_lmad::TripletSlice::Range { start, len, step } => {
                    format!("{start:?};{len:?};{step:?}")
                }
                arraymem_lmad::TripletSlice::Fix(i) => format!("{i:?}"),
            })
            .collect::<Vec<_>>()
            .join(", "),
        SliceSpec::Lmad(l) => format!("{l:?}"),
        SliceSpec::Point(es) => es.iter().map(scalar_str).collect::<Vec<_>>().join(", "),
        SliceSpec::Scatter(idx) => format!("scatter {idx}"),
    }
}

/// Strip `#<digits>` freshness suffixes from symbol names, so rendered IR
/// (and anything else that prints symbols) is stable across interner
/// states — test order, process restarts. Golden-snapshot tests diff
/// scrubbed output.
pub fn scrub_uniques(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '#' && chars.peek().is_some_and(|d| d.is_ascii_digit()) {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        } else {
            out.push(c);
        }
    }
    out
}

pub fn scalar_str(e: &ScalarExp) -> String {
    match e {
        ScalarExp::Const(c) => format!("{c}"),
        ScalarExp::Var(v) => format!("{v}"),
        ScalarExp::Size(p) => format!("{p:?}"),
        ScalarExp::Bin(op, a, b) => format!("({} {op:?} {})", scalar_str(a), scalar_str(b)),
        ScalarExp::Un(op, a) => format!("{op:?}({})", scalar_str(a)),
        ScalarExp::Index(v, idx) => {
            let i: Vec<String> = idx.iter().map(scalar_str).collect();
            format!("{v}[{}]", i.join(", "))
        }
        ScalarExp::Select(c, t, f) => format!(
            "({} ? {} : {})",
            scalar_str(c),
            scalar_str(t),
            scalar_str(f)
        ),
    }
}
