use crate::alias::aliases;
use crate::builder::Builder;
use crate::exp::*;
use crate::lastuse::{block_last_uses, used_after};
use crate::types::ElemType;
use crate::validate::{lmad_slice_is_injective, validate};
use arraymem_lmad::{ConcreteLmad, Lmad, Transform, TripletSlice};
use arraymem_symbolic::Poly;
use std::collections::HashSet;

fn p(v: Var) -> Poly {
    Poly::var(v)
}

/// The Fig. 1 (left) program: add to each diagonal element the
/// corresponding element of the first row, via two parallel operations.
pub fn fig1_left_program() -> Program {
    let mut b = Builder::new("diag_plus_first_row");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![p(n) * p(n)]);
    let mut body = b.block();
    // diag = A[0 : n : n+1], row = A[0 : n : 1]
    let diag = body.slice(
        "diag",
        a,
        Transform::LmadSlice(Lmad::new(
            0,
            vec![arraymem_lmad::Dim::new(p(n), p(n) + Poly::constant(1))],
        )),
    );
    let row = body.slice(
        "row",
        a,
        Transform::LmadSlice(Lmad::new(0, vec![arraymem_lmad::Dim::new(p(n), 1)])),
    );
    let x = body.map_lambda("X", p(n), vec![diag, row], ElemType::F32, |lb, ps| {
        let s = lb.scalar(
            "s",
            ElemType::F32,
            ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
        );
        vec![s]
    });
    let a2 = body.update_lmad(
        "A2",
        a,
        Lmad::new(
            0,
            vec![arraymem_lmad::Dim::new(p(n), p(n) + Poly::constant(1))],
        ),
        x,
    );
    let blk = body.finish(vec![a2]);
    b.finish(blk)
}

#[test]
fn fig1_program_validates() {
    let prog = fig1_left_program();
    validate(&prog).unwrap();
    let text = crate::pretty::program_to_string(&prog);
    assert!(text.contains("with ["));
    assert!(text.contains("map"));
}

#[test]
fn validation_catches_undefined_vars() {
    let mut b = Builder::new("bad");
    let n = b.scalar_param("n", ElemType::I64);
    let mut body = b.block();
    let ghost = arraymem_symbolic::Sym::fresh("ghost");
    let x = body.bind(
        "x",
        crate::types::Type::array(ElemType::F32, vec![p(n)]),
        Exp::Copy(ghost),
    );
    let blk = body.finish(vec![x]);
    let prog = b.finish(blk);
    assert!(validate(&prog).is_err());
}

#[test]
fn validation_catches_consumed_reuse() {
    let mut b = Builder::new("consumed");
    let n = b.scalar_param("n", ElemType::I64);
    let a = b.array_param("A", ElemType::F32, vec![p(n)]);
    let mut body = b.block();
    let _a2 = body.update_scalar("A2", a, vec![ScalarExp::i64(0)], ScalarExp::f32(1.0));
    // Illegal: `a` is consumed by the update but copied afterwards.
    let c = body.copy("c", a);
    let blk = body.finish(vec![c]);
    let prog = b.finish(blk);
    assert!(validate(&prog).is_err());
}

#[test]
fn alias_classes_follow_transforms_and_updates() {
    let prog = fig1_left_program();
    let am = aliases(&prog);
    let a = prog.params[1].0;
    // diag and row alias A; X (map result) is fresh; A2 aliases A.
    let diag = prog.body.stms[0].pat[0].var;
    let row = prog.body.stms[1].pat[0].var;
    let x = prog.body.stms[2].pat[0].var;
    let a2 = prog.body.stms[3].pat[0].var;
    assert!(am.same_class(a, diag));
    assert!(am.same_class(a, row));
    assert!(am.same_class(a, a2));
    assert!(!am.same_class(a, x));
}

#[test]
fn last_use_of_map_result_is_the_update() {
    let prog = fig1_left_program();
    let am = aliases(&prog);
    let x = prog.body.stms[2].pat[0].var;
    let lu = block_last_uses(&prog.body, &HashSet::new(), &am);
    // X's class is lastly used at stm 3 (the update).
    assert!(lu[3].contains(&am.root(x)));
    assert!(!used_after(&prog.body, 3, x, &HashSet::new(), &am));
    // A's class escapes via the block result (A2): never lastly-used inside.
    let a = prog.params[1].0;
    assert!(used_after(&prog.body, 2, a, &HashSet::new(), &am));
    assert!(lu.iter().all(|s| !s.contains(&am.root(a))));
}

#[test]
fn loop_aliases_merge_params() {
    let mut b = Builder::new("loop_alias");
    let n = b.scalar_param("n", ElemType::I64);
    let a0 = b.array_param("A0", ElemType::F32, vec![p(n)]);
    let mut body = b.block();
    let param = body.loop_param("A", a0);
    let i = body.loop_index("i");
    let mut lb = b.block();
    let a_next = lb.update_scalar("A'", param, vec![ScalarExp::var(i)], ScalarExp::f32(0.0));
    let loop_body = lb.finish(vec![a_next]);
    let res = body.loop_(
        vec!["Afinal"],
        vec![(param, b.ty(a0))],
        vec![a0],
        i,
        p(n),
        loop_body,
    );
    let blk = body.finish(vec![res[0]]);
    let prog = b.finish(blk);
    validate(&prog).unwrap();
    let am = aliases(&prog);
    assert!(am.same_class(a0, res[0]));
}

#[test]
fn free_vars_capture_nested_blocks() {
    let prog = fig1_left_program();
    // The update's free vars include both A and X.
    let fv = prog.body.stms[3].exp.free_vars();
    let a = prog.params[1].0;
    let x = prog.body.stms[2].pat[0].var;
    assert!(fv.contains(&a));
    assert!(fv.contains(&x));
    // Block free vars = parameters only.
    let bfv = prog.body.free_vars();
    for v in bfv {
        assert!(prog.params.iter().any(|(pv, _)| *pv == v), "{v} leaked");
    }
}

#[test]
fn injectivity_dynamic_check() {
    // Diagonal of a 4x4: offsets 0,5,10,15 — injective.
    let diag = ConcreteLmad {
        offset: 0,
        dims: vec![(4, 5)],
    };
    assert!(lmad_slice_is_injective(&diag));
    // Overlapping: stride 1 with card 4 and stride 2 with card 4.
    let bad = ConcreteLmad {
        offset: 0,
        dims: vec![(4, 2), (4, 1)],
    };
    assert!(!lmad_slice_is_injective(&bad));
    // Zero stride is rejected outright.
    let zero = ConcreteLmad {
        offset: 3,
        dims: vec![(4, 0)],
    };
    assert!(!lmad_slice_is_injective(&zero));
    // Non-obvious but injective (fails the sufficient check, passes the
    // exact fallback): strides 3 and 4 with cards 2 — {0,3,4,7}.
    let odd = ConcreteLmad {
        offset: 0,
        dims: vec![(2, 3), (2, 4)],
    };
    assert!(lmad_slice_is_injective(&odd));
}

#[test]
fn slice_spec_free_vars() {
    let mut out = Vec::new();
    let v = arraymem_symbolic::sym("slice_n");
    SliceSpec::Triplet(vec![TripletSlice::range(
        Poly::var(v),
        Poly::constant(3),
        Poly::constant(1),
    )])
    .free_vars(&mut out);
    assert!(out.contains(&v));
}
