//! Last-use analysis (paper §V, footnote 18): for each statement of a
//! block, which alias classes can no longer be used on any path after it.
//!
//! The analysis is conservative: a use of *any* member of an alias class
//! counts as a use of the class, and nested blocks (loop/if/map bodies)
//! count as uses at their enclosing statement.

use crate::alias::AliasMap;
use crate::exp::{Block, Var};
use std::collections::HashSet;

/// For each statement index in `block`, the set of alias-class roots whose
/// *last* use is that statement. `live_after` holds class roots used after
/// the block (e.g. by an enclosing expression or the caller); those are
/// never reported as lastly-used inside.
pub fn block_last_uses(
    block: &Block,
    live_after: &HashSet<Var>,
    am: &AliasMap,
) -> Vec<HashSet<Var>> {
    let mut live: HashSet<Var> = live_after.clone();
    for v in &block.result {
        live.insert(am.root(*v));
    }
    let mut out: Vec<HashSet<Var>> = vec![HashSet::new(); block.stms.len()];
    for (k, stm) in block.stms.iter().enumerate().rev() {
        let mut used_here: HashSet<Var> = HashSet::new();
        for v in stm.exp.free_vars() {
            used_here.insert(am.root(v));
        }
        for root in used_here {
            if !live.contains(&root) {
                out[k].insert(root);
                live.insert(root);
            }
        }
        // Bindings kill liveness of the classes they *create* fresh, but a
        // class flows through transforms/updates, so only remove a root if
        // this statement's pattern defines it and nothing before can refer
        // to it. Removing is an optimization only; keeping liveness is
        // conservative and sound, so we keep it simple and do not remove.
    }
    out
}

/// True if alias class of `v` is used by any statement at index > `at`, or
/// escapes via the block result / `live_after`.
pub fn used_after(
    block: &Block,
    at: usize,
    v: Var,
    live_after: &HashSet<Var>,
    am: &AliasMap,
) -> bool {
    let root = am.root(v);
    if live_after.contains(&root) {
        return true;
    }
    if block.result.iter().any(|r| am.root(*r) == root) {
        return true;
    }
    block.stms[at + 1..]
        .iter()
        .any(|s| s.exp.free_vars().iter().any(|u| am.root(*u) == root))
}
