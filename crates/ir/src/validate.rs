//! Structural validation of IR programs: pattern arities, scoping, shape
//! agreement where symbolically decidable, and the uniqueness discipline
//! for updates (the "old" array must not be used after an update — §II-C).

use crate::exp::*;
use crate::types::{ElemType, Type};
use arraymem_symbolic::Poly;
use std::collections::{HashMap, HashSet};

/// Validate a program; `Err` carries a description of the first violation.
pub fn validate(prog: &Program) -> Result<(), String> {
    let mut scope: HashSet<Var> = prog.params.iter().map(|(v, _)| *v).collect();
    validate_block(&prog.body, &mut scope)
}

fn validate_block(block: &Block, scope: &mut HashSet<Var>) -> Result<(), String> {
    let mut consumed: HashSet<Var> = HashSet::new();
    for (k, stm) in block.stms.iter().enumerate() {
        for v in stm.exp.free_vars() {
            if !scope.contains(&v) {
                return Err(format!("stm {k}: variable {v} used before definition"));
            }
        }
        // The uniqueness discipline: an updated destination must not be
        // used again under its old name.
        if let Exp::Update { dst, .. } = &stm.exp {
            if consumed.contains(dst) {
                return Err(format!("stm {k}: {dst} updated twice (consumed)"));
            }
            consumed.insert(*dst);
        } else {
            for v in stm.exp.free_vars() {
                if consumed.contains(&v) {
                    return Err(format!("stm {k}: use of consumed array {v}"));
                }
            }
        }
        validate_exp(&stm.exp, &stm.pat, scope, k)?;
        for pe in &stm.pat {
            scope.insert(pe.var);
        }
    }
    for v in &block.result {
        if !scope.contains(v) {
            return Err(format!("block result {v} not in scope"));
        }
        if consumed.contains(v) {
            return Err(format!("block returns consumed array {v}"));
        }
    }
    Ok(())
}

fn validate_exp(
    exp: &Exp,
    pat: &[PatElem],
    scope: &mut HashSet<Var>,
    k: usize,
) -> Result<(), String> {
    let arity_err = |want: usize| {
        Err(format!(
            "stm {k}: pattern has {} elements, expression produces {want}",
            pat.len()
        ))
    };
    match exp {
        Exp::Scalar(_)
        | Exp::Alloc { .. }
        | Exp::Iota(_)
        | Exp::Scratch { .. }
        | Exp::Replicate { .. }
        | Exp::Copy(_)
        | Exp::Transform { .. }
        | Exp::Gather { .. }
        | Exp::Update { .. } => {
            if pat.len() != 1 {
                return arity_err(1);
            }
            Ok(())
        }
        Exp::Concat { args, elided } => {
            if pat.len() != 1 {
                return arity_err(1);
            }
            if args.is_empty() {
                return Err(format!("stm {k}: empty concat"));
            }
            if elided.len() != args.len() {
                return Err(format!("stm {k}: concat elided mask length mismatch"));
            }
            Ok(())
        }
        Exp::Map(m) => {
            match &m.body {
                MapBody::Lambda { params, body } => {
                    if pat.len() != body.result.len() {
                        return arity_err(body.result.len());
                    }
                    if params.len() != m.inputs.len() {
                        return Err(format!(
                            "stm {k}: lambda has {} params for {} inputs",
                            params.len(),
                            m.inputs.len()
                        ));
                    }
                    let mut inner = scope.clone();
                    for (p, _) in params {
                        inner.insert(*p);
                    }
                    validate_block(body, &mut inner)?;
                }
                MapBody::Kernel { .. } => {
                    if pat.len() != 1 {
                        return arity_err(1);
                    }
                }
            }
            Ok(())
        }
        Exp::If { then_b, else_b, .. } => {
            if then_b.result.len() != pat.len() || else_b.result.len() != pat.len() {
                return Err(format!("stm {k}: if branches' arity mismatch"));
            }
            let mut s1 = scope.clone();
            validate_block(then_b, &mut s1)?;
            let mut s2 = scope.clone();
            validate_block(else_b, &mut s2)?;
            Ok(())
        }
        Exp::Loop {
            params,
            inits,
            index,
            body,
            ..
        } => {
            if params.len() != inits.len() {
                return Err(format!("stm {k}: loop params/inits mismatch"));
            }
            if body.result.len() != params.len() {
                return Err(format!("stm {k}: loop body arity mismatch"));
            }
            if pat.len() != params.len() {
                return arity_err(params.len());
            }
            let mut inner = scope.clone();
            inner.insert(*index);
            for pp in params {
                inner.insert(pp.var);
            }
            validate_block(body, &mut inner)?;
            Ok(())
        }
    }
}

/// As [`validate`], additionally checking the memory annotations the
/// middle-end passes attach: every [`MemBinding`] — on statement patterns
/// and on loop merge parameters — must name a block variable that is in
/// scope *and* known to be memory (bound by an `alloc`, a `mem`-typed
/// pattern or merge parameter, or the synthetic `<param>_mem` block of an
/// array parameter), and every variable its index function mentions must
/// be in scope. Bindings may reference variables bound by the *same*
/// pattern (existential memory and its scalars are pattern siblings).
///
/// The pass pipeline interleaves this between stages in debug/checked
/// builds, so a pass that breaks the memory discipline is caught — and
/// named — immediately rather than surfacing as a lowering failure or a
/// miscompile several stages later.
pub fn validate_memory(prog: &Program) -> Result<(), String> {
    let mut scope: HashSet<Var> = prog.params.iter().map(|(v, _)| *v).collect();
    let mut mems: HashSet<Var> = HashSet::new();
    let mut elems: HashMap<Var, ElemType> = HashMap::new();
    for (v, ty) in &prog.params {
        if ty.is_array() {
            let m = crate::param_block_sym(*v);
            scope.insert(m);
            mems.insert(m);
            if let Some(e) = ty.elem() {
                elems.insert(m, e);
            }
        }
    }
    // Structural validation, with the synthetic parameter blocks in scope:
    // annotated programs legitimately name them (e.g. as the memory
    // initializer of a loop's existential-memory merge parameter).
    validate_block(&prog.body, &mut scope.clone())?;
    validate_mem_block(&prog.body, &mut scope, &mut mems, &mut elems)
}

fn check_binding(
    mb: &MemBinding,
    owner: Var,
    owner_ty: &Type,
    k: usize,
    scope: &HashSet<Var>,
    mems: &HashSet<Var>,
    elems: &HashMap<Var, ElemType>,
) -> Result<(), String> {
    if !scope.contains(&mb.block) {
        return Err(format!(
            "stm {k}: memory binding of {owner} names block {} which is not in scope",
            mb.block
        ));
    }
    if !mems.contains(&mb.block) {
        return Err(format!(
            "stm {k}: memory binding of {owner} names {} which is not a memory block",
            mb.block
        ));
    }
    for v in mb.ixfn.vars() {
        if !scope.contains(&v) {
            return Err(format!(
                "stm {k}: index function of {owner} uses {v} which is not in scope"
            ));
        }
    }
    // Several arrays may legitimately share one block (aliasing after an
    // elided update; distinct tenants after block merging) — but never at
    // different element widths: the block's buffer has one element type.
    if let (Some(be), Some(oe)) = (elems.get(&mb.block), owner_ty.elem()) {
        if *be != oe {
            return Err(format!(
                "stm {k}: {owner} ({oe}) bound in block {} allocated as {be}",
                mb.block
            ));
        }
    }
    Ok(())
}

fn validate_mem_block(
    block: &Block,
    scope: &mut HashSet<Var>,
    mems: &mut HashSet<Var>,
    elems: &mut HashMap<Var, ElemType>,
) -> Result<(), String> {
    for (k, stm) in block.stms.iter().enumerate() {
        // Pattern vars enter scope before the bindings are checked:
        // existential memory (`ifmem`/`loopmem_out`) and its scalars are
        // bound by the same pattern the array binding references.
        for pe in &stm.pat {
            scope.insert(pe.var);
            if pe.ty == Type::Mem {
                mems.insert(pe.var);
            }
        }
        if let Exp::Alloc { elem, .. } = &stm.exp {
            elems.insert(stm.pat[0].var, *elem);
        }
        for pe in &stm.pat {
            if let Some(mb) = &pe.mem {
                check_binding(mb, pe.var, &pe.ty, k, scope, mems, elems)?;
            }
        }
        match &stm.exp {
            Exp::If { then_b, else_b, .. } => {
                // Branch scopes must not see the If's own pattern; clone
                // from a pre-pattern snapshot is overkill — the pattern
                // vars are fresh, a branch referencing them would already
                // fail plain `validate`'s scoping.
                validate_mem_block(
                    then_b,
                    &mut scope.clone(),
                    &mut mems.clone(),
                    &mut elems.clone(),
                )?;
                validate_mem_block(
                    else_b,
                    &mut scope.clone(),
                    &mut mems.clone(),
                    &mut elems.clone(),
                )?;
            }
            Exp::Loop {
                params,
                index,
                body,
                ..
            } => {
                let mut inner = scope.clone();
                let mut inner_mems = mems.clone();
                inner.insert(*index);
                for pp in params {
                    inner.insert(pp.var);
                    if pp.ty == Type::Mem {
                        inner_mems.insert(pp.var);
                    }
                }
                for pp in params {
                    if let Some(mb) = &pp.mem {
                        check_binding(mb, pp.var, &pp.ty, k, &inner, &inner_mems, elems)?;
                    }
                }
                validate_mem_block(body, &mut inner, &mut inner_mems, &mut elems.clone())?;
            }
            Exp::Map(m) => {
                if let MapBody::Lambda { params, body } = &m.body {
                    let mut inner = scope.clone();
                    for (p, _) in params {
                        inner.insert(*p);
                    }
                    validate_mem_block(body, &mut inner, &mut mems.clone(), &mut elems.clone())?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Check two symbolic shapes for (canonical-form) equality.
pub fn shapes_equal(a: &[Poly], b: &[Poly]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// The dynamic legality checks the language inserts for LMAD-slice updates
/// (§III-B): strides non-zero and dimensions non-overlapping, so the
/// update has no output dependences. Used by the evaluators.
pub fn lmad_slice_is_injective(l: &arraymem_lmad::ConcreteLmad) -> bool {
    // Sort dims by |stride| ascending and check each stride strictly
    // exceeds the reach of the smaller ones — the same sufficient
    // condition as the static test, evaluated concretely; fall back to an
    // exact point-set check for small slices.
    let mut dims: Vec<(i64, i64)> = l
        .dims
        .iter()
        .map(|&(c, s)| (c, s.abs()))
        .filter(|&(c, _)| c > 1)
        .collect();
    if dims.iter().any(|&(_, s)| s == 0) {
        return false;
    }
    dims.sort_by_key(|&(_, s)| s);
    let mut reach = 0i64;
    let mut ok = true;
    for &(c, s) in &dims {
        if s <= reach {
            ok = false;
            break;
        }
        reach += (c - 1) * s;
    }
    if ok {
        return true;
    }
    // Exact fallback (small sets only).
    let n = l.num_points();
    if n <= 1 << 16 {
        let pts = l.points();
        let set: std::collections::HashSet<i64> = pts.iter().copied().collect();
        set.len() == pts.len()
    } else {
        false
    }
}
