//! Structural validation of IR programs: pattern arities, scoping, shape
//! agreement where symbolically decidable, and the uniqueness discipline
//! for updates (the "old" array must not be used after an update — §II-C).

use crate::exp::*;
use arraymem_symbolic::Poly;
use std::collections::HashSet;

/// Validate a program; `Err` carries a description of the first violation.
pub fn validate(prog: &Program) -> Result<(), String> {
    let mut scope: HashSet<Var> = prog.params.iter().map(|(v, _)| *v).collect();
    validate_block(&prog.body, &mut scope)
}

fn validate_block(block: &Block, scope: &mut HashSet<Var>) -> Result<(), String> {
    let mut consumed: HashSet<Var> = HashSet::new();
    for (k, stm) in block.stms.iter().enumerate() {
        for v in stm.exp.free_vars() {
            if !scope.contains(&v) {
                return Err(format!("stm {k}: variable {v} used before definition"));
            }
        }
        // The uniqueness discipline: an updated destination must not be
        // used again under its old name.
        if let Exp::Update { dst, .. } = &stm.exp {
            if consumed.contains(dst) {
                return Err(format!("stm {k}: {dst} updated twice (consumed)"));
            }
            consumed.insert(*dst);
        } else {
            for v in stm.exp.free_vars() {
                if consumed.contains(&v) {
                    return Err(format!("stm {k}: use of consumed array {v}"));
                }
            }
        }
        validate_exp(&stm.exp, &stm.pat, scope, k)?;
        for pe in &stm.pat {
            scope.insert(pe.var);
        }
    }
    for v in &block.result {
        if !scope.contains(v) {
            return Err(format!("block result {v} not in scope"));
        }
        if consumed.contains(v) {
            return Err(format!("block returns consumed array {v}"));
        }
    }
    Ok(())
}

fn validate_exp(exp: &Exp, pat: &[PatElem], scope: &mut HashSet<Var>, k: usize) -> Result<(), String> {
    let arity_err = |want: usize| {
        Err(format!(
            "stm {k}: pattern has {} elements, expression produces {want}",
            pat.len()
        ))
    };
    match exp {
        Exp::Scalar(_)
        | Exp::Alloc { .. }
        | Exp::Iota(_)
        | Exp::Scratch { .. }
        | Exp::Replicate { .. }
        | Exp::Copy(_)
        | Exp::Transform { .. }
        | Exp::Update { .. } => {
            if pat.len() != 1 {
                return arity_err(1);
            }
            Ok(())
        }
        Exp::Concat { args, elided } => {
            if pat.len() != 1 {
                return arity_err(1);
            }
            if args.is_empty() {
                return Err(format!("stm {k}: empty concat"));
            }
            if elided.len() != args.len() {
                return Err(format!("stm {k}: concat elided mask length mismatch"));
            }
            Ok(())
        }
        Exp::Map(m) => {
            match &m.body {
                MapBody::Lambda { params, body } => {
                    if pat.len() != body.result.len() {
                        return arity_err(body.result.len());
                    }
                    if params.len() != m.inputs.len() {
                        return Err(format!(
                            "stm {k}: lambda has {} params for {} inputs",
                            params.len(),
                            m.inputs.len()
                        ));
                    }
                    let mut inner = scope.clone();
                    for (p, _) in params {
                        inner.insert(*p);
                    }
                    validate_block(body, &mut inner)?;
                }
                MapBody::Kernel { .. } => {
                    if pat.len() != 1 {
                        return arity_err(1);
                    }
                }
            }
            Ok(())
        }
        Exp::If {
            then_b, else_b, ..
        } => {
            if then_b.result.len() != pat.len() || else_b.result.len() != pat.len() {
                return Err(format!("stm {k}: if branches' arity mismatch"));
            }
            let mut s1 = scope.clone();
            validate_block(then_b, &mut s1)?;
            let mut s2 = scope.clone();
            validate_block(else_b, &mut s2)?;
            Ok(())
        }
        Exp::Loop {
            params,
            inits,
            index,
            body,
            ..
        } => {
            if params.len() != inits.len() {
                return Err(format!("stm {k}: loop params/inits mismatch"));
            }
            if body.result.len() != params.len() {
                return Err(format!("stm {k}: loop body arity mismatch"));
            }
            if pat.len() != params.len() {
                return arity_err(params.len());
            }
            let mut inner = scope.clone();
            inner.insert(*index);
            for pp in params {
                inner.insert(pp.var);
            }
            validate_block(body, &mut inner)?;
            Ok(())
        }
    }
}

/// Check two symbolic shapes for (canonical-form) equality.
pub fn shapes_equal(a: &[Poly], b: &[Poly]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x == y)
}

/// The dynamic legality checks the language inserts for LMAD-slice updates
/// (§III-B): strides non-zero and dimensions non-overlapping, so the
/// update has no output dependences. Used by the evaluators.
pub fn lmad_slice_is_injective(l: &arraymem_lmad::ConcreteLmad) -> bool {
    // Sort dims by |stride| ascending and check each stride strictly
    // exceeds the reach of the smaller ones — the same sufficient
    // condition as the static test, evaluated concretely; fall back to an
    // exact point-set check for small slices.
    let mut dims: Vec<(i64, i64)> = l
        .dims
        .iter()
        .map(|&(c, s)| (c, s.abs()))
        .filter(|&(c, _)| c > 1)
        .collect();
    if dims.iter().any(|&(_, s)| s == 0) {
        return false;
    }
    dims.sort_by_key(|&(_, s)| s);
    let mut reach = 0i64;
    let mut ok = true;
    for &(c, s) in &dims {
        if s <= reach {
            ok = false;
            break;
        }
        reach += (c - 1) * s;
    }
    if ok {
        return true;
    }
    // Exact fallback (small sets only).
    let n = l.num_points();
    if n <= 1 << 16 {
        let pts = l.points();
        let set: std::collections::HashSet<i64> = pts.iter().copied().collect();
        set.len() == pts.len()
    } else {
        false
    }
}
