//! Expressions, statements, blocks and programs.

use crate::types::{Constant, ElemType, Type};
use arraymem_lmad::{IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Poly, Sym};

/// Program variables are interned symbols, so scalar `i64` variables can
/// appear directly inside symbolic size and index-function polynomials.
pub type Var = Sym;

/// Binary scalar operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Eq,
    Ne,
    Lt,
    Le,
    And,
    Or,
}

/// Unary scalar operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    Neg,
    Not,
    Sqrt,
    Exp,
    Log,
    Abs,
    ToF32,
    ToF64,
    ToI64,
}

/// The scalar expression language used in sizes, lambda bodies and update
/// sources.
#[derive(Clone, Debug)]
pub enum ScalarExp {
    Const(Constant),
    Var(Var),
    /// A symbolic size expression evaluated over the scalar `i64`
    /// environment.
    Size(Poly),
    Bin(BinOp, Box<ScalarExp>, Box<ScalarExp>),
    Un(UnOp, Box<ScalarExp>),
    /// Array element read `A[i, j, ...]`.
    Index(Var, Vec<ScalarExp>),
    /// `if c then t else f` on scalars.
    Select(Box<ScalarExp>, Box<ScalarExp>, Box<ScalarExp>),
}

impl ScalarExp {
    pub fn var(v: Var) -> ScalarExp {
        ScalarExp::Var(v)
    }

    pub fn i64(x: i64) -> ScalarExp {
        ScalarExp::Const(Constant::I64(x))
    }

    pub fn f32(x: f32) -> ScalarExp {
        ScalarExp::Const(Constant::F32(x))
    }

    pub fn bin(op: BinOp, a: ScalarExp, b: ScalarExp) -> ScalarExp {
        ScalarExp::Bin(op, Box::new(a), Box::new(b))
    }

    pub fn un(op: UnOp, a: ScalarExp) -> ScalarExp {
        ScalarExp::Un(op, Box::new(a))
    }

    /// Free variables (program variables, including those inside `Size`
    /// polynomials and indexed arrays).
    pub fn free_vars(&self, out: &mut Vec<Var>) {
        match self {
            ScalarExp::Const(_) => {}
            ScalarExp::Var(v) => out.push(*v),
            ScalarExp::Size(p) => out.extend(p.vars()),
            ScalarExp::Bin(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            ScalarExp::Un(_, a) => a.free_vars(out),
            ScalarExp::Index(v, idx) => {
                out.push(*v);
                for i in idx {
                    i.free_vars(out);
                }
            }
            ScalarExp::Select(c, t, f) => {
                c.free_vars(out);
                t.free_vars(out);
                f.free_vars(out);
            }
        }
    }
}

/// A slice specification for reads and updates.
#[derive(Clone, Debug)]
pub enum SliceSpec {
    /// Triplet notation, one entry per dimension.
    Triplet(Vec<TripletSlice>),
    /// Generalized LMAD slicing (§III-B), over the flat index space.
    Lmad(Lmad),
    /// A single element.
    Point(Vec<ScalarExp>),
    /// A **scatter** slice: the named rank-1 `i64` array holds the
    /// positions written, so `dst with [scatter idx] = src` performs
    /// `dst[idx[k]] = src[k]` for `k` ascending (duplicate indices are
    /// legal; the last write wins). The written footprint is
    /// runtime-indexed — no affine summary exists (see
    /// `arraymem_lmad::OpaqueIxFn`) — so the affine passes must degrade
    /// soundly around it.
    Scatter(Var),
}

impl SliceSpec {
    /// Free variables of the slice.
    pub fn free_vars(&self, out: &mut Vec<Var>) {
        match self {
            SliceSpec::Triplet(ts) => {
                for t in ts {
                    match t {
                        TripletSlice::Range { start, len, step } => {
                            out.extend(start.vars());
                            out.extend(len.vars());
                            out.extend(step.vars());
                        }
                        TripletSlice::Fix(i) => out.extend(i.vars()),
                    }
                }
            }
            SliceSpec::Lmad(l) => out.extend(l.vars()),
            SliceSpec::Point(es) => {
                for e in es {
                    e.free_vars(out);
                }
            }
            SliceSpec::Scatter(idx) => out.push(*idx),
        }
    }
}

/// The source of an update: a whole array written at a slice, or a scalar
/// written at a point. Scalar-source updates are always in place (the
/// uniqueness discipline of §II-C) — only array-source updates carry the
/// copy that short-circuiting elides.
#[derive(Clone, Debug)]
pub enum UpdateSrc {
    Array(Var),
    Scalar(ScalarExp),
}

/// The body of a `map`.
#[derive(Clone, Debug)]
pub enum MapBody {
    /// An interpreted per-element lambda over rank-1 inputs, returning one
    /// scalar per pattern element.
    Lambda {
        params: Vec<(Var, Type)>,
        body: Block,
    },
    /// A registered native kernel (the moral equivalent of generated GPU
    /// code): for each index `i` it computes one output row of shape
    /// `row_shape` (empty = scalar element), reading the `inputs` views
    /// arbitrarily. `args` are scalar arguments.
    Kernel {
        name: String,
        elem: ElemType,
        row_shape: Vec<Poly>,
        args: Vec<ScalarExp>,
        /// Indices of inputs the kernel may read *arbitrarily*. All other
        /// inputs are read **row-wise**: instance `i` touches only
        /// `input[i, ...]`. This contract is what the index analysis
        /// relies on for the out-of-order mapnest safety check (§V-B).
        whole_inputs: Vec<usize>,
    },
}

/// A parallel map (a mapnest of depth one, §V-A(e)).
#[derive(Clone, Debug)]
pub struct MapExp {
    pub width: Poly,
    pub inputs: Vec<Var>,
    pub body: MapBody,
    /// Set by short-circuiting when the implicit per-iteration result copy
    /// (`xss[i] = rs'`) has been elided: the body then constructs its row
    /// directly in the result memory. `false` until the pass runs.
    pub in_place_result: bool,
}

/// Expressions.
#[derive(Clone, Debug)]
pub enum Exp {
    Scalar(ScalarExp),
    /// Allocate a memory block of `size` elements of type `elem`. Only
    /// introduced by the memory pass.
    Alloc {
        elem: ElemType,
        size: Poly,
    },
    /// `[0, 1, ..., n-1] : [n]i64` (fresh).
    Iota(Poly),
    /// A fresh uninitialized array (§II-C).
    Scratch {
        elem: ElemType,
        shape: Vec<Poly>,
    },
    /// A fresh array filled with one value.
    Replicate {
        shape: Vec<Poly>,
        value: ScalarExp,
    },
    /// A fresh copy of an existing array.
    Copy(Var),
    /// Concatenation along the outer dimension (fresh). `elided[k]` is set
    /// by short-circuiting when argument `k` was constructed directly in
    /// the result memory and needs no copy.
    Concat {
        args: Vec<Var>,
        elided: Vec<bool>,
    },
    /// O(1) change-of-layout; aliases `src`.
    Transform {
        src: Var,
        tr: Transform,
    },
    /// `gather src idx` — a fresh rank-1 array with
    /// `out[i] = src[idx[i]]` for every `i` below the index array's
    /// length. The read footprint over `src` is runtime-indexed (opaque
    /// to the affine analyses); the *write* footprint of the result is a
    /// plain dense row-major array, so downstream affine reasoning about
    /// the result itself stays fully enabled.
    Gather {
        src: Var,
        idx: Var,
    },
    Map(MapExp),
    /// `let dst[slice] = src` — in-place by the uniqueness discipline; the
    /// array-source copy is elided when short-circuiting proved the source
    /// was constructed in place.
    Update {
        dst: Var,
        slice: SliceSpec,
        src: UpdateSrc,
        elided: bool,
    },
    If {
        cond: ScalarExp,
        then_b: Block,
        else_b: Block,
    },
    /// `loop (p = init) for index < count do body`, returning the final
    /// merge values.
    Loop {
        /// Merge parameters (carry memory bindings after introduction).
        params: Vec<PatElem>,
        inits: Vec<Var>,
        index: Var,
        count: Poly,
        body: Block,
    },
}

/// A memory annotation on an array binding: the memory block variable and
/// the index function laying the array out inside it (paper §IV-C).
#[derive(Clone, Debug)]
pub struct MemBinding {
    pub block: Var,
    pub ixfn: IndexFn,
}

/// One element of a statement pattern.
#[derive(Clone, Debug)]
pub struct PatElem {
    pub var: Var,
    pub ty: Type,
    /// `None` before memory introduction; `Some` on array bindings after.
    pub mem: Option<MemBinding>,
}

impl PatElem {
    pub fn new(var: Var, ty: Type) -> PatElem {
        PatElem { var, ty, mem: None }
    }
}

/// A statement: a pattern bound to an expression.
#[derive(Clone, Debug)]
pub struct Stm {
    pub pat: Vec<PatElem>,
    pub exp: Exp,
}

/// A block of statements with result variables.
#[derive(Clone, Debug, Default)]
pub struct Block {
    pub stms: Vec<Stm>,
    pub result: Vec<Var>,
}

/// A whole program (one entry function).
#[derive(Clone, Debug)]
pub struct Program {
    pub name: String,
    pub params: Vec<(Var, Type)>,
    pub body: Block,
    /// Fingerprint of the middle-end pipeline (pass set, ordering and
    /// options) that produced this program; `0` for source programs that
    /// have not been compiled. Stamped by `arraymem-core`'s pipeline
    /// driver. It rides along in the `Debug` rendering, so the executor's
    /// plan-cache key — a hash of that rendering — distinguishes otherwise
    /// identical IR produced by different pass configurations: toggling a
    /// pass can never serve a stale plan.
    pub pipeline_fingerprint: u64,
}

impl Exp {
    /// Variables consumed/used by the expression, *including* free
    /// variables of nested blocks (but not their locally-bound ones).
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        match self {
            Exp::Scalar(e) => e.free_vars(&mut out),
            Exp::Alloc { size, .. } => out.extend(size.vars()),
            Exp::Iota(n) => out.extend(n.vars()),
            Exp::Scratch { shape, .. } => {
                for d in shape {
                    out.extend(d.vars());
                }
            }
            Exp::Replicate { shape, value } => {
                for d in shape {
                    out.extend(d.vars());
                }
                value.free_vars(&mut out);
            }
            Exp::Copy(v) => out.push(*v),
            Exp::Concat { args, .. } => out.extend(args.iter().copied()),
            Exp::Transform { src, .. } => out.push(*src),
            Exp::Gather { src, idx } => {
                out.push(*src);
                out.push(*idx);
            }
            Exp::Map(m) => {
                out.extend(m.width.vars());
                out.extend(m.inputs.iter().copied());
                match &m.body {
                    MapBody::Lambda { params, body } => {
                        let mut inner = body.free_vars();
                        inner.retain(|v| !params.iter().any(|(p, _)| p == v));
                        out.extend(inner);
                    }
                    MapBody::Kernel {
                        row_shape, args, ..
                    } => {
                        for d in row_shape {
                            out.extend(d.vars());
                        }
                        for a in args {
                            a.free_vars(&mut out);
                        }
                    }
                }
            }
            Exp::Update {
                dst, slice, src, ..
            } => {
                out.push(*dst);
                slice.free_vars(&mut out);
                match src {
                    UpdateSrc::Array(v) => out.push(*v),
                    UpdateSrc::Scalar(e) => e.free_vars(&mut out),
                }
            }
            Exp::If {
                cond,
                then_b,
                else_b,
            } => {
                cond.free_vars(&mut out);
                out.extend(then_b.free_vars());
                out.extend(else_b.free_vars());
            }
            Exp::Loop {
                params,
                inits,
                index,
                count,
                body,
            } => {
                out.extend(inits.iter().copied());
                out.extend(count.vars());
                let mut inner = body.free_vars();
                inner.retain(|v| *v != *index && !params.iter().any(|pe| pe.var == *v));
                out.extend(inner);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl Block {
    /// Free variables of the whole block (used before defined, plus results
    /// not bound inside).
    pub fn free_vars(&self) -> Vec<Var> {
        let mut bound: Vec<Var> = Vec::new();
        let mut out: Vec<Var> = Vec::new();
        for stm in &self.stms {
            for v in stm.exp.free_vars() {
                if !bound.contains(&v) {
                    out.push(v);
                }
            }
            // The pattern binds before its annotations are scanned:
            // existential memory is a pattern sibling of the array binding
            // that references it, not a free variable of the block.
            bound.extend(stm.pat.iter().map(|p| p.var));
            // Memory annotations may reference block variables.
            for pe in &stm.pat {
                if let Some(mb) = &pe.mem {
                    if !bound.contains(&mb.block) {
                        out.push(mb.block);
                    }
                    for v in mb.ixfn.vars() {
                        if !bound.contains(&v) {
                            out.push(v);
                        }
                    }
                }
            }
        }
        for v in &self.result {
            if !bound.contains(v) {
                out.push(*v);
            }
        }
        out.sort();
        out.dedup();
        out
    }
}
