//! The static LMAD non-overlap test (paper Fig. 8 and the Theorem of §V-C).
//!
//! Given two LMADs under an assumption environment, `non_overlap` returns
//! `true` only if their point sets are *provably* disjoint. The procedure:
//!
//! 1. normalize both LMADs to non-negative strides;
//! 2. convert the pair to two sums of strided intervals with *matching
//!    strides*, by positively distributing the terms of the offset
//!    difference across dimensions (footnote 27);
//! 3. if both sums have non-overlapping dimensions, look for one dimension
//!    whose two intervals are provably disjoint;
//! 4. otherwise split the interval that produced the overflow into "the
//!    last point" and "the rest", and recurse on all pairs.

use crate::interval::{Interval, SumOfInts};
use crate::lmad::Lmad;
use arraymem_symbolic::{Env, Poly};

/// Maximum recursive split depth; each level multiplies the pair count by
/// up to 4, and real programs need 1 (NW needs exactly one split).
const MAX_SPLIT_DEPTH: usize = 3;

/// Bound on offset-distribution iterations.
const MAX_DISTRIBUTE_ITERS: usize = 24;

/// Result of [`non_overlap_traced`]: the verdict plus a human-readable
/// derivation (used to regenerate the paper's Fig. 9).
pub struct OverlapProof {
    pub disjoint: bool,
    pub trace: Vec<String>,
}

/// Maximum number of nested case splits on variable boundaries. The
/// paper's SMT backend performs such splits implicitly; two levels cover
/// the disjunctions index analysis produces (e.g. `i = 0` vs `i ≥ 1`).
const MAX_CASE_SPLITS: usize = 2;

/// Sufficient-condition test that two LMADs' point sets are disjoint.
pub fn non_overlap(l1: &Lmad, l2: &Lmad, env: &Env) -> bool {
    non_overlap_traced(l1, l2, env).disjoint
}

/// As [`non_overlap`], also returning the proof derivation.
pub fn non_overlap_traced(l1: &Lmad, l2: &Lmad, env: &Env) -> OverlapProof {
    let mut trace = Vec::new();
    let disjoint = run_with_splits(l1, l2, env, &mut trace, MAX_CASE_SPLITS);
    OverlapProof { disjoint, trace }
}

/// Run the test; on failure, case-split on the boundary of a lower-bounded
/// variable (`v = lo` vs `v ≥ lo + 1`) and require both branches to prove.
fn run_with_splits(
    l1: &Lmad,
    l2: &Lmad,
    env: &Env,
    trace: &mut Vec<String>,
    splits: usize,
) -> bool {
    if run(l1, l2, env, trace) {
        return true;
    }
    if splits == 0 {
        return false;
    }
    let mut vars: Vec<_> = l1.vars();
    vars.extend(l2.vars());
    vars.sort();
    vars.dedup();
    for v in vars {
        let Some(lo) = env.lower_bound(v) else {
            continue;
        };
        let mut env_eq = env.clone();
        env_eq.define(v, Poly::constant(lo));
        let mut env_gt = env.clone();
        env_gt.assume_ge(v, lo + 1);
        trace.push(format!("case split: {v} = {lo} vs {v} ≥ {}", lo + 1));
        if run_with_splits(l1, l2, &env_eq, trace, splits - 1)
            && run_with_splits(l1, l2, &env_gt, trace, splits - 1)
        {
            return true;
        }
    }
    false
}

fn run(l1: &Lmad, l2: &Lmad, env: &Env, trace: &mut Vec<String>) -> bool {
    trace.push(format!("to prove: ({l1:?}) ∩ ({l2:?}) = ∅"));
    let (Some(n1), Some(n2)) = (l1.normalize_set(env), l2.normalize_set(env)) else {
        trace.push("fail: cannot normalize strides to non-negative".into());
        return false;
    };
    // Degenerate cases: an empty set is disjoint from anything.
    for l in [&n1, &n2] {
        for d in &l.dims {
            if env.prove_nonneg(&(-(d.card.clone()))) {
                trace.push("trivially disjoint: a cardinality is ≤ 0".into());
                return true;
            }
        }
    }
    let mut i1 = SumOfInts::from_normalized_dims(&n1.dims);
    let mut i2 = SumOfInts::from_normalized_dims(&n2.dims);
    i1.sort_by_env(env);
    i2.sort_by_env(env);
    SumOfInts::match_strides(&mut i1, &mut i2);
    i1.sort_by_env(env);
    i2.sort_by_env(env);
    let d = n1.offset.clone() - n2.offset.clone();
    if !distribute(d, &mut i1, Some(&mut i2), env) {
        trace.push("fail: could not distribute the offset difference".into());
        return false;
    }
    if !i1.lowers_nonneg(env) || !i2.lowers_nonneg(env) {
        trace.push("fail: a lower bound is not provably non-negative".into());
        return false;
    }
    trace.push(format!(
        "rewritten as sums of intervals:\n  I1 = {i1}\n  I2 = {i2}"
    ));
    check(&i1, &i2, env, MAX_SPLIT_DEPTH, trace)
}

/// Distribute the terms of `d` positively across the intervals of `i1`
/// (positive contributions) and `i2` (negative contributions, sign
/// flipped). When `i2` is `None` (re-distribution after a split), all
/// contributions go to `i1` regardless of sign and the caller re-checks
/// lower bounds.
fn distribute(mut d: Poly, i1: &mut SumOfInts, mut i2: Option<&mut SumOfInts>, env: &Env) -> bool {
    let mut prev_key: Option<(u32, arraymem_symbolic::Monomial)> = None;
    for _ in 0..MAX_DISTRIBUTE_ITERS {
        if d.is_zero() {
            return true;
        }
        // Remaining constant: absorb into a unit-stride interval.
        if let Some(c) = d.as_const() {
            return absorb(Poly::constant(c), c >= 0, i1, &mut i2);
        }
        let (m, c) = d.leading_term().expect("non-zero poly has a leading term");
        // Guard termination: the leading monomial must strictly decrease.
        let key = (m.degree(), m.clone());
        if let Some(pk) = &prev_key {
            if key >= *pk {
                return false;
            }
        }
        prev_key = Some(key);

        // Candidate strides, most complex first ("the interval whose
        // leading term of the stride is the best match", footnote 27).
        let mut strides: Vec<Poly> = i1.intervals.iter().map(|iv| iv.stride.clone()).collect();
        strides.sort_by(cmp_stride_desc);
        let mut matched = false;
        for s in &strides {
            let Some((ms, cs)) = s.leading_term() else {
                continue;
            };
            let Some(qm) = m.try_div(&ms) else {
                continue;
            };
            if cs == 0 || c % cs != 0 {
                continue;
            }
            let k_coef = c / cs;
            // The quotient monomial must be provably non-negative so the
            // contribution's sign is the coefficient's sign.
            if !qm.is_one()
                && !qm
                    .vars()
                    .all(|v| env.lower_bound(v).is_some_and(|lo| lo >= 0))
            {
                continue;
            }
            let k = Poly::from_terms([(qm, k_coef)]);
            d = d - s.clone() * k.clone();
            if !shift_side(k.clone(), k_coef >= 0, s, i1, &mut i2) {
                return false;
            }
            matched = true;
            break;
        }
        if !matched {
            // Absorb the whole remainder into a unit-stride interval if its
            // sign is provable.
            if env.prove_nonneg(&d) {
                return absorb(d, true, i1, &mut i2);
            }
            if env.prove_nonneg(&(-(d.clone()))) {
                return absorb(d, false, i1, &mut i2);
            }
            return false;
        }
    }
    false
}

fn cmp_stride_desc(a: &Poly, b: &Poly) -> std::cmp::Ordering {
    let ka = a
        .leading_term()
        .map(|(m, c)| (m.degree(), m, c))
        .unwrap_or((0, arraymem_symbolic::Monomial::one(), 0));
    let kb = b
        .leading_term()
        .map(|(m, c)| (m.degree(), m, c))
        .unwrap_or((0, arraymem_symbolic::Monomial::one(), 0));
    kb.cmp(&ka)
}

/// Add `k` (of known sign `nonneg`) to the interval of stride `s` on the
/// appropriate side.
fn shift_side(
    k: Poly,
    nonneg: bool,
    s: &Poly,
    i1: &mut SumOfInts,
    i2: &mut Option<&mut SumOfInts>,
) -> bool {
    match i2 {
        Some(other) if !nonneg => {
            let j = other.ensure_stride(s);
            other.intervals[j].shift(&(-k));
            // Keep stride sets matched.
            i1.ensure_stride(s);
            true
        }
        _ => {
            let j = i1.ensure_stride(s);
            i1.intervals[j].shift(&k);
            if let Some(other) = i2 {
                other.ensure_stride(s);
            }
            true
        }
    }
}

/// Absorb a residual `d` of known sign into a unit-stride interval.
fn absorb(d: Poly, nonneg: bool, i1: &mut SumOfInts, i2: &mut Option<&mut SumOfInts>) -> bool {
    if d.is_zero() {
        return true;
    }
    let one = Poly::constant(1);
    shift_side(if nonneg { d.clone() } else { d }, nonneg, &one, i1, i2)
}

fn check(i1: &SumOfInts, i2: &SumOfInts, env: &Env, depth: usize, trace: &mut Vec<String>) -> bool {
    let r1 = i1.dims_nonoverlapping(env);
    let r2 = i2.dims_nonoverlapping(env);
    if r1.is_ok() && r2.is_ok() {
        // Theorem: one provably-disjoint dimension suffices.
        debug_assert_eq!(i1.intervals.len(), i2.intervals.len());
        for (a, b) in i1.intervals.iter().zip(&i2.intervals) {
            if env.prove_lt(&a.hi, &b.lo) || env.prove_lt(&b.hi, &a.lo) {
                trace.push(format!(
                    "disjoint on stride ({:?}): [{:?}..{:?}] vs [{:?}..{:?}]",
                    a.stride, a.lo, a.hi, b.lo, b.hi
                ));
                return true;
            }
        }
        trace.push("fail: all dimensions clean but no disjoint interval pair".into());
        return false;
    }
    if depth == 0 {
        trace.push("fail: split depth exhausted".into());
        return false;
    }
    let Some(v1) = split_variants(i1, r1, env, trace) else {
        trace.push("fail: cannot split I1".into());
        return false;
    };
    let Some(v2) = split_variants(i2, r2, env, trace) else {
        trace.push("fail: cannot split I2".into());
        return false;
    };
    for a in &v1 {
        for b in &v2 {
            // Splits can unbalance the stride sets; re-match before
            // recursing. Matching inserts padding intervals by the
            // *syntactic* stride key, which can break the provably
            // ascending order `dims_nonoverlapping` relies on — restore
            // it under the env, exactly as `run` does after its match.
            let mut a = a.clone();
            let mut b = b.clone();
            SumOfInts::match_strides(&mut a, &mut b);
            a.sort_by_env(env);
            b.sort_by_env(env);
            if !check(&a, &b, env, depth - 1, trace) {
                return false;
            }
        }
    }
    true
}

/// Split an overlapping dimension into two sums: "the rest" (`[l..u-1]`)
/// and "the last point" (`u`, folded into the offset and re-distributed).
/// A clean sum is returned unchanged.
fn split_variants(
    i: &SumOfInts,
    r: Result<(), usize>,
    env: &Env,
    trace: &mut Vec<String>,
) -> Option<Vec<SumOfInts>> {
    let viol = match r {
        Ok(()) => return Some(vec![i.clone()]),
        Err(v) => v,
    };
    // Split the interval below the violation with the largest reach
    // (hi·stride), i.e. the one that "produced the overflow".
    let j = (0..viol).max_by(|&a, &b| {
        cmp_stride_desc(
            &(i.intervals[b].hi.clone() * i.intervals[b].stride.clone()),
            &(i.intervals[a].hi.clone() * i.intervals[a].stride.clone()),
        )
    })?;
    let iv: &Interval = &i.intervals[j];
    trace.push(format!(
        "overlapping dimensions: stride ({:?}) ≯ reach; splitting [{:?}..{:?}]·({:?})",
        i.intervals[viol].stride, iv.lo, iv.hi, iv.stride
    ));
    // Variant A: drop the last point.
    let mut a = i.clone();
    a.intervals[j].hi = a.intervals[j].hi.clone() - Poly::constant(1);
    if !env.prove_le(&a.intervals[j].lo, &a.intervals[j].hi) {
        return None;
    }
    // Variant B: only the last point; fold `hi·stride` into the offset and
    // re-distribute it across the remaining intervals.
    let mut b = i.clone();
    let extra = b.intervals[j].hi.clone() * b.intervals[j].stride.clone();
    b.intervals[j].lo = Poly::zero();
    b.intervals[j].hi = Poly::zero();
    if !distribute(extra, &mut b, None, env) {
        return None;
    }
    if !b.lowers_nonneg(env) {
        return None;
    }
    trace.push(format!("  rest: {a}\n  last: {b}"));
    Some(vec![a, b])
}

#[cfg(test)]
mod soundness_oracle {
    //! Randomized soundness oracle: the symbolic test may answer "cannot
    //! prove" for disjoint footprints (it is deliberately incomplete), but
    //! it must never answer "disjoint" for footprints that intersect.

    use super::*;
    use crate::concrete::{footprint_check, ConcreteLmad, FootprintCheck};
    use crate::lmad::Dim;
    use arraymem_symbolic::Rng64;

    fn random_concrete(rng: &mut Rng64) -> ConcreteLmad {
        let rank = rng.i64_incl(1, 3) as usize;
        let dims = (0..rank)
            .map(|_| (rng.i64_incl(1, 6), rng.i64_incl(-9, 9)))
            .collect();
        ConcreteLmad {
            offset: rng.i64_incl(0, 30),
            dims,
        }
    }

    fn to_symbolic(l: &ConcreteLmad) -> Lmad {
        Lmad::new(
            Poly::constant(l.offset),
            l.dims
                .iter()
                .map(|&(c, s)| Dim::new(Poly::constant(c), Poly::constant(s)))
                .collect(),
        )
    }

    /// A sampled assumption environment together with a concrete variable
    /// assignment that satisfies every assumption. Ground truth concretizes
    /// under the assignment; the symbolic test only sees the env, so any
    /// "disjoint" verdict must hold for this assignment in particular.
    struct Scenario {
        env: Env,
        vars: Vec<(arraymem_symbolic::Sym, i64)>,
    }

    fn random_scenario(rng: &mut Rng64) -> Scenario {
        let n = rng.i64_incl(1, 3) as usize;
        let mut env = Env::default();
        let mut vars = Vec::with_capacity(n);
        for _ in 0..n {
            let v = arraymem_symbolic::Sym::fresh("o");
            let x = rng.i64_incl(1, 6);
            // Always lower-bounded (the case-split machinery keys off
            // lower bounds); sometimes tight, sometimes slack.
            env.assume_ge(v, rng.i64_incl(0, x));
            if rng.chance(0.4) {
                env.assume_le(v, Poly::constant(rng.i64_incl(x, x + 4)));
            }
            if rng.chance(0.2) {
                env.define(v, Poly::constant(x));
            }
            vars.push((v, x));
        }
        Scenario { env, vars }
    }

    /// A small polynomial over the scenario's variables whose concrete
    /// value under the assignment lands in `[lo, hi]`.
    fn random_poly(rng: &mut Rng64, sc: &Scenario, lo: i64, hi: i64) -> Poly {
        loop {
            let (v, x) = sc.vars[rng.usize_in(sc.vars.len())];
            let (p, val) = match rng.usize_in(4) {
                0 => {
                    let c = rng.i64_incl(lo, hi);
                    (Poly::constant(c), c)
                }
                1 => (Poly::var(v), x),
                2 => {
                    let c = rng.i64_incl(-3, 3);
                    (Poly::var(v) + Poly::constant(c), x + c)
                }
                _ => {
                    let k = rng.i64_incl(-2, 3);
                    let c = rng.i64_incl(-2, 4);
                    (Poly::var(v).scale(k) + Poly::constant(c), k * x + c)
                }
            };
            if (lo..=hi).contains(&val) {
                return p;
            }
        }
    }

    fn random_symbolic(rng: &mut Rng64, sc: &Scenario) -> Lmad {
        let rank = rng.i64_incl(1, 3) as usize;
        let dims = (0..rank)
            .map(|_| {
                let card = random_poly(rng, sc, 1, 6);
                let stride = random_poly(rng, sc, -9, 9);
                Dim::new(card, stride)
            })
            .collect();
        Lmad::new(random_poly(rng, sc, 0, 30), dims)
    }

    /// As [`symbolic_disjoint_implies_concrete_disjoint`], but over LMADs
    /// with symbolic offsets, cardinalities and strides under a random
    /// assumption environment — this drives the case-split path
    /// (`run_with_splits`) and the prover-backed stride sort, which
    /// constant LMADs under an empty env never reach.
    #[test]
    fn symbolic_env_disjoint_implies_concrete_disjoint() {
        let iters = if std::env::var("ARRAYMEM_SLOW").ok().as_deref() == Some("1") {
            20_000
        } else {
            4_000
        };
        let mut rng = Rng64::new(0x5EED0AC1);
        let mut truly_disjoint = 0u64;
        let mut proved = 0u64;
        for i in 0..iters {
            let sc = random_scenario(&mut rng);
            let (la, lb) = (
                random_symbolic(&mut rng, &sc),
                random_symbolic(&mut rng, &sc),
            );
            let lookup = |s| sc.vars.iter().find(|&&(v, _)| v == s).map(|&(_, x)| x);
            let (ca, cb) = (
                la.eval(&lookup).expect("closed under assignment"),
                lb.eval(&lookup).expect("closed under assignment"),
            );
            let really = match footprint_check(&ca, &cb, 1 << 16) {
                FootprintCheck::Disjoint => true,
                FootprintCheck::Overlap(_) => false,
                FootprintCheck::TooLarge => continue,
            };
            let symbolic = non_overlap(&la, &lb, &sc.env);
            assert!(
                really || !symbolic,
                "iteration {i}: symbolic test claims disjoint but footprints \
                 intersect under a satisfying assignment\n  a = {la:?}\n  b = {lb:?}\n  \
                 env = {:?}\n  assignment: {:?}\n  a@ = {ca:?}\n  b@ = {cb:?}",
                sc.env,
                sc.vars,
            );
            if really {
                truly_disjoint += 1;
                if symbolic {
                    proved += 1;
                }
            }
        }
        eprintln!(
            "symbolic overlap oracle: {proved}/{truly_disjoint} truly-disjoint pairs \
             proved ({:.1}% complete)",
            100.0 * proved as f64 / truly_disjoint.max(1) as f64
        );
        assert!(truly_disjoint > 0, "oracle generated no disjoint pairs");
    }

    #[test]
    fn symbolic_disjoint_implies_concrete_disjoint() {
        let iters = if std::env::var("ARRAYMEM_SLOW").ok().as_deref() == Some("1") {
            20_000
        } else {
            3_000
        };
        let mut rng = Rng64::new(0x0AC1E5);
        let env = Env::default();
        let mut truly_disjoint = 0u64;
        let mut proved = 0u64;
        for i in 0..iters {
            let (ca, cb) = (random_concrete(&mut rng), random_concrete(&mut rng));
            let really = match footprint_check(&ca, &cb, 1 << 16) {
                FootprintCheck::Disjoint => true,
                FootprintCheck::Overlap(_) => false,
                FootprintCheck::TooLarge => continue,
            };
            let symbolic = non_overlap(&to_symbolic(&ca), &to_symbolic(&cb), &env);
            assert!(
                really || !symbolic,
                "iteration {i}: symbolic test claims disjoint but footprints \
                 intersect\n  a = {ca:?}\n  b = {cb:?}"
            );
            if really {
                truly_disjoint += 1;
                if symbolic {
                    proved += 1;
                }
            }
        }
        // Completeness is logged, not asserted (the test is a sufficient
        // condition); soundness is the assert above.
        eprintln!(
            "overlap oracle: {proved}/{truly_disjoint} truly-disjoint pairs proved \
             ({:.1}% complete)",
            100.0 * proved as f64 / truly_disjoint.max(1) as f64
        );
        assert!(truly_disjoint > 0, "oracle generated no disjoint pairs");
    }
}

#[cfg(test)]
mod sort_regression {
    //! Regression for the post-split recursion of [`check`]: after
    //! `match_strides` the sums must be re-sorted under the env (as `run`
    //! does), because `dims_nonoverlapping` relies on provably ascending
    //! stride order and the syntactic `stride_key` order can differ from
    //! the env-proved one.

    use super::*;
    use arraymem_symbolic::Sym;

    /// A pair whose env-proved stride order (`b` before `n`, since the env
    /// defines `n = b²`) is the *reverse* of the syntactic `stride_key`
    /// order (`n` interned first, so `Monomial(n) < Monomial(b)`). The
    /// outer sums are listed syntactically — the state
    /// `from_normalized_dims` produces — so the first interval pair that
    /// needs a split ([0..1]·n) only proves once the recursion re-sorts:
    /// without the `sort_by_env` after the recursion's `match_strides`,
    /// the "last point" variant `[1..1]·n + [0..b-2]·b` is stuck in
    /// descending order, `dims_nonoverlapping` keeps failing, and the
    /// (truly disjoint) pair is rejected.
    #[test]
    fn post_split_recursion_resorts_under_env() {
        // Intern `n` before `b`: syntactic order puts `n` first.
        let sn = Sym::fresh("n");
        let sb = Sym::fresh("b");
        let n = Poly::var(sn);
        let b = Poly::var(sb);
        let mut env = Env::default();
        env.define(sn, b.clone() * b.clone()); // n = b²
        env.assume_ge(sb, 3);
        // Env-proved order is b ≤ n, the reverse of the syntactic key.
        assert!(env.prove_le(&b, &n) && !env.prove_le(&n, &b));

        let iv = |lo: Poly, hi: Poly, stride: &Poly| Interval {
            lo,
            hi,
            stride: stride.clone(),
        };
        // I1 = [0..1]·n + [0..b-2]·b, listed in syntactic order.
        let i1 = SumOfInts {
            intervals: vec![
                iv(Poly::zero(), Poly::constant(1), &n),
                iv(Poly::zero(), b.clone() - Poly::constant(2), &b),
            ],
        };
        // I2 = [0..0]·n + [b-1..b-1]·b: the single point (b-1)·b, wedged
        // between I1's two b-runs ({y·b} and {b² + y·b}, y ≤ b-2).
        let i2 = SumOfInts {
            intervals: vec![
                iv(Poly::zero(), Poly::zero(), &n),
                iv(
                    b.clone() - Poly::constant(1),
                    b.clone() - Poly::constant(1),
                    &b,
                ),
            ],
        };
        // Ground truth at b = 4 (n = 16): disjoint.
        let lookup = |s| match s {
            s if s == sb => Some(4i64),
            s if s == sn => Some(16i64),
            _ => None,
        };
        let p1 = i1.eval_points(&lookup).unwrap();
        let p2 = i2.eval_points(&lookup).unwrap();
        assert!(p1.iter().all(|p| !p2.contains(p)), "sets must be disjoint");

        let mut trace = Vec::new();
        assert!(
            check(&i1, &i2, &env, MAX_SPLIT_DEPTH, &mut trace),
            "disjoint pair rejected; the split recursion lost the \
             env-sorted stride order:\n{}",
            trace.join("\n")
        );
    }
}
