//! Fully concrete LMADs and index functions, used by the runtime.
//!
//! During final code generation "the actual structure of the LMAD for a
//! given array is inlined for every array access" (paper §VII). Our
//! runtime's equivalent is these small, flat structs whose `index`
//! computation is a handful of multiply-adds, plus fast paths the kernels
//! use to keep per-access cost minimal.

/// A concrete LMAD: `offset + {(card : stride), ...}`, outer dimension
/// first. Strides may be negative (e.g. reversed dimensions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteLmad {
    pub offset: i64,
    /// `(cardinality, stride)` pairs.
    pub dims: Vec<(i64, i64)>,
}

impl ConcreteLmad {
    pub fn row_major(shape: &[i64]) -> ConcreteLmad {
        let mut dims = Vec::with_capacity(shape.len());
        let mut stride = 1i64;
        for &d in shape.iter().rev() {
            dims.push((d, stride));
            stride *= d;
        }
        dims.reverse();
        ConcreteLmad { offset: 0, dims }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn shape(&self) -> Vec<i64> {
        self.dims.iter().map(|&(c, _)| c).collect()
    }

    pub fn num_points(&self) -> i64 {
        self.dims.iter().map(|&(c, _)| c).product()
    }

    /// `L(y1..yq) = offset + Σ yi·si`.
    #[inline]
    pub fn apply(&self, idx: &[i64]) -> i64 {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut out = self.offset;
        for (y, &(_, s)) in idx.iter().zip(&self.dims) {
            out += y * s;
        }
        out
    }

    /// Enumerate all points of the LMAD (set semantics) in logical
    /// (row-major over the cardinalities) order.
    pub fn points(&self) -> Vec<i64> {
        let n = self.num_points().max(0) as usize;
        let mut out = Vec::with_capacity(n);
        let mut idx = vec![0i64; self.dims.len()];
        if self.dims.iter().any(|&(c, _)| c <= 0) {
            return out;
        }
        loop {
            out.push(self.apply(&idx));
            // increment mixed-radix counter
            let mut d = self.dims.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.dims[d].0 {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    pub fn is_row_major_contiguous(&self) -> bool {
        let mut stride = 1i64;
        for &(c, s) in self.dims.iter().rev() {
            if s != stride {
                return false;
            }
            stride *= c;
        }
        true
    }

    /// Element offset of flat logical position `flat` (row-major over the
    /// cardinalities): fused unrank + apply, no allocation. This is the
    /// strided access plan's inner loop.
    #[inline]
    pub fn offset_of_flat(&self, mut flat: i64) -> i64 {
        let mut off = self.offset;
        for &(c, s) in self.dims.iter().rev() {
            off += flat.rem_euclid(c) * s;
            flat = flat.div_euclid(c);
        }
        off
    }
}

/// Result of a brute-force comparison of two concrete footprints, used by
/// the checked VM to cross-check the compiler's symbolic non-overlap
/// verdicts at runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FootprintCheck {
    /// The two footprints share no element offset.
    Disjoint,
    /// Both footprints contain this offset (the smallest common one).
    Overlap(i64),
    /// A footprint exceeds the enumeration cap; nothing was decided.
    TooLarge,
}

/// Brute-force footprint intersection of two concrete LMADs (set
/// semantics, like [`ConcreteLmad::points`]). `cap` bounds the number of
/// points enumerated per side.
pub fn footprint_check(a: &ConcreteLmad, b: &ConcreteLmad, cap: i64) -> FootprintCheck {
    if a.num_points().max(0) > cap || b.num_points().max(0) > cap {
        return FootprintCheck::TooLarge;
    }
    let set: std::collections::HashSet<i64> = a.points().into_iter().collect();
    let mut first: Option<i64> = None;
    for p in b.points() {
        if set.contains(&p) {
            first = Some(first.map_or(p, |q| q.min(p)));
        }
    }
    match first {
        Some(off) => FootprintCheck::Overlap(off),
        None => FootprintCheck::Disjoint,
    }
}

/// Unrank a flat offset `x` into the row-major index space of `shape`.
#[inline]
pub fn unrank(mut x: i64, shape: &[i64], out: &mut [i64]) {
    debug_assert_eq!(shape.len(), out.len());
    for d in (0..shape.len()).rev() {
        let c = shape[d];
        out[d] = x.rem_euclid(c);
        x = x.div_euclid(c);
    }
}

/// The access tier of a concrete index function, classified **once** at
/// view creation so per-element address computation costs a couple of
/// integer ops instead of re-deriving the LMAD structure per access.
///
/// Ordered from fastest to most general:
///
/// - [`AccessClass::Contiguous`]: flat position `f` lives at `base + f` —
///   kernels get plain slices, copies get `memcpy`.
/// - [`AccessClass::RowContiguous`]: rows are contiguous but the outer
///   dimension strides arbitrarily (e.g. a rebased sub-matrix):
///   `base + (f / inner)·row_stride + f mod inner`.
/// - [`AccessClass::Strided`]: one LMAD, general strides — fused
///   unrank+apply with no allocation.
/// - [`AccessClass::General`]: an LMAD chain (paper Fig. 3), applied
///   last-to-first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessClass {
    Contiguous {
        base: i64,
    },
    RowContiguous {
        base: i64,
        row_stride: i64,
        inner: i64,
    },
    Strided,
    General,
}

/// A concrete index function: a chain of LMADs, applied last-to-first with
/// unranking in between (paper Fig. 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteIxFn {
    pub lmads: Vec<ConcreteLmad>,
}

impl ConcreteIxFn {
    pub fn from_lmad(l: ConcreteLmad) -> ConcreteIxFn {
        ConcreteIxFn { lmads: vec![l] }
    }

    pub fn row_major(shape: &[i64]) -> ConcreteIxFn {
        ConcreteIxFn::from_lmad(ConcreteLmad::row_major(shape))
    }

    pub fn logical(&self) -> &ConcreteLmad {
        self.lmads.last().unwrap()
    }

    pub fn shape(&self) -> Vec<i64> {
        self.logical().shape()
    }

    pub fn rank(&self) -> usize {
        self.logical().rank()
    }

    pub fn num_elems(&self) -> i64 {
        self.logical().num_points()
    }

    pub fn as_single(&self) -> Option<&ConcreteLmad> {
        if self.lmads.len() == 1 {
            Some(&self.lmads[0])
        } else {
            None
        }
    }

    /// Map a logical index to the flat element offset in the memory block.
    pub fn index(&self, idx: &[i64]) -> i64 {
        let mut x = self.lmads.last().unwrap().apply(idx);
        for k in (0..self.lmads.len() - 1).rev() {
            // Unranking over an LMAD's own cardinalities followed by
            // `apply` is exactly `offset_of_flat` — no scratch index.
            x = self.lmads[k].offset_of_flat(x);
        }
        x
    }

    /// Map a flat logical position (row-major over the logical shape) to
    /// the element offset in the memory block.
    pub fn index_flat(&self, flat: i64) -> i64 {
        let mut x = self.lmads.last().unwrap().offset_of_flat(flat);
        for k in (0..self.lmads.len() - 1).rev() {
            x = self.lmads[k].offset_of_flat(x);
        }
        x
    }

    /// Classify the index function into its access tier (done **once**
    /// per view; see [`AccessClass`]). Degenerate cardinalities (zero or
    /// negative) fall back to [`AccessClass::Strided`].
    pub fn classify(&self) -> AccessClass {
        let Some(l) = self.as_single() else {
            return AccessClass::General;
        };
        if l.dims.is_empty() {
            return AccessClass::Contiguous { base: l.offset };
        }
        // Are dims[1..] row-major contiguous? Then `inner` (their point
        // count) is the contiguous row length.
        let mut inner = 1i64;
        for &(c, s) in l.dims[1..].iter().rev() {
            if s != inner || c <= 0 {
                return AccessClass::Strided;
            }
            inner *= c;
        }
        let (c0, s0) = l.dims[0];
        if c0 <= 0 {
            return AccessClass::Strided;
        }
        if s0 == inner {
            return AccessClass::Contiguous { base: l.offset };
        }
        AccessClass::RowContiguous {
            base: l.offset,
            row_stride: s0,
            inner,
        }
    }

    /// `Some(base)` iff logical position `flat` maps to `base + flat` for
    /// all positions, i.e. the view is contiguous row-major — the fast path
    /// for bulk copies and kernel inner loops.
    pub fn contiguous_base(&self) -> Option<i64> {
        let l = self.as_single()?;
        l.is_row_major_contiguous().then_some(l.offset)
    }

    /// The set of element offsets touched, in logical order.
    pub fn all_offsets(&self) -> Vec<i64> {
        let n = self.num_elems().max(0);
        (0..n).map(|f| self.index_flat(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_manual() {
        let l = ConcreteLmad::row_major(&[3, 4]);
        assert_eq!(l.dims, vec![(3, 4), (4, 1)]);
        assert_eq!(l.apply(&[2, 3]), 11);
        assert!(l.is_row_major_contiguous());
    }

    #[test]
    fn points_enumeration() {
        let l = ConcreteLmad {
            offset: 1,
            dims: vec![(2, 2), (4, 8)],
        };
        assert_eq!(l.points(), vec![1, 9, 17, 25, 3, 11, 19, 27]);
    }

    #[test]
    fn unrank_roundtrip() {
        let shape = [3, 5, 2];
        let mut idx = [0i64; 3];
        for f in 0..30 {
            unrank(f, &shape, &mut idx);
            let back = idx[0] * 10 + idx[1] * 2 + idx[2];
            assert_eq!(back, f);
        }
    }

    #[test]
    fn footprint_check_finds_smallest_common_offset() {
        // Rows 0..3 of a 6x1 vector vs rows 1..5: overlap starts at 1.
        let a = ConcreteLmad {
            offset: 0,
            dims: vec![(3, 1)],
        };
        let b = ConcreteLmad {
            offset: 1,
            dims: vec![(4, 1)],
        };
        assert_eq!(footprint_check(&a, &b, 1 << 10), FootprintCheck::Overlap(1));
        // Even and odd strided footprints are disjoint.
        let evens = ConcreteLmad {
            offset: 0,
            dims: vec![(5, 2)],
        };
        let odds = ConcreteLmad {
            offset: 1,
            dims: vec![(5, 2)],
        };
        assert_eq!(
            footprint_check(&evens, &odds, 1 << 10),
            FootprintCheck::Disjoint
        );
        // Cap exceeded: undecided, never a wrong verdict.
        let big = ConcreteLmad {
            offset: 0,
            dims: vec![(1 << 20, 1)],
        };
        assert_eq!(footprint_check(&big, &a, 1 << 10), FootprintCheck::TooLarge);
    }

    #[test]
    fn contiguous_base_detects_offsets() {
        let mut l = ConcreteLmad::row_major(&[4, 4]);
        l.offset = 7;
        let ix = ConcreteIxFn::from_lmad(l);
        assert_eq!(ix.contiguous_base(), Some(7));
        let t = ConcreteIxFn::from_lmad(ConcreteLmad {
            offset: 0,
            dims: vec![(4, 1), (4, 4)],
        });
        assert_eq!(t.contiguous_base(), None);
    }
}
