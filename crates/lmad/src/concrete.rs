//! Fully concrete LMADs and index functions, used by the runtime.
//!
//! During final code generation "the actual structure of the LMAD for a
//! given array is inlined for every array access" (paper §VII). Our
//! runtime's equivalent is these small, flat structs whose `index`
//! computation is a handful of multiply-adds, plus fast paths the kernels
//! use to keep per-access cost minimal.

/// A concrete LMAD: `offset + {(card : stride), ...}`, outer dimension
/// first. Strides may be negative (e.g. reversed dimensions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteLmad {
    pub offset: i64,
    /// `(cardinality, stride)` pairs.
    pub dims: Vec<(i64, i64)>,
}

impl ConcreteLmad {
    pub fn row_major(shape: &[i64]) -> ConcreteLmad {
        let mut dims = Vec::with_capacity(shape.len());
        let mut stride = 1i64;
        for &d in shape.iter().rev() {
            dims.push((d, stride));
            stride *= d;
        }
        dims.reverse();
        ConcreteLmad { offset: 0, dims }
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    pub fn shape(&self) -> Vec<i64> {
        self.dims.iter().map(|&(c, _)| c).collect()
    }

    pub fn num_points(&self) -> i64 {
        self.dims.iter().map(|&(c, _)| c).product()
    }

    /// `L(y1..yq) = offset + Σ yi·si`.
    #[inline]
    pub fn apply(&self, idx: &[i64]) -> i64 {
        debug_assert_eq!(idx.len(), self.dims.len());
        let mut out = self.offset;
        for (y, &(_, s)) in idx.iter().zip(&self.dims) {
            out += y * s;
        }
        out
    }

    /// Enumerate all points of the LMAD (set semantics) in logical
    /// (row-major over the cardinalities) order.
    pub fn points(&self) -> Vec<i64> {
        let n = self.num_points().max(0) as usize;
        let mut out = Vec::with_capacity(n);
        let mut idx = vec![0i64; self.dims.len()];
        if self.dims.iter().any(|&(c, _)| c <= 0) {
            return out;
        }
        loop {
            out.push(self.apply(&idx));
            // increment mixed-radix counter
            let mut d = self.dims.len();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < self.dims[d].0 {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    pub fn is_row_major_contiguous(&self) -> bool {
        let mut stride = 1i64;
        for &(c, s) in self.dims.iter().rev() {
            if s != stride {
                return false;
            }
            stride *= c;
        }
        true
    }
}

/// Unrank a flat offset `x` into the row-major index space of `shape`.
#[inline]
pub fn unrank(mut x: i64, shape: &[i64], out: &mut [i64]) {
    debug_assert_eq!(shape.len(), out.len());
    for d in (0..shape.len()).rev() {
        let c = shape[d];
        out[d] = x.rem_euclid(c);
        x = x.div_euclid(c);
    }
}

/// A concrete index function: a chain of LMADs, applied last-to-first with
/// unranking in between (paper Fig. 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConcreteIxFn {
    pub lmads: Vec<ConcreteLmad>,
}

impl ConcreteIxFn {
    pub fn from_lmad(l: ConcreteLmad) -> ConcreteIxFn {
        ConcreteIxFn { lmads: vec![l] }
    }

    pub fn row_major(shape: &[i64]) -> ConcreteIxFn {
        ConcreteIxFn::from_lmad(ConcreteLmad::row_major(shape))
    }

    pub fn logical(&self) -> &ConcreteLmad {
        self.lmads.last().unwrap()
    }

    pub fn shape(&self) -> Vec<i64> {
        self.logical().shape()
    }

    pub fn rank(&self) -> usize {
        self.logical().rank()
    }

    pub fn num_elems(&self) -> i64 {
        self.logical().num_points()
    }

    pub fn as_single(&self) -> Option<&ConcreteLmad> {
        if self.lmads.len() == 1 {
            Some(&self.lmads[0])
        } else {
            None
        }
    }

    /// Map a logical index to the flat element offset in the memory block.
    pub fn index(&self, idx: &[i64]) -> i64 {
        let mut x = self.lmads.last().unwrap().apply(idx);
        for k in (0..self.lmads.len() - 1).rev() {
            let l = &self.lmads[k];
            let mut tmp = vec![0i64; l.rank()];
            unrank(x, &l.shape(), &mut tmp);
            x = l.apply(&tmp);
        }
        x
    }

    /// Map a flat logical position (row-major over the logical shape) to
    /// the element offset in the memory block.
    pub fn index_flat(&self, flat: i64) -> i64 {
        let shape = self.shape();
        let mut idx = vec![0i64; shape.len()];
        unrank(flat, &shape, &mut idx);
        self.index(&idx)
    }

    /// `Some(base)` iff logical position `flat` maps to `base + flat` for
    /// all positions, i.e. the view is contiguous row-major — the fast path
    /// for bulk copies and kernel inner loops.
    pub fn contiguous_base(&self) -> Option<i64> {
        let l = self.as_single()?;
        l.is_row_major_contiguous().then_some(l.offset)
    }

    /// The set of element offsets touched, in logical order.
    pub fn all_offsets(&self) -> Vec<i64> {
        let n = self.num_elems().max(0);
        (0..n).map(|f| self.index_flat(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_manual() {
        let l = ConcreteLmad::row_major(&[3, 4]);
        assert_eq!(l.dims, vec![(3, 4), (4, 1)]);
        assert_eq!(l.apply(&[2, 3]), 11);
        assert!(l.is_row_major_contiguous());
    }

    #[test]
    fn points_enumeration() {
        let l = ConcreteLmad {
            offset: 1,
            dims: vec![(2, 2), (4, 8)],
        };
        assert_eq!(l.points(), vec![1, 9, 17, 25, 3, 11, 19, 27]);
    }

    #[test]
    fn unrank_roundtrip() {
        let shape = [3, 5, 2];
        let mut idx = [0i64; 3];
        for f in 0..30 {
            unrank(f, &shape, &mut idx);
            let back = idx[0] * 10 + idx[1] * 2 + idx[2];
            assert_eq!(back, f);
        }
    }

    #[test]
    fn contiguous_base_detects_offsets() {
        let mut l = ConcreteLmad::row_major(&[4, 4]);
        l.offset = 7;
        let ix = ConcreteIxFn::from_lmad(l);
        assert_eq!(ix.contiguous_base(), Some(7));
        let t = ConcreteIxFn::from_lmad(ConcreteLmad {
            offset: 0,
            dims: vec![(4, 1), (4, 4)],
        });
        assert_eq!(t.contiguous_base(), None);
    }
}
