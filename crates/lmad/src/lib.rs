//! Linear Memory Access Descriptors (LMADs) and LMAD-based index functions.
//!
//! An LMAD (paper §II-B, eq. (1)) describes a set of linearized
//! uni-dimensional points with regular, quasi-affine structure:
//!
//! ```text
//! t + {(n1 : s1), ..., (nq : sq)}
//!   ≡ { t + i1·s1 + ... + iq·sq  |  0 ≤ ik < nk }
//! ```
//!
//! This crate provides the three uses the paper makes of LMADs:
//!
//! 1. **Generalized slicing** at the language level ([`Lmad`] used as a
//!    slice, §III-B).
//! 2. **Index functions** mapping array indexes to flat offsets in a memory
//!    block ([`IndexFn`], §IV), including O(1) change-of-layout
//!    transformations and multi-LMAD compositions for non-expressible
//!    reshapes (Fig. 3).
//! 3. **Index analysis**: aggregation of access summaries across loops
//!    (§II-B, §V-B) and the static non-overlap test (Fig. 8, §V-C).
//!
//! Symbolic quantities are [`arraymem_symbolic::Poly`]s; the runtime uses
//! the fully concrete mirror types in [`concrete`].

pub mod aggregate;
pub mod concrete;
pub mod interval;
mod ixfn;
mod lmad;
pub mod overlap;

pub use concrete::{footprint_check, ConcreteIxFn, ConcreteLmad, FootprintCheck};
pub use ixfn::{IndexFn, OpaqueIxFn, Transform, TripletSlice};
pub use lmad::{Dim, Lmad};

#[cfg(test)]
mod tests;
