use crate::aggregate::{aggregate, Summary};
use crate::overlap::{non_overlap, non_overlap_traced};
use crate::{Dim, IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{sym, Env, Poly, Rng64, Sym};

fn v(name: &str) -> Poly {
    Poly::var(sym(name))
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

fn dim(card: impl Into<Poly>, stride: impl Into<Poly>) -> Dim {
    Dim::new(card, stride)
}

/// The environment of the NW example: `n = q·b + 1`, `q ≥ 2`, `b ≥ 2`,
/// `0 ≤ i`. (The paper's Fig. 9 states `b ≥ 1`; the displayed derivation
/// actually needs `b ≥ 2` on the edge case — our test uses the assumptions
/// under which the derivation is valid.)
fn nw_env() -> Env {
    let mut env = Env::new();
    env.define(sym("n"), v("q") * v("b") + c(1));
    env.assume_ge(sym("q"), 2);
    env.assume_ge(sym("b"), 2);
    env.assume_ge(sym("i"), 0);
    env
}

/// NW write set W = i·b + n + 1 + {(i+1 : n·b−b), (b : n), (b : 1)} (§III-B).
fn nw_w() -> Lmad {
    Lmad::new(
        v("i") * v("b") + v("n") + c(1),
        vec![
            dim(v("i") + c(1), v("n") * v("b") - v("b")),
            dim(v("b"), v("n")),
            dim(v("b"), c(1)),
        ],
    )
}

/// NW vertical read bars Rvert = i·b + {(i+1 : n·b−b), (b+1 : n)}.
fn nw_rvert() -> Lmad {
    Lmad::new(
        v("i") * v("b"),
        vec![
            dim(v("i") + c(1), v("n") * v("b") - v("b")),
            dim(v("b") + c(1), v("n")),
        ],
    )
}

/// NW horizontal read bars Rhoriz = i·b + 1 + {(i+1 : n·b−b), (b : 1)}.
fn nw_rhoriz() -> Lmad {
    Lmad::new(
        v("i") * v("b") + c(1),
        vec![
            dim(v("i") + c(1), v("n") * v("b") - v("b")),
            dim(v("b"), c(1)),
        ],
    )
}

// ---------------------------------------------------------------------
// Basic LMAD behaviour (§II-B)
// ---------------------------------------------------------------------

#[test]
fn lmad_apply_is_affine() {
    let l = Lmad::new(c(3), vec![dim(v("n"), v("m")), dim(v("m"), c(1))]);
    let r = l.apply(&[v("x"), v("y")]);
    assert_eq!(r, c(3) + v("x") * v("m") + v("y"));
}

#[test]
fn row_major_col_major() {
    let r = Lmad::row_major(&[v("n"), v("m")]);
    assert_eq!(r.dims, vec![dim(v("n"), v("m")), dim(v("m"), c(1))]);
    let cmaj = Lmad::col_major(&[v("n"), v("m")]);
    assert_eq!(cmaj.dims, vec![dim(v("n"), c(1)), dim(v("m"), v("n"))]);
    assert!(r.is_row_major_contiguous());
    assert!(!cmaj.is_row_major_contiguous());
}

/// The aggregation example of §II-B: the flat write `A[t + i*m + j*k]`
/// under the `j` then `i` loops aggregates to `t + {(m : m), (n : k)}`.
#[test]
fn aggregation_example_from_paper() {
    let env = {
        let mut e = Env::new();
        e.assume_ge(sym("m"), 1);
        e.assume_ge(sym("n"), 1);
        e.assume_ge(sym("k"), 1);
        e.assume_ge(sym("i"), 0);
        e.assume_ge(sym("j"), 0);
        e
    };
    let w_ij = Lmad::new(v("t") + v("i") * v("m") + v("j") * v("k"), vec![]);
    let w_i = aggregate(&w_ij, sym("j"), &v("n"), &env).unwrap();
    assert_eq!(w_i.offset, v("t") + v("i") * v("m"));
    assert_eq!(w_i.dims, vec![dim(v("n"), v("k"))]);
    let w = aggregate(&w_i, sym("i"), &v("m"), &env).unwrap();
    assert_eq!(w.offset, v("t"));
    assert_eq!(w.dims, vec![dim(v("m"), v("m")), dim(v("n"), v("k"))]);
}

#[test]
fn aggregation_fails_on_stride_dependence() {
    let env = Env::new();
    let l = Lmad::new(v("i"), vec![dim(c(4), v("i"))]);
    assert!(aggregate(&l, sym("i"), &c(8), &env).is_none());
}

#[test]
fn aggregation_overestimates_cardinal() {
    // card = i+1 under i in [0, m): over-approximated at i = m-1.
    let mut env = Env::new();
    env.assume_ge(sym("m"), 1);
    let l = Lmad::new(v("i") * c(10), vec![dim(v("i") + c(1), c(1))]);
    let a = aggregate(&l, sym("i"), &v("m"), &env).unwrap();
    assert_eq!(a.dims[0], dim(v("m"), c(10)));
    assert_eq!(a.dims[1], dim(v("m"), c(1)));
}

#[test]
fn normalize_flips_negative_strides() {
    let mut env = Env::new();
    env.assume_ge(sym("n"), 1);
    // reversed 1-D array: n-1 + {(n : -1)}  ==set==  0 + {(n : 1)}
    let rev = Lmad::new(v("n") - c(1), vec![dim(v("n"), c(-1))]);
    let norm = rev.normalize_set(&env).unwrap();
    assert_eq!(norm.offset, Poly::zero());
    assert_eq!(norm.dims, vec![dim(v("n"), c(1))]);
}

// ---------------------------------------------------------------------
// Index functions & transformations (§IV, Fig. 3)
// ---------------------------------------------------------------------

/// Paper Fig. 3, end to end: each operation is O(1) on the index function
/// and the final composed chain maps es[5] to flat offset 59 in as's memory.
#[test]
fn fig3_index_fn_chain() {
    // let as = (0..63)              -- ixfn 0 + {(64:1)}
    let asn = IndexFn::row_major(&[c(64)]);
    assert_eq!(asn.logical(), &Lmad::new(c(0), vec![dim(c(64), c(1))]));
    // let bs = unflatten 8 8 as     -- ixfn 0 + {(8:8),(8:1)}
    let bs = asn
        .transform(&Transform::Reshape(vec![c(8), c(8)]))
        .unwrap();
    assert_eq!(
        bs.logical(),
        &Lmad::new(c(0), vec![dim(c(8), c(8)), dim(c(8), c(1))])
    );
    // let cs = transpose bs         -- ixfn 0 + {(8:1),(8:8)}
    let cs = bs.transform(&Transform::Permute(vec![1, 0])).unwrap();
    assert_eq!(
        cs.logical(),
        &Lmad::new(c(0), vec![dim(c(8), c(1)), dim(c(8), c(8))])
    );
    // let ds = cs[1:3:2, 4:8:1]     -- ixfn 1+4*8 + {(2:2),(4:8)}
    let ds = cs
        .transform(&Transform::Slice(vec![
            TripletSlice::range(c(1), c(2), c(2)),
            TripletSlice::range(c(4), c(4), c(1)),
        ]))
        .unwrap();
    assert_eq!(
        ds.logical(),
        &Lmad::new(c(33), vec![dim(c(2), c(2)), dim(c(4), c(8))])
    );
    // let es = (flatten ds)[2:]     -- L2 ∘ L1, L1 = 2+{(6:1)}, L2 = 33+{(2:2),(4:8)}
    let flat = ds.transform(&Transform::Reshape(vec![c(8)])).unwrap();
    let es = flat
        .transform(&Transform::Slice(vec![TripletSlice::range(
            c(2),
            c(6),
            c(1),
        )]))
        .unwrap();
    assert_eq!(es.lmads.len(), 2);
    assert_eq!(
        es.lmads[0],
        Lmad::new(c(33), vec![dim(c(2), c(2)), dim(c(4), c(8))])
    );
    assert_eq!(es.lmads[1], Lmad::new(c(2), vec![dim(c(6), c(1))]));
    // es[5]: L1(5) = 7; unrank 7 over (2,4) = (1,3); L2(1,3) = 33+2+24 = 59.
    let conc = es.eval(&|_| None).unwrap();
    assert_eq!(conc.index(&[5]), 59);
}

#[test]
fn transpose_then_flatten_needs_two_lmads() {
    // Flattening a column-major (transposed) matrix is the paper's example
    // of a reshape not expressible as a single LMAD.
    let a = IndexFn::row_major(&[c(4), c(6)]);
    let t = a.transform(&Transform::Permute(vec![1, 0])).unwrap();
    let f = t.transform(&Transform::Reshape(vec![c(24)])).unwrap();
    assert_eq!(f.lmads.len(), 2);
    let conc = f.eval(&|_| None).unwrap();
    // element (i) of flatten(transpose A) is A[i%4, i/4] = mem[(i%4)*6 + i/4]
    for i in 0..24 {
        assert_eq!(conc.index(&[i]), (i % 4) * 6 + i / 4);
    }
}

#[test]
fn flatten_row_major_is_single_lmad() {
    let a = IndexFn::row_major(&[c(4), c(6)]);
    let f = a.transform(&Transform::Reshape(vec![c(24)])).unwrap();
    assert_eq!(f.lmads.len(), 1);
    assert!(f.logical().is_row_major_contiguous());
}

#[test]
fn slice_column_from_matrix() {
    // §IV-B example: column i of a row-major n×m matrix via triplet slice
    // [0:n:1, i:1:0] gives LMAD i + {(n : m), (1 : 0)}.
    let a = IndexFn::row_major(&[v("n"), v("m")]);
    let col = a
        .transform(&Transform::Slice(vec![
            TripletSlice::range(c(0), v("n"), c(1)),
            TripletSlice::range(v("i"), c(1), c(0)),
        ]))
        .unwrap();
    assert_eq!(
        col.logical(),
        &Lmad::new(v("i"), vec![dim(v("n"), v("m")), dim(c(1), Poly::zero())])
    );
}

#[test]
fn reverse_is_self_inverse() {
    let a = IndexFn::row_major(&[c(10)]);
    let r = a.transform(&Transform::Reverse(0)).unwrap();
    let conc = r.eval(&|_| None).unwrap();
    for i in 0..10 {
        assert_eq!(conc.index(&[i]), 9 - i);
    }
    let back = r.untransform(&Transform::Reverse(0), &[c(10)]).unwrap();
    let cb = back.eval(&|_| None).unwrap();
    for i in 0..10 {
        assert_eq!(cb.index(&[i]), i);
    }
}

#[test]
fn untransform_permute() {
    // bs = transpose as; if bs is rebased to W, as must get W transposed
    // back.
    let w = IndexFn::from_lmad(Lmad::new(c(100), vec![dim(c(3), c(7)), dim(c(5), c(50))]));
    let as_ixfn = w
        .untransform(&Transform::Permute(vec![1, 0]), &[c(5), c(3)])
        .unwrap();
    assert_eq!(
        as_ixfn.logical(),
        &Lmad::new(c(100), vec![dim(c(5), c(50)), dim(c(3), c(7))])
    );
}

#[test]
fn untransform_slice_is_unsupported() {
    let w = IndexFn::row_major(&[c(4)]);
    assert!(w
        .untransform(
            &Transform::Slice(vec![TripletSlice::range(c(0), c(2), c(2))]),
            &[c(8)]
        )
        .is_none());
}

#[test]
fn lmad_slice_composes_through_flat_array() {
    // A 1-D array with offset 5 in its block; LMAD-slice the diagonal of
    // the logical n×n matrix view: i·(n+1) points.
    let base = IndexFn::from_lmad(Lmad::new(c(5), vec![dim(c(16), c(1))]));
    let diag = base
        .transform(&Transform::LmadSlice(Lmad::new(
            c(0),
            vec![dim(c(4), c(5))],
        )))
        .unwrap();
    assert_eq!(diag.lmads.len(), 1);
    assert_eq!(diag.logical(), &Lmad::new(c(5), vec![dim(c(4), c(5))]));
}

// ---------------------------------------------------------------------
// Non-overlap (§V-C, Fig. 8, Fig. 9)
// ---------------------------------------------------------------------

#[test]
fn disjoint_constant_intervals() {
    let mut env = Env::new();
    env.assume_ge(sym("z"), 0);
    let a = Lmad::new(c(0), vec![dim(c(10), c(1))]);
    let b = Lmad::new(c(10), vec![dim(c(10), c(1))]);
    assert!(non_overlap(&a, &b, &env));
    assert!(non_overlap(&b, &a, &env));
    let o = Lmad::new(c(9), vec![dim(c(10), c(1))]);
    assert!(!non_overlap(&a, &o, &env));
}

#[test]
fn disjoint_strided_even_odd() {
    let env = Env::new();
    // evens {0,2,..18} vs odds {1,3,..19}: 2-strided with offset diff 1.
    let e = Lmad::new(c(0), vec![dim(c(10), c(2))]);
    let o = Lmad::new(c(1), vec![dim(c(10), c(2))]);
    // Offset difference 1 cannot be placed inside the stride-2 dimension:
    // intervals [0..9]·2 + [0..0]·1 vs [0..9]·2 + [0..0]·1 with a +1 on one
    // side's unit interval; the unit dims differ ([1..1] vs [0..0]) but the
    // stride-2 dim overlaps [0..9], and the theorem requires dimension
    // non-overlap: stride 2 > 1·1 holds, so dims are clean and the unit
    // intervals are disjoint.
    assert!(non_overlap(&e, &o, &env));
}

#[test]
fn overlapping_same_lmad() {
    let mut env = Env::new();
    env.assume_ge(sym("n"), 1);
    let a = Lmad::new(c(0), vec![dim(v("n"), c(1))]);
    assert!(!non_overlap(&a, &a, &env));
}

#[test]
fn rows_vs_rows_disjoint_symbolic() {
    let mut env = Env::new();
    env.assume_ge(sym("m"), 1);
    env.assume_ge(sym("r"), 0);
    // row r vs row r+1 of an n×m row-major matrix.
    let row_r = Lmad::new(v("r") * v("m"), vec![dim(v("m"), c(1))]);
    let row_r1 = Lmad::new((v("r") + c(1)) * v("m"), vec![dim(v("m"), c(1))]);
    assert!(non_overlap(&row_r, &row_r1, &env));
}

/// The paper's flagship proof (Fig. 9): the NW write set does not overlap
/// the vertical read bars, requiring one dimension split.
#[test]
fn fig9_nw_write_vs_vertical_reads() {
    let env = nw_env();
    let proof = non_overlap_traced(&nw_w(), &nw_rvert(), &env);
    assert!(
        proof.disjoint,
        "NW W ∩ Rvert should be provably empty; trace:\n{}",
        proof.trace.join("\n")
    );
    // The derivation must have used the split heuristic.
    assert!(proof.trace.iter().any(|l| l.contains("splitting")));
}

#[test]
fn fig9_nw_write_vs_horizontal_reads() {
    let env = nw_env();
    let proof = non_overlap_traced(&nw_w(), &nw_rhoriz(), &env);
    assert!(
        proof.disjoint,
        "NW W ∩ Rhoriz should be provably empty; trace:\n{}",
        proof.trace.join("\n")
    );
}

/// Sanity: the NW read sets do overlap the *previous* write set (the
/// whole point of the dependence structure), so the test must not prove
/// them disjoint.
#[test]
fn nw_write_overlaps_itself() {
    let env = nw_env();
    assert!(!non_overlap(&nw_w(), &nw_w(), &env));
}

/// Exhaustive concrete validation of the NW non-overlap claim.
#[test]
fn nw_nonoverlap_concrete_validation() {
    for q in 2..5i64 {
        for b in 2..5i64 {
            let n = q * b + 1;
            for i in 0..q {
                let lookup = |s: Sym| {
                    if s == sym("n") {
                        Some(n)
                    } else if s == sym("q") {
                        Some(q)
                    } else if s == sym("b") {
                        Some(b)
                    } else if s == sym("i") {
                        Some(i)
                    } else {
                        None
                    }
                };
                let w: std::collections::HashSet<i64> =
                    nw_w().eval(&lookup).unwrap().points().into_iter().collect();
                let rv = nw_rvert().eval(&lookup).unwrap().points();
                let rh = nw_rhoriz().eval(&lookup).unwrap().points();
                for p in rv.iter().chain(rh.iter()) {
                    assert!(
                        !w.contains(p),
                        "actual overlap at q={q} b={b} i={i} point {p}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------

#[test]
fn summary_union_and_top() {
    let mut s = Summary::empty();
    assert!(s.is_empty());
    s.add(Lmad::new(c(0), vec![dim(c(4), c(1))]));
    assert!(!s.is_empty());
    let mut t = Summary::top();
    t.union(&s);
    assert!(t.is_top());
    s.union(&Summary::top());
    assert!(s.is_top());
}

#[test]
fn summary_disjointness() {
    let env = Env::new();
    let mut a = Summary::empty();
    a.add(Lmad::new(c(0), vec![dim(c(4), c(1))]));
    a.add(Lmad::new(c(8), vec![dim(c(4), c(1))]));
    let mut b = Summary::empty();
    b.add(Lmad::new(c(4), vec![dim(c(4), c(1))]));
    assert!(a.disjoint_from(&b, &env));
    b.add(Lmad::new(c(9), vec![dim(c(2), c(1))]));
    assert!(!a.disjoint_from(&b, &env));
    assert!(Summary::empty().disjoint_from(&Summary::top(), &env));
    assert!(!Summary::top().disjoint_from(&b, &env));
}

// ---------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------

/// Generator: a small concrete LMAD with 1..=3 dims (hand-rolled; seeds
/// make failures reproducible and keep the offline build framework-free).
fn arb_lmad(r: &mut Rng64) -> Lmad {
    let off = r.i64_in(0, 30);
    let rank = r.i64_incl(1, 3);
    let dims = (0..rank)
        .map(|_| dim(c(r.i64_in(1, 5)), c(r.i64_in(-8, 9))))
        .collect();
    Lmad::new(c(off), dims)
}

/// Soundness of `non_overlap`: a `true` verdict implies the concrete
/// point sets are actually disjoint.
#[test]
fn prop_non_overlap_sound() {
    let mut r = Rng64::new(0x4F1A);
    for _ in 0..400 {
        let a = arb_lmad(&mut r);
        let b = arb_lmad(&mut r);
        let env = Env::new();
        if non_overlap(&a, &b, &env) {
            let pa: std::collections::HashSet<i64> =
                a.eval(&|_| None).unwrap().points().into_iter().collect();
            let pb = b.eval(&|_| None).unwrap().points();
            for p in pb {
                assert!(
                    !pa.contains(&p),
                    "claimed disjoint, share {p}\n a={a:?}\n b={b:?}"
                );
            }
        }
    }
}

/// Normalization preserves the point set.
#[test]
fn prop_normalize_preserves_set() {
    let mut r = Rng64::new(0x2E9D);
    for _ in 0..400 {
        let a = arb_lmad(&mut r);
        let env = Env::new();
        if let Some(n) = a.normalize_set(&env) {
            let mut pa = a.eval(&|_| None).unwrap().points();
            let mut pn = n.eval(&|_| None).unwrap().points();
            pa.sort_unstable();
            pa.dedup();
            pn.sort_unstable();
            pn.dedup();
            assert_eq!(pa, pn, "normalize changed point set of {a:?}");
        }
    }
}

/// Aggregation over-approximates the concrete union.
#[test]
fn prop_aggregate_overapproximates() {
    let mut r = Rng64::new(0xA66E);
    for _ in 0..200 {
        let off_k = r.i64_in(1, 6);
        let card = r.i64_in(1, 4);
        let stride = r.i64_in(1, 4);
        let count = r.i64_in(1, 5);
        let mut env = Env::new();
        env.assume_ge(sym("agg_i"), 0);
        let l = Lmad::new(v("agg_i") * c(off_k), vec![dim(c(card), c(stride))]);
        let a = aggregate(&l, sym("agg_i"), &c(count), &env).unwrap();
        let union: std::collections::HashSet<i64> = (0..count)
            .flat_map(|i| {
                l.eval(&|s: Sym| if s == sym("agg_i") { Some(i) } else { None })
                    .unwrap()
                    .points()
            })
            .collect();
        let agg: std::collections::HashSet<i64> =
            a.eval(&|_| None).unwrap().points().into_iter().collect();
        assert!(union.is_subset(&agg));
    }
}

/// Transformed index functions agree with the semantic transformation
/// on a dense array: permutation.
#[test]
fn prop_permute_semantics() {
    for rows in 1i64..6 {
        for cols in 1i64..6 {
            let a = IndexFn::row_major(&[c(rows), c(cols)]);
            let t = a.transform(&Transform::Permute(vec![1, 0])).unwrap();
            let ct = t.eval(&|_| None).unwrap();
            for i in 0..cols {
                for j in 0..rows {
                    assert_eq!(ct.index(&[i, j]), j * cols + i);
                }
            }
        }
    }
}

/// Reshape-of-anything agrees with flat row-major traversal of the
/// logical elements.
#[test]
fn prop_reshape_semantics() {
    for rows in 1i64..5 {
        for cols in 1i64..5 {
            let a = IndexFn::row_major(&[c(rows), c(cols)]);
            let rev = a.transform(&Transform::Reverse(1)).unwrap();
            let f = rev
                .transform(&Transform::Reshape(vec![c(rows * cols)]))
                .unwrap();
            let cf = f.eval(&|_| None).unwrap();
            let cr = rev.eval(&|_| None).unwrap();
            for i in 0..rows * cols {
                assert_eq!(cf.index(&[i]), cr.index(&[i / cols, i % cols]));
            }
        }
    }
}
