//! Sum-of-strided-intervals: the intermediate representation of the
//! non-overlap test (paper §V-C).
//!
//! A sum-of-intervals `Σ_j [l_j .. u_j] · s_j` denotes the set
//! `{ Σ_j x_j·s_j | l_j ≤ x_j ≤ u_j }`. Converting a pair of LMADs to a
//! pair of sums *with matching strides* — by positively distributing the
//! terms of the offset difference across dimensions (footnote 27) — is what
//! enables the theorem's per-dimension reasoning.

use arraymem_symbolic::{Env, Monomial, Poly};

/// One strided interval `[lo .. hi] · stride` (inclusive bounds).
#[derive(Clone, Debug, PartialEq)]
pub struct Interval {
    pub lo: Poly,
    pub hi: Poly,
    pub stride: Poly,
}

impl Interval {
    pub fn point(stride: Poly) -> Interval {
        Interval {
            lo: Poly::zero(),
            hi: Poly::zero(),
            stride,
        }
    }

    /// Shift both bounds by `k` (an element count, not a byte offset).
    pub fn shift(&mut self, k: &Poly) {
        self.lo = self.lo.clone() + k.clone();
        self.hi = self.hi.clone() + k.clone();
    }
}

/// A sum of strided intervals, kept sorted by ascending stride "complexity"
/// so dimension `d` in two matched sums refers to the same stride.
#[derive(Clone, Debug, PartialEq)]
pub struct SumOfInts {
    pub intervals: Vec<Interval>,
}

/// Ordering key for strides: degree of the leading monomial, then the
/// monomial itself, then the coefficient — a syntactic proxy for magnitude
/// that is exact for the stride sets index analysis produces (e.g.
/// `1 < n < n·b − b`).
fn stride_key(s: &Poly) -> (u32, Monomial, i64) {
    match s.leading_term() {
        Some((m, c)) => (m.degree(), m, c),
        None => (0, Monomial::one(), 0),
    }
}

impl SumOfInts {
    /// Build from a *normalized* (non-negative strides) LMAD's dimensions:
    /// each dimension `(card : stride)` becomes `[0 .. card-1]·stride`.
    pub fn from_normalized_dims(dims: &[crate::Dim]) -> SumOfInts {
        let mut intervals: Vec<Interval> = dims
            .iter()
            .map(|d| Interval {
                lo: Poly::zero(),
                hi: d.card.clone() - Poly::constant(1),
                stride: d.stride.clone(),
            })
            .collect();
        intervals.sort_by_key(|a| stride_key(&a.stride));
        SumOfInts { intervals }
    }

    /// Position of the interval with exactly this stride (canonical-form
    /// equality).
    pub fn find_stride(&self, s: &Poly) -> Option<usize> {
        self.intervals.iter().position(|i| &i.stride == s)
    }

    /// Insert a zero-length interval `[0..0]·s` if no interval with stride
    /// `s` exists ("dimensions of length 0 can be introduced or removed at
    /// will", §V-C). Keeps the sort order.
    pub fn ensure_stride(&mut self, s: &Poly) -> usize {
        if let Some(i) = self.find_stride(s) {
            return i;
        }
        let key = stride_key(s);
        let pos = self
            .intervals
            .iter()
            .position(|i| stride_key(&i.stride) > key)
            .unwrap_or(self.intervals.len());
        self.intervals.insert(pos, Interval::point(s.clone()));
        pos
    }

    fn stride_count(&self, s: &Poly) -> usize {
        self.intervals.iter().filter(|i| &i.stride == s).count()
    }

    fn pad_stride_to(&mut self, s: &Poly, count: usize) {
        while self.stride_count(s) < count {
            let key = stride_key(s);
            let pos = self
                .intervals
                .iter()
                .position(|i| stride_key(&i.stride) > key)
                .unwrap_or(self.intervals.len());
            self.intervals.insert(pos, Interval::point(s.clone()));
        }
    }

    /// The union of stride values of two sums, each side padded with
    /// zero-length intervals so both have identical stride sequences
    /// (duplicate strides are padded to the larger multiplicity).
    pub fn match_strides(a: &mut SumOfInts, b: &mut SumOfInts) {
        let mut strides: Vec<Poly> = a
            .intervals
            .iter()
            .chain(b.intervals.iter())
            .map(|i| i.stride.clone())
            .collect();
        strides.dedup_by(|x, y| x == y);
        // dedup only removes adjacent dups; make distinct properly.
        let mut distinct: Vec<Poly> = Vec::new();
        for s in strides {
            if !distinct.contains(&s) {
                distinct.push(s);
            }
        }
        for s in distinct {
            let count = a.stride_count(&s).max(b.stride_count(&s));
            a.pad_stride_to(&s, count);
            b.pad_stride_to(&s, count);
        }
    }

    /// Re-sort intervals into provably ascending stride order, preferring
    /// prover comparisons under `env` (e.g. `b ≤ n` given `n = q·b`) and
    /// falling back to the syntactic key. Insertion sort keeps the order
    /// deterministic so two matched sums sort identically.
    pub fn sort_by_env(&mut self, env: &Env) {
        let n = self.intervals.len();
        for i in 1..n {
            let mut j = i;
            while j > 0 {
                let a = &self.intervals[j - 1].stride;
                let b = &self.intervals[j].stride;
                let swap = if env.prove_le(b, a) && !env.prove_eq(a, b) {
                    !env.prove_le(a, b)
                } else if env.prove_le(a, b) {
                    false
                } else {
                    stride_key(b) < stride_key(a)
                };
                if swap {
                    self.intervals.swap(j - 1, j);
                    j -= 1;
                } else {
                    break;
                }
            }
        }
    }

    /// All interval lower bounds provably non-negative (a precondition of
    /// the theorem).
    pub fn lowers_nonneg(&self, env: &Env) -> bool {
        self.intervals.iter().all(|i| env.prove_nonneg(&i.lo))
    }

    /// The theorem's per-LMAD condition: dimensions are *non-overlapping*
    /// when, scanning by ascending stride, each stride strictly exceeds the
    /// maximum reach of all smaller dimensions:
    /// `s_i > Σ_{j<i} u_j · s_j`.
    ///
    /// Returns `Ok(())` or `Err(i)` with the first violating position.
    pub fn dims_nonoverlapping(&self, env: &Env) -> Result<(), usize> {
        let mut reach = Poly::zero();
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 && !env.prove_lt(&reach, &iv.stride) {
                return Err(i);
            }
            reach = reach + iv.hi.clone() * iv.stride.clone();
        }
        Ok(())
    }

    /// Concrete evaluation of the whole set (test support).
    pub fn eval_points<F: Fn(arraymem_symbolic::Sym) -> Option<i64>>(
        &self,
        lookup: &F,
    ) -> Option<Vec<i64>> {
        let mut points = vec![0i64];
        for iv in &self.intervals {
            let lo = iv.lo.eval(lookup)?;
            let hi = iv.hi.eval(lookup)?;
            let s = iv.stride.eval(lookup)?;
            if hi < lo {
                return Some(Vec::new()); // empty interval: empty set
            }
            let mut next = Vec::with_capacity(points.len() * ((hi - lo + 1) as usize));
            for p in &points {
                for x in lo..=hi {
                    next.push(p + x * s);
                }
            }
            points = next;
        }
        Some(points)
    }
}

impl std::fmt::Display for SumOfInts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "[{:?}..{:?}]·({:?})", iv.lo, iv.hi, iv.stride)?;
        }
        Ok(())
    }
}
