//! Index functions: chains of LMADs mapping logical array indexes to flat
//! offsets inside a memory block (paper §IV).

use crate::lmad::{Dim, Lmad};
use arraymem_symbolic::{Poly, Sym};

/// A triplet-notation slice of one dimension: either a strided range
/// (keeps the dimension) or a fixed index (drops it).
#[derive(Clone, Debug, PartialEq)]
pub enum TripletSlice {
    /// `[start ; len ; step]` — `len` elements starting at `start`,
    /// advancing by `step` (§IV-B).
    Range { start: Poly, len: Poly, step: Poly },
    /// A single index; removes the dimension.
    Fix(Poly),
}

impl TripletSlice {
    pub fn full(len: impl Into<Poly>) -> TripletSlice {
        TripletSlice::Range {
            start: Poly::zero(),
            len: len.into(),
            step: Poly::constant(1),
        }
    }

    pub fn range(start: impl Into<Poly>, len: impl Into<Poly>, step: impl Into<Poly>) -> Self {
        TripletSlice::Range {
            start: start.into(),
            len: len.into(),
            step: step.into(),
        }
    }
}

/// A change-of-layout transformation (paper footnote 12). All of these are
/// O(1) on index functions: no elements move in memory.
#[derive(Clone, Debug, PartialEq)]
pub enum Transform {
    /// Permute dimensions; `perm[k]` is the source dimension that becomes
    /// result dimension `k`. Transposition of a matrix is `Permute([1,0])`.
    Permute(Vec<usize>),
    /// Triplet-notation slicing, one entry per source dimension.
    Slice(Vec<TripletSlice>),
    /// Generalized LMAD slicing (§III-B): the slice LMAD's points index the
    /// flat (row-major) index space of the source array.
    LmadSlice(Lmad),
    /// Reshape to a new logical shape (same number of elements).
    Reshape(Vec<Poly>),
    /// Reverse one dimension.
    Reverse(usize),
}

impl Transform {
    /// The inverse transformation, when one exists (§V-A: "we currently
    /// support only the transformations that are invertible — such as
    /// reverting the elements of a dimension and permuting an array's
    /// dimensions"). `input_shape` is the shape of the transform's *input*
    /// array, needed to invert reshapes. Slices select subsets and are not
    /// invertible.
    pub fn invert(&self, input_shape: &[Poly]) -> Option<Transform> {
        match self {
            Transform::Permute(p) => {
                let mut inv = vec![0; p.len()];
                for (k, &src) in p.iter().enumerate() {
                    inv[src] = k;
                }
                Some(Transform::Permute(inv))
            }
            Transform::Reverse(d) => Some(Transform::Reverse(*d)),
            Transform::Reshape(_) => Some(Transform::Reshape(input_shape.to_vec())),
            Transform::Slice(_) | Transform::LmadSlice(_) => None,
        }
    }

    /// Shape of the result of applying this transform to an array of shape
    /// `in_shape`.
    pub fn result_shape(&self, in_shape: &[Poly]) -> Vec<Poly> {
        match self {
            Transform::Permute(p) => p.iter().map(|&i| in_shape[i].clone()).collect(),
            Transform::Slice(ts) => ts
                .iter()
                .filter_map(|t| match t {
                    TripletSlice::Range { len, .. } => Some(len.clone()),
                    TripletSlice::Fix(_) => None,
                })
                .collect(),
            Transform::LmadSlice(l) => l.shape(),
            Transform::Reshape(s) => s.clone(),
            Transform::Reverse(_) => in_shape.to_vec(),
        }
    }
}

/// The footprint of a **runtime-indexed** (gather/scatter) access: the
/// element positions are read from an index array at execution time, so
/// no affine LMAD summary of the touched cells exists. The only static
/// knowledge is cardinality (`count` accesses happen) and the `extent`
/// the indices are bounds-checked against.
///
/// Every affine reasoning engine in the pipeline must treat an opaque
/// footprint as *potentially overlapping everything inside its extent*:
/// `non_overlap`-style disjointness is never provable against it, and
/// the passes degrade soundly by rejecting (with a remark) instead of
/// optimizing. Lifetime-based reasoning (release scheduling, liveness,
/// lifetime-only block sharing) stays valid — [`OpaqueIxFn::may_touch`]
/// is the conservative affine cover those analyses may use.
#[derive(Clone, Debug, PartialEq)]
pub struct OpaqueIxFn {
    /// Number of runtime-indexed element accesses (the index array's
    /// length).
    pub count: Poly,
    /// The region the runtime indices select within: every access lands
    /// in `[0, extent)` of the underlying array, enforced dynamically
    /// (checked mode reports violations as structured diagnostics; the
    /// other modes fail the run).
    pub extent: Poly,
}

impl OpaqueIxFn {
    pub fn new(count: impl Into<Poly>, extent: impl Into<Poly>) -> OpaqueIxFn {
        OpaqueIxFn {
            count: count.into(),
            extent: extent.into(),
        }
    }

    /// The conservative affine cover: a unit-stride stripe over the whole
    /// extent. Sound for may-touch (liveness) reasoning; useless for
    /// disjointness — never feed it to a non-overlap test expecting the
    /// footprint of the cells actually accessed.
    pub fn may_touch(&self) -> IndexFn {
        IndexFn::row_major(std::slice::from_ref(&self.extent))
    }
}

impl std::fmt::Display for OpaqueIxFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "opaque[{:?} runtime-indexed accesses within extent {:?}]",
            self.count, self.extent
        )
    }
}

/// An index function: a non-empty chain of LMADs (paper §IV-B).
///
/// Application (Fig. 3): apply the **last** LMAD to the logical index,
/// producing an offset; *unrank* that offset with respect to the index
/// space of the previous LMAD; apply it; repeat. The **first** LMAD thus
/// produces the flat offset into the memory block. Most index functions
/// are a single LMAD; chains only arise from reshapes that no single LMAD
/// can express (e.g. flattening a column-major matrix).
#[derive(Clone, PartialEq)]
pub struct IndexFn {
    pub lmads: Vec<Lmad>,
}

impl IndexFn {
    pub fn from_lmad(l: Lmad) -> IndexFn {
        IndexFn { lmads: vec![l] }
    }

    /// Row-major index function for a fresh array of the given shape.
    pub fn row_major(shape: &[Poly]) -> IndexFn {
        IndexFn::from_lmad(Lmad::row_major(shape))
    }

    pub fn col_major(shape: &[Poly]) -> IndexFn {
        IndexFn::from_lmad(Lmad::col_major(shape))
    }

    /// The logical LMAD — the one applied directly to array indexes.
    pub fn logical(&self) -> &Lmad {
        self.lmads.last().unwrap()
    }

    /// Logical array shape.
    pub fn shape(&self) -> Vec<Poly> {
        self.logical().shape()
    }

    pub fn rank(&self) -> usize {
        self.logical().rank()
    }

    /// `Some` iff the chain is a single LMAD.
    pub fn as_single(&self) -> Option<&Lmad> {
        if self.lmads.len() == 1 {
            Some(&self.lmads[0])
        } else {
            None
        }
    }

    /// Symbolic application; only defined for single-LMAD chains (unranking
    /// is not polynomial). Multi-LMAD chains are applied concretely via
    /// [`crate::ConcreteIxFn`].
    pub fn apply(&self, idx: &[Poly]) -> Option<Poly> {
        Some(self.as_single()?.apply(idx))
    }

    /// All variables appearing in the chain.
    pub fn vars(&self) -> Vec<Sym> {
        let mut vs: Vec<Sym> = self.lmads.iter().flat_map(|l| l.vars()).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    pub fn subst(&self, s: Sym, value: &Poly) -> IndexFn {
        IndexFn {
            lmads: self.lmads.iter().map(|l| l.subst(s, value)).collect(),
        }
    }

    /// Evaluate to a concrete index function.
    pub fn eval<F: Fn(Sym) -> Option<i64>>(&self, lookup: &F) -> Option<crate::ConcreteIxFn> {
        let mut lmads = Vec::with_capacity(self.lmads.len());
        for l in &self.lmads {
            lmads.push(l.eval(lookup)?);
        }
        Some(crate::ConcreteIxFn { lmads })
    }

    /// Apply a change-of-layout transformation, producing the index function
    /// of the result array. O(1); never manifests elements.
    pub fn transform(&self, t: &Transform) -> Option<IndexFn> {
        let mut out = self.clone();
        let logical = out.lmads.last_mut().unwrap();
        match t {
            Transform::Permute(p) => {
                if p.len() != logical.rank() {
                    return None;
                }
                *logical = logical.permute(p);
            }
            Transform::Reverse(d) => {
                if *d >= logical.rank() {
                    return None;
                }
                let dim = &mut logical.dims[*d];
                logical.offset = logical.offset.clone()
                    + (dim.card.clone() - Poly::constant(1)) * dim.stride.clone();
                dim.stride = -(dim.stride.clone());
            }
            Transform::Slice(ts) => {
                if ts.len() != logical.rank() {
                    return None;
                }
                let mut offset = logical.offset.clone();
                let mut dims = Vec::new();
                for (sl, d) in ts.iter().zip(&logical.dims) {
                    match sl {
                        TripletSlice::Range { start, len, step } => {
                            offset = offset + start.clone() * d.stride.clone();
                            dims.push(Dim {
                                card: len.clone(),
                                stride: d.stride.clone() * step.clone(),
                            });
                        }
                        TripletSlice::Fix(i) => {
                            offset = offset + i.clone() * d.stride.clone();
                        }
                    }
                }
                *logical = Lmad { offset, dims };
            }
            Transform::LmadSlice(s) => {
                // The slice's points index the flat row-major space of the
                // logical array; push and coalesce.
                out.lmads.push(s.clone());
                out.coalesce();
            }
            Transform::Reshape(new_shape) => {
                if logical.is_row_major_contiguous() {
                    let off = logical.offset.clone();
                    let mut fresh = Lmad::row_major(new_shape);
                    fresh.offset = off;
                    *logical = fresh;
                } else {
                    out.lmads.push(Lmad::row_major(new_shape));
                    out.coalesce();
                }
            }
        }
        Some(out)
    }

    /// Try to shrink the chain: a pushed LMAD `S` composes with its
    /// predecessor `L` when `L` is rank-1 (`S`'s flat positions directly
    /// scale through `L`'s stride) or when `L` is row-major contiguous
    /// (unrank-then-apply is the identity plus `L`'s offset).
    fn coalesce(&mut self) {
        loop {
            if self.lmads.len() < 2 {
                return;
            }
            let prev = self.lmads[self.lmads.len() - 2].clone();
            let last = self.lmads.last().unwrap().clone();
            let fused = if prev.rank() == 1 {
                let s = prev.dims[0].stride.clone();
                Some(Lmad {
                    offset: prev.offset.clone() + last.offset.clone() * s.clone(),
                    dims: last
                        .dims
                        .iter()
                        .map(|d| Dim {
                            card: d.card.clone(),
                            stride: d.stride.clone() * s.clone(),
                        })
                        .collect(),
                })
            } else if prev.is_row_major_contiguous() {
                Some(Lmad {
                    offset: prev.offset.clone() + last.offset.clone(),
                    dims: last.dims.clone(),
                })
            } else {
                None
            };
            match fused {
                Some(f) => {
                    self.lmads.pop();
                    *self.lmads.last_mut().unwrap() = f;
                }
                None => return,
            }
        }
    }

    /// Rebase: given that this index function addresses the *destination*
    /// space (e.g. the `W` slice of `xss`), produce the index function of an
    /// array whose transform `t` yielded the short-circuited array — i.e.
    /// solve `W = t ∘ ixfn` for `ixfn` by applying `t⁻¹` (paper §V-A(a)).
    pub fn untransform(&self, t: &Transform, input_shape: &[Poly]) -> Option<IndexFn> {
        let inv = t.invert(input_shape)?;
        self.transform(&inv)
    }
}

impl std::fmt::Debug for IndexFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(l) = self.as_single() {
            write!(f, "{l:?}")
        } else {
            write!(f, "compose[")?;
            for (i, l) in self.lmads.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∘ ")?;
                }
                write!(f, "{l:?}")?;
            }
            write!(f, "]")
        }
    }
}
