//! The symbolic LMAD type and its basic operations.

use arraymem_symbolic::{Env, Poly};

/// One LMAD dimension: a cardinality (number of points) and a stride (the
/// linearized distance between consecutive points on this dimension).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Dim {
    pub card: Poly,
    pub stride: Poly,
}

impl Dim {
    pub fn new(card: impl Into<Poly>, stride: impl Into<Poly>) -> Dim {
        Dim {
            card: card.into(),
            stride: stride.into(),
        }
    }
}

impl std::fmt::Debug for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:?} : {:?})", self.card, self.stride)
    }
}

/// A q-dimensional LMAD: an offset plus `q` `(cardinality : stride)` pairs,
/// outermost dimension first (paper eq. (1)).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Lmad {
    pub offset: Poly,
    pub dims: Vec<Dim>,
}

impl Lmad {
    pub fn new(offset: impl Into<Poly>, dims: Vec<Dim>) -> Lmad {
        Lmad {
            offset: offset.into(),
            dims,
        }
    }

    /// Row-major index function `R(d1, ..., dq)` with zero offset
    /// (paper §IV-A): strides are suffix products of the dimensions.
    pub fn row_major(shape: &[Poly]) -> Lmad {
        let mut dims = Vec::with_capacity(shape.len());
        let mut stride = Poly::constant(1);
        for d in shape.iter().rev() {
            dims.push(Dim {
                card: d.clone(),
                stride: stride.clone(),
            });
            stride = stride * d.clone();
        }
        dims.reverse();
        Lmad::new(Poly::zero(), dims)
    }

    /// Column-major index function `C(d1, ..., dq)` with zero offset:
    /// strides are prefix products.
    pub fn col_major(shape: &[Poly]) -> Lmad {
        let mut dims = Vec::with_capacity(shape.len());
        let mut stride = Poly::constant(1);
        for d in shape.iter() {
            dims.push(Dim {
                card: d.clone(),
                stride: stride.clone(),
            });
            stride = stride * d.clone();
        }
        Lmad::new(Poly::zero(), dims)
    }

    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The logical shape (cardinalities).
    pub fn shape(&self) -> Vec<Poly> {
        self.dims.iter().map(|d| d.card.clone()).collect()
    }

    /// Total number of points (product of cardinalities).
    pub fn num_points(&self) -> Poly {
        self.dims
            .iter()
            .fold(Poly::constant(1), |acc, d| acc * d.card.clone())
    }

    /// Apply the LMAD as an index function (paper §IV-A):
    /// `L(y1..yq) = offset + Σ yi·si`.
    pub fn apply(&self, idx: &[Poly]) -> Poly {
        assert_eq!(idx.len(), self.dims.len(), "rank mismatch in Lmad::apply");
        let mut out = self.offset.clone();
        for (y, d) in idx.iter().zip(&self.dims) {
            out = out + y.clone() * d.stride.clone();
        }
        out
    }

    /// Permute the dimensions (transposition is `permute(&[1, 0])`).
    pub fn permute(&self, perm: &[usize]) -> Lmad {
        assert_eq!(perm.len(), self.dims.len());
        let dims = perm.iter().map(|&i| self.dims[i].clone()).collect();
        Lmad::new(self.offset.clone(), dims)
    }

    /// Is this LMAD row-major contiguous (strides are exactly the suffix
    /// products of the cardinalities, innermost stride 1)? Offset may be
    /// arbitrary. Uses canonical polynomial equality.
    pub fn is_row_major_contiguous(&self) -> bool {
        let mut stride = Poly::constant(1);
        for d in self.dims.iter().rev() {
            if d.stride != stride {
                return false;
            }
            stride = stride * d.card.clone();
        }
        true
    }

    /// Substitute a variable throughout offset, cardinals and strides.
    pub fn subst(&self, s: arraymem_symbolic::Sym, value: &Poly) -> Lmad {
        Lmad {
            offset: self.offset.subst(s, value),
            dims: self
                .dims
                .iter()
                .map(|d| Dim {
                    card: d.card.subst(s, value),
                    stride: d.stride.subst(s, value),
                })
                .collect(),
        }
    }

    /// All variables appearing anywhere in the LMAD.
    pub fn vars(&self) -> Vec<arraymem_symbolic::Sym> {
        let mut vs = self.offset.vars();
        for d in &self.dims {
            vs.extend(d.card.vars());
            vs.extend(d.stride.vars());
        }
        vs.sort();
        vs.dedup();
        vs
    }

    pub fn contains_var(&self, s: arraymem_symbolic::Sym) -> bool {
        self.offset.contains_var(s)
            || self
                .dims
                .iter()
                .any(|d| d.card.contains_var(s) || d.stride.contains_var(s))
    }

    /// Normalize to an *abstract-set*-equivalent LMAD with provably
    /// non-negative strides (paper §V-C: "an LMAD can always be normalized
    /// to have only positive strides"): a dimension with stride `s < 0` is
    /// replaced by stride `-s` with the offset advanced to its last point.
    /// Dimensions whose stride sign cannot be determined make normalization
    /// fail (`None`), and clients fail conservatively.
    ///
    /// Also drops unit-cardinality and zero-stride dimensions, which do not
    /// change the point set (as long as cardinalities are positive, which
    /// the caller must ensure).
    pub fn normalize_set(&self, env: &Env) -> Option<Lmad> {
        let mut offset = self.offset.clone();
        let mut dims = Vec::new();
        for d in &self.dims {
            if env.prove_eq(&d.card, &Poly::constant(1)) || d.stride.is_zero() {
                continue; // single point on this dim; contributes index 0
            }
            if env.prove_nonneg(&d.stride) {
                dims.push(d.clone());
            } else if env.prove_nonneg(&(-(d.stride.clone()))) {
                // negative stride: flip
                offset = offset + (d.card.clone() - Poly::constant(1)) * d.stride.clone();
                dims.push(Dim {
                    card: d.card.clone(),
                    stride: -(d.stride.clone()),
                });
            } else {
                return None;
            }
        }
        Some(Lmad { offset, dims })
    }

    /// Evaluate to a concrete LMAD with the given variable assignment.
    pub fn eval<F: Fn(arraymem_symbolic::Sym) -> Option<i64>>(
        &self,
        lookup: &F,
    ) -> Option<crate::ConcreteLmad> {
        let offset = self.offset.eval(lookup)?;
        let mut dims = Vec::with_capacity(self.dims.len());
        for d in &self.dims {
            dims.push((d.card.eval(lookup)?, d.stride.eval(lookup)?));
        }
        Some(crate::ConcreteLmad { offset, dims })
    }
}

impl std::fmt::Debug for Lmad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} + {{", self.offset)?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d:?}")?;
        }
        write!(f, "}}")
    }
}
