//! Aggregation of memory-access summaries across loops (paper §II-B, §V-B).
//!
//! Summaries are finite unions of LMADs, with a `Top` element for accesses
//! that cannot be represented (e.g. multi-LMAD index functions, footnote
//! 26). Aggregating an access across a loop of index `i ∈ [0, count)`
//! promotes the `i`-linear part of the offset to a fresh LMAD dimension
//! whose stride is the offset difference of consecutive iterations.

use crate::lmad::{Dim, Lmad};
use crate::overlap::non_overlap;
use arraymem_symbolic::{Env, Poly, Sym};

/// Cap on the number of LMADs a summary may hold before collapsing to
/// `Top`; keeps the pairwise non-overlap checks cheap.
const MAX_SUMMARY_LMADS: usize = 16;

/// Union of the instances of `l` for `var = 0 .. count-1`.
///
/// Returns `None` when the union is not LMAD-representable (conservative
/// clients must then use `Top`). Per footnote 8, a loop variable occurring
/// in a *cardinality* is over-approximated by substituting the bound that
/// maximizes it; occurrence in a *stride* is not representable.
pub fn aggregate(l: &Lmad, var: Sym, count: &Poly, env: &Env) -> Option<Lmad> {
    if count.contains_var(var) {
        return None;
    }
    for d in &l.dims {
        if d.stride.contains_var(var) {
            return None;
        }
    }
    // Split offset = base + var·k with k free of var (linearity check).
    let k = linear_coefficient(&l.offset, var)?;
    let base = l.offset.subst(var, &Poly::zero());
    // Over-approximate var occurrences in cardinalities.
    let hi = count.clone() - Poly::constant(1);
    let mut dims = Vec::with_capacity(l.dims.len() + 1);
    if !k.is_zero() {
        dims.push(Dim {
            card: count.clone(),
            stride: k,
        });
    }
    for d in &l.dims {
        let card = if d.card.contains_var(var) {
            let at_hi = d.card.subst(var, &hi);
            let at_lo = d.card.subst(var, &Poly::zero());
            if env.prove_le(&at_lo, &at_hi) {
                at_hi
            } else if env.prove_le(&at_hi, &at_lo) {
                at_lo
            } else {
                return None;
            }
        } else {
            d.card.clone()
        };
        dims.push(Dim {
            card,
            stride: d.stride.clone(),
        });
    }
    Some(Lmad { offset: base, dims })
}

/// `Some(k)` iff `p = base + var·k` with `k` free of `var` (i.e. `p` is
/// linear in `var`).
fn linear_coefficient(p: &Poly, var: Sym) -> Option<Poly> {
    let mut k = Poly::zero();
    for (m, c) in p.terms() {
        match m.power(var) {
            0 => {}
            1 => {
                let rest = m.try_div(&arraymem_symbolic::Monomial::var(var))?;
                if rest.power(var) > 0 {
                    return None;
                }
                k = k + Poly::from_terms([(rest, c)]);
            }
            _ => return None,
        }
    }
    if k.contains_var(var) {
        None
    } else {
        Some(k)
    }
}

/// A summary of memory locations: either a representable union of LMADs or
/// `Top` (all of memory — every overlap query answers "may overlap").
#[derive(Clone, Debug)]
pub enum Summary {
    Set(Vec<Lmad>),
    Top,
}

impl Summary {
    pub fn empty() -> Summary {
        Summary::Set(Vec::new())
    }

    pub fn top() -> Summary {
        Summary::Top
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Summary::Set(v) if v.is_empty())
    }

    pub fn is_top(&self) -> bool {
        matches!(self, Summary::Top)
    }

    /// Add one LMAD to the summary (set union).
    pub fn add(&mut self, l: Lmad) {
        match self {
            Summary::Top => {}
            Summary::Set(v) => {
                if v.len() >= MAX_SUMMARY_LMADS {
                    *self = Summary::Top;
                } else {
                    v.push(l);
                }
            }
        }
    }

    /// Set union of two summaries.
    pub fn union(&mut self, other: &Summary) {
        match other {
            Summary::Top => *self = Summary::Top,
            Summary::Set(v) => {
                for l in v {
                    self.add(l.clone());
                }
            }
        }
    }

    /// Aggregate every member across a loop variable; any failure collapses
    /// to `Top` (conservative).
    pub fn aggregate(&self, var: Sym, count: &Poly, env: &Env) -> Summary {
        match self {
            Summary::Top => Summary::Top,
            Summary::Set(v) => {
                let mut out = Summary::empty();
                for l in v {
                    match aggregate(l, var, count, env) {
                        Some(a) => out.add(a),
                        None => return Summary::Top,
                    }
                }
                out
            }
        }
    }

    /// Substitute a variable in all member LMADs.
    pub fn subst(&self, var: Sym, value: &Poly) -> Summary {
        match self {
            Summary::Top => Summary::Top,
            Summary::Set(v) => Summary::Set(v.iter().map(|l| l.subst(var, value)).collect()),
        }
    }

    /// Prove that the summary is disjoint from one LMAD.
    pub fn disjoint_from_lmad(&self, l: &Lmad, env: &Env) -> bool {
        match self {
            Summary::Top => false,
            Summary::Set(v) => v.iter().all(|m| non_overlap(m, l, env)),
        }
    }

    /// Prove that two summaries are disjoint (pairwise non-overlap).
    pub fn disjoint_from(&self, other: &Summary, env: &Env) -> bool {
        match (self, other) {
            (Summary::Set(a), _) if a.is_empty() => true,
            (_, Summary::Set(b)) if b.is_empty() => true,
            (Summary::Set(a), Summary::Set(b)) => {
                a.iter().all(|x| b.iter().all(|y| non_overlap(x, y, env)))
            }
            _ => false,
        }
    }

    pub fn lmads(&self) -> Option<&[Lmad]> {
        match self {
            Summary::Top => None,
            Summary::Set(v) => Some(v),
        }
    }
}
