//! A persistent worker pool with a work-stealing chunked parallel-for.
//!
//! The paper's GPU runtime launches kernels onto an already-running
//! device; spawning OS threads per `map` statement would be a substrate
//! cost the measured memory traffic never contains. This pool plays the
//! device's role on the CPU: workers are spawned once (lazily, growing on
//! demand up to the largest thread count any dispatch requests, capped at
//! [`MAX_THREADS`]), parked on a condvar between jobs, and reused across
//! every map statement of every run.
//!
//! Dispatch is **work-stealing over an atomic chunk counter**: the index
//! space `0..n` is cut into chunks of `max(MIN_SEQ, n / (workers · 4))`
//! iterations, and every participant — the caller runs as slot 0 —
//! repeatedly claims the next chunk with a `fetch_add` until the range is
//! exhausted. Skewed iterations therefore never leave workers idle the
//! way a static per-worker split does: whoever finishes early steals the
//! remaining chunks. Trip counts below `2 · MIN_SEQ` run inline on the
//! caller; the memory-traffic behaviour the benchmarks measure is
//! identical either way. Each dispatch reports a [`DispatchInfo`] —
//! chunks issued, chunks stolen by non-caller slots, workers engaged vs
//! offered — which the VM surfaces as `Stats` mechanism counters.
//!
//! The requested thread count is honored even beyond the hardware
//! parallelism (oversubscription), so thread-scaling sweeps behave
//! uniformly on any host; `ARRAYMEM_THREADS` overrides the default
//! request ([`default_threads`]).
//!
//! Concurrent dispatches (e.g. parallel test threads sharing the global
//! pool) are serialized by a dispatch lock. Worker panics are caught
//! (keeping the pool alive), the surviving participants drain the
//! remaining chunks, and the panic is re-raised exactly once on the
//! dispatching thread after the job completes, so the borrowed closure
//! never outlives its frame.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Hard cap on worker slots (caller included) a dispatch may request —
/// a backstop against pathological thread counts, far above any sensible
/// oversubscription.
pub const MAX_THREADS: usize = 64;

/// The default per-dispatch thread budget: `ARRAYMEM_THREADS` when set
/// (a number, or `max` for the hardware parallelism), else the number of
/// available hardware threads. Read once.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        match std::env::var("ARRAYMEM_THREADS") {
            Ok(v) if v.trim().eq_ignore_ascii_case("max") => hw,
            Ok(v) => v
                .trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .map(|n| n.min(MAX_THREADS))
                .unwrap_or(hw),
            Err(_) => hw,
        }
    })
}

/// Minimum iterations a chunk must hold before parallelism pays for the
/// claim's `fetch_add`; trip counts below `2 * MIN_SEQ` run inline.
const MIN_SEQ: i64 = 128;

/// Target number of chunks per participating worker: small enough that
/// claiming stays cheap, large enough that early finishers find work to
/// steal when iterations are skewed.
const CHUNKS_PER_WORKER: i64 = 4;

/// How one `parallel_for` call was executed — the per-dispatch
/// work-stealing accounting the VM aggregates into `Stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DispatchInfo {
    /// Whether the job went through the worker pool (vs inline).
    pub dispatched: bool,
    /// Worker slots offered to the job (caller included).
    pub workers_offered: usize,
    /// Participants that claimed at least one chunk.
    pub workers_engaged: usize,
    /// Chunks claimed in total.
    pub chunks: u64,
    /// Chunks claimed by a slot other than the calling thread.
    pub chunks_stolen: u64,
}

impl DispatchInfo {
    fn inline() -> DispatchInfo {
        DispatchInfo {
            dispatched: false,
            workers_offered: 1,
            workers_engaged: 1,
            chunks: 1,
            chunks_stolen: 0,
        }
    }
}

/// Shared per-job state, stack-allocated in the dispatcher's frame: the
/// atomic chunk cursor every participant claims from, plus the steal
/// accounting behind [`DispatchInfo`].
#[derive(Default)]
struct JobCtl {
    next: AtomicI64,
    chunks: AtomicU64,
    stolen: AtomicU64,
    engaged: AtomicUsize,
}

/// A type-erased borrow of the dispatched closure and its [`JobCtl`].
/// The dispatcher blocks until every participating worker has finished
/// the job, so neither borrow escapes the `dispatch` frame.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(i64, usize) + Sync),
    ctl: *const JobCtl,
    n: i64,
    chunk: i64,
    /// Worker slots participating in this job (caller is slot 0).
    usable: usize,
}

unsafe impl Send for Job {}

#[derive(Default)]
struct Ctrl {
    /// Monotonic job counter; workers run each epoch at most once.
    epoch: u64,
    job: Option<Job>,
    /// Background workers still running the current job.
    remaining: usize,
    /// Set when any worker's steal loop panicked during the current job.
    panicked: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher parks here until `remaining == 0`.
    done: Condvar,
    /// Serializes dispatches and guards the count of spawned background
    /// workers (the pool grows on demand under this lock).
    dispatch: Mutex<usize>,
}

/// The persistent pool: worker slot 0 is whichever thread dispatches; the
/// background threads own slots `1..`.
pub struct WorkerPool {
    shared: &'static Shared,
}

impl WorkerPool {
    fn start() -> WorkerPool {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            ctrl: Mutex::new(Ctrl::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            dispatch: Mutex::new(0),
        }));
        WorkerPool { shared }
    }

    /// Worker slots currently alive, including the caller's slot 0. Grows
    /// with the largest `usable` any dispatch has requested.
    pub fn slots(&self) -> usize {
        *self.shared.dispatch.lock().unwrap() + 1
    }

    /// Dispatch `f(i, worker)` over `0..n` across `usable` slots (the
    /// caller steals as slot 0). Blocks until the job completes; panics
    /// from any participant propagate (once) after completion, leaving
    /// the pool reusable.
    fn dispatch<F>(&self, usable: usize, n: i64, f: &F) -> DispatchInfo
    where
        F: Fn(i64, usize) + Sync,
    {
        debug_assert!((2..=MAX_THREADS).contains(&usable));
        // One dispatch at a time: the job slot in `Ctrl` is singular, and
        // growing the pool must not race another dispatch's publication.
        let mut spawned = self.shared.dispatch.lock().unwrap();
        let shared = self.shared;
        while *spawned + 1 < usable {
            let slot = *spawned + 1;
            std::thread::Builder::new()
                .name(format!("arraymem-worker-{slot}"))
                .spawn(move || worker_loop(shared, slot))
                .expect("spawning pool worker");
            *spawned += 1;
        }
        let chunk = (n / (usable as i64 * CHUNKS_PER_WORKER)).max(MIN_SEQ);
        let ctl = JobCtl::default();
        // Erase the borrows' lifetimes: the job cannot outlive this frame
        // because we do not return until `remaining == 0` below.
        let erased: *const (dyn Fn(i64, usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(i64, usize) + Sync), &'static (dyn Fn(i64, usize) + Sync)>(
                f as &(dyn Fn(i64, usize) + Sync),
            )
        };
        {
            let mut ctrl = self.shared.ctrl.lock().unwrap();
            debug_assert_eq!(ctrl.remaining, 0, "pool dispatched re-entrantly");
            ctrl.epoch += 1;
            ctrl.job = Some(Job {
                f: erased,
                ctl: &ctl,
                n,
                chunk,
                usable,
            });
            // Every spawned worker checks in (non-participants only to
            // bump the epoch), but only participants hold up completion.
            ctrl.remaining = usable - 1;
            ctrl.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller is worker 0: it steals chunks like everyone else.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            steal_loop(f, &ctl, n, chunk, 0);
        }));
        let workers_panicked = {
            let mut ctrl = self.shared.ctrl.lock().unwrap();
            while ctrl.remaining > 0 {
                ctrl = self.shared.done.wait(ctrl).unwrap();
            }
            ctrl.job = None;
            ctrl.panicked
        };
        let info = DispatchInfo {
            dispatched: true,
            workers_offered: usable,
            workers_engaged: ctl.engaged.load(Ordering::Relaxed),
            chunks: ctl.chunks.load(Ordering::Relaxed),
            chunks_stolen: ctl.stolen.load(Ordering::Relaxed),
        };
        drop(spawned);
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if workers_panicked {
            panic!("worker panicked");
        }
        info
    }
}

/// Claim chunks off the shared cursor until the range is exhausted. A
/// panic inside `f` aborts only this participant's stealing; the other
/// participants drain the remaining chunks.
fn steal_loop<F: Fn(i64, usize) + ?Sized>(f: &F, ctl: &JobCtl, n: i64, chunk: i64, slot: usize) {
    let mut engaged = false;
    loop {
        let start = ctl.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            return;
        }
        if !engaged {
            engaged = true;
            ctl.engaged.fetch_add(1, Ordering::Relaxed);
        }
        ctl.chunks.fetch_add(1, Ordering::Relaxed);
        if slot != 0 {
            ctl.stolen.fetch_add(1, Ordering::Relaxed);
        }
        let end = (start + chunk).min(n);
        for i in start..end {
            f(i, slot);
        }
    }
}

fn worker_loop(shared: &'static Shared, slot: usize) {
    let mut seen = 0u64;
    let mut ctrl = shared.ctrl.lock().unwrap();
    loop {
        while ctrl.epoch == seen {
            ctrl = shared.work.wait(ctrl).unwrap();
        }
        seen = ctrl.epoch;
        let Some(job) = ctrl.job else { continue };
        if slot >= job.usable {
            continue;
        }
        drop(ctrl);
        let f = unsafe { &*job.f };
        let ctl = unsafe { &*job.ctl };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            steal_loop(f, ctl, job.n, job.chunk, slot);
        }));
        ctrl = shared.ctrl.lock().unwrap();
        if result.is_err() {
            ctrl.panicked = true;
        }
        ctrl.remaining -= 1;
        if ctrl.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The process-wide pool, started on first parallel dispatch.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::start)
}

/// Run `f(i)` for every `i` in `0..n`, using up to `threads` workers.
pub fn parallel_for<F>(threads: usize, n: i64, f: F) -> DispatchInfo
where
    F: Fn(i64) + Sync,
{
    parallel_for_worker(threads, n, |i, _| f(i))
}

/// As [`parallel_for`], additionally passing the worker id (for private
/// per-worker scratch, like GPU private memory). The worker id is always
/// `< threads`.
pub fn parallel_for_worker<F>(threads: usize, n: i64, f: F) -> DispatchInfo
where
    F: Fn(i64, usize) + Sync,
{
    if n <= 0 {
        return DispatchInfo {
            chunks: 0,
            workers_engaged: 0,
            ..DispatchInfo::inline()
        };
    }
    let by_trip = (n / MIN_SEQ).max(1) as usize;
    let usable = threads.clamp(1, MAX_THREADS).min(by_trip);
    if usable <= 1 {
        for i in 0..n {
            f(i, 0);
        }
        return DispatchInfo::inline();
    }
    global().dispatch(usable, n, &f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn covers_all_indices_sequential() {
        let sum = AtomicI64::new(0);
        let info = parallel_for(1, 100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert!(!info.dispatched, "one thread must run inline");
    }

    #[test]
    fn covers_all_indices_parallel() {
        let sum = AtomicI64::new(0);
        let info = parallel_for(8, 10_000, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
        assert!(info.dispatched);
        assert!(info.workers_offered <= 8);
        assert!(info.workers_engaged >= 1);
        assert!(info.chunks >= info.chunks_stolen);
    }

    #[test]
    fn empty_range_is_noop() {
        let info = parallel_for(4, 0, |_| panic!("must not run"));
        assert!(!info.dispatched);
        assert_eq!(info.chunks, 0);
    }

    #[test]
    fn small_trip_counts_run_inline() {
        let hits = AtomicI64::new(0);
        let info = parallel_for(8, MIN_SEQ, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!info.dispatched, "below 2*MIN_SEQ must run inline");
        assert_eq!(hits.load(Ordering::Relaxed), MIN_SEQ);
    }

    /// The inline path and a parallel dispatch must produce bit-identical
    /// results for the same trip count — the regression the VM relies on
    /// when a map falls under the inline threshold on one machine but
    /// dispatches on another.
    #[test]
    fn inline_and_parallel_runs_are_bit_identical() {
        let n = 8 * MIN_SEQ;
        let run = |threads: usize| -> (Vec<i64>, bool) {
            let out: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(0)).collect();
            let info = parallel_for(threads, n, |i| {
                out[i as usize].store(i * 31 + 7, Ordering::Relaxed);
            });
            (
                out.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                info.dispatched,
            )
        };
        let (seq, seq_disp) = run(1);
        let (par, par_disp) = run(6);
        assert!(!seq_disp && par_disp);
        assert_eq!(seq, par, "parallel dispatch diverged from inline");
    }

    #[test]
    fn worker_ids_stay_below_thread_budget() {
        for threads in 1..=8usize {
            let max_seen = AtomicUsize::new(0);
            let count = AtomicI64::new(0);
            parallel_for_worker(threads, 4096, |_, w| {
                max_seen.fetch_max(w, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert!(max_seen.load(Ordering::Relaxed) < threads);
            assert_eq!(count.load(Ordering::Relaxed), 4096);
        }
    }

    #[test]
    fn uneven_widths_cover_every_index() {
        for n in [1i64, 7, 255, 256, 257, 1000, 4097, 10_000] {
            let sum = AtomicI64::new(0);
            parallel_for(5, n, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn pool_survives_reuse_across_many_dispatches() {
        let total = AtomicI64::new(0);
        for _ in 0..200 {
            parallel_for(4, 2048, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 2048);
    }

    /// A skewed dispatch where the caller's first chunk is slow: the
    /// background workers must steal the remaining chunks off the shared
    /// cursor instead of idling behind a static split.
    #[test]
    fn skewed_iterations_are_stolen() {
        let n = 16 * MIN_SEQ;
        let done = AtomicI64::new(0);
        let info = parallel_for_worker(4, n, |i, _| {
            if i == 0 {
                // Park the caller inside its first chunk long enough for
                // the workers to wake and drain the cursor.
                std::thread::sleep(Duration::from_millis(150));
            }
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), n);
        assert!(info.dispatched);
        assert!(
            info.chunks_stolen >= 1,
            "workers must steal chunks while the caller is stuck: {info:?}"
        );
        assert!(info.workers_engaged >= 2, "{info:?}");
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let r = std::panic::catch_unwind(|| {
            parallel_for(8, 10_000, |i| {
                if i == 9_999 {
                    panic!("deliberate test panic");
                }
            });
        });
        assert!(r.is_err(), "the panic must reach the dispatcher");
        // The pool must still work afterwards.
        let sum = AtomicI64::new(0);
        parallel_for(8, 2048, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 2048 * 2047 / 2);
    }

    /// Stress the panic path *during stealing*: a worker dies mid-job
    /// while other participants are still claiming chunks. Every
    /// dispatch must re-raise exactly once (the catch_unwind below), the
    /// surviving participants must drain the cursor, and the pool must
    /// stay fully usable across many such failures.
    #[test]
    fn panic_during_steal_stress() {
        let n = 32 * MIN_SEQ;
        for round in 0..25 {
            let poison = (round * 997) % n; // a different chunk each round
            let r = std::panic::catch_unwind(|| {
                parallel_for(6, n, |i| {
                    if i == poison {
                        panic!("poisoned index");
                    }
                });
            });
            assert!(r.is_err(), "round {round}: panic must propagate");
            // A clean dispatch right after must succeed and cover the
            // whole range.
            let sum = AtomicI64::new(0);
            let info = parallel_for(6, n, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert!(info.dispatched);
            assert_eq!(
                sum.load(Ordering::Relaxed),
                n * (n - 1) / 2,
                "round {round}"
            );
        }
    }

    /// Concurrent dispatches from several threads are serialized by the
    /// dispatch lock — each job still covers its whole range.
    #[test]
    fn concurrent_dispatches_are_serialized() {
        let flag = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let sum = AtomicI64::new(0);
                        parallel_for(4, 4096, |i| {
                            sum.fetch_add(i, Ordering::Relaxed);
                        });
                        if sum.load(Ordering::Relaxed) != 4096 * 4095 / 2 {
                            flag.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(
            !flag.load(Ordering::Relaxed),
            "a concurrent job lost indices"
        );
    }
}
