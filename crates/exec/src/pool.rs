//! A persistent worker pool with a chunked parallel-for.
//!
//! The paper's GPU runtime launches kernels onto an already-running
//! device; spawning OS threads per `map` statement would be a substrate
//! cost the measured memory traffic never contains. This pool plays the
//! device's role on the CPU: `available_parallelism() - 1` workers are
//! spawned once (lazily, on first parallel dispatch), parked on a condvar
//! between jobs, and reused across every map statement of every run.
//!
//! Dispatch is statically chunked (GPU thread-block style): worker `t`
//! executes indices `[t·chunk, (t+1)·chunk)`, with the caller
//! participating as worker 0 so a dispatch never context-switches for
//! small worker counts. With one hardware thread (or small trip counts)
//! the loop runs inline — the memory-traffic behaviour the benchmarks
//! measure is identical either way.
//!
//! Worker panics are caught (keeping the pool alive) and re-raised on the
//! dispatching thread after every worker has finished the job, so the
//! borrowed closure never outlives its frame.

use std::sync::{Condvar, Mutex, OnceLock};

/// Number of available hardware threads.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum iterations per thread before parallelism pays for itself.
const MIN_CHUNK: i64 = 256;

/// A type-erased borrow of the dispatched closure. The dispatcher blocks
/// until every participating worker has finished the job, so the borrow
/// never escapes the `parallel_for_worker` frame.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(i64, usize) + Sync),
    n: i64,
    chunk: i64,
    /// Worker slots participating in this job (caller is slot 0).
    usable: usize,
}

unsafe impl Send for Job {}

#[derive(Default)]
struct Ctrl {
    /// Monotonic job counter; workers run each epoch at most once.
    epoch: u64,
    job: Option<Job>,
    /// Background workers still running the current job.
    remaining: usize,
    /// Set when any worker's chunk panicked during the current job.
    panicked: bool,
}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher parks here until `remaining == 0`.
    done: Condvar,
}

/// The persistent pool: worker slot 0 is whichever thread dispatches; the
/// background threads own slots `1..slots`.
pub struct WorkerPool {
    shared: &'static Shared,
    slots: usize,
}

impl WorkerPool {
    fn start() -> WorkerPool {
        let slots = default_threads();
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            ctrl: Mutex::new(Ctrl::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        }));
        for slot in 1..slots {
            std::thread::Builder::new()
                .name(format!("arraymem-worker-{slot}"))
                .spawn(move || worker_loop(shared, slot))
                .expect("spawning pool worker");
        }
        WorkerPool { shared, slots }
    }

    /// Worker slots including the caller.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Dispatch `f(i, worker)` over `0..n` across up to `usable` slots
    /// (the caller runs slot 0 inline). Blocks until the job completes;
    /// panics from any worker (or the caller's own chunk) propagate after
    /// completion, leaving the pool reusable.
    fn dispatch<F>(&self, usable: usize, n: i64, chunk: i64, f: &F)
    where
        F: Fn(i64, usize) + Sync,
    {
        debug_assert!(usable >= 2 && usable <= self.slots);
        // Erase the closure's lifetime: the job cannot outlive this frame
        // because we do not return until `remaining == 0` below.
        let erased: *const (dyn Fn(i64, usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(i64, usize) + Sync), &'static (dyn Fn(i64, usize) + Sync)>(
                f as &(dyn Fn(i64, usize) + Sync),
            )
        };
        {
            let mut ctrl = self.shared.ctrl.lock().unwrap();
            debug_assert_eq!(ctrl.remaining, 0, "pool dispatched re-entrantly");
            ctrl.epoch += 1;
            ctrl.job = Some(Job {
                f: erased,
                n,
                chunk,
                usable,
            });
            ctrl.remaining = usable - 1;
            ctrl.panicked = false;
            self.shared.work.notify_all();
        }
        // The caller is worker 0.
        let own = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_chunk(f, 0, n, chunk);
        }));
        let workers_panicked = {
            let mut ctrl = self.shared.ctrl.lock().unwrap();
            while ctrl.remaining > 0 {
                ctrl = self.shared.done.wait(ctrl).unwrap();
            }
            ctrl.job = None;
            ctrl.panicked
        };
        if let Err(payload) = own {
            std::panic::resume_unwind(payload);
        }
        if workers_panicked {
            panic!("worker panicked");
        }
    }
}

fn run_chunk<F: Fn(i64, usize) + ?Sized>(f: &F, slot: usize, n: i64, chunk: i64) {
    let lo = slot as i64 * chunk;
    let hi = ((slot as i64 + 1) * chunk).min(n);
    for i in lo..hi {
        f(i, slot);
    }
}

fn worker_loop(shared: &'static Shared, slot: usize) {
    let mut seen = 0u64;
    let mut ctrl = shared.ctrl.lock().unwrap();
    loop {
        while ctrl.epoch == seen {
            ctrl = shared.work.wait(ctrl).unwrap();
        }
        seen = ctrl.epoch;
        let Some(job) = ctrl.job else { continue };
        if slot >= job.usable {
            continue;
        }
        drop(ctrl);
        let f = unsafe { &*job.f };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_chunk(f, slot, job.n, job.chunk);
        }));
        ctrl = shared.ctrl.lock().unwrap();
        if result.is_err() {
            ctrl.panicked = true;
        }
        ctrl.remaining -= 1;
        if ctrl.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The process-wide pool, started on first parallel dispatch.
pub fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::start)
}

/// Run `f(i)` for every `i` in `0..n`, using up to `threads` workers.
/// Returns `true` when the job went through the worker pool (vs inline).
pub fn parallel_for<F>(threads: usize, n: i64, f: F) -> bool
where
    F: Fn(i64) + Sync,
{
    parallel_for_worker(threads, n, |i, _| f(i))
}

/// As [`parallel_for`], additionally passing the worker id (for private
/// per-worker scratch, like GPU private memory). The worker id is always
/// `< threads`.
pub fn parallel_for_worker<F>(threads: usize, n: i64, f: F) -> bool
where
    F: Fn(i64, usize) + Sync,
{
    if n <= 0 {
        return false;
    }
    let by_trip = ((n + MIN_CHUNK - 1) / MIN_CHUNK).max(1) as usize;
    let mut usable = threads.min(by_trip);
    if usable > 1 {
        usable = usable.min(global().slots());
    }
    if usable <= 1 {
        for i in 0..n {
            f(i, 0);
        }
        return false;
    }
    let chunk = (n + usable as i64 - 1) / usable as i64;
    global().dispatch(usable, n, chunk, &f);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

    #[test]
    fn covers_all_indices_sequential() {
        let sum = AtomicI64::new(0);
        let dispatched = parallel_for(1, 100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
        assert!(!dispatched, "one thread must run inline");
    }

    #[test]
    fn covers_all_indices_parallel() {
        let sum = AtomicI64::new(0);
        parallel_for(8, 10_000, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(4, 0, |_| panic!("must not run"));
    }

    #[test]
    fn small_trip_counts_run_inline() {
        let hits = AtomicI64::new(0);
        let dispatched = parallel_for(8, MIN_CHUNK / 2, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!dispatched);
        assert_eq!(hits.load(Ordering::Relaxed), MIN_CHUNK / 2);
    }

    #[test]
    fn worker_ids_stay_below_thread_budget() {
        for threads in 1..=8usize {
            let max_seen = AtomicUsize::new(0);
            let count = AtomicI64::new(0);
            parallel_for_worker(threads, 4096, |_, w| {
                max_seen.fetch_max(w, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert!(max_seen.load(Ordering::Relaxed) < threads);
            assert_eq!(count.load(Ordering::Relaxed), 4096);
        }
    }

    #[test]
    fn uneven_widths_cover_every_index() {
        for n in [1i64, 7, 255, 256, 257, 1000, 4097, 10_000] {
            let sum = AtomicI64::new(0);
            parallel_for(5, n, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn pool_survives_reuse_across_many_dispatches() {
        let total = AtomicI64::new(0);
        for _ in 0..200 {
            parallel_for(4, 2048, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 2048);
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let r = std::panic::catch_unwind(|| {
            parallel_for(8, 10_000, |i| {
                if i == 9_999 {
                    panic!("deliberate test panic");
                }
            });
        });
        assert!(r.is_err(), "the panic must reach the dispatcher");
        // The pool must still work afterwards.
        let sum = AtomicI64::new(0);
        parallel_for(8, 2048, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 2048 * 2047 / 2);
    }
}
