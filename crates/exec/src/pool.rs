//! A minimal chunked parallel-for.
//!
//! On multi-core machines, map instances run on crossbeam scoped threads
//! with static chunking (GPU thread-block style); with one hardware thread
//! (or small trip counts) the loop runs inline — the memory-traffic
//! behaviour the benchmarks measure is identical either way.

/// Number of available hardware threads.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimum iterations per thread before parallelism pays for itself.
const MIN_CHUNK: i64 = 256;

/// Run `f(i)` for every `i` in `0..n`, using up to `threads` workers.
pub fn parallel_for<F>(threads: usize, n: i64, f: F)
where
    F: Fn(i64) + Sync,
{
    parallel_for_worker(threads, n, |i, _| f(i));
}

/// As [`parallel_for`], additionally passing the worker id (for private
/// per-worker scratch, like GPU private memory).
pub fn parallel_for_worker<F>(threads: usize, n: i64, f: F)
where
    F: Fn(i64, usize) + Sync,
{
    if n <= 0 {
        return;
    }
    let usable = threads.min(((n + MIN_CHUNK - 1) / MIN_CHUNK).max(1) as usize);
    if usable <= 1 {
        for i in 0..n {
            f(i, 0);
        }
        return;
    }
    let chunk = (n + usable as i64 - 1) / usable as i64;
    crossbeam::scope(|scope| {
        for t in 0..usable {
            let f = &f;
            let lo = t as i64 * chunk;
            let hi = ((t as i64 + 1) * chunk).min(n);
            scope.spawn(move |_| {
                for i in lo..hi {
                    f(i, t);
                }
            });
        }
    })
    .expect("worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn covers_all_indices_sequential() {
        let sum = AtomicI64::new(0);
        parallel_for(1, 100, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn covers_all_indices_parallel() {
        let sum = AtomicI64::new(0);
        parallel_for(8, 10_000, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn empty_range_is_noop() {
        parallel_for(4, 0, |_| panic!("must not run"));
    }
}
