//! LMAD-addressed views over memory blocks.
//!
//! A [`View`]/[`ViewMut`] pairs a raw block handle with a concrete index
//! function; element access computes `base + ixfn(i, j, ...)` — exactly
//! the code the paper's compiler inlines per access. Contiguous fast paths
//! hand kernels plain slices.
//!
//! Views may alias (e.g. NW's kernel reads bars of the same block its
//! output is rebased into); the compiler's non-overlap proof is what makes
//! concurrent use sound, so all access goes through raw pointers with
//! explicit bounds checks.

use crate::store::RawBuf;
use arraymem_lmad::concrete::AccessClass;
use arraymem_lmad::{ConcreteIxFn, ConcreteLmad};

#[derive(Clone)]
struct ViewCore {
    buf: RawBuf,
    ixfn: ConcreteIxFn,
    /// Access tier, classified once at view creation: flat accesses
    /// through contiguous and row-contiguous views cost a few integer ops
    /// instead of a full LMAD-chain evaluation per element.
    plan: AccessClass,
}

impl ViewCore {
    fn new(buf: RawBuf, ixfn: ConcreteIxFn) -> ViewCore {
        let plan = ixfn.classify();
        ViewCore { buf, ixfn, plan }
    }

    #[inline]
    fn offset(&self, idx: &[i64]) -> usize {
        let off = if let Some(l) = self.ixfn.as_single() {
            l.apply(idx)
        } else {
            self.ixfn.index(idx)
        };
        debug_assert!(off >= 0, "negative element offset {off}");
        let off = off as usize;
        assert!(
            off < self.buf.len,
            "view access out of bounds: {off} >= {}",
            self.buf.len
        );
        off
    }

    #[inline]
    fn offset_flat(&self, flat: i64) -> usize {
        let off = match self.plan {
            AccessClass::Contiguous { base } => base + flat,
            AccessClass::RowContiguous {
                base,
                row_stride,
                inner,
            } => base + (flat / inner) * row_stride + flat % inner,
            AccessClass::Strided => self.ixfn.lmads[0].offset_of_flat(flat),
            AccessClass::General => self.ixfn.index_flat(flat),
        };
        debug_assert!(off >= 0, "negative element offset {off} (flat {flat})");
        let off = off as usize;
        assert!(
            off < self.buf.len,
            "view access out of bounds: flat {flat} -> offset {off} >= block len {}",
            self.buf.len
        );
        off
    }
}

/// Booleans share the i64 accessors (both are 64-bit words in storage).
fn elem_compatible(stored: arraymem_ir::ElemType, accessed: arraymem_ir::ElemType) -> bool {
    use arraymem_ir::ElemType as ET;
    stored == accessed || (stored == ET::Bool && accessed == ET::I64)
}

/// A read-only view.
#[derive(Clone)]
pub struct View {
    core: ViewCore,
}

/// A writable view.
#[derive(Clone)]
pub struct ViewMut {
    core: ViewCore,
}

macro_rules! typed_access {
    ($get:ident, $get_flat:ident, $ty:ty, $variant:ident) => {
        /// Read one element by logical index.
        #[inline]
        pub fn $get(&self, idx: &[i64]) -> $ty {
            debug_assert!(elem_compatible(
                self.core.buf.elem,
                arraymem_ir::ElemType::$variant
            ));
            let off = self.core.offset(idx);
            unsafe { *(self.core.buf.ptr as *const $ty).add(off) }
        }

        /// Read one element by flat logical position.
        #[inline]
        pub fn $get_flat(&self, flat: i64) -> $ty {
            debug_assert!(elem_compatible(
                self.core.buf.elem,
                arraymem_ir::ElemType::$variant
            ));
            let off = self.core.offset_flat(flat);
            unsafe { *(self.core.buf.ptr as *const $ty).add(off) }
        }
    };
}

impl View {
    pub fn new(buf: RawBuf, ixfn: ConcreteIxFn) -> View {
        View {
            core: ViewCore::new(buf, ixfn),
        }
    }

    /// A view whose access class was classified earlier (at array-value
    /// creation or plan-lower time), skipping the per-view re-classify.
    pub fn with_class(buf: RawBuf, ixfn: ConcreteIxFn, plan: AccessClass) -> View {
        debug_assert_eq!(plan, ixfn.classify());
        View {
            core: ViewCore { buf, ixfn, plan },
        }
    }

    pub fn ixfn(&self) -> &ConcreteIxFn {
        &self.core.ixfn
    }

    pub fn shape(&self) -> Vec<i64> {
        self.core.ixfn.shape()
    }

    pub fn num_elems(&self) -> i64 {
        self.core.ixfn.num_elems()
    }

    /// The single LMAD, when the view is one LMAD (the common case kernels
    /// specialize on).
    pub fn lmad(&self) -> Option<&ConcreteLmad> {
        self.core.ixfn.as_single()
    }

    typed_access!(get_f32, get_f32_flat, f32, F32);
    typed_access!(get_f64, get_f64_flat, f64, F64);
    typed_access!(get_i64, get_i64_flat, i64, I64);

    /// Contiguous row-major fast path: the whole view as a plain slice.
    pub fn as_slice_f32(&self) -> Option<&[f32]> {
        let base = self.core.ixfn.contiguous_base()?;
        let n = self.num_elems();
        if base < 0 || n < 0 || (base + n) as usize > self.core.buf.len {
            return None;
        }
        unsafe {
            Some(std::slice::from_raw_parts(
                (self.core.buf.ptr as *const f32).add(base as usize),
                n as usize,
            ))
        }
    }

    pub fn as_slice_i64(&self) -> Option<&[i64]> {
        let base = self.core.ixfn.contiguous_base()?;
        let n = self.num_elems();
        if base < 0 || n < 0 || (base + n) as usize > self.core.buf.len {
            return None;
        }
        unsafe {
            Some(std::slice::from_raw_parts(
                (self.core.buf.ptr as *const i64).add(base as usize),
                n as usize,
            ))
        }
    }

    /// Read by precomputed flat memory offset (as produced by the view's
    /// LMAD) — the incremental-addressing style of generated kernel code.
    #[inline]
    pub fn read_i64_off(&self, off: i64) -> i64 {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *const i64).add(off as usize) }
    }

    #[inline]
    pub fn read_f32_off(&self, off: i64) -> f32 {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *const f32).add(off as usize) }
    }

    /// A sub-view with the outer dimension fixed at `i`.
    pub fn row(&self, i: i64) -> View {
        View {
            core: ViewCore::new(self.core.buf, fix_outer(&self.core.ixfn, i)),
        }
    }
}

impl ViewMut {
    pub fn new(buf: RawBuf, ixfn: ConcreteIxFn) -> ViewMut {
        ViewMut {
            core: ViewCore::new(buf, ixfn),
        }
    }

    /// See [`View::with_class`].
    pub fn with_class(buf: RawBuf, ixfn: ConcreteIxFn, plan: AccessClass) -> ViewMut {
        debug_assert_eq!(plan, ixfn.classify());
        ViewMut {
            core: ViewCore { buf, ixfn, plan },
        }
    }

    pub fn ixfn(&self) -> &ConcreteIxFn {
        &self.core.ixfn
    }

    pub fn shape(&self) -> Vec<i64> {
        self.core.ixfn.shape()
    }

    pub fn num_elems(&self) -> i64 {
        self.core.ixfn.num_elems()
    }

    pub fn lmad(&self) -> Option<&ConcreteLmad> {
        self.core.ixfn.as_single()
    }

    typed_access!(get_f32, get_f32_flat, f32, F32);
    typed_access!(get_f64, get_f64_flat, f64, F64);
    typed_access!(get_i64, get_i64_flat, i64, I64);

    #[inline]
    pub fn set_f32(&self, idx: &[i64], v: f32) {
        let off = self.core.offset(idx);
        unsafe { *(self.core.buf.ptr as *mut f32).add(off) = v }
    }

    #[inline]
    pub fn set_f64(&self, idx: &[i64], v: f64) {
        let off = self.core.offset(idx);
        unsafe { *(self.core.buf.ptr as *mut f64).add(off) = v }
    }

    #[inline]
    pub fn set_i64(&self, idx: &[i64], v: i64) {
        let off = self.core.offset(idx);
        unsafe { *(self.core.buf.ptr as *mut i64).add(off) = v }
    }

    #[inline]
    pub fn set_f32_flat(&self, flat: i64, v: f32) {
        let off = self.core.offset_flat(flat);
        unsafe { *(self.core.buf.ptr as *mut f32).add(off) = v }
    }

    #[inline]
    pub fn set_i64_flat(&self, flat: i64, v: i64) {
        let off = self.core.offset_flat(flat);
        unsafe { *(self.core.buf.ptr as *mut i64).add(off) = v }
    }

    /// Contiguous row-major fast path for writers.
    ///
    /// Views are raw-pointer handles (GPU-buffer style): several may alias
    /// one block, and the compiler's non-overlap proofs — not the borrow
    /// checker — guarantee exclusive access, hence the `&self` receiver.
    #[allow(clippy::mut_from_ref)]
    pub fn as_slice_f32_mut(&self) -> Option<&mut [f32]> {
        let base = self.core.ixfn.contiguous_base()?;
        let n = self.num_elems();
        if base < 0 || n < 0 || (base + n) as usize > self.core.buf.len {
            return None;
        }
        unsafe {
            Some(std::slice::from_raw_parts_mut(
                (self.core.buf.ptr as *mut f32).add(base as usize),
                n as usize,
            ))
        }
    }

    /// See [`Self::as_slice_f32_mut`] for the aliasing discipline.
    #[allow(clippy::mut_from_ref)]
    pub fn as_slice_i64_mut(&self) -> Option<&mut [i64]> {
        let base = self.core.ixfn.contiguous_base()?;
        let n = self.num_elems();
        if base < 0 || n < 0 || (base + n) as usize > self.core.buf.len {
            return None;
        }
        unsafe {
            Some(std::slice::from_raw_parts_mut(
                (self.core.buf.ptr as *mut i64).add(base as usize),
                n as usize,
            ))
        }
    }

    #[inline]
    pub fn read_i64_off(&self, off: i64) -> i64 {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *const i64).add(off as usize) }
    }

    #[inline]
    pub fn read_f32_off(&self, off: i64) -> f32 {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *const f32).add(off as usize) }
    }

    /// Write by precomputed flat memory offset.
    #[inline]
    pub fn write_i64_off(&self, off: i64, v: i64) {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *mut i64).add(off as usize) = v }
    }

    #[inline]
    pub fn write_f32_off(&self, off: i64, v: f32) {
        assert!(off >= 0 && (off as usize) < self.core.buf.len);
        unsafe { *(self.core.buf.ptr as *mut f32).add(off as usize) = v }
    }

    pub fn row(&self, i: i64) -> ViewMut {
        ViewMut {
            core: ViewCore::new(self.core.buf, fix_outer(&self.core.ixfn, i)),
        }
    }

    /// Read-only alias of this view.
    pub fn as_view(&self) -> View {
        View {
            core: self.core.clone(),
        }
    }

    /// The underlying raw buffer (for constructing derived views).
    pub fn raw(&self) -> RawBuf {
        self.core.buf
    }
}

unsafe impl Send for View {}
unsafe impl Sync for View {}
unsafe impl Send for ViewMut {}
unsafe impl Sync for ViewMut {}

/// Fix the outer logical dimension of an index function at `i`.
pub fn fix_outer(ixfn: &ConcreteIxFn, i: i64) -> ConcreteIxFn {
    let mut out = ixfn.clone();
    let logical = out.lmads.last_mut().unwrap();
    assert!(!logical.dims.is_empty(), "cannot fix a rank-0 view");
    let (card, stride) = logical.dims.remove(0);
    debug_assert!(i >= 0 && i < card, "row {i} out of {card}");
    let _ = card;
    logical.offset += i * stride;
    out
}

/// Copy all elements of `src` into `dst` (same logical shape), returning
/// the number of bytes moved. This is the runtime's "update"/"concat"
/// copy, with a `memcpy` fast path when both sides are contiguous.
pub fn copy_view(dst: &ViewMut, src: &View) -> u64 {
    let n = src.num_elems();
    debug_assert_eq!(dst.num_elems(), n);
    if n <= 0 {
        return 0;
    }
    let elem = src.core.buf.elem;
    match elem {
        arraymem_ir::ElemType::F32 => {
            if let (Some(d), Some(s)) = (dst.as_slice_f32_mut(), src.as_slice_f32()) {
                d.copy_from_slice(s);
            } else {
                copy_generic::<f32>(dst, src, n);
            }
        }
        arraymem_ir::ElemType::I64 => {
            if let (Some(d), Some(s)) = (dst.as_slice_i64_mut(), src.as_slice_i64()) {
                d.copy_from_slice(s);
            } else {
                copy_generic::<i64>(dst, src, n);
            }
        }
        arraymem_ir::ElemType::F64 => copy_generic::<f64>(dst, src, n),
        arraymem_ir::ElemType::Bool => copy_generic::<i64>(dst, src, n),
    }
    n as u64 * elem.size_bytes() as u64
}

fn copy_generic<T: Copy>(dst: &ViewMut, src: &View, n: i64) {
    // Generic strided copy through both index functions. Specialize the
    // innermost dimension when both sides are single LMADs.
    let (Some(dl), Some(sl)) = (dst.lmad(), src.lmad()) else {
        for f in 0..n {
            let so = src.core.offset_flat(f);
            let do_ = dst.core.offset_flat(f);
            unsafe {
                *(dst.core.buf.ptr as *mut T).add(do_) = *(src.core.buf.ptr as *const T).add(so);
            }
        }
        return;
    };
    let shape = sl.shape();
    let rank = shape.len();
    if rank == 0 {
        let so = sl.offset as usize;
        let do_ = dl.offset as usize;
        assert!(so < src.core.buf.len && do_ < dst.core.buf.len);
        unsafe {
            *(dst.core.buf.ptr as *mut T).add(do_) = *(src.core.buf.ptr as *const T).add(so);
        }
        return;
    }
    // Iterate the outer dims, stream the innermost. When both innermost
    // strides are 1 (row-contiguous on both sides — e.g. copying a bar of
    // a rebased matrix) each run is a single `memcpy`.
    let inner = shape[rank - 1];
    let (s_in, d_in) = (sl.dims[rank - 1].1, dl.dims[rank - 1].1);
    let rows_contiguous = s_in == 1 && d_in == 1 && inner > 0;
    let outer: i64 = shape[..rank - 1].iter().product();
    let mut idx = vec![0i64; rank];
    for _ in 0..outer.max(1) {
        idx[rank - 1] = 0;
        let mut so = sl.apply(&idx);
        let mut do_ = dl.apply(&idx);
        if rows_contiguous {
            assert!(
                so >= 0
                    && (so + inner) as usize <= src.core.buf.len
                    && do_ >= 0
                    && (do_ + inner) as usize <= dst.core.buf.len,
                "copy out of bounds"
            );
            // memmove, not memcpy: src and dst may be views of one block.
            unsafe {
                std::ptr::copy(
                    (src.core.buf.ptr as *const T).add(so as usize),
                    (dst.core.buf.ptr as *mut T).add(do_ as usize),
                    inner as usize,
                );
            }
        } else {
            for _ in 0..inner {
                assert!(
                    so >= 0
                        && (so as usize) < src.core.buf.len
                        && do_ >= 0
                        && (do_ as usize) < dst.core.buf.len,
                    "copy out of bounds"
                );
                unsafe {
                    *(dst.core.buf.ptr as *mut T).add(do_ as usize) =
                        *(src.core.buf.ptr as *const T).add(so as usize);
                }
                so += s_in;
                do_ += d_in;
            }
        }
        // Increment the outer counter.
        for d in (0..rank - 1).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use arraymem_ir::ElemType;

    fn store_with(data: Vec<f32>) -> (MemStore, usize) {
        let mut s = MemStore::new();
        let b = s.alloc_f32(data);
        (s, b)
    }

    #[test]
    fn typed_access_round_trips() {
        let (mut s, b) = store_with(vec![0.0; 12]);
        let v = ViewMut::new(s.raw(b), ConcreteIxFn::row_major(&[3, 4]));
        v.set_f32(&[2, 3], 7.5);
        assert_eq!(v.get_f32(&[2, 3]), 7.5);
        assert_eq!(v.as_view().get_f32_flat(11), 7.5);
    }

    #[test]
    fn row_views_fix_the_outer_dim() {
        let (mut s, b) = store_with((0..12).map(|i| i as f32).collect());
        let v = View::new(s.raw(b), ConcreteIxFn::row_major(&[3, 4]));
        let r = v.row(1);
        assert_eq!(r.shape(), vec![4]);
        assert_eq!(r.get_f32(&[0]), 4.0);
        assert_eq!(r.get_f32(&[3]), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_block_access_panics() {
        let (mut s, b) = store_with(vec![0.0; 4]);
        let v = View::new(
            s.raw(b),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 3,
                dims: vec![(4, 1)],
            }),
        );
        let _ = v.get_f32(&[3]); // offset 6 > len 4
    }

    #[test]
    fn copy_between_strided_views_matches_naive() {
        // dst: every other element of a block; src: a reversed view.
        let mut s = MemStore::new();
        let db = s.alloc(ElemType::F32, 16);
        let sb = s.alloc_f32((0..8).map(|i| i as f32).collect());
        let dst = ViewMut::new(
            s.raw(db),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 0,
                dims: vec![(8, 2)],
            }),
        );
        let src = View::new(
            s.raw(sb),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 7,
                dims: vec![(8, -1)],
            }),
        );
        let bytes = copy_view(&dst, &src);
        assert_eq!(bytes, 32);
        for i in 0..8 {
            assert_eq!(dst.get_f32(&[i]), (7 - i) as f32, "elem {i}");
        }
    }

    #[test]
    fn contiguous_copy_uses_memcpy_path() {
        let mut s = MemStore::new();
        let db = s.alloc(ElemType::I64, 6);
        let sb = s.alloc_i64(vec![1, 2, 3, 4, 5, 6]);
        let dst = ViewMut::new(s.raw(db), ConcreteIxFn::row_major(&[6]));
        let src = View::new(s.raw(sb), ConcreteIxFn::row_major(&[6]));
        copy_view(&dst, &src);
        assert_eq!(dst.as_slice_i64_mut().unwrap(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn zero_sized_copy_is_noop() {
        let mut s = MemStore::new();
        let db = s.alloc(ElemType::F32, 4);
        let sb = s.alloc(ElemType::F32, 4);
        let dst = ViewMut::new(
            s.raw(db),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 0,
                dims: vec![(0, 1)],
            }),
        );
        let src = View::new(
            s.raw(sb),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 0,
                dims: vec![(0, 1)],
            }),
        );
        assert_eq!(copy_view(&dst, &src), 0);
    }

    #[test]
    fn multi_lmad_views_read_through_composition() {
        // flatten(transpose) of a 2x3 row-major block.
        let (mut s, b) = store_with((0..6).map(|i| i as f32).collect());
        let ix = ConcreteIxFn {
            lmads: vec![
                ConcreteLmad {
                    offset: 0,
                    dims: vec![(2, 3), (3, 1)],
                },
                ConcreteLmad {
                    offset: 0,
                    dims: vec![(3, 1), (2, 3)],
                },
                ConcreteLmad {
                    offset: 0,
                    dims: vec![(6, 1)],
                },
            ],
        };
        let v = View::new(s.raw(b), ix);
        let got: Vec<f32> = (0..6).map(|i| v.get_f32_flat(i)).collect();
        assert_eq!(got, vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }
}

#[cfg(test)]
mod negative_len_tests {
    use super::*;
    use crate::store::MemStore;
    use arraymem_ir::ElemType;

    /// Regression (code review): a view whose runtime-computed length is
    /// negative must not produce a wrapped-length slice.
    #[test]
    fn negative_length_views_yield_no_slice() {
        let mut s = MemStore::new();
        let b = s.alloc(ElemType::F32, 8);
        let v = ViewMut::new(
            s.raw(b),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 4,
                dims: vec![(-2, 1)],
            }),
        );
        assert!(v.as_slice_f32_mut().is_none());
        assert!(v.as_view().as_slice_f32().is_none());
        // And copying through it is a no-op, not UB.
        let src = View::new(
            s.raw(b),
            ConcreteIxFn::from_lmad(ConcreteLmad {
                offset: 0,
                dims: vec![(-2, 1)],
            }),
        );
        assert_eq!(copy_view(&v, &src), 0);
    }
}
