//! Memory blocks and the store.

use arraymem_ir::ElemType;

/// A typed buffer backing one memory block.
pub enum Buffer {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I64(Vec<i64>),
    /// Booleans are stored as 64-bit words (0/1) so the VM's integer
    /// accessors apply uniformly; `ElemType::Bool::size_bytes()` is 8.
    Bool(Vec<i64>),
}

impl Buffer {
    pub fn new(elem: ElemType, len: usize) -> Buffer {
        match elem {
            ElemType::F32 => Buffer::F32(vec![0.0; len]),
            ElemType::F64 => Buffer::F64(vec![0.0; len]),
            ElemType::I64 => Buffer::I64(vec![0; len]),
            ElemType::Bool => Buffer::Bool(vec![0i64; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn elem(&self) -> ElemType {
        match self {
            Buffer::F32(_) => ElemType::F32,
            Buffer::F64(_) => ElemType::F64,
            Buffer::I64(_) => ElemType::I64,
            Buffer::Bool(_) => ElemType::Bool,
        }
    }

    fn base_ptr(&mut self) -> *mut u8 {
        match self {
            Buffer::F32(v) => v.as_mut_ptr() as *mut u8,
            Buffer::F64(v) => v.as_mut_ptr() as *mut u8,
            Buffer::I64(v) => v.as_mut_ptr() as *mut u8,
            Buffer::Bool(v) => v.as_mut_ptr() as *mut u8,
        }
    }
}

/// A raw, type-tagged handle to a block's storage. Views address it via
/// concrete LMADs; disjointness of concurrent writes is the compiler's
/// proof obligation (that is the point of the paper).
#[derive(Clone, Copy)]
pub struct RawBuf {
    pub ptr: *mut u8,
    /// Length in *elements*.
    pub len: usize,
    pub elem: ElemType,
}

unsafe impl Send for RawBuf {}
unsafe impl Sync for RawBuf {}

/// The store of memory blocks. Blocks are never freed individually during
/// a run (GPU-arena style); the whole store drops at once.
#[derive(Default)]
pub struct MemStore {
    blocks: Vec<Buffer>,
    /// Total elements × size allocated, in bytes.
    pub bytes_allocated: u64,
    pub num_allocs: u64,
}

impl MemStore {
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Allocate a zero-initialized block; returns its id.
    pub fn alloc(&mut self, elem: ElemType, len: usize) -> usize {
        self.bytes_allocated += (len * elem.size_bytes()) as u64;
        self.num_allocs += 1;
        self.blocks.push(Buffer::new(elem, len));
        self.blocks.len() - 1
    }

    /// Allocate a block initialized from an `f32` vector.
    pub fn alloc_f32(&mut self, data: Vec<f32>) -> usize {
        self.bytes_allocated += (data.len() * 4) as u64;
        self.num_allocs += 1;
        self.blocks.push(Buffer::F32(data));
        self.blocks.len() - 1
    }

    pub fn alloc_i64(&mut self, data: Vec<i64>) -> usize {
        self.bytes_allocated += (data.len() * 8) as u64;
        self.num_allocs += 1;
        self.blocks.push(Buffer::I64(data));
        self.blocks.len() - 1
    }

    pub fn alloc_f64(&mut self, data: Vec<f64>) -> usize {
        self.bytes_allocated += (data.len() * 8) as u64;
        self.num_allocs += 1;
        self.blocks.push(Buffer::F64(data));
        self.blocks.len() - 1
    }

    pub fn raw(&mut self, block: usize) -> RawBuf {
        let b = &mut self.blocks[block];
        RawBuf {
            len: b.len(),
            elem: b.elem(),
            ptr: b.base_ptr(),
        }
    }

    pub fn elem(&self, block: usize) -> ElemType {
        self.blocks[block].elem()
    }

    pub fn len(&self, block: usize) -> usize {
        self.blocks[block].len()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_counts() {
        let mut s = MemStore::new();
        let b = s.alloc(ElemType::F32, 10);
        assert_eq!(s.len(b), 10);
        assert_eq!(s.bytes_allocated, 40);
        let r = s.raw(b);
        assert_eq!(r.len, 10);
        assert_eq!(r.elem, ElemType::F32);
        let b2 = s.alloc_i64(vec![1, 2, 3]);
        assert_eq!(s.len(b2), 3);
        assert_eq!(s.bytes_allocated, 40 + 24);
        assert_eq!(s.num_allocs, 2);
    }
}
