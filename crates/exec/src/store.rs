//! Memory blocks and the store.
//!
//! The store recycles blocks through per-storage-class free lists, driven
//! by the compiler's last-use analysis: when the VM learns a block is
//! dead it calls [`MemStore::release`], and a later `alloc` of a fitting
//! size takes the block back instead of growing the heap. A reused block
//! is **not** re-zeroed (the whole point — `vec![0; len]` is a full write
//! of the block); the elided zeroing is counted in
//! [`MemStore::bytes_zeroing_elided`]. This relies on the same discipline
//! as the paper's memory blocks: an allocation is fully written before it
//! is read, which the differential tests check against the pure-mode
//! ground truth.

use arraymem_ir::ElemType;
use arraymem_symbolic::Sym;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-cell shadow state, tracked only while the store's shadow layer is
/// enabled (checked mode). One entry per *element* of each block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellState {
    /// Recycled without zero-fill; never written since. Reading this is
    /// exactly the bug the zeroing elision gambles against.
    Stale,
    /// Zero-filled at fresh allocation (or the grown tail of a recycle).
    Zeroed,
    /// Program input data.
    Input,
    /// Written by the statement binding this name (write provenance).
    Written(Sym),
    /// The block was returned to the free list; any later read is a
    /// use-after-release (the release plan claimed the last use passed).
    Released,
}

/// Shadow bookkeeping for one block.
struct ShadowBlock {
    cells: Vec<CellState>,
    /// Statement after which the release plan freed the block, if any.
    released_by: Option<Sym>,
}

/// A typed buffer backing one memory block.
pub enum Buffer {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I64(Vec<i64>),
    /// Booleans are stored as 64-bit words (0/1) so the VM's integer
    /// accessors apply uniformly; `ElemType::Bool::size_bytes()` is 8.
    Bool(Vec<i64>),
}

impl Buffer {
    pub fn new(elem: ElemType, len: usize) -> Buffer {
        match elem {
            ElemType::F32 => Buffer::F32(vec![0.0; len]),
            ElemType::F64 => Buffer::F64(vec![0.0; len]),
            ElemType::I64 => Buffer::I64(vec![0; len]),
            ElemType::Bool => Buffer::Bool(vec![0i64; len]),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn capacity(&self) -> usize {
        match self {
            Buffer::F32(v) => v.capacity(),
            Buffer::F64(v) => v.capacity(),
            Buffer::I64(v) => v.capacity(),
            Buffer::Bool(v) => v.capacity(),
        }
    }

    pub fn elem(&self) -> ElemType {
        match self {
            Buffer::F32(_) => ElemType::F32,
            Buffer::F64(_) => ElemType::F64,
            Buffer::I64(_) => ElemType::I64,
            Buffer::Bool(_) => ElemType::Bool,
        }
    }

    fn base_ptr(&mut self) -> *mut u8 {
        match self {
            Buffer::F32(v) => v.as_mut_ptr() as *mut u8,
            Buffer::F64(v) => v.as_mut_ptr() as *mut u8,
            Buffer::I64(v) => v.as_mut_ptr() as *mut u8,
            Buffer::Bool(v) => v.as_mut_ptr() as *mut u8,
        }
    }

    /// Re-tag a word buffer between `I64` and `Bool` (they share storage
    /// class). No-op when the element type already matches.
    fn retag(&mut self, elem: ElemType) {
        if self.elem() == elem {
            return;
        }
        debug_assert_eq!(storage_class(self.elem()), storage_class(elem));
        let words = match std::mem::replace(self, Buffer::I64(Vec::new())) {
            Buffer::I64(v) | Buffer::Bool(v) => v,
            other => {
                *self = other;
                unreachable!("retag across storage classes");
            }
        };
        *self = match elem {
            ElemType::I64 => Buffer::I64(words),
            ElemType::Bool => Buffer::Bool(words),
            _ => unreachable!(),
        };
    }

    /// Zero the first `n` elements. Cross-tenant adoption pays this on
    /// the surviving prefix: recycled bytes never cross a tenant
    /// boundary. (The grown tail past the prefix was freshly zeroed by
    /// [`recycle_to`](Buffer::recycle_to) already.)
    fn zero_prefix(&mut self, n: usize) {
        match self {
            Buffer::F32(v) => v[..n].fill(0.0),
            Buffer::F64(v) => v[..n].fill(0.0),
            Buffer::I64(v) | Buffer::Bool(v) => v[..n].fill(0),
        }
    }

    /// Resize a recycled buffer to `len` elements without re-zeroing what
    /// is already there. Returns the number of *elements* whose zero-fill
    /// was elided (the surviving prefix).
    fn recycle_to(&mut self, len: usize) -> usize {
        fn go<T: Clone + Default>(v: &mut Vec<T>, len: usize) -> usize {
            let old = v.len();
            if old >= len {
                v.truncate(len);
                len
            } else {
                v.resize(len, T::default());
                old
            }
        }
        match self {
            Buffer::F32(v) => go(v, len),
            Buffer::F64(v) => go(v, len),
            Buffer::I64(v) | Buffer::Bool(v) => go(v, len),
        }
    }
}

/// A raw, type-tagged handle to a block's storage. Views address it via
/// concrete LMADs; disjointness of concurrent writes is the compiler's
/// proof obligation (that is the point of the paper).
#[derive(Clone, Copy)]
pub struct RawBuf {
    pub ptr: *mut u8,
    /// Length in *elements*.
    pub len: usize,
    pub elem: ElemType,
}

unsafe impl Send for RawBuf {}
unsafe impl Sync for RawBuf {}

/// Free lists cannot hand an `f32` buffer to an `f64` request: buffers
/// keep their `Vec` element width. `I64` and `Bool` share a class.
const NUM_CLASSES: usize = 3;
const NUM_BUCKETS: usize = usize::BITS as usize;

fn storage_class(elem: ElemType) -> usize {
    match elem {
        ElemType::F32 => 0,
        ElemType::F64 => 1,
        ElemType::I64 | ElemType::Bool => 2,
    }
}

/// Power-of-two size class: bucket `b` holds capacities in
/// `[2^b, 2^(b+1))` (zero-capacity blocks land in bucket 0).
fn size_bucket(cap: usize) -> usize {
    (usize::BITS - cap.max(1).leading_zeros() - 1) as usize
}

/// A buffer parked in the shared arena, tagged with the tenant that
/// donated it — adoption policy and scrubbing depend on the tag.
struct Parked {
    buf: Buffer,
    owner: u64,
}

/// Counters for one [`SharedArena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers currently parked across all free lists.
    pub parked: usize,
    /// Buffers ever donated by a store.
    pub donated: u64,
    /// Adoptions where the requester was the donor (contents survive;
    /// zero-fill elision applies as with a local free list).
    pub adopted_same_tenant: u64,
    /// Adoptions across a tenant boundary (contents scrubbed).
    pub adopted_cross_tenant: u64,
    /// Bytes currently charged to live blocks across *every* attached
    /// store.
    pub live_bytes: u64,
    /// High-water of [`live_bytes`](ArenaStats::live_bytes) over the
    /// arena's lifetime. Tenants overlap in time, so this is the
    /// arena-level peak — it can exceed any single tenant's
    /// `peak_bytes_live`, and the per-tenant *max* understates it
    /// whenever two tenants peak together.
    pub peak_bytes_live: u64,
}

/// Shared live/peak byte meter for one arena: every attached store
/// charges and uncharges it alongside its own `bytes_live`, so the
/// arena-level high-water reflects tenants that peak *concurrently*
/// (which a max over per-tenant peaks cannot).
#[derive(Clone, Default)]
struct ArenaMeter {
    live: Arc<AtomicU64>,
    peak: Arc<AtomicU64>,
}

impl ArenaMeter {
    fn charge(&self, bytes: u64) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn uncharge(&self, bytes: u64) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

struct ArenaInner {
    /// `free[storage class][size bucket]` → parked buffers.
    free: Vec<Vec<Vec<Parked>>>,
    parked: usize,
    donated: u64,
    adopted_same: u64,
    adopted_cross: u64,
}

/// A cross-tenant free-list arena: stores attached to one arena donate
/// their recycled buffers and adopt each other's, so block recycling and
/// zero-fill elision work across tenants without sharing a store.
///
/// Isolation contract: a buffer adopted by the tenant that donated it
/// keeps its contents (same gamble as a local free list — the compiler
/// promises a full write before any read). A buffer crossing a tenant
/// boundary has its surviving prefix **zeroed** ("scrubbed") before the
/// adopter can build a view over it, so one tenant can never observe
/// another's recycled bytes. The adopting store still marks the prefix
/// [`CellState::Stale`] in shadow memory: checked mode's provenance
/// diagnostics fire identically whether a recycled block came from the
/// local free list, a same-tenant donation, or a scrubbed cross-tenant
/// one — reading a recycled cell before writing it is the bug, zeroed
/// or not.
#[derive(Clone, Default)]
pub struct SharedArena {
    inner: Arc<Mutex<ArenaInner>>,
    meter: ArenaMeter,
}

impl Default for ArenaInner {
    fn default() -> ArenaInner {
        ArenaInner {
            free: (0..NUM_CLASSES)
                .map(|_| (0..NUM_BUCKETS).map(|_| Vec::new()).collect())
                .collect(),
            parked: 0,
            donated: 0,
            adopted_same: 0,
            adopted_cross: 0,
        }
    }
}

impl SharedArena {
    pub fn new() -> SharedArena {
        SharedArena::default()
    }

    pub fn stats(&self) -> ArenaStats {
        let g = self.inner.lock().unwrap();
        ArenaStats {
            parked: g.parked,
            donated: g.donated,
            adopted_same_tenant: g.adopted_same,
            adopted_cross_tenant: g.adopted_cross,
            live_bytes: self.meter.live.load(Ordering::Relaxed),
            peak_bytes_live: self.meter.peak.load(Ordering::Relaxed),
        }
    }

    fn donate(&self, buf: Buffer, owner: u64) {
        if buf.capacity() == 0 {
            return;
        }
        let class = storage_class(buf.elem());
        let bucket = size_bucket(buf.capacity());
        let mut g = self.inner.lock().unwrap();
        g.free[class][bucket].push(Parked { buf, owner });
        g.parked += 1;
        g.donated += 1;
    }

    /// Take a parked buffer of storage class `class` with capacity
    /// `>= len`, preferring one the requester donated itself. Returns the
    /// buffer and whether it crossed a tenant boundary (the caller must
    /// scrub if so).
    fn adopt(&self, class: usize, len: usize, owner: u64) -> Option<(Buffer, bool)> {
        let start = size_bucket(len);
        let mut g = self.inner.lock().unwrap();
        // First pass: a same-owner fit anywhere (keeps elision alive);
        // second pass: any fit, paying the scrub.
        for same_only in [true, false] {
            for bucket in start..NUM_BUCKETS {
                let list = &mut g.free[class][bucket];
                let pos = list
                    .iter()
                    .position(|p| p.buf.capacity() >= len && (!same_only || p.owner == owner));
                if let Some(pos) = pos {
                    let p = list.swap_remove(pos);
                    let cross = p.owner != owner;
                    g.parked -= 1;
                    if cross {
                        g.adopted_cross += 1;
                    } else {
                        g.adopted_same += 1;
                    }
                    return Some((p.buf, cross));
                }
            }
        }
        None
    }
}

/// The store of memory blocks. Released blocks park in per-class
/// free lists and are recycled by later allocations; everything else
/// is arena-style — block ids stay valid until the store drops.
pub struct MemStore {
    blocks: Vec<Buffer>,
    /// `live[id]` is false while `id` sits in a free list.
    live: Vec<bool>,
    /// `free[storage class][size bucket]` → block ids.
    free: Vec<Vec<Vec<usize>>>,
    /// Total elements × size *freshly* allocated, in bytes (reuse is
    /// counted separately).
    pub bytes_allocated: u64,
    pub num_allocs: u64,
    /// Allocations served from the free list instead of the heap.
    pub blocks_reused: u64,
    /// Bytes of `vec![0; len]` zero-fill skipped thanks to reuse.
    pub bytes_zeroing_elided: u64,
    /// Bytes charged per live block (the *requested* length, so the
    /// figure is comparable whether an allocation was fresh or recycled
    /// into a larger buffer); zero while the block sits in a free list.
    charged: Vec<u64>,
    /// Total bytes currently charged to live blocks.
    bytes_live: u64,
    /// High-water mark of [`bytes_live`](Self::bytes_live) since the last
    /// [`reset_peak`](MemStore::reset_peak).
    pub peak_bytes_live: u64,
    /// Checked-mode shadow layer: one [`ShadowBlock`] per block while
    /// enabled, `None` otherwise (the fast modes pay nothing for it).
    shadow: Option<Vec<ShadowBlock>>,
    /// Cross-tenant recycling arena, with this store's tenant tag.
    arena: Option<(SharedArena, u64)>,
    /// The attached arena's shared live/peak meter (cloned Arcs), updated
    /// on every charge/uncharge so the arena-level high-water sees
    /// concurrent tenants.
    arena_meter: Option<ArenaMeter>,
    /// Block ids whose buffers were donated to the arena; reused by the
    /// next adoption or fresh allocation so ids don't grow without bound
    /// over a server's lifetime.
    vacant: Vec<usize>,
    /// Allocations served by adopting an arena buffer (subset of
    /// [`blocks_reused`](Self::blocks_reused)).
    pub arena_blocks_adopted: u64,
    /// Bytes zeroed because an adopted buffer crossed a tenant boundary
    /// (elision forfeited for isolation).
    pub bytes_cross_tenant_scrubbed: u64,
    /// Per-color slabs backing the merge pass's coloring
    /// (`arraymem_core::merge`): `color_slots[c]` parks the block a
    /// carried release returned to color `c`, and the next allocation
    /// colored `c` pops it back — one slab-resident block per color in
    /// steady state instead of one per loop iteration.
    color_slots: Vec<Vec<usize>>,
    /// `ReleaseCarried` instructions that actually fired (the incoming
    /// block was proven distinct from the outgoing block and every
    /// guard).
    pub carried_releases: u64,
    /// Colored allocations served from their color's slab (subset of
    /// [`blocks_reused`](Self::blocks_reused)).
    pub color_slab_hits: u64,
}

impl Default for MemStore {
    fn default() -> MemStore {
        MemStore::new()
    }
}

impl MemStore {
    pub fn new() -> MemStore {
        MemStore {
            blocks: Vec::new(),
            live: Vec::new(),
            free: vec![vec![Vec::new(); NUM_BUCKETS]; NUM_CLASSES],
            bytes_allocated: 0,
            num_allocs: 0,
            blocks_reused: 0,
            bytes_zeroing_elided: 0,
            charged: Vec::new(),
            bytes_live: 0,
            peak_bytes_live: 0,
            shadow: None,
            arena: None,
            arena_meter: None,
            vacant: Vec::new(),
            arena_blocks_adopted: 0,
            bytes_cross_tenant_scrubbed: 0,
            color_slots: Vec::new(),
            carried_releases: 0,
            color_slab_hits: 0,
        }
    }

    /// Join a cross-tenant recycling arena under tenant tag `tenant`.
    /// From here on, allocations that miss the local free lists try the
    /// arena before the heap, and [`donate_free_blocks`]
    /// (MemStore::donate_free_blocks) hands parked blocks back.
    pub fn attach_arena(&mut self, arena: SharedArena, tenant: u64) {
        self.arena_meter = Some(arena.meter.clone());
        self.arena = Some((arena, tenant));
    }

    /// Drain every block parked in the local free lists into the shared
    /// arena (no-op without an attached arena); returns the number
    /// donated. Servers call this after each execution so one tenant's
    /// end-of-run blocks can feed another tenant's next allocation.
    pub fn donate_free_blocks(&mut self) -> usize {
        let Some((arena, tenant)) = self.arena.clone() else {
            return 0;
        };
        let mut donated = 0;
        for class in 0..NUM_CLASSES {
            for bucket in 0..NUM_BUCKETS {
                while let Some(id) = self.free[class][bucket].pop() {
                    let buf = std::mem::replace(&mut self.blocks[id], Buffer::I64(Vec::new()));
                    if let Some(sh) = &mut self.shadow {
                        sh[id].cells.clear();
                        sh[id].released_by = None;
                    }
                    self.vacant.push(id);
                    arena.donate(buf, tenant);
                    donated += 1;
                }
            }
        }
        donated
    }

    /// Restart the peak-liveness high-water mark from the current live
    /// set. Called at the start of a run body, after inputs are loaded:
    /// inputs are charged identically under every pass configuration, so
    /// per-run peaks stay comparable across a session.
    pub fn reset_peak(&mut self) {
        self.peak_bytes_live = self.bytes_live;
    }

    fn charge(&mut self, block: usize, bytes: u64) {
        if self.charged.len() <= block {
            self.charged.resize(block + 1, 0);
        }
        self.charged[block] = bytes;
        self.bytes_live += bytes;
        self.peak_bytes_live = self.peak_bytes_live.max(self.bytes_live);
        if let Some(m) = &self.arena_meter {
            m.charge(bytes);
        }
    }

    fn uncharge(&mut self, block: usize) {
        let bytes = self.charged[block];
        self.bytes_live -= bytes;
        self.charged[block] = 0;
        if let Some(m) = &self.arena_meter {
            m.uncharge(bytes);
        }
    }

    /// Turn on the shadow layer. Pre-existing blocks (recycled across
    /// runs by a session) get all-`Stale` cells: nothing written in *this*
    /// run may be read before this run writes it.
    pub fn enable_shadow(&mut self) {
        self.shadow = Some(
            self.blocks
                .iter()
                .map(|b| ShadowBlock {
                    cells: vec![CellState::Stale; b.len()],
                    released_by: None,
                })
                .collect(),
        );
    }

    /// Drop the shadow layer (back to fast modes).
    pub fn disable_shadow(&mut self) {
        self.shadow = None;
    }

    pub fn shadow_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Record that statement `writer` wrote element `off` of `block`.
    pub fn shadow_mark(&mut self, block: usize, off: usize, writer: Sym) {
        if let Some(sh) = &mut self.shadow {
            sh[block].cells[off] = CellState::Written(writer);
        }
    }

    /// The shadow state of one cell (None while the layer is off).
    pub fn shadow_cell(&self, block: usize, off: usize) -> Option<CellState> {
        self.shadow.as_ref().map(|sh| sh[block].cells[off])
    }

    /// The statement after which the release plan freed `block`, if the
    /// block currently sits released with a recorded site.
    pub fn shadow_released_by(&self, block: usize) -> Option<Sym> {
        self.shadow.as_ref().and_then(|sh| sh[block].released_by)
    }

    /// Install a buffer as a live block, reusing a vacated id (one whose
    /// buffer was donated to the arena) when available. The shadow entry
    /// starts all-`Zeroed`; callers refine it.
    fn install(&mut self, b: Buffer) -> usize {
        let cells = vec![CellState::Zeroed; b.len()];
        match self.vacant.pop() {
            Some(id) => {
                if let Some(sh) = &mut self.shadow {
                    sh[id] = ShadowBlock {
                        cells,
                        released_by: None,
                    };
                }
                self.blocks[id] = b;
                self.live[id] = true;
                id
            }
            None => {
                if let Some(sh) = &mut self.shadow {
                    sh.push(ShadowBlock {
                        cells,
                        released_by: None,
                    });
                }
                self.blocks.push(b);
                self.live.push(true);
                self.blocks.len() - 1
            }
        }
    }

    fn fresh(&mut self, b: Buffer) -> usize {
        let bytes = (b.len() * b.elem().size_bytes()) as u64;
        self.bytes_allocated += bytes;
        self.num_allocs += 1;
        let id = self.install(b);
        self.charge(id, bytes);
        id
    }

    /// Pop a released block of storage class `class` with capacity `>= len`,
    /// if any. Buckets above `size_bucket(len)` hold only fitting blocks;
    /// the starting bucket needs a capacity check.
    fn take_reusable(&mut self, class: usize, len: usize) -> Option<usize> {
        let start = size_bucket(len);
        let lists = &mut self.free[class];
        if let Some(pos) = lists[start]
            .iter()
            .position(|&id| self.blocks[id].capacity() >= len)
        {
            return Some(lists[start].swap_remove(pos));
        }
        for bucket in lists[start + 1..].iter_mut() {
            if let Some(id) = bucket.pop() {
                return Some(id);
            }
        }
        None
    }

    /// Allocate a block of `len` elements; returns its id. Fresh blocks
    /// are zero-initialized; recycled blocks keep their stale contents
    /// (zeroing elided) — callers must fully write before reading, the
    /// same obligation every memory-mode destination already has.
    pub fn alloc(&mut self, elem: ElemType, len: usize) -> usize {
        if let Some(id) = self.take_reusable(storage_class(elem), len) {
            let b = &mut self.blocks[id];
            b.retag(elem);
            let kept = b.recycle_to(len);
            self.blocks_reused += 1;
            self.bytes_zeroing_elided += (kept * elem.size_bytes()) as u64;
            self.live[id] = true;
            self.charge(id, (len * elem.size_bytes()) as u64);
            if let Some(sh) = &mut self.shadow {
                // The surviving prefix is stale garbage; only the grown
                // tail was freshly zeroed by `recycle_to`.
                let s = &mut sh[id];
                s.released_by = None;
                s.cells.clear();
                s.cells.resize(len, CellState::Zeroed);
                s.cells[..kept].fill(CellState::Stale);
            }
            return id;
        }
        if let Some((arena, tenant)) = self.arena.clone() {
            if let Some((mut buf, cross)) = arena.adopt(storage_class(elem), len, tenant) {
                buf.retag(elem);
                let kept = buf.recycle_to(len);
                if cross {
                    buf.zero_prefix(kept);
                    self.bytes_cross_tenant_scrubbed += (kept * elem.size_bytes()) as u64;
                } else {
                    self.bytes_zeroing_elided += (kept * elem.size_bytes()) as u64;
                }
                self.blocks_reused += 1;
                self.arena_blocks_adopted += 1;
                let id = self.install(buf);
                self.charge(id, (len * elem.size_bytes()) as u64);
                if let Some(sh) = &mut self.shadow {
                    // Same provenance rule as the local free list: the
                    // surviving prefix is a recycled region the program
                    // must fully write before reading — `Stale` even when
                    // a cross-tenant scrub zeroed the bytes, so checked
                    // mode fires identically on either side of a tenant
                    // boundary.
                    sh[id].cells[..kept].fill(CellState::Stale);
                }
                return id;
            }
        }
        self.fresh(Buffer::new(elem, len))
    }

    /// Allocate a block initialized from an `f32` vector.
    pub fn alloc_f32(&mut self, data: Vec<f32>) -> usize {
        self.fresh_input(Buffer::F32(data))
    }

    pub fn alloc_i64(&mut self, data: Vec<i64>) -> usize {
        self.fresh_input(Buffer::I64(data))
    }

    pub fn alloc_f64(&mut self, data: Vec<f64>) -> usize {
        self.fresh_input(Buffer::F64(data))
    }

    /// Fresh block holding program input: every cell is legitimately
    /// readable from the start.
    fn fresh_input(&mut self, b: Buffer) -> usize {
        let id = self.fresh(b);
        if let Some(sh) = &mut self.shadow {
            sh[id].cells.fill(CellState::Input);
        }
        id
    }

    /// Return a dead block to its free list. Safe to call twice for the
    /// same id (two memory variables can name one block after an in-place
    /// update); the second call is a no-op.
    pub fn release(&mut self, block: usize) {
        self.release_at(block, None);
    }

    /// [`release`](MemStore::release), additionally recording (for the
    /// shadow layer) the statement after which the release plan fired —
    /// later reads of the block report it in their use-after-release
    /// diagnostic.
    pub fn release_at(&mut self, block: usize, site: Option<Sym>) {
        if !self.live[block] {
            return;
        }
        self.live[block] = false;
        self.uncharge(block);
        if let Some(sh) = &mut self.shadow {
            let s = &mut sh[block];
            s.released_by = site;
            s.cells.fill(CellState::Released);
        }
        let class = storage_class(self.blocks[block].elem());
        let bucket = size_bucket(self.blocks[block].capacity());
        self.free[class][bucket].push(block);
    }

    /// Prepare per-color slabs for a plan lowered with `n` colors:
    /// [`release_colored`](MemStore::release_colored) parks into them and
    /// [`alloc_colored`](MemStore::alloc_colored) pops from them.
    /// Clears any leftover slabs from an aborted run (parked ids are
    /// simply forgotten — their blocks are not live, and
    /// [`drain_colors`](MemStore::drain_colors) at the end of the
    /// previous successful run already emptied the slots).
    pub fn begin_colors(&mut self, n: u32) {
        self.color_slots.clear();
        self.color_slots.resize(n as usize, Vec::new());
    }

    /// Park a dead block in color `c`'s slab instead of the free lists:
    /// the next allocation colored `c` (the loop's next-iteration
    /// ping-pong block) takes it back. Same shadow poisoning as
    /// [`release_at`](MemStore::release_at), so checked mode catches a
    /// premature carried release exactly like a premature plan release.
    pub fn release_colored(&mut self, block: usize, color: u32, site: Option<Sym>) {
        if !self.live[block] {
            return;
        }
        self.live[block] = false;
        self.uncharge(block);
        if let Some(sh) = &mut self.shadow {
            let s = &mut sh[block];
            s.released_by = site;
            s.cells.fill(CellState::Released);
        }
        self.color_slots[color as usize].push(block);
        self.carried_releases += 1;
    }

    /// Allocate a block colored `c`: pop a fitting block from the color's
    /// slab if one is parked there (the previous iteration's carried
    /// release), falling back to [`alloc`](MemStore::alloc) otherwise.
    /// Slab hits follow the free-list recycling contract — stale prefix
    /// kept (zeroing elided), grown tail zeroed, shadow prefix `Stale`.
    pub fn alloc_colored(&mut self, elem: ElemType, len: usize, color: u32) -> usize {
        let slot = &mut self.color_slots[color as usize];
        let pos = slot.iter().position(|&id| {
            storage_class(self.blocks[id].elem()) == storage_class(elem)
                && self.blocks[id].capacity() >= len
        });
        let Some(pos) = pos else {
            return self.alloc(elem, len);
        };
        let id = slot.swap_remove(pos);
        let b = &mut self.blocks[id];
        b.retag(elem);
        let kept = b.recycle_to(len);
        self.blocks_reused += 1;
        self.color_slab_hits += 1;
        self.bytes_zeroing_elided += (kept * elem.size_bytes()) as u64;
        self.live[id] = true;
        self.charge(id, (len * elem.size_bytes()) as u64);
        if let Some(sh) = &mut self.shadow {
            let s = &mut sh[id];
            s.released_by = None;
            s.cells.clear();
            s.cells.resize(len, CellState::Zeroed);
            s.cells[..kept].fill(CellState::Stale);
        }
        id
    }

    /// Move every block still parked in a color slab to the ordinary free
    /// lists and drop the slabs. Called at the end of a run, before
    /// [`release_all_live`](MemStore::release_all_live), so slab
    /// residents recycle across runs and feed
    /// [`donate_free_blocks`](MemStore::donate_free_blocks) exactly like
    /// plan-released blocks.
    pub fn drain_colors(&mut self) {
        for slot in std::mem::take(&mut self.color_slots) {
            for id in slot {
                let class = storage_class(self.blocks[id].elem());
                let bucket = size_bucket(self.blocks[id].capacity());
                self.free[class][bucket].push(id);
            }
        }
    }

    /// Release every live block — end-of-run recycling, so a store reused
    /// across runs (a [`crate::Session`]) serves the next run's
    /// allocations from this run's blocks.
    pub fn release_all_live(&mut self) {
        for id in 0..self.blocks.len() {
            self.release(id);
        }
    }

    pub fn raw(&mut self, block: usize) -> RawBuf {
        let b = &mut self.blocks[block];
        RawBuf {
            len: b.len(),
            elem: b.elem(),
            ptr: b.base_ptr(),
        }
    }

    pub fn elem(&self, block: usize) -> ElemType {
        self.blocks[block].elem()
    }

    pub fn len(&self, block: usize) -> usize {
        self.blocks[block].len()
    }

    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_counts() {
        let mut s = MemStore::new();
        let b = s.alloc(ElemType::F32, 10);
        assert_eq!(s.len(b), 10);
        assert_eq!(s.bytes_allocated, 40);
        let r = s.raw(b);
        assert_eq!(r.len, 10);
        assert_eq!(r.elem, ElemType::F32);
        let b2 = s.alloc_i64(vec![1, 2, 3]);
        assert_eq!(s.len(b2), 3);
        assert_eq!(s.bytes_allocated, 40 + 24);
        assert_eq!(s.num_allocs, 2);
    }

    #[test]
    fn release_then_alloc_reuses_block() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::F32, 1000);
        s.release(a);
        let b = s.alloc(ElemType::F32, 800);
        assert_eq!(b, a, "shrinking realloc must recycle the block");
        assert_eq!(s.len(b), 800);
        assert_eq!(s.num_allocs, 1, "reuse must not count as an alloc");
        assert_eq!(s.blocks_reused, 1);
        assert_eq!(s.bytes_zeroing_elided, 800 * 4);
    }

    #[test]
    fn reuse_respects_storage_class() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::F32, 64);
        s.release(a);
        let b = s.alloc(ElemType::F64, 64);
        assert_ne!(b, a, "f64 request must not take an f32 block");
        let c = s.alloc(ElemType::F32, 64);
        assert_eq!(c, a);
    }

    #[test]
    fn bool_and_i64_share_a_class() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::I64, 32);
        s.release(a);
        let b = s.alloc(ElemType::Bool, 32);
        assert_eq!(b, a);
        assert_eq!(s.elem(b), ElemType::Bool);
    }

    #[test]
    fn growth_within_capacity_reuses_and_zeroes_tail() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::I64, 100);
        {
            let r = s.raw(a);
            let sl = unsafe { std::slice::from_raw_parts_mut(r.ptr as *mut i64, r.len) };
            sl.fill(7);
        }
        s.release(a);
        // 100 elements leave capacity >= 100; 60 fits in the same bucket.
        let b = s.alloc(ElemType::I64, 60);
        assert_eq!(b, a);
        s.release(b);
        let c = s.alloc(ElemType::I64, 100);
        assert_eq!(c, a);
        let r = s.raw(c);
        let sl = unsafe { std::slice::from_raw_parts(r.ptr as *const i64, r.len) };
        // Prefix keeps stale contents (zeroing elided), grown tail is zeroed.
        assert!(sl[..60].iter().all(|&x| x == 7));
        assert!(sl[60..].iter().all(|&x| x == 0));
    }

    #[test]
    fn double_release_is_a_noop() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::F32, 16);
        s.release(a);
        s.release(a);
        let b = s.alloc(ElemType::F32, 16);
        let c = s.alloc(ElemType::F32, 16);
        assert_eq!(b, a);
        assert_ne!(c, a, "one release must grant at most one reuse");
    }

    #[test]
    fn shadow_tracks_cell_lifecycle_across_recycling() {
        use arraymem_symbolic::sym;
        let mut s = MemStore::new();
        s.enable_shadow();
        // Fresh allocation: zero-filled cells.
        let a = s.alloc(ElemType::I64, 4);
        assert_eq!(s.shadow_cell(a, 0), Some(CellState::Zeroed));
        // A write leaves provenance.
        let w = sym("writer");
        s.shadow_mark(a, 2, w);
        assert_eq!(s.shadow_cell(a, 2), Some(CellState::Written(w)));
        // Release records the site and poisons every cell.
        let site = sym("last_use");
        s.release_at(a, Some(site));
        assert_eq!(s.shadow_cell(a, 0), Some(CellState::Released));
        assert_eq!(s.shadow_released_by(a), Some(site));
        // Recycling: surviving prefix is stale, grown tail (none here,
        // the request shrinks) — and the release site is cleared.
        let b = s.alloc(ElemType::I64, 3);
        assert_eq!(b, a);
        assert_eq!(s.shadow_released_by(b), None);
        assert!((0..3).all(|i| s.shadow_cell(b, i) == Some(CellState::Stale)));
        // Growing within capacity: zeroed tail past the kept prefix.
        s.release(b);
        let c = s.alloc(ElemType::I64, 4);
        assert_eq!(c, a);
        assert_eq!(s.shadow_cell(c, 2), Some(CellState::Stale));
        assert_eq!(s.shadow_cell(c, 3), Some(CellState::Zeroed));
        // Input allocations are readable everywhere.
        let d = s.alloc_i64(vec![1, 2]);
        assert_eq!(s.shadow_cell(d, 1), Some(CellState::Input));
        // Disabling drops the layer entirely.
        s.disable_shadow();
        assert_eq!(s.shadow_cell(c, 0), None);
        // Re-enabling marks every pre-existing block stale.
        s.enable_shadow();
        assert_eq!(s.shadow_cell(d, 0), Some(CellState::Stale));
    }

    fn fill_i64(s: &mut MemStore, block: usize, x: i64) {
        let r = s.raw(block);
        let sl = unsafe { std::slice::from_raw_parts_mut(r.ptr as *mut i64, r.len) };
        sl.fill(x);
    }

    fn read_i64(s: &mut MemStore, block: usize) -> Vec<i64> {
        let r = s.raw(block);
        unsafe { std::slice::from_raw_parts(r.ptr as *const i64, r.len) }.to_vec()
    }

    #[test]
    fn arena_same_tenant_adoption_keeps_contents() {
        let arena = SharedArena::new();
        let mut s = MemStore::new();
        s.attach_arena(arena.clone(), 1);
        let a = s.alloc(ElemType::I64, 64);
        fill_i64(&mut s, a, 7);
        s.release(a);
        assert_eq!(s.donate_free_blocks(), 1);
        assert_eq!(arena.stats().parked, 1);
        // The same tenant gets its own bytes back: elision preserved.
        let b = s.alloc(ElemType::I64, 64);
        assert_eq!(read_i64(&mut s, b), vec![7; 64]);
        assert_eq!(s.arena_blocks_adopted, 1);
        assert_eq!(s.bytes_cross_tenant_scrubbed, 0);
        assert_eq!(s.bytes_zeroing_elided, 64 * 8);
        assert_eq!(s.num_allocs, 1, "adoption must not count as an alloc");
        assert_eq!(arena.stats().adopted_same_tenant, 1);
    }

    #[test]
    fn arena_cross_tenant_adoption_scrubs_but_stays_stale() {
        let arena = SharedArena::new();
        let mut a_store = MemStore::new();
        a_store.attach_arena(arena.clone(), 1);
        let mut b_store = MemStore::new();
        b_store.attach_arena(arena.clone(), 2);
        b_store.enable_shadow();
        let a = a_store.alloc(ElemType::I64, 64);
        fill_i64(&mut a_store, a, 7);
        a_store.release(a);
        a_store.donate_free_blocks();
        // Tenant 2 adopts tenant 1's block: bytes scrubbed to zero, but
        // the shadow prefix stays Stale — provenance still fires on a
        // read-before-write, zeroed or not.
        let b = b_store.alloc(ElemType::I64, 64);
        assert_eq!(read_i64(&mut b_store, b), vec![0; 64]);
        assert_eq!(b_store.bytes_cross_tenant_scrubbed, 64 * 8);
        assert_eq!(b_store.bytes_zeroing_elided, 0);
        assert_eq!(b_store.arena_blocks_adopted, 1);
        assert!((0..64).all(|i| b_store.shadow_cell(b, i) == Some(CellState::Stale)));
        assert_eq!(arena.stats().adopted_cross_tenant, 1);
    }

    #[test]
    fn arena_prefers_the_requesters_own_donation() {
        let arena = SharedArena::new();
        let mut a_store = MemStore::new();
        a_store.attach_arena(arena.clone(), 1);
        let mut b_store = MemStore::new();
        b_store.attach_arena(arena.clone(), 2);
        // Both tenants donate a fitting block (allocated while the arena
        // is still empty); tenant 2's own donation must win even though
        // tenant 1's was parked first.
        let a = a_store.alloc(ElemType::I64, 64);
        fill_i64(&mut a_store, a, 1);
        let b = b_store.alloc(ElemType::I64, 64);
        fill_i64(&mut b_store, b, 2);
        a_store.release(a);
        a_store.donate_free_blocks();
        b_store.release(b);
        b_store.donate_free_blocks();
        let c = b_store.alloc(ElemType::I64, 64);
        assert_eq!(read_i64(&mut b_store, c), vec![2; 64]);
        assert_eq!(arena.stats().adopted_same_tenant, 1);
        assert_eq!(arena.stats().adopted_cross_tenant, 0);
    }

    #[test]
    fn donated_ids_are_vacated_and_reused() {
        let arena = SharedArena::new();
        let mut s = MemStore::new();
        s.attach_arena(arena.clone(), 1);
        let a = s.alloc(ElemType::I64, 32);
        s.release(a);
        s.donate_free_blocks();
        let n = s.num_blocks();
        // Adoption reinstalls into the vacated id: no growth.
        let b = s.alloc(ElemType::I64, 32);
        assert_eq!(b, a);
        assert_eq!(s.num_blocks(), n);
    }

    #[test]
    fn colored_release_parks_in_slab_and_colored_alloc_pops_it() {
        let mut s = MemStore::new();
        s.begin_colors(2);
        let a = s.alloc_colored(ElemType::I64, 64, 0);
        fill_i64(&mut s, a, 7);
        s.release_colored(a, 0, None);
        assert_eq!(s.carried_releases, 1);
        // An uncolored allocation must not raid the slab.
        let other = s.alloc(ElemType::I64, 64);
        assert_ne!(other, a);
        // Nor an allocation of a different color.
        let c1 = s.alloc_colored(ElemType::I64, 64, 1);
        assert_ne!(c1, a);
        // The matching color pops the parked block, elision intact.
        let b = s.alloc_colored(ElemType::I64, 64, 0);
        assert_eq!(b, a);
        assert_eq!(read_i64(&mut s, b), vec![7; 64]);
        assert_eq!(s.color_slab_hits, 1);
        assert_eq!(s.num_allocs, 3, "a slab hit must not count as an alloc");
    }

    #[test]
    fn colored_release_uncharges_liveness() {
        let mut s = MemStore::new();
        s.begin_colors(1);
        let a = s.alloc_colored(ElemType::I64, 64, 0);
        assert_eq!(s.peak_bytes_live, 512);
        s.release_colored(a, 0, None);
        let b = s.alloc_colored(ElemType::I64, 64, 0);
        assert_eq!(b, a);
        // Ping-pong through the slab: peak stays one block, not two.
        assert_eq!(s.peak_bytes_live, 512);
    }

    #[test]
    fn drain_colors_moves_slab_residents_to_free_lists() {
        let mut s = MemStore::new();
        s.begin_colors(1);
        let a = s.alloc_colored(ElemType::I64, 64, 0);
        s.release_colored(a, 0, None);
        s.drain_colors();
        let b = s.alloc(ElemType::I64, 64);
        assert_eq!(b, a, "drained slab blocks must recycle normally");
        assert_eq!(s.blocks_reused, 1);
    }

    #[test]
    fn colored_release_poisons_shadow_cells() {
        use arraymem_symbolic::sym;
        let mut s = MemStore::new();
        s.enable_shadow();
        s.begin_colors(1);
        let a = s.alloc_colored(ElemType::I64, 4, 0);
        let site = sym("carried_site");
        s.release_colored(a, 0, Some(site));
        assert_eq!(s.shadow_cell(a, 0), Some(CellState::Released));
        assert_eq!(s.shadow_released_by(a), Some(site));
        let b = s.alloc_colored(ElemType::I64, 4, 0);
        assert_eq!(b, a);
        assert_eq!(s.shadow_released_by(b), None);
        assert_eq!(s.shadow_cell(b, 0), Some(CellState::Stale));
    }

    #[test]
    fn arena_meter_sees_concurrent_tenant_peaks() {
        let arena = SharedArena::new();
        let mut a_store = MemStore::new();
        a_store.attach_arena(arena.clone(), 1);
        let mut b_store = MemStore::new();
        b_store.attach_arena(arena.clone(), 2);
        // Both tenants live at once: the arena peak is their *sum*,
        // which the max over per-tenant peaks (512) understates.
        let a = a_store.alloc(ElemType::I64, 64);
        let b = b_store.alloc(ElemType::I64, 64);
        assert_eq!(arena.stats().live_bytes, 1024);
        assert_eq!(arena.stats().peak_bytes_live, 1024);
        assert_eq!(a_store.peak_bytes_live.max(b_store.peak_bytes_live), 512);
        a_store.release(a);
        b_store.release(b);
        assert_eq!(arena.stats().live_bytes, 0);
        assert_eq!(arena.stats().peak_bytes_live, 1024);
    }

    /// Adversarial oversized donation: the donor parks a block strictly
    /// larger than the cross-tenant request. The adopter must see exactly
    /// the requested length, every visible *byte* scrubbed to zero, the
    /// shadow prefix still `Stale` — and the donor's bytes past the kept
    /// prefix must never resurface, even when the adopter later grows the
    /// block back to the donor's full size within the retained capacity.
    #[test]
    fn oversized_cross_tenant_adoption_leaks_no_donor_byte() {
        let arena = SharedArena::new();
        let mut donor = MemStore::new();
        donor.attach_arena(arena.clone(), 1);
        let mut adopter = MemStore::new();
        adopter.attach_arena(arena.clone(), 2);
        adopter.enable_shadow();
        // 96 sentinel elements donated; 40 requested across the boundary.
        let a = donor.alloc(ElemType::I64, 96);
        fill_i64(&mut donor, a, 0x5A5A_5A5A_5A5A_5A5A_u64 as i64);
        donor.release(a);
        donor.donate_free_blocks();
        let b = adopter.alloc(ElemType::I64, 40);
        assert_eq!(arena.stats().adopted_cross_tenant, 1);
        assert_eq!(
            adopter.len(b),
            40,
            "adoption must not over-expose the donor"
        );
        // Byte-level inspection: no sentinel byte anywhere in the view.
        let r = adopter.raw(b);
        let bytes = unsafe { std::slice::from_raw_parts(r.ptr as *const u8, r.len * 8) };
        assert!(
            bytes.iter().all(|&x| x == 0),
            "a donor byte survived the cross-tenant scrub"
        );
        assert_eq!(adopter.bytes_cross_tenant_scrubbed, 40 * 8);
        // Scrubbed is not initialized: provenance still says Stale.
        assert!((0..40).all(|i| adopter.shadow_cell(b, i) == Some(CellState::Stale)));
        // Grow back to the donor's size inside the retained capacity: the
        // regrown tail must be zeros, not the donor's parked bytes.
        adopter.release(b);
        let c = adopter.alloc(ElemType::I64, 96);
        assert_eq!(c, b, "regrowth within capacity must recycle in place");
        let r = adopter.raw(c);
        let bytes = unsafe { std::slice::from_raw_parts(r.ptr as *const u8, r.len * 8) };
        assert!(
            bytes[40 * 8..].iter().all(|&x| x == 0),
            "donor bytes past the kept prefix resurfaced on regrowth"
        );
    }

    #[test]
    fn release_all_live_recycles_everything() {
        let mut s = MemStore::new();
        let a = s.alloc(ElemType::F32, 10);
        let b = s.alloc(ElemType::F64, 10);
        s.release_all_live();
        assert_eq!(s.alloc(ElemType::F32, 10), a);
        assert_eq!(s.alloc(ElemType::F64, 10), b);
        assert_eq!(s.num_allocs, 2);
        assert_eq!(s.blocks_reused, 2);
    }
}
