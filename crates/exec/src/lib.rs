//! Execution substrate: the "GPU" our compiler targets.
//!
//! The paper generates GPU code in which "the actual structure of the LMAD
//! for a given array is inlined for every array access" (§VII). This crate
//! plays that role on the CPU:
//!
//! - [`store`]: numbered memory blocks with allocation accounting;
//! - [`view`]: LMAD-addressed views over blocks — the runtime counterpart
//!   of index functions, with contiguous fast paths;
//! - [`kernel`]: the registry of native kernels a `map` may invoke (the
//!   moral equivalent of generated device code);
//! - [`pool`]: a persistent work-stealing worker pool (parked workers
//!   reused across every map of every run, chunks claimed off a shared
//!   atomic counter, degrading gracefully to inline execution on small
//!   trip counts) with per-dispatch utilization accounting;
//! - [`vm`]: the machine executing compiled programs. It runs in three
//!   modes: `Memory` (obeying the compiler's memory annotations — allocs,
//!   rebased index functions, elided copies), `Pure` (direct value
//!   semantics: every operation materializes a fresh dense array), and
//!   `Checked` (`Memory` under a shadow-memory sanitizer that dynamically
//!   validates the optimizer's promises — see [`vm::Mode::Checked`]).
//!   `Pure` is the semantic ground truth — the paper's guarantee that
//!   deleting memory annotations leaves the meaning unchanged is checked
//!   by comparing the modes' outputs;
//! - [`stats`]: instrumentation — bytes allocated/copied/elided, kernel
//!   and copy time, checked-mode diagnostics — from which the benchmark
//!   tables are built.

pub mod cache;
pub mod kernel;
pub mod plan;
pub mod pool;
pub mod stats;
pub mod store;
pub mod value;
pub mod view;
pub mod vm;

pub use cache::{PlanCache, PlanStats, PrepareOutcome};
pub use kernel::{KernelCtx, KernelRegistry};
pub use plan::{
    lower_plan, lower_plan_carried_skewed, lower_plan_full, lower_plan_with, ExecPlan, Slot,
};
pub use pool::{default_threads, DispatchInfo};
pub use stats::{Diagnostic, Stats};
pub use store::{ArenaStats, CellState, MemStore, SharedArena};
pub use value::{ArrayRef, InputValue, OutputValue, Value};
pub use view::{View, ViewMut};
pub use vm::{execute_plan, run_program, Mode, PlanHandle, Session};

#[cfg(test)]
mod tests;
