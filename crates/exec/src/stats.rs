//! Execution instrumentation.

use std::time::Duration;

/// Counters and timers collected by one program execution. The benchmark
/// tables are computed from wall time; the byte counters let tests assert
/// the *mechanism* (short-circuiting removed this many copied bytes), not
/// just the symptom.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Bytes allocated by `alloc` statements and temporaries.
    pub bytes_allocated: u64,
    pub num_allocs: u64,
    /// Allocations served from the store's free list (last-use driven
    /// recycling) instead of the heap.
    pub blocks_reused: u64,
    /// Bytes of zero-fill skipped because the block was recycled.
    pub bytes_zeroing_elided: u64,
    /// Map statements that went through the persistent worker pool
    /// (small trip counts run inline and are not counted).
    pub pool_dispatches: u64,
    /// Bytes moved by update/concat copies and mapnest result copies.
    pub bytes_copied: u64,
    pub num_copies: u64,
    /// Bytes whose copy was *elided* by short-circuiting.
    pub bytes_elided: u64,
    pub num_elided: u64,
    /// Kernel instances launched.
    pub kernel_launches: u64,
    /// Time spent inside kernels / lambda bodies.
    pub kernel_time: Duration,
    /// Time spent in copies the optimizer targets.
    pub copy_time: Duration,
    /// Total execution wall time of the program body.
    pub total_time: Duration,
}

impl Stats {
    pub fn reset(&mut self) {
        *self = Stats::default();
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "alloc: {} B in {} blocks | copied: {} B in {} copies | elided: {} B in {} copies",
            self.bytes_allocated,
            self.num_allocs,
            self.bytes_copied,
            self.num_copies,
            self.bytes_elided,
            self.num_elided
        )?;
        writeln!(
            f,
            "reused: {} blocks | zeroing elided: {} B | pool dispatches: {}",
            self.blocks_reused, self.bytes_zeroing_elided, self.pool_dispatches
        )?;
        write!(
            f,
            "kernel: {:?} ({} launches) | copy: {:?} | total: {:?}",
            self.kernel_time, self.kernel_launches, self.copy_time, self.total_time
        )
    }
}
