//! Execution instrumentation, including the checked-mode sanitizer's
//! structured diagnostics.

use std::time::Duration;

/// One sanitizer finding from a `Mode::Checked` run. Every variant names
/// the statement involved, the cell's flat offset in its memory block,
/// and the index function(s) through which the cell was addressed —
/// enough to debug a fuzzer counterexample without a rerun.
#[derive(Clone, Debug)]
pub enum Diagnostic {
    /// A statement read a cell no statement ever wrote, in a block that
    /// was recycled without zero-filling (validates the store's zero-fill
    /// elision: the compiler promised the block is fully written first).
    UninitRead {
        /// Name bound by the reading statement.
        stm: String,
        block: usize,
        /// Flat element offset within the block.
        offset: i64,
        /// Index function of the read.
        ixfn: String,
    },
    /// A statement read a cell of a block the release plan had already
    /// returned to the free list (the plan claimed its last use passed).
    UseAfterRelease {
        stm: String,
        block: usize,
        offset: i64,
        ixfn: String,
        /// Name bound by the statement after which the block was released.
        released_after: String,
    },
    /// Two different iterations of one parallel map wrote the same cell —
    /// their write footprints were supposed to be disjoint rows.
    MapRace {
        /// Name bound by the map statement.
        stm: String,
        block: usize,
        offset: i64,
        iter_a: i64,
        iter_b: i64,
        /// Index function of the map's result.
        ixfn: String,
    },
    /// The pre-dispatch re-proof of a `par_safety`-approved map found two
    /// iterations whose concrete write footprints share a cell: the
    /// symbolic chunk-disjointness verdict was wrong (or forced). The map
    /// was executed serially instead.
    ParOverlap {
        /// Name bound by the map statement.
        stm: String,
        block: usize,
        offset: i64,
        iter_a: i64,
        iter_b: i64,
        /// Index function of the map's result.
        ixfn: String,
    },
    /// Two arrays sharing one merged memory block have concretely
    /// intersecting footprints — the merge pass's symbolic non-overlap
    /// verdict was wrong (or forced).
    MergeOverlap {
        /// The surviving block of the merge.
        host: String,
        /// The block whose tenants were moved into `host`.
        victim: String,
        /// Smallest flat offset common to both footprints.
        offset: i64,
        /// Concrete LMAD of the victim-tenant footprint.
        victim_ixfn: String,
        /// Concrete LMAD of the resident footprint it intersects.
        resident_ixfn: String,
    },
    /// A gather read or scatter write presented a runtime index outside
    /// the addressed array's extent. Checked mode records the finding and
    /// continues (the access is skipped); the unchecked evaluators abort
    /// with an error instead.
    IndexOutOfBounds {
        /// Name bound by the gather/scatter statement.
        stm: String,
        /// Position in the index array holding the offending index.
        lane: i64,
        /// The out-of-range index value that was read.
        index: i64,
        /// Number of addressable elements in the array the index targets.
        extent: i64,
    },
    /// A short-circuited construction's concrete write footprint
    /// intersects a recorded later-use footprint of the destination
    /// memory — the symbolic non-overlap verdict was wrong (or forced).
    CircuitOverlap {
        /// Root array of the short-circuited web.
        root: String,
        /// Name bound by the circuit-point statement.
        stm: String,
        /// Smallest flat offset common to both footprints.
        offset: i64,
        /// Concrete LMAD the web writes through.
        write_ixfn: String,
        /// Concrete LMAD of the conflicting destination use.
        use_ixfn: String,
    },
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Diagnostic::UninitRead {
                stm,
                block,
                offset,
                ixfn,
            } => write!(
                f,
                "uninitialized read: {stm} read never-written cell {offset} of recycled \
                 block #{block} via {ixfn}"
            ),
            Diagnostic::UseAfterRelease {
                stm,
                block,
                offset,
                ixfn,
                released_after,
            } => write!(
                f,
                "use after release: {stm} read cell {offset} of block #{block} via {ixfn}, \
                 but the plan released the block after {released_after}"
            ),
            Diagnostic::MapRace {
                stm,
                block,
                offset,
                iter_a,
                iter_b,
                ixfn,
            } => write!(
                f,
                "map race: iterations {iter_a} and {iter_b} of {stm} both write cell \
                 {offset} of block #{block} (result index function {ixfn})"
            ),
            Diagnostic::ParOverlap {
                stm,
                block,
                offset,
                iter_a,
                iter_b,
                ixfn,
            } => write!(
                f,
                "parallel overlap: iterations {iter_a} and {iter_b} of {stm} would both write \
                 cell {offset} of block #{block} (result index function {ixfn}); the \
                 parallel-safety verdict was wrong and the map ran serially"
            ),
            Diagnostic::MergeOverlap {
                host,
                victim,
                offset,
                victim_ixfn,
                resident_ixfn,
            } => write!(
                f,
                "merge overlap: block {victim} merged into {host}, but tenant footprint \
                 {victim_ixfn} intersects resident footprint {resident_ixfn} at offset {offset}"
            ),
            Diagnostic::IndexOutOfBounds {
                stm,
                lane,
                index,
                extent,
            } => write!(
                f,
                "index out of bounds: {stm} read runtime index {index} (lane {lane}) against \
                 an extent of {extent} elements; the access was skipped"
            ),
            Diagnostic::CircuitOverlap {
                root,
                stm,
                offset,
                write_ixfn,
                use_ixfn,
            } => write!(
                f,
                "short-circuit overlap: eliding {root} at {stm} writes {write_ixfn}, which \
                 intersects destination use {use_ixfn} at offset {offset}"
            ),
        }
    }
}

/// Counters and timers collected by one program execution. The benchmark
/// tables are computed from wall time; the byte counters let tests assert
/// the *mechanism* (short-circuiting removed this many copied bytes), not
/// just the symptom.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Bytes allocated by `alloc` statements and temporaries.
    pub bytes_allocated: u64,
    pub num_allocs: u64,
    /// Allocations served from the store's free list (last-use driven
    /// recycling) instead of the heap.
    pub blocks_reused: u64,
    /// Bytes of zero-fill skipped because the block was recycled.
    pub bytes_zeroing_elided: u64,
    /// Allocations served by adopting a block from the shared
    /// cross-tenant arena (a subset of `blocks_reused`).
    pub arena_blocks_adopted: u64,
    /// Bytes zeroed on cross-tenant adoption: recycled contents never
    /// cross a tenant boundary, so the zero-fill elision is forfeited
    /// there and the scrub cost counted here instead.
    pub bytes_cross_tenant_scrubbed: u64,
    /// High-water mark of bytes simultaneously live in the store during
    /// the program body (inputs included) — the quantity block merging
    /// reduces.
    pub peak_bytes_live: u64,
    /// Memory blocks the merge pass folded into another allocation (a
    /// compile-time property of the executed plan).
    pub blocks_merged: u64,
    /// Carried releases that fired: a loop's dead ping-pong block was
    /// returned to its color's slab inside the body instead of living to
    /// the end-of-run sweep (the coloring pass's `CarriedRelease`
    /// records, guarded concretely per iteration).
    pub carried_releases: u64,
    /// Colored allocations served from their color's slab (a subset of
    /// `blocks_reused`): the previous iteration's carried release coming
    /// straight back.
    pub color_slab_hits: u64,
    /// Map statements that went through the persistent worker pool
    /// (small trip counts run inline and are not counted).
    pub pool_dispatches: u64,
    /// Kernel mapnests that executed **parallel and in place**: dispatched
    /// to the pool writing their result memory directly, under a
    /// `par_safety` proof, with no private-row buffer.
    pub maps_parallel_in_place: u64,
    /// Work-stealing chunks claimed across all pool dispatches.
    pub par_chunks: u64,
    /// Chunks claimed by a worker other than the dispatching thread.
    pub par_chunks_stolen: u64,
    /// Per-dispatch worker utilization, summed: participants that claimed
    /// at least one chunk…
    pub par_workers_engaged: u64,
    /// …out of the worker slots offered to those dispatches.
    pub par_workers_offered: u64,
    /// Checked mode: `par_safety`-approved maps whose pre-dispatch
    /// concrete enumeration confirmed chunk-wise disjoint writes.
    pub par_checks_verified: u64,
    /// Bytes moved by update/concat copies and mapnest result copies.
    pub bytes_copied: u64,
    pub num_copies: u64,
    /// Bytes whose copy was *elided* by short-circuiting.
    pub bytes_elided: u64,
    pub num_elided: u64,
    /// Kernel instances launched.
    pub kernel_launches: u64,
    /// Time spent inside kernels / lambda bodies.
    pub kernel_time: Duration,
    /// Time spent in copies the optimizer targets.
    pub copy_time: Duration,
    /// Total execution wall time of the program body.
    pub total_time: Duration,
    /// Checked mode: shadow cells marked or inspected.
    pub cells_checked: u64,
    /// Checked mode: short-circuit checks whose recorded footprints all
    /// evaluated to concrete LMADs and came out conflict-free (every
    /// write × later-use pair disjoint; vacuously so when the optimizer
    /// recorded no later uses). Counted per execution of the circuit
    /// statement's block, so loop-scoped circuits count per iteration.
    pub circuits_verified: u64,
    /// Checked mode: footprint-justified merges whose recorded pairs all
    /// evaluated concretely and came out disjoint.
    pub merges_verified: u64,
    /// Checked mode: sanitizer findings (empty on a clean run).
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics dropped beyond the per-run cap.
    pub diagnostics_suppressed: u64,
    /// Whether this run's `prepare` was answered from the session's plan
    /// cache (the harness asserts warm runs never re-lower).
    pub plan_cache_hit: bool,
    /// Time the session spent lowering the plan for this run (zero on a
    /// cache hit).
    pub plan_build_time: Duration,
}

impl Stats {
    pub fn reset(&mut self) {
        *self = Stats::default();
    }

    /// Fold another run's figures into this accumulator — the server's
    /// per-tenant and global aggregation. Counters and durations sum;
    /// `peak_bytes_live` takes the max (runs against one store are
    /// sequential, so the peak-of-peaks is the store's true high-water
    /// mark); diagnostics append; `plan_cache_hit` ANDs (true only if
    /// *every* merged run was answered from the cache).
    ///
    /// `other` is destructured exhaustively, with no `..` rest pattern:
    /// adding a field to `Stats` without deciding how it aggregates is a
    /// compile error at this site (and in the mirror-image unit test).
    pub fn merge(&mut self, other: &Stats) {
        let Stats {
            bytes_allocated,
            num_allocs,
            blocks_reused,
            bytes_zeroing_elided,
            arena_blocks_adopted,
            bytes_cross_tenant_scrubbed,
            peak_bytes_live,
            blocks_merged,
            carried_releases,
            color_slab_hits,
            pool_dispatches,
            maps_parallel_in_place,
            par_chunks,
            par_chunks_stolen,
            par_workers_engaged,
            par_workers_offered,
            par_checks_verified,
            bytes_copied,
            num_copies,
            bytes_elided,
            num_elided,
            kernel_launches,
            kernel_time,
            copy_time,
            total_time,
            cells_checked,
            circuits_verified,
            merges_verified,
            diagnostics,
            diagnostics_suppressed,
            plan_cache_hit,
            plan_build_time,
        } = other;
        self.bytes_allocated += bytes_allocated;
        self.num_allocs += num_allocs;
        self.blocks_reused += blocks_reused;
        self.bytes_zeroing_elided += bytes_zeroing_elided;
        self.arena_blocks_adopted += arena_blocks_adopted;
        self.bytes_cross_tenant_scrubbed += bytes_cross_tenant_scrubbed;
        self.peak_bytes_live = self.peak_bytes_live.max(*peak_bytes_live);
        self.blocks_merged += blocks_merged;
        self.carried_releases += carried_releases;
        self.color_slab_hits += color_slab_hits;
        self.pool_dispatches += pool_dispatches;
        self.maps_parallel_in_place += maps_parallel_in_place;
        self.par_chunks += par_chunks;
        self.par_chunks_stolen += par_chunks_stolen;
        self.par_workers_engaged += par_workers_engaged;
        self.par_workers_offered += par_workers_offered;
        self.par_checks_verified += par_checks_verified;
        self.bytes_copied += bytes_copied;
        self.num_copies += num_copies;
        self.bytes_elided += bytes_elided;
        self.num_elided += num_elided;
        self.kernel_launches += kernel_launches;
        self.kernel_time += *kernel_time;
        self.copy_time += *copy_time;
        self.total_time += *total_time;
        self.cells_checked += cells_checked;
        self.circuits_verified += circuits_verified;
        self.merges_verified += merges_verified;
        self.diagnostics.extend(diagnostics.iter().cloned());
        self.diagnostics_suppressed += diagnostics_suppressed;
        self.plan_cache_hit = self.plan_cache_hit && *plan_cache_hit;
        self.plan_build_time += *plan_build_time;
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "alloc: {} B in {} blocks | copied: {} B in {} copies | elided: {} B in {} copies",
            self.bytes_allocated,
            self.num_allocs,
            self.bytes_copied,
            self.num_copies,
            self.bytes_elided,
            self.num_elided
        )?;
        writeln!(
            f,
            "reused: {} blocks | zeroing elided: {} B | pool dispatches: {}",
            self.blocks_reused, self.bytes_zeroing_elided, self.pool_dispatches
        )?;
        if self.arena_blocks_adopted > 0 {
            writeln!(
                f,
                "arena adopted: {} blocks | cross-tenant scrubbed: {} B",
                self.arena_blocks_adopted, self.bytes_cross_tenant_scrubbed
            )?;
        }
        writeln!(
            f,
            "peak live: {} B | merged blocks: {}",
            self.peak_bytes_live, self.blocks_merged
        )?;
        if self.carried_releases > 0 {
            writeln!(
                f,
                "carried releases: {} | color slab hits: {}",
                self.carried_releases, self.color_slab_hits
            )?;
        }
        writeln!(
            f,
            "parallel in-place maps: {} | chunks: {} ({} stolen) | workers engaged/offered: {}/{}",
            self.maps_parallel_in_place,
            self.par_chunks,
            self.par_chunks_stolen,
            self.par_workers_engaged,
            self.par_workers_offered
        )?;
        write!(
            f,
            "kernel: {:?} ({} launches) | copy: {:?} | total: {:?}",
            self.kernel_time, self.kernel_launches, self.copy_time, self.total_time
        )?;
        if self.cells_checked > 0 || !self.diagnostics.is_empty() {
            write!(
                f,
                "\nchecked: {} cells | {} circuit checks verified | {} parallel maps verified \
                 | {} diagnostics",
                self.cells_checked,
                self.circuits_verified,
                self.par_checks_verified,
                self.diagnostics.len() as u64 + self.diagnostics_suppressed
            )?;
            for d in &self.diagnostics {
                write!(f, "\n  {d}")?;
            }
        }
        Ok(())
    }
}
