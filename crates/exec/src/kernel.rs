//! The kernel registry: native map bodies.
//!
//! A kernel is the runtime counterpart of the code the paper's compiler
//! generates for a GPU kernel: a function invoked once per map instance,
//! reading its input views (with inlined index-function addressing) and
//! writing its output row.
//!
//! **Contract** (relied on by the index analysis, §V-B): instance `i` may
//! write only through `ctx.out` (its own row), and may read only row `i`
//! of each input *not* declared in the map's `whole_inputs` list; declared
//! whole inputs may be read arbitrarily.

use crate::value::Value;
use crate::view::{View, ViewMut};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-instance kernel context.
pub struct KernelCtx<'a> {
    /// The map instance index.
    pub i: i64,
    /// Whole input views (use `.row(ctx.i)` for the row-wise contract).
    pub inputs: &'a [View],
    /// Scalar arguments.
    pub args: &'a [Value],
    /// The instance's output row (scalar maps: a rank-0 view).
    pub out: ViewMut,
}

impl KernelCtx<'_> {
    pub fn arg_i64(&self, k: usize) -> i64 {
        self.args[k].as_i64()
    }

    pub fn arg_f32(&self, k: usize) -> f32 {
        self.args[k].as_f32()
    }
}

/// A kernel body. `Arc` so registries can be shared across benches.
pub type KernelFn = Arc<dyn Fn(&KernelCtx) + Send + Sync>;

/// Registry mapping kernel names (as referenced by `MapBody::Kernel`) to
/// implementations.
#[derive(Clone, Default)]
pub struct KernelRegistry {
    kernels: HashMap<String, KernelFn>,
}

impl KernelRegistry {
    pub fn new() -> KernelRegistry {
        KernelRegistry::default()
    }

    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&KernelCtx) + Send + Sync + 'static,
    {
        self.kernels.insert(name.to_string(), Arc::new(f));
    }

    pub fn get(&self, name: &str) -> Option<&KernelFn> {
        self.kernels.get(name)
    }

    /// Merge another registry into this one.
    pub fn extend(&mut self, other: &KernelRegistry) {
        for (k, v) in &other.kernels {
            self.kernels.insert(k.clone(), Arc::clone(v));
        }
    }
}
