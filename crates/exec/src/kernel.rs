//! The kernel registry: native map bodies.
//!
//! A kernel is the runtime counterpart of the code the paper's compiler
//! generates for a GPU kernel: a function invoked once per map instance,
//! reading its input views (with inlined index-function addressing) and
//! writing its output row.
//!
//! **Contract** (relied on by the index analysis, §V-B): instance `i` may
//! write only through `ctx.out` (its own row), and may read only row `i`
//! of each input *not* declared in the map's `whole_inputs` list; declared
//! whole inputs may be read arbitrarily.
//!
//! Kernels are stored densely: registration assigns each name a stable
//! `u32` index, [`resolve`](KernelRegistry::resolve)d once at plan-lower
//! time so the executor dispatches by array index instead of a string
//! hash lookup per map statement.

use crate::value::Value;
use crate::view::{View, ViewMut};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-instance kernel context.
pub struct KernelCtx<'a> {
    /// The map instance index.
    pub i: i64,
    /// Whole input views (use `.row(ctx.i)` for the row-wise contract).
    pub inputs: &'a [View],
    /// Scalar arguments.
    pub args: &'a [Value],
    /// The instance's output row (scalar maps: a rank-0 view).
    pub out: ViewMut,
}

impl KernelCtx<'_> {
    pub fn arg_i64(&self, k: usize) -> i64 {
        self.args[k].as_i64()
    }

    pub fn arg_f32(&self, k: usize) -> f32 {
        self.args[k].as_f32()
    }
}

/// A kernel body. `Arc` so registries can be shared across benches.
pub type KernelFn = Arc<dyn Fn(&KernelCtx) + Send + Sync>;

/// Registry mapping kernel names (as referenced by `MapBody::Kernel`) to
/// implementations. Each name owns a dense index; re-registering a name
/// replaces the implementation but keeps the index.
#[derive(Clone, Default)]
pub struct KernelRegistry {
    kernels: Vec<KernelFn>,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl KernelRegistry {
    pub fn new() -> KernelRegistry {
        KernelRegistry::default()
    }

    pub fn register<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&KernelCtx) + Send + Sync + 'static,
    {
        self.register_arc(name, Arc::new(f));
    }

    fn register_arc(&mut self, name: &str, f: KernelFn) {
        match self.by_name.get(name) {
            Some(&idx) => self.kernels[idx as usize] = f,
            None => {
                let idx = self.kernels.len() as u32;
                self.kernels.push(f);
                self.names.push(name.to_string());
                self.by_name.insert(name.to_string(), idx);
            }
        }
    }

    pub fn get(&self, name: &str) -> Option<&KernelFn> {
        self.by_name.get(name).map(|&i| &self.kernels[i as usize])
    }

    /// The dense index of `name`, if registered. Plans store this index;
    /// it is only meaningful against a registry with the same name→index
    /// mapping (see [`fingerprint`](KernelRegistry::fingerprint)).
    pub fn resolve(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The kernel at a dense index (panics on an unknown index).
    pub fn by_index(&self, idx: u32) -> &KernelFn {
        &self.kernels[idx as usize]
    }

    /// Merge another registry into this one.
    pub fn extend(&mut self, other: &KernelRegistry) {
        for (name, f) in other.names.iter().zip(&other.kernels) {
            self.register_arc(name, Arc::clone(f));
        }
    }

    /// A hash of the name→index mapping. Two registries with equal
    /// fingerprints resolve every kernel name to the same index, so a
    /// plan lowered against one executes correctly against the other;
    /// the plan cache keys on this next to the program fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for name in &self.names {
            for b in name.as_bytes() {
                h = (h ^ *b as u64).wrapping_mul(0x100000001b3);
            }
            h = (h ^ 0xff).wrapping_mul(0x100000001b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_stable_dense_indices() {
        let mut r = KernelRegistry::new();
        r.register("a", |_| {});
        r.register("b", |_| {});
        assert_eq!(r.resolve("a"), Some(0));
        assert_eq!(r.resolve("b"), Some(1));
        assert_eq!(r.resolve("c"), None);
        let fp = r.fingerprint();
        // Re-registering replaces the body but keeps index and fingerprint.
        r.register("a", |_| {});
        assert_eq!(r.resolve("a"), Some(0));
        assert_eq!(r.fingerprint(), fp);
        // A third name changes the fingerprint.
        r.register("c", |_| {});
        assert_eq!(r.resolve("c"), Some(2));
        assert_ne!(r.fingerprint(), fp);
    }

    #[test]
    fn extend_preserves_resolution() {
        let mut a = KernelRegistry::new();
        a.register("x", |_| {});
        let mut b = KernelRegistry::new();
        b.register("y", |_| {});
        a.extend(&b);
        assert!(a.get("x").is_some());
        assert!(a.get("y").is_some());
        assert_eq!(a.resolve("y"), Some(1));
    }
}
