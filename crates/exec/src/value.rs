//! Runtime values.

use arraymem_ir::ElemType;
use arraymem_lmad::concrete::AccessClass;
use arraymem_lmad::ConcreteIxFn;

/// A runtime array: a block id plus a concrete index function.
#[derive(Clone, Debug)]
pub struct ArrayRef {
    pub block: usize,
    pub elem: ElemType,
    pub ixfn: ConcreteIxFn,
    /// Access tier of `ixfn`, classified once when the array value is
    /// created — or earlier, at plan-lower time, when the index function
    /// is statically known. Views over this array reuse it instead of
    /// re-classifying per access path.
    pub class: AccessClass,
}

impl ArrayRef {
    /// An array reference, classifying its index function now.
    pub fn new(block: usize, elem: ElemType, ixfn: ConcreteIxFn) -> ArrayRef {
        let class = ixfn.classify();
        ArrayRef {
            block,
            elem,
            ixfn,
            class,
        }
    }

    /// An array reference with a pre-computed access class (the lowering
    /// stage classifies statically-known index functions once per plan).
    pub fn with_class(
        block: usize,
        elem: ElemType,
        ixfn: ConcreteIxFn,
        class: AccessClass,
    ) -> ArrayRef {
        debug_assert_eq!(class, ixfn.classify());
        ArrayRef {
            block,
            elem,
            ixfn,
            class,
        }
    }
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    F32(f32),
    F64(f64),
    I64(i64),
    Bool(bool),
    Mem(usize),
    Array(ArrayRef),
}

impl Value {
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(x) => *x,
            Value::Bool(b) => *b as i64,
            Value::F32(x) => *x as i64,
            Value::F64(x) => *x as i64,
            _ => panic!("not a scalar: {self:?}"),
        }
    }

    pub fn as_f32(&self) -> f32 {
        match self {
            Value::F32(x) => *x,
            Value::F64(x) => *x as f32,
            Value::I64(x) => *x as f32,
            Value::Bool(b) => *b as i64 as f32,
            _ => panic!("not a scalar: {self:?}"),
        }
    }

    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(x) => *x,
            Value::F32(x) => *x as f64,
            Value::I64(x) => *x as f64,
            Value::Bool(b) => *b as i64 as f64,
            _ => panic!("not a scalar: {self:?}"),
        }
    }

    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::I64(x) => *x != 0,
            _ => panic!("not a bool: {self:?}"),
        }
    }

    pub fn as_mem(&self) -> usize {
        match self {
            Value::Mem(m) => *m,
            _ => panic!("not a memory block: {self:?}"),
        }
    }

    pub fn as_array(&self) -> &ArrayRef {
        match self {
            Value::Array(a) => a,
            _ => panic!("not an array: {self:?}"),
        }
    }
}

/// Program inputs supplied by the harness.
#[derive(Clone, Debug)]
pub enum InputValue {
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    ArrayF32(Vec<f32>),
    ArrayF64(Vec<f64>),
    ArrayI64(Vec<i64>),
}

/// Program outputs extracted in logical row-major order.
#[derive(Clone, Debug, PartialEq)]
pub enum OutputValue {
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    ArrayF32(Vec<f32>),
    ArrayF64(Vec<f64>),
    ArrayI64(Vec<i64>),
}

impl OutputValue {
    pub fn as_f32s(&self) -> &[f32] {
        match self {
            OutputValue::ArrayF32(v) => v,
            _ => panic!("not an f32 array"),
        }
    }

    pub fn as_i64s(&self) -> &[i64] {
        match self {
            OutputValue::ArrayI64(v) => v,
            _ => panic!("not an i64 array"),
        }
    }

    /// Approximate equality for float arrays (used to validate the memory
    /// machine against the pure interpreter and the references).
    pub fn approx_eq(&self, other: &OutputValue, tol: f64) -> bool {
        match (self, other) {
            (OutputValue::ArrayF32(a), OutputValue::ArrayF32(b)) => {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(x, y)| {
                        let d = (*x as f64 - *y as f64).abs();
                        d <= tol * (1.0 + x.abs().max(y.abs()) as f64)
                    })
            }
            (OutputValue::ArrayF64(a), OutputValue::ArrayF64(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
            }
            (OutputValue::F32(a), OutputValue::F32(b)) => {
                (*a as f64 - *b as f64).abs() <= tol * (1.0 + a.abs().max(b.abs()) as f64)
            }
            _ => self == other,
        }
    }
}
