//! Executor tests: the memory-semantics machine must agree with the pure
//! value-semantics interpreter on every program, with and without
//! short-circuiting — the paper's "memory annotations have no semantic
//! meaning" invariant, checked end to end.

use crate::kernel::KernelRegistry;
use crate::value::{InputValue, OutputValue};
use crate::vm::{run_program, Mode};
use arraymem_core::{compile, Options};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, SliceSpec, Type, Var};
use arraymem_lmad::{Dim, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// Compile a program with and without short-circuiting, run both in
/// `Memory` mode plus the source in `Pure` mode, assert all outputs agree,
/// and return (pure, unopt-stats, opt-stats).
fn run_all(
    prog: &Program,
    env: Env,
    inputs: &[InputValue],
    kernels: &KernelRegistry,
) -> (Vec<OutputValue>, crate::Stats, crate::Stats) {
    let unopt = compile(prog, &Options::default().with_env(env.clone())).expect("unopt compile");
    let opt = compile(prog, &Options::optimized().with_env(env)).expect("opt compile");
    let (pure_out, _) = run_program(prog, inputs, kernels, Mode::Pure, 1).expect("pure run");
    let (unopt_out, unopt_stats) =
        run_program(&unopt.program, inputs, kernels, Mode::Memory, 1).expect("unopt run");
    let (opt_out, opt_stats) =
        run_program(&opt.program, inputs, kernels, Mode::Memory, 1).expect("opt run");
    assert_eq!(pure_out.len(), unopt_out.len());
    for ((a, b), ch) in pure_out.iter().zip(&unopt_out).zip(&opt_out) {
        assert!(a.approx_eq(b, 1e-6), "pure vs unopt mismatch");
        assert!(a.approx_eq(ch, 1e-6), "pure vs opt mismatch");
    }
    (pure_out, unopt_stats, opt_stats)
}

/// Fig. 1 (left) with a lambda map.
fn fig1_left() -> (Program, Env) {
    let mut b = Builder::new("exec_fig1");
    let n = b.scalar_param("xn", ElemType::I64);
    let a = b.array_param("xA", ElemType::F32, vec![p(n) * p(n)]);
    let mut body = b.block();
    let diag_lmad = Lmad::new(0, vec![Dim::new(p(n), p(n) + c(1))]);
    let diag = body.slice("diag", a, Transform::LmadSlice(diag_lmad.clone()));
    let row = body.slice(
        "row",
        a,
        Transform::LmadSlice(Lmad::new(0, vec![Dim::new(p(n), 1)])),
    );
    let x = body.map_lambda("X", p(n), vec![diag, row], ElemType::F32, |lb, ps| {
        let s = lb.scalar(
            "s",
            ElemType::F32,
            ScalarExp::bin(
                arraymem_ir::BinOp::Add,
                ScalarExp::var(ps[0]),
                ScalarExp::var(ps[1]),
            ),
        );
        vec![s]
    });
    let a2 = body.update("A2", a, SliceSpec::Lmad(diag_lmad), x);
    let blk = body.finish(vec![a2]);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    (b.finish(blk), env)
}

#[test]
fn fig1_semantics_and_copy_elision() {
    let (prog, env) = fig1_left();
    let n = 8usize;
    let a: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let inputs = vec![InputValue::I64(n as i64), InputValue::ArrayF32(a.clone())];
    let kernels = KernelRegistry::new();
    let (out, unopt, opt) = run_all(&prog, env, &inputs, &kernels);
    // Semantics: A[i,i] += A[0,i].
    let mut expect = a;
    for i in 0..n {
        expect[i * n + i] += expect[i];
    }
    assert_eq!(out[0].as_f32s(), &expect[..]);
    // Mechanism: the diagonal copy is gone.
    assert_eq!(unopt.bytes_copied, (n * 4) as u64);
    assert_eq!(opt.bytes_copied, 0);
    assert_eq!(opt.bytes_elided, (n * 4) as u64);
}

#[test]
fn fig4a_concat_becomes_noop() {
    let mut b = Builder::new("exec_fig4a");
    let m = b.scalar_param("cm", ElemType::I64);
    let n = b.scalar_param("cn", ElemType::I64);
    let mut body = b.block();
    let a = body.replicate("as", vec![p(m)], ScalarExp::f32(1.5));
    let bs = body.replicate("bs", vec![p(n)], ScalarExp::f32(2.5));
    let xss = body.concat("xss", vec![a, bs]);
    let blk = body.finish(vec![xss]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(m, 1);
    env.assume_ge(n, 1);
    let inputs = vec![InputValue::I64(5), InputValue::I64(3)];
    let kernels = KernelRegistry::new();
    let (out, unopt, opt) = run_all(&prog, env, &inputs, &kernels);
    let mut expect = vec![1.5f32; 5];
    expect.extend(vec![2.5f32; 3]);
    assert_eq!(out[0].as_f32s(), &expect[..]);
    assert_eq!(unopt.bytes_copied, 8 * 4);
    assert_eq!(opt.bytes_copied, 0);
    // The optimized version also allocates less (as/bs blocks are gone).
    assert!(opt.bytes_allocated < unopt.bytes_allocated);
}

#[test]
fn kernel_map_rows_inplace_vs_private() {
    // A kernel that reverses each row of its input.
    let mut kernels = KernelRegistry::new();
    kernels.register("rev_row", |ctx| {
        let w = ctx.arg_i64(0);
        let inp = ctx.inputs[0].row(ctx.i);
        for j in 0..w {
            ctx.out.set_f32(&[j], inp.get_f32(&[w - 1 - j]));
        }
    });
    let mut b = Builder::new("rows");
    let n = b.scalar_param("rn", ElemType::I64);
    let src = b.array_param("rsrc", ElemType::F32, vec![p(n), c(16)]);
    let mut body = b.block();
    let out = body.map_kernel(
        "revd",
        "rev_row",
        p(n),
        vec![c(16)],
        ElemType::F32,
        vec![src],
        vec![ScalarExp::i64(16)],
    );
    let blk = body.finish(vec![out]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let rows = 10usize;
    let data: Vec<f32> = (0..rows * 16).map(|i| i as f32).collect();
    let inputs = vec![
        InputValue::I64(rows as i64),
        InputValue::ArrayF32(data.clone()),
    ];
    let (out, unopt, opt) = run_all(&prog, env, &inputs, &kernels);
    let mut expect = vec![0f32; rows * 16];
    for r in 0..rows {
        for j in 0..16 {
            expect[r * 16 + j] = data[r * 16 + 15 - j];
        }
    }
    assert_eq!(out[0].as_f32s(), &expect[..]);
    // Unopt pays the mapnest's implicit per-row copy; opt does not.
    assert_eq!(unopt.bytes_copied, (rows * 16 * 4) as u64);
    assert_eq!(opt.bytes_copied, 0);
}

#[test]
fn loop_with_scalar_updates() {
    // res[k] = k² via a sequential loop of in-place scalar updates.
    let mut b = Builder::new("loop_scalar");
    let n = b.scalar_param("ln", ElemType::I64);
    let mut body = b.block();
    let res0 = body.replicate("res0", vec![p(n)], ScalarExp::f32(0.0));
    let param = body.loop_param("res", res0);
    let idx = body.loop_index("k");
    let mut lb = b.block();
    let sq = lb.scalar(
        "sq",
        ElemType::F32,
        ScalarExp::un(
            arraymem_ir::UnOp::ToF32,
            ScalarExp::bin(
                arraymem_ir::BinOp::Mul,
                ScalarExp::var(idx),
                ScalarExp::var(idx),
            ),
        ),
    );
    let upd = lb.update_scalar("res'", param, vec![ScalarExp::var(idx)], ScalarExp::var(sq));
    let lbody = lb.finish(vec![upd]);
    let fin = body.loop_(
        vec!["resF"],
        vec![(param, b.ty(res0))],
        vec![res0],
        idx,
        p(n),
        lbody,
    )[0];
    let blk = body.finish(vec![fin]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let inputs = vec![InputValue::I64(6)];
    let kernels = KernelRegistry::new();
    let (out, _, _) = run_all(&prog, env, &inputs, &kernels);
    assert_eq!(out[0].as_f32s(), &[0.0, 1.0, 4.0, 9.0, 16.0, 25.0]);
}

#[test]
fn if_with_different_branch_layouts() {
    // then: row-major fill; else: a transposed copy — the if's result gets
    // existential memory via anti-unification.
    let mut b = Builder::new("if_layouts");
    let flag = b.scalar_param("flag", ElemType::Bool);
    let src = b.array_param("isrc", ElemType::F32, vec![c(4), c(4)]);
    let mut body = b.block();
    let mut tb = b.block();
    let t1 = tb.replicate("t1", vec![c(4), c(4)], ScalarExp::f32(7.0));
    let then_b = tb.finish(vec![t1]);
    let mut eb = b.block();
    let tr = eb.transform("tr", src, Transform::Permute(vec![1, 0]));
    let else_b = eb.finish(vec![tr]);
    let res = body.if_(
        vec!["res"],
        vec![Type::array(ElemType::F32, vec![c(4), c(4)])],
        ScalarExp::var(flag),
        then_b,
        else_b,
    )[0];
    let blk = body.finish(vec![res]);
    let prog = b.finish(blk);
    let data: Vec<f32> = (0..16).map(|i| i as f32).collect();
    for flag_v in [true, false] {
        let inputs = vec![InputValue::Bool(flag_v), InputValue::ArrayF32(data.clone())];
        let kernels = KernelRegistry::new();
        let (out, _, _) = run_all(&prog, Env::new(), &inputs, &kernels);
        let expect: Vec<f32> = if flag_v {
            vec![7.0; 16]
        } else {
            (0..16).map(|i| ((i % 4) * 4 + i / 4) as f32).collect()
        };
        assert_eq!(out[0].as_f32s(), &expect[..], "flag={flag_v}");
    }
}

#[test]
fn transform_chain_matches_semantics() {
    // slice → transpose → reshape chain, checked against Pure mode and
    // a hand computation.
    let mut b = Builder::new("chain");
    let src = b.array_param("csrc", ElemType::I64, vec![c(6), c(4)]);
    let mut body = b.block();
    let t = body.transform("t", src, Transform::Permute(vec![1, 0]));
    let s = body.slice(
        "s",
        t,
        Transform::Slice(vec![
            TripletSlice::range(c(1), c(2), c(2)),
            TripletSlice::range(c(0), c(6), c(1)),
        ]),
    );
    let f = body.transform("f", s, Transform::Reshape(vec![c(12)]));
    let out = body.copy("out", f);
    let blk = body.finish(vec![out]);
    let prog = b.finish(blk);
    let data: Vec<i64> = (0..24).collect();
    let inputs = vec![InputValue::ArrayI64(data.clone())];
    let kernels = KernelRegistry::new();
    let (out, _, _) = run_all(&prog, Env::new(), &inputs, &kernels);
    // t[i][j] = src[j][i]; s[a][b] = t[1+2a][b] = src[b][1+2a];
    // f[k] = s[k/6][k%6].
    let expect: Vec<i64> = (0..12)
        .map(|k| {
            let (a_, b_) = (k / 6, k % 6);
            data[(b_ * 4 + 1 + 2 * a_) as usize]
        })
        .collect();
    assert_eq!(out[0].as_i64s(), &expect[..]);
}

#[test]
fn update_with_triplet_strides() {
    // Write every other element.
    let mut b = Builder::new("strided");
    let n = b.scalar_param("sn", ElemType::I64);
    let a = b.array_param("sA", ElemType::F32, vec![p(n) * c(2)]);
    let mut body = b.block();
    let vals = body.replicate("vals", vec![p(n)], ScalarExp::f32(9.0));
    let a2 = body.update(
        "A2",
        a,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), p(n), c(2))]),
        vals,
    );
    let blk = body.finish(vec![a2]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let inputs = vec![InputValue::I64(4), InputValue::ArrayF32(vec![1.0; 8])];
    let kernels = KernelRegistry::new();
    let (out, _, opt) = run_all(&prog, env, &inputs, &kernels);
    assert_eq!(out[0].as_f32s(), &[9.0, 1.0, 9.0, 1.0, 9.0, 1.0, 9.0, 1.0]);
    let _ = opt;
}

#[test]
fn overlapping_lmad_update_is_rejected_dynamically() {
    // A zero-stride LMAD slice self-overlaps; the language's dynamic check
    // must reject it (§III-B).
    let mut b = Builder::new("dynfail");
    let a = b.array_param("dA", ElemType::F32, vec![c(8)]);
    let mut body = b.block();
    let vals = body.replicate("vals", vec![c(4)], ScalarExp::f32(9.0));
    let a2 = body.update(
        "A2",
        a,
        SliceSpec::Lmad(Lmad::new(0, vec![Dim::new(c(4), c(0))])),
        vals,
    );
    let blk = body.finish(vec![a2]);
    let prog = b.finish(blk);
    let compiled = compile(&prog, &Options::default()).unwrap();
    let kernels = KernelRegistry::new();
    let r = run_program(
        &compiled.program,
        &[InputValue::ArrayF32(vec![0.0; 8])],
        &kernels,
        Mode::Memory,
        1,
    );
    assert!(r.is_err(), "zero-stride LMAD update must be rejected");
}

#[test]
fn iota_and_scalar_reads() {
    let mut b = Builder::new("iota_read");
    let n = b.scalar_param("in_", ElemType::I64);
    let mut body = b.block();
    let io = body.iota("io", p(n));
    let last = body.scalar(
        "last",
        ElemType::I64,
        ScalarExp::Index(
            io,
            vec![ScalarExp::bin(
                arraymem_ir::BinOp::Sub,
                ScalarExp::var(n),
                ScalarExp::i64(1),
            )],
        ),
    );
    let rep = body.replicate_typed("rep", ElemType::I64, vec![c(2)], ScalarExp::var(last));
    let blk = body.finish(vec![rep]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let kernels = KernelRegistry::new();
    let (out, _, _) = run_all(&prog, env, &[InputValue::I64(7)], &kernels);
    assert_eq!(out[0].as_i64s(), &[6, 6]);
}

/// Chained copies without hoisting: each intermediate dies right after
/// feeding the next copy, so the release plan must let the store recycle
/// one block into the next allocation instead of growing the heap
/// linearly with the chain length.
#[test]
fn release_plan_recycles_chained_intermediates() {
    let chain = 8usize;
    let mut b = Builder::new("chain_recycle");
    let n = b.scalar_param("qn", ElemType::I64);
    let a = b.array_param("qA", ElemType::F32, vec![p(n)]);
    let mut body = b.block();
    let mut cur = a;
    for k in 0..chain {
        cur = body.copy(&format!("c{k}"), cur);
    }
    let blk = body.finish(vec![cur]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let compiled = compile(
        &prog,
        &Options {
            hoist: false, // keep each alloc next to its copy
            ..Options::default().with_env(env)
        },
    )
    .unwrap();
    let kernels = KernelRegistry::new();
    let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
    let inputs = vec![InputValue::I64(64), InputValue::ArrayF32(data.clone())];
    let (out, stats) = run_program(&compiled.program, &inputs, &kernels, Mode::Memory, 1).unwrap();
    assert_eq!(out[0].as_f32s(), &data[..]);
    assert!(
        (stats.num_allocs as usize) < chain,
        "chain of {chain} copies must recycle blocks, got {} fresh allocs",
        stats.num_allocs
    );
    assert!(stats.blocks_reused > 0);
    assert!(stats.bytes_zeroing_elided > 0);
}

/// A store reused across runs (one `Session`) must produce bit-identical
/// outputs to a fresh store — recycled blocks skip zero-filling, so this
/// is the test that programs fully write before they read — while serving
/// the repeat run's allocations entirely from the free list.
#[test]
fn session_reuse_is_equivalence_preserving() {
    let mut kernels = KernelRegistry::new();
    kernels.register("rev_row", |ctx| {
        let w = ctx.arg_i64(0);
        let inp = ctx.inputs[0].row(ctx.i);
        for j in 0..w {
            ctx.out.set_f32(&[j], inp.get_f32(&[w - 1 - j]));
        }
    });
    let mut b = Builder::new("session_rows");
    let n = b.scalar_param("wn", ElemType::I64);
    let src = b.array_param("wsrc", ElemType::F32, vec![p(n), c(16)]);
    let mut body = b.block();
    let out = body.map_kernel(
        "revd",
        "rev_row",
        p(n),
        vec![c(16)],
        ElemType::F32,
        vec![src],
        vec![ScalarExp::i64(16)],
    );
    let blk = body.finish(vec![out]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    // Unopt: the mapnest pays private row buffers — extra allocations the
    // reused session must recycle.
    let compiled = compile(&prog, &Options::default().with_env(env)).unwrap();
    let rows = 12usize;
    let data: Vec<f32> = (0..rows * 16).map(|i| (i as f32).sin()).collect();
    let inputs = vec![InputValue::I64(rows as i64), InputValue::ArrayF32(data)];
    let (fresh_out, fresh_stats) = crate::Session::new()
        .run(&compiled.program, &inputs, &kernels, Mode::Memory, 2)
        .unwrap();
    assert!(fresh_stats.num_allocs > 0);
    let mut session = crate::Session::new();
    let (first, _) = session
        .run(&compiled.program, &inputs, &kernels, Mode::Memory, 2)
        .unwrap();
    let (second, warm_stats) = session
        .run(&compiled.program, &inputs, &kernels, Mode::Memory, 2)
        .unwrap();
    for ((a, b_), c_) in fresh_out.iter().zip(&first).zip(&second) {
        assert!(a.approx_eq(b_, 0.0), "fresh vs reused-session run 1");
        assert!(a.approx_eq(c_, 0.0), "fresh vs reused-session run 2");
    }
    assert_eq!(
        warm_stats.num_allocs, 0,
        "steady-state run must be served entirely from the free list"
    );
    assert!(warm_stats.blocks_reused > 0);
    assert!(warm_stats.bytes_zeroing_elided > 0);
}

/// Randomized equivalence of the tiered access plans: flat accesses
/// through a classified view must agree with the general
/// unrank-then-index path for arbitrary (single and chained) LMADs.
#[test]
fn access_plans_match_generic_indexing() {
    use arraymem_lmad::{ConcreteIxFn, ConcreteLmad};
    use arraymem_symbolic::Rng64;
    let mut r = Rng64::new(0xACCE55);
    let mut plans_seen = std::collections::HashSet::new();
    for case in 0..500 {
        let rank = r.usize_in(3) + 1;
        let dims: Vec<(i64, i64)> = (0..rank)
            .map(|_| (r.i64_in(1, 5), r.i64_in(-6, 7)))
            .collect();
        let mut l = ConcreteLmad { offset: 0, dims };
        // Shift so every touched offset is non-negative, then bound.
        let pts = l.points();
        let lo = pts.iter().copied().min().unwrap();
        l.offset = r.i64_in(0, 4) - lo.min(0);
        let ixfn = if r.chance(0.25) {
            // Chain through an intermediate reshape-style LMAD.
            let n = l.num_points();
            let outer = ConcreteLmad {
                offset: l.offset,
                dims: l.dims.clone(),
            };
            ConcreteIxFn {
                lmads: vec![outer, ConcreteLmad::row_major(&[n])],
            }
        } else {
            ConcreteIxFn::from_lmad(l)
        };
        let n = ixfn.num_elems();
        let max_off = ixfn.all_offsets().into_iter().max().unwrap_or(0);
        let mut store = crate::store::MemStore::new();
        let block = store.alloc_f32((0..=max_off).map(|i| i as f32 * 0.5).collect());
        let view = crate::view::View::new(store.raw(block), ixfn.clone());
        plans_seen.insert(format!("{:?}", std::mem::discriminant(&ixfn.classify())));
        for f in 0..n {
            let expect = {
                let shape = ixfn.shape();
                let mut idx = vec![0i64; shape.len()];
                arraymem_lmad::concrete::unrank(f, &shape, &mut idx);
                ixfn.index(&idx)
            };
            assert_eq!(
                view.get_f32_flat(f),
                expect as f32 * 0.5,
                "case {case}: flat {f} disagrees for {ixfn:?}"
            );
        }
    }
    assert!(
        plans_seen.len() >= 3,
        "the generator must exercise several access tiers, saw {plans_seen:?}"
    );
}

/// Regression (code review): bool arrays go through the VM's 64-bit
/// integer accessors; storage must be word-sized or writes corrupt the
/// heap.
#[test]
fn bool_arrays_are_word_backed() {
    let mut b = Builder::new("bools");
    let n = b.scalar_param("bn", ElemType::I64);
    let mut body = b.block();
    let flags = body.replicate_typed(
        "flags",
        ElemType::Bool,
        vec![p(n)],
        ScalarExp::Const(arraymem_ir::Constant::Bool(true)),
    );
    let flipped = body.update_scalar(
        "flipped",
        flags,
        vec![ScalarExp::i64(2)],
        ScalarExp::Const(arraymem_ir::Constant::Bool(false)),
    );
    let blk = body.finish(vec![flipped]);
    let prog = b.finish(blk);
    let mut env = Env::new();
    env.assume_ge(n, 1);
    let kernels = KernelRegistry::new();
    let (out, _, _) = run_all(&prog, env, &[InputValue::I64(5)], &kernels);
    assert_eq!(out[0].as_i64s(), &[1, 1, 0, 1, 1]);
}
