//! Lowering: from the nested IR to a flat, executable [`ExecPlan`].
//!
//! The paper's endgame is code generation — LMAD index functions inlined
//! at every access, no interpretive overhead at run time (§VII). This
//! module is that split for our VM: all per-program work that does not
//! depend on input *values* happens once, here, and the executor
//! ([`crate::vm`]) replays the result:
//!
//! - nested `Block`s, `if` and `loop` flatten into one linear instruction
//!   stream with jump instructions (lambda map bodies keep a nested
//!   stream, executed per element);
//! - every `Var` resolves to a dense `u32` **slot** — the executor's
//!   environment is a `Vec<Value>`, not a `HashMap`;
//! - every symbolic polynomial / index function is paired with its
//!   pre-resolved `Sym → slot` list, so runtime evaluation reads slots
//!   directly; fully-constant index functions are evaluated **now** and
//!   their [`AccessClass`] recorded in the plan;
//! - kernel names resolve to dense registry indices once;
//! - the compiler's [`ReleasePlan`] is fused into the stream as explicit
//!   [`Instr::Release`] instructions — no per-run `ReleasePlan::compute`;
//! - checked-mode [`CircuitCheck`]s lower to [`Instr::VerifyChecks`] at
//!   the end of the block containing the circuit statement, with their
//!   footprint symbols pre-resolved to slots.
//!
//! Diagnostics still name source statements: every instruction carries a
//! blame entry (instruction index → originating statement `Var`) in a
//! side table parallel to the stream.

use crate::kernel::KernelRegistry;
use crate::value::Value;
use arraymem_core::{CircuitCheck, MergeRecord, ParLevel, ParSafetyRecord, ReleasePlan};
use arraymem_ir::{
    Block, Constant, ElemType, Exp, MapBody, PatElem, Program, ScalarExp, SliceSpec, Stm, Type,
    UpdateSrc, Var,
};
use arraymem_lmad::concrete::AccessClass;
use arraymem_lmad::{ConcreteIxFn, IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Poly, Sym};
use std::collections::HashMap;

/// A dense value-slot index (the executor's register file is
/// `Vec<Value>`, indexed by these).
pub type Slot = u32;

/// Pre-resolved symbol→slot pairs for evaluating a symbolic expression
/// against the register file. `None` slots are symbols that were not in
/// scope at lower time; they evaluate to "unresolved", exactly as a
/// missing environment entry did in the tree-walking VM.
pub(crate) type SlotVars = Vec<(Sym, Option<Slot>)>;

/// A lookup closure over pre-resolved symbol slots. The var lists are
/// tiny (a handful of size symbols), so a linear scan beats hashing.
pub(crate) fn slot_lookup<'a>(
    vars: &'a [(Sym, Option<Slot>)],
    regs: &'a [Value],
) -> impl Fn(Sym) -> Option<i64> + 'a {
    move |s| {
        for (v, slot) in vars {
            if *v == s {
                return slot.and_then(|i| match &regs[i as usize] {
                    Value::I64(x) => Some(*x),
                    Value::Bool(b) => Some(*b as i64),
                    _ => None,
                });
            }
        }
        None
    }
}

/// A polynomial with its variables pre-resolved to slots; constants fold
/// at lower time.
#[derive(Clone, Debug)]
pub(crate) struct SlotPoly {
    poly: Poly,
    vars: SlotVars,
    konst: Option<i64>,
}

impl SlotPoly {
    pub(crate) fn eval(&self, regs: &[Value]) -> Option<i64> {
        if let Some(k) = self.konst {
            return Some(k);
        }
        let lookup = slot_lookup(&self.vars, regs);
        self.poly.eval(&lookup)
    }
}

/// An index function lowered against the slot scope. `Ready` means every
/// polynomial was constant: the concrete index function *and its access
/// class* are computed once per plan, never per run.
#[derive(Clone, Debug)]
pub(crate) enum LoweredIxFn {
    Ready {
        ixfn: ConcreteIxFn,
        class: AccessClass,
    },
    Dynamic {
        ixfn: IndexFn,
        vars: SlotVars,
    },
}

impl LoweredIxFn {
    pub(crate) fn eval_access(&self, regs: &[Value]) -> Option<(ConcreteIxFn, AccessClass)> {
        match self {
            LoweredIxFn::Ready { ixfn, class } => Some((ixfn.clone(), *class)),
            LoweredIxFn::Dynamic { ixfn, vars } => {
                let lookup = slot_lookup(vars, regs);
                let c = ixfn.eval(&lookup)?;
                let class = c.classify();
                Some((c, class))
            }
        }
    }
}

/// A lowered scalar expression: operands are slots, never names.
#[derive(Clone, Debug)]
pub(crate) enum LExp {
    Const(Value),
    Slot(Slot),
    Size(SlotPoly),
    Bin(arraymem_ir::BinOp, Box<LExp>, Box<LExp>),
    Un(arraymem_ir::UnOp, Box<LExp>),
    Index { arr: Slot, idx: Vec<LExp> },
    Select(Box<LExp>, Box<LExp>, Box<LExp>),
}

/// Destination of a fresh array creation: the result slot plus what each
/// mode needs — the lowered memory binding (`Memory`/`Checked`) and the
/// type's shape polynomials (`Pure` allocates dense).
#[derive(Clone, Debug)]
pub(crate) struct Dest {
    pub slot: Slot,
    pub var: Var,
    pub elem: ElemType,
    pub shape: Vec<SlotPoly>,
    pub mem: Option<MemDest>,
}

#[derive(Clone, Debug)]
pub(crate) struct MemDest {
    pub block: Option<Slot>,
    pub block_var: Var,
    pub ixfn: LoweredIxFn,
}

#[derive(Clone, Debug)]
pub(crate) struct ConcatArg {
    pub src: Slot,
    pub elided: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct MapKernelInstr {
    pub dest: Dest,
    pub width: SlotPoly,
    /// Dense registry index, resolved at lower time (`None` preserves the
    /// tree VM's lazy "unregistered kernel" error: it only fires if the
    /// map actually executes).
    pub kernel: Option<u32>,
    pub kernel_name: String,
    pub elem: ElemType,
    pub row_shape: Vec<SlotPoly>,
    pub inputs: Vec<Slot>,
    pub args: Vec<LExp>,
    pub in_place: bool,
    /// The `par_safety` stage's verdict for this mapnest, when records
    /// were lowered into the plan (`None` = legacy schedule).
    pub par: Option<ParLevel>,
}

#[derive(Clone, Debug)]
pub(crate) struct MapLambdaInstr {
    pub dests: Vec<Dest>,
    pub width: SlotPoly,
    pub inputs: Vec<Slot>,
    /// One parameter slot per input, written per element.
    pub params: Vec<Slot>,
    /// The lambda body, a nested stream executed once per element.
    pub body: Stream,
    /// Body result slots, read back per element.
    pub results: Vec<Slot>,
    /// Provenance of the map's results (restores blame after the body).
    pub stm_var: Option<Var>,
}

#[derive(Clone, Debug)]
pub(crate) enum LSlice {
    /// Triplet or LMAD slicing: a transform plus its resolved symbols.
    Tr { tr: Transform, vars: SlotVars },
    /// Point indexing: the coordinates are scalar expressions.
    Point(Vec<LExp>),
    /// Scatter: the slot holds the runtime index array; element `k` of
    /// the source lands at flat position `idx[k]` of the destination.
    Scatter(Slot),
}

#[derive(Clone, Debug)]
pub(crate) struct UpdateInstr {
    pub dest: Dest,
    pub dst: Slot,
    pub slice: LSlice,
    /// The slice came from `SliceSpec::Lmad` (dynamic injectivity check).
    pub lmad_slice: bool,
    pub src: LUpdateSrc,
    pub elided: bool,
}

#[derive(Clone, Debug)]
pub(crate) enum LUpdateSrc {
    Array(Slot),
    Scalar(LExp),
}

/// A checked-mode circuit check with its footprint symbols resolved.
#[derive(Clone, Debug)]
pub(crate) struct LoweredCheck {
    pub root: String,
    pub stm: String,
    pub writes: Vec<Lmad>,
    pub uses: Vec<Lmad>,
    pub vars: SlotVars,
}

/// A checked-mode merge cross-check with its footprint symbols resolved:
/// every (victim-tenant, resident) pair a footprint-justified merge
/// recorded, re-proved disjoint by enumeration after the body runs. The
/// symbols resolve in the top-level scope (merge candidates are top-level
/// allocations), so the checks lower once per plan, not per block.
#[derive(Clone, Debug)]
pub(crate) struct LoweredMergeCheck {
    pub host: String,
    pub victim: String,
    pub pairs: Vec<(Lmad, Lmad)>,
    pub vars: SlotVars,
}

/// One lowered instruction.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// Evaluate a scalar expression into a slot, coercing to `elem`.
    Scalar {
        dst: Slot,
        elem: Option<ElemType>,
        exp: LExp,
    },
    Alloc {
        dst: Slot,
        elem: ElemType,
        size: SlotPoly,
        /// When the allocation belongs to a carried-release color, the
        /// store serves it from that color's slab (the ping-pong block
        /// parked by the matching `ReleaseCarried`) before falling back
        /// to the free lists.
        color: Option<u32>,
    },
    Iota {
        dest: Dest,
    },
    Scratch {
        dest: Dest,
    },
    Replicate {
        dest: Dest,
        value: LExp,
    },
    Copy {
        dest: Dest,
        src: Slot,
    },
    Concat {
        dest: Dest,
        args: Vec<ConcatArg>,
    },
    Transform {
        dest: Dest,
        src: Slot,
        tr: Transform,
        vars: SlotVars,
    },
    /// Runtime-indexed read: `dest[k] = src[idx[k]]` over the index
    /// array's length, with every index bounds-checked against `src`'s
    /// element count at execution time.
    Gather {
        dest: Dest,
        src: Slot,
        idx: Slot,
    },
    MapKernel(Box<MapKernelInstr>),
    MapLambda(Box<MapLambdaInstr>),
    Update(Box<UpdateInstr>),
    /// Return the memory block in `slot` to the store's free list (a
    /// fused `ReleasePlan` site). `site` names the statement after which
    /// the plan freed it — checked-mode blame for use-after-release.
    Release {
        slot: Slot,
        site: Option<Var>,
    },
    /// Release a loop's incoming carried block into its color's slab (a
    /// lowered [`MergeRecord::CarriedRelease`]): executed each iteration
    /// after the incoming block's last use, once the yield block exists.
    /// The identity guard skips the release when the incoming block *is*
    /// the outgoing one, or is still carried by another merge parameter
    /// (`guards`) — the static analysis proved the common case, the guard
    /// covers block identities only runtime can see.
    ReleaseCarried {
        /// Slot of the loop's mem merge parameter (the incoming block).
        incoming: Slot,
        /// Slot of the body's yield allocation (the outgoing block).
        outgoing: Slot,
        /// Slots of the loop's other mem merge parameters.
        guards: Vec<Slot>,
        color: u32,
        site: Option<Var>,
    },
    /// Read all sources, then write all destinations (loop merge
    /// parameters may permute, so the copy is two-phase).
    CopySlots {
        pairs: Vec<(Slot, Slot)>,
    },
    Jump {
        target: usize,
    },
    JumpIfFalse {
        cond: LExp,
        target: usize,
    },
    /// Loop back-edge guard: jump when `regs[a] >= regs[b]`.
    JumpIfGe {
        a: Slot,
        b: Slot,
        target: usize,
    },
    /// Checked mode: cross-check the short-circuit footprints recorded
    /// for the block that just finished executing.
    VerifyChecks {
        checks: Vec<LoweredCheck>,
    },
}

/// A linear instruction stream plus its blame side table: entry `i` is
/// the first pattern variable of the statement instruction `i` was
/// lowered from, so sanitizer diagnostics name source statements.
#[derive(Clone, Debug, Default)]
pub(crate) struct Stream {
    pub instrs: Vec<Instr>,
    pub blame: Vec<Option<Var>>,
}

impl Stream {
    fn push(&mut self, i: Instr, blame: Option<Var>) -> usize {
        self.instrs.push(i);
        self.blame.push(blame);
        self.instrs.len() - 1
    }
}

/// A lowered program parameter.
#[derive(Clone, Debug)]
pub(crate) struct ParamSpec {
    pub var: Var,
    pub ty: Type,
    pub slot: Slot,
    /// For arrays: the slot of the parameter's memory-block variable.
    pub mem_slot: Option<Slot>,
    /// For arrays: shape polynomials, resolvable against earlier params.
    pub shape: Vec<SlotPoly>,
}

/// An executable plan: the compiled-and-lowered form of one program.
/// Build once with [`lower_plan`] (or via `Session::prepare`, which
/// caches), execute many times in any [`crate::Mode`].
#[derive(Clone, Debug)]
pub struct ExecPlan {
    pub(crate) name: String,
    pub(crate) params: Vec<ParamSpec>,
    pub(crate) body: Stream,
    pub(crate) results: Vec<(Slot, Var)>,
    pub(crate) num_slots: u32,
    pub(crate) num_releases: usize,
    /// Share-type merge records lowered into this plan (count stamped
    /// onto [`crate::Stats::blocks_merged`] per run).
    pub(crate) blocks_merged: u64,
    /// Carried-release colors the store must provision slabs for
    /// (`MemStore::begin_colors` per run).
    pub(crate) num_colors: u32,
    /// Checked mode: footprint pairs of the footprint-justified merges.
    pub(crate) merge_checks: Vec<LoweredMergeCheck>,
}

impl ExecPlan {
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Slots in the register file.
    pub fn num_slots(&self) -> u32 {
        self.num_slots
    }

    /// Instructions in the top-level stream (nested lambda bodies not
    /// counted).
    pub fn num_instrs(&self) -> usize {
        self.body.instrs.len()
    }

    /// Fused release sites across all streams.
    pub fn num_releases(&self) -> usize {
        self.num_releases
    }
}

/// Lower a program, computing its [`ReleasePlan`] here — once per plan,
/// never per run. `checks` are the compile report's circuit checks (pass
/// `&[]` when not running checked).
pub fn lower_plan(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
) -> Result<ExecPlan, String> {
    lower_plan_full(prog, kernels, checks, &[], &[])
}

/// [`lower_plan`] additionally lowering the compile report's
/// [`MergeRecord`]s — checked-mode runs of the plan re-prove every
/// footprint-justified merge concretely — and its [`ParSafetyRecord`]s,
/// which pick each kernel map's dispatch schedule (parallel in-place,
/// buffered, or serial).
pub fn lower_plan_full(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
    merges: &[MergeRecord],
    par: &[ParSafetyRecord],
) -> Result<ExecPlan, String> {
    let release = ReleasePlan::compute(prog);
    build_plan(prog, kernels, checks, merges, par, &release)
}

/// [`lower_plan`] with a caller-supplied release plan (the test-only
/// skew hook: `Session::run_with_plan` lowers under a deliberately wrong
/// plan to prove the use-after-release detector fires).
pub fn lower_plan_with(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
    release: &ReleasePlan,
) -> Result<ExecPlan, String> {
    build_plan_inner(prog, kernels, checks, &[], &[], release, false)
}

/// [`lower_plan_full`] with every carried release **skewed early** — the
/// test-only mutation hook for the coloring pass: the incoming block is
/// released right after the yield `alloc`, *before* its analyzed last
/// use, so a checked-mode run must surface the premature release as a
/// `UseAfterRelease` diagnostic (proving the carried-release re-proof
/// actually fires).
pub fn lower_plan_carried_skewed(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
    merges: &[MergeRecord],
    par: &[ParSafetyRecord],
) -> Result<ExecPlan, String> {
    let release = ReleasePlan::compute(prog);
    build_plan_inner(prog, kernels, checks, merges, par, &release, true)
}

fn build_plan(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
    merges: &[MergeRecord],
    par: &[ParSafetyRecord],
    release: &ReleasePlan,
) -> Result<ExecPlan, String> {
    build_plan_inner(prog, kernels, checks, merges, par, release, false)
}

fn build_plan_inner(
    prog: &Program,
    kernels: &KernelRegistry,
    checks: &[CircuitCheck],
    merges: &[MergeRecord],
    par: &[ParSafetyRecord],
    release: &ReleasePlan,
    skew_carried: bool,
) -> Result<ExecPlan, String> {
    let mut lw = Lowerer {
        scope: Scope::default(),
        release,
        checks,
        merges,
        par: par.iter().map(|r| (r.stm, r.level)).collect(),
        kernels,
        num_releases: 0,
        depth: 0,
        merge_checks: Vec::new(),
        pending_carried: Vec::new(),
        skew_carried,
    };
    let mut params = Vec::with_capacity(prog.params.len());
    for (v, ty) in &prog.params {
        // Shapes may reference earlier scalar params only (the tree VM
        // loaded params left to right); lower them before binding `v`.
        let shape = match ty {
            Type::Array { shape, .. } => shape.iter().map(|p| lw.slot_poly(p)).collect(),
            _ => Vec::new(),
        };
        let slot = lw.scope.bind(*v);
        let mem_slot = match ty {
            Type::Array { .. } => Some(lw.scope.bind(param_block_sym(*v))),
            _ => None,
        };
        params.push(ParamSpec {
            var: *v,
            ty: ty.clone(),
            slot,
            mem_slot,
            shape,
        });
    }
    let mut body = Stream::default();
    let result_slots = lw.lower_block(&prog.body, &mut body)?;
    let results = result_slots
        .into_iter()
        .zip(&prog.body.result)
        .map(|(s, v)| (s, *v))
        .collect();
    let blocks_merged = merges
        .iter()
        .filter(|r| matches!(r, MergeRecord::Share { .. }))
        .count() as u64;
    let num_colors = merges
        .iter()
        .filter_map(|r| match r {
            MergeRecord::CarriedRelease { color, .. } => Some(color + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    Ok(ExecPlan {
        name: prog.name.clone(),
        params,
        body,
        results,
        num_slots: lw.scope.next,
        num_releases: lw.num_releases,
        blocks_merged,
        num_colors,
        merge_checks: lw.merge_checks,
    })
}

pub(crate) fn param_block_sym(v: Var) -> Var {
    // Canonical definition shared with the middle-end and the validator.
    arraymem_ir::param_block_sym(v)
}

/// Name→slot scope with an undo log, so nested blocks restore the
/// enclosing bindings on exit (value slots themselves are never reused:
/// a branch's locals simply become unreachable).
#[derive(Default)]
struct Scope {
    map: HashMap<Var, Slot>,
    undo: Vec<(Var, Option<Slot>)>,
    next: u32,
}

impl Scope {
    fn bind(&mut self, v: Var) -> Slot {
        let s = self.fresh();
        let old = self.map.insert(v, s);
        self.undo.push((v, old));
        s
    }

    fn fresh(&mut self) -> Slot {
        let s = self.next;
        self.next += 1;
        s
    }

    fn get(&self, v: Var) -> Option<Slot> {
        self.map.get(&v).copied()
    }

    fn mark(&self) -> usize {
        self.undo.len()
    }

    fn reset(&mut self, mark: usize) {
        while self.undo.len() > mark {
            let (v, old) = self.undo.pop().expect("undo log underflow");
            match old {
                Some(s) => {
                    self.map.insert(v, s);
                }
                None => {
                    self.map.remove(&v);
                }
            }
        }
    }
}

struct Lowerer<'a> {
    scope: Scope,
    release: &'a ReleasePlan,
    checks: &'a [CircuitCheck],
    merges: &'a [MergeRecord],
    /// Parallel-safety verdicts keyed by the map statement's variable.
    par: HashMap<Var, ParLevel>,
    kernels: &'a KernelRegistry,
    num_releases: usize,
    /// Block nesting depth; merge checks resolve against the top-level
    /// scope, so they lower when the depth-1 block finishes (before its
    /// scope entries are undone).
    depth: usize,
    merge_checks: Vec<LoweredMergeCheck>,
    /// Carried releases of the loop body currently being lowered: the
    /// `Loop` arm stages them (resolving the incoming/guard parameter
    /// slots), and the statement loop emits each one after its anchor
    /// statement.
    pending_carried: Vec<PendingCarried>,
    /// Test-only: anchor every carried release at the yield `alloc`
    /// instead of the analyzed last use, so checked mode can be shown to
    /// catch a premature release.
    skew_carried: bool,
}

/// One carried release staged for the loop body being lowered.
struct PendingCarried {
    /// First pattern variable of the body statement to release after.
    anchor: Var,
    /// Slot of the loop's mem merge parameter.
    incoming: Slot,
    /// The body's yield allocation (resolved to a slot at emission, when
    /// it is in scope).
    yield_mem: Var,
    /// Slots of the loop's other mem merge parameters.
    guards: Vec<Slot>,
    color: u32,
}

impl Lowerer<'_> {
    fn resolve(&self, v: Var) -> Result<Slot, String> {
        self.scope.get(v).ok_or_else(|| format!("unbound {v}"))
    }

    fn slot_vars(&self, syms: impl IntoIterator<Item = Sym>) -> SlotVars {
        let mut out: SlotVars = Vec::new();
        for s in syms {
            if !out.iter().any(|(v, _)| *v == s) {
                out.push((s, self.scope.get(s)));
            }
        }
        out
    }

    fn slot_poly(&self, p: &Poly) -> SlotPoly {
        let vars = self.slot_vars(p.vars());
        let konst = if vars.is_empty() {
            p.eval(|_| None)
        } else {
            None
        };
        SlotPoly {
            poly: p.clone(),
            vars,
            konst,
        }
    }

    fn lower_ixfn(&self, ix: &IndexFn) -> LoweredIxFn {
        let vars = self.slot_vars(ix.vars());
        if vars.is_empty() {
            if let Some(c) = ix.eval(&|_| None) {
                let class = c.classify();
                return LoweredIxFn::Ready { ixfn: c, class };
            }
        }
        LoweredIxFn::Dynamic {
            ixfn: ix.clone(),
            vars,
        }
    }

    fn lower_exp(&mut self, e: &ScalarExp) -> Result<LExp, String> {
        Ok(match e {
            ScalarExp::Const(c) => LExp::Const(match c {
                Constant::F32(x) => Value::F32(*x),
                Constant::F64(x) => Value::F64(*x),
                Constant::I64(x) => Value::I64(*x),
                Constant::Bool(x) => Value::Bool(*x),
            }),
            ScalarExp::Var(v) => LExp::Slot(self.resolve(*v)?),
            ScalarExp::Size(p) => LExp::Size(self.slot_poly(p)),
            ScalarExp::Bin(op, a, b) => LExp::Bin(
                *op,
                Box::new(self.lower_exp(a)?),
                Box::new(self.lower_exp(b)?),
            ),
            ScalarExp::Un(op, a) => LExp::Un(*op, Box::new(self.lower_exp(a)?)),
            ScalarExp::Index(v, idx) => LExp::Index {
                arr: self.resolve(*v)?,
                idx: idx
                    .iter()
                    .map(|i| self.lower_exp(i))
                    .collect::<Result<_, _>>()?,
            },
            ScalarExp::Select(c, t, f) => LExp::Select(
                Box::new(self.lower_exp(c)?),
                Box::new(self.lower_exp(t)?),
                Box::new(self.lower_exp(f)?),
            ),
        })
    }

    /// Lower a pattern element into a creation destination, binding its
    /// slot. The memory binding and shape lower against the *current*
    /// scope (the block variable was bound by an earlier `alloc`).
    fn lower_dest(&mut self, pe: &PatElem) -> Result<Dest, String> {
        let elem = pe.ty.elem().ok_or("array expected")?;
        let shape = pe.ty.shape().iter().map(|p| self.slot_poly(p)).collect();
        let mem = pe.mem.as_ref().map(|mb| MemDest {
            block: self.scope.get(mb.block),
            block_var: mb.block,
            ixfn: self.lower_ixfn(&mb.ixfn),
        });
        let slot = self.scope.bind(pe.var);
        Ok(Dest {
            slot,
            var: pe.var,
            elem,
            shape,
            mem,
        })
    }

    /// Lower a block's statements (with fused releases and, when
    /// matching, a trailing `VerifyChecks`) into `out`. Returns the
    /// result-variable slots; the scope is restored before returning.
    fn lower_block(&mut self, block: &Block, out: &mut Stream) -> Result<Vec<Slot>, String> {
        let mark = self.scope.mark();
        self.depth += 1;
        for (k, stm) in block.stms.iter().enumerate() {
            self.lower_stm(stm, out)?;
            let site = stm.pat.first().map(|p| p.var);
            for mv in self.release.after(block, k) {
                let slot = self.resolve(*mv)?;
                out.push(Instr::Release { slot, site }, site);
                self.num_releases += 1;
            }
            if !self.pending_carried.is_empty() {
                let pat0 = stm.pat.first().map(|p| p.var);
                for i in 0..self.pending_carried.len() {
                    let anchor = if self.skew_carried {
                        self.pending_carried[i].yield_mem
                    } else {
                        self.pending_carried[i].anchor
                    };
                    if pat0 != Some(anchor) {
                        continue;
                    }
                    let outgoing = self.resolve(self.pending_carried[i].yield_mem)?;
                    let pc = &self.pending_carried[i];
                    out.push(
                        Instr::ReleaseCarried {
                            incoming: pc.incoming,
                            outgoing,
                            guards: pc.guards.clone(),
                            color: pc.color,
                            site,
                        },
                        site,
                    );
                }
            }
        }
        if !self.checks.is_empty() {
            let names: Vec<String> = block
                .stms
                .iter()
                .filter_map(|s| s.pat.first())
                .map(|p| p.var.to_string())
                .collect();
            let lowered: Vec<LoweredCheck> = self
                .checks
                .iter()
                .filter(|c| names.contains(&c.stm))
                .map(|c| {
                    let syms: Vec<Sym> = c
                        .writes
                        .iter()
                        .chain(&c.uses)
                        .flat_map(|l| l.vars())
                        .collect();
                    LoweredCheck {
                        root: c.root.clone(),
                        stm: c.stm.clone(),
                        writes: c.writes.clone(),
                        uses: c.uses.clone(),
                        vars: self.slot_vars(syms),
                    }
                })
                .collect();
            if !lowered.is_empty() {
                let blame = block.stms.last().and_then(|s| s.pat.first()).map(|p| p.var);
                out.push(Instr::VerifyChecks { checks: lowered }, blame);
            }
        }
        // Merge footprints reference top-level scalars only; resolve them
        // while the top-level bindings are still in scope.
        if self.depth == 1 {
            for r in self.merges {
                let MergeRecord::Share {
                    host,
                    victim,
                    pairs,
                } = r
                else {
                    continue; // carried releases re-prove via shadow cells
                };
                if pairs.is_empty() {
                    continue; // lifetime-justified: nothing to re-prove
                }
                let syms: Vec<Sym> = pairs
                    .iter()
                    .flat_map(|(a, b)| a.vars().into_iter().chain(b.vars()))
                    .collect();
                self.merge_checks.push(LoweredMergeCheck {
                    host: host.to_string(),
                    victim: victim.to_string(),
                    pairs: pairs.clone(),
                    vars: self.slot_vars(syms),
                });
            }
        }
        let slots = block
            .result
            .iter()
            .map(|v| self.resolve(*v))
            .collect::<Result<Vec<_>, _>>()?;
        self.depth -= 1;
        self.scope.reset(mark);
        Ok(slots)
    }

    fn lower_stm(&mut self, stm: &Stm, out: &mut Stream) -> Result<(), String> {
        let blame = stm.pat.first().map(|p| p.var);
        match &stm.exp {
            Exp::Scalar(se) => {
                let exp = self.lower_exp(se)?;
                let elem = match &stm.pat[0].ty {
                    Type::Scalar(e) => Some(*e),
                    _ => None,
                };
                let dst = self.scope.bind(stm.pat[0].var);
                out.push(Instr::Scalar { dst, elem, exp }, blame);
            }
            Exp::Alloc { elem, size } => {
                let size = self.slot_poly(size);
                let color = self
                    .pending_carried
                    .iter()
                    .find(|pc| pc.yield_mem == stm.pat[0].var)
                    .map(|pc| pc.color);
                let dst = self.scope.bind(stm.pat[0].var);
                out.push(
                    Instr::Alloc {
                        dst,
                        elem: *elem,
                        size,
                        color,
                    },
                    blame,
                );
            }
            Exp::Iota(_) => {
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Iota { dest }, blame);
            }
            Exp::Scratch { .. } => {
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Scratch { dest }, blame);
            }
            Exp::Replicate { value, .. } => {
                let value = self.lower_exp(value)?;
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Replicate { dest, value }, blame);
            }
            Exp::Copy(src) => {
                let src = self.resolve(*src)?;
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Copy { dest, src }, blame);
            }
            Exp::Concat { args, elided } => {
                let args = args
                    .iter()
                    .zip(elided)
                    .map(|(a, el)| {
                        Ok(ConcatArg {
                            src: self.resolve(*a)?,
                            elided: *el,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Concat { dest, args }, blame);
            }
            Exp::Transform { src, tr } => {
                let src = self.resolve(*src)?;
                let vars = self.slot_vars(transform_vars(tr));
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(
                    Instr::Transform {
                        dest,
                        src,
                        tr: tr.clone(),
                        vars,
                    },
                    blame,
                );
            }
            Exp::Gather { src, idx } => {
                let src = self.resolve(*src)?;
                let idx = self.resolve(*idx)?;
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(Instr::Gather { dest, src, idx }, blame);
            }
            Exp::Map(m) => self.lower_map(stm, m, out, blame)?,
            Exp::Update {
                dst,
                slice,
                src,
                elided,
            } => {
                let dst_slot = self.resolve(*dst)?;
                let (slice_l, lmad_slice) = match slice {
                    SliceSpec::Triplet(ts) => {
                        let tr = Transform::Slice(ts.clone());
                        let vars = self.slot_vars(transform_vars(&tr));
                        (LSlice::Tr { tr, vars }, false)
                    }
                    SliceSpec::Lmad(l) => {
                        let tr = Transform::LmadSlice(l.clone());
                        let vars = self.slot_vars(transform_vars(&tr));
                        (LSlice::Tr { tr, vars }, true)
                    }
                    SliceSpec::Point(es) => (
                        LSlice::Point(
                            es.iter()
                                .map(|e| self.lower_exp(e))
                                .collect::<Result<_, _>>()?,
                        ),
                        false,
                    ),
                    SliceSpec::Scatter(idx) => (LSlice::Scatter(self.resolve(*idx)?), false),
                };
                let src_l = match src {
                    UpdateSrc::Array(s) => LUpdateSrc::Array(self.resolve(*s)?),
                    UpdateSrc::Scalar(se) => LUpdateSrc::Scalar(self.lower_exp(se)?),
                };
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(
                    Instr::Update(Box::new(UpdateInstr {
                        dest,
                        dst: dst_slot,
                        slice: slice_l,
                        lmad_slice,
                        src: src_l,
                        elided: *elided,
                    })),
                    blame,
                );
            }
            Exp::If {
                cond,
                then_b,
                else_b,
            } => {
                let cond = self.lower_exp(cond)?;
                let pat_slots: Vec<Slot> =
                    stm.pat.iter().map(|pe| self.scope.bind(pe.var)).collect();
                let jif = out.push(Instr::JumpIfFalse { cond, target: 0 }, blame);
                let then_res = self.lower_block(then_b, out)?;
                out.push(
                    Instr::CopySlots {
                        pairs: then_res
                            .into_iter()
                            .zip(pat_slots.iter().copied())
                            .collect(),
                    },
                    blame,
                );
                let jend = out.push(Instr::Jump { target: 0 }, blame);
                let else_start = out.instrs.len();
                patch_target(&mut out.instrs[jif], else_start);
                let else_res = self.lower_block(else_b, out)?;
                out.push(
                    Instr::CopySlots {
                        pairs: else_res
                            .into_iter()
                            .zip(pat_slots.iter().copied())
                            .collect(),
                    },
                    blame,
                );
                let end = out.instrs.len();
                patch_target(&mut out.instrs[jend], end);
            }
            Exp::Loop {
                params,
                inits,
                index,
                count,
                body,
            } => {
                let count = self.slot_poly(count);
                let init_slots = inits
                    .iter()
                    .map(|v| self.resolve(*v))
                    .collect::<Result<Vec<_>, _>>()?;
                let mark = self.scope.mark();
                let param_slots: Vec<Slot> =
                    params.iter().map(|pp| self.scope.bind(pp.var)).collect();
                let idx_slot = self.scope.bind(*index);
                let count_slot = self.scope.fresh();
                out.push(
                    Instr::CopySlots {
                        pairs: init_slots
                            .into_iter()
                            .zip(param_slots.iter().copied())
                            .collect(),
                    },
                    blame,
                );
                out.push(
                    Instr::Scalar {
                        dst: count_slot,
                        elem: None,
                        exp: LExp::Size(count),
                    },
                    blame,
                );
                out.push(
                    Instr::Scalar {
                        dst: idx_slot,
                        elem: None,
                        exp: LExp::Const(Value::I64(0)),
                    },
                    blame,
                );
                let head = out.instrs.len();
                let jge = out.push(
                    Instr::JumpIfGe {
                        a: idx_slot,
                        b: count_slot,
                        target: 0,
                    },
                    blame,
                );
                // Stage this loop's carried releases for the body: resolve
                // the incoming/guard parameter slots now, emit after each
                // anchor statement inside `lower_block`.
                let mut pending: Vec<PendingCarried> = Vec::new();
                for r in self.merges {
                    let MergeRecord::CarriedRelease {
                        loop_mem,
                        yield_mem,
                        after_stm,
                        color,
                    } = r
                    else {
                        continue;
                    };
                    let Some(k) = params.iter().position(|pp| pp.var == *loop_mem) else {
                        continue;
                    };
                    let guards: Vec<Slot> = params
                        .iter()
                        .enumerate()
                        .filter(|(k2, pp)| *k2 != k && matches!(pp.ty, Type::Mem))
                        .map(|(k2, _)| param_slots[k2])
                        .collect();
                    pending.push(PendingCarried {
                        anchor: *after_stm,
                        incoming: param_slots[k],
                        yield_mem: *yield_mem,
                        guards,
                        color: *color,
                    });
                }
                let saved = std::mem::replace(&mut self.pending_carried, pending);
                let body_res = self.lower_block(body, out)?;
                self.pending_carried = saved;
                out.push(
                    Instr::CopySlots {
                        pairs: body_res
                            .into_iter()
                            .zip(param_slots.iter().copied())
                            .collect(),
                    },
                    blame,
                );
                out.push(
                    Instr::Scalar {
                        dst: idx_slot,
                        elem: None,
                        exp: LExp::Bin(
                            arraymem_ir::BinOp::Add,
                            Box::new(LExp::Slot(idx_slot)),
                            Box::new(LExp::Const(Value::I64(1))),
                        ),
                    },
                    blame,
                );
                out.push(Instr::Jump { target: head }, blame);
                let end = out.instrs.len();
                patch_target(&mut out.instrs[jge], end);
                // The merge parameters' final values become the pattern's.
                let final_params = param_slots.clone();
                self.scope.reset(mark);
                let pat_slots: Vec<Slot> =
                    stm.pat.iter().map(|pe| self.scope.bind(pe.var)).collect();
                out.push(
                    Instr::CopySlots {
                        pairs: final_params.into_iter().zip(pat_slots).collect(),
                    },
                    blame,
                );
            }
        }
        Ok(())
    }

    fn lower_map(
        &mut self,
        stm: &Stm,
        m: &arraymem_ir::MapExp,
        out: &mut Stream,
        blame: Option<Var>,
    ) -> Result<(), String> {
        let width = self.slot_poly(&m.width);
        let inputs = m
            .inputs
            .iter()
            .map(|v| self.resolve(*v))
            .collect::<Result<Vec<_>, _>>()?;
        match &m.body {
            MapBody::Kernel {
                name,
                elem,
                row_shape,
                args,
                ..
            } => {
                let args = args
                    .iter()
                    .map(|a| self.lower_exp(a))
                    .collect::<Result<Vec<_>, _>>()?;
                let row_shape = row_shape.iter().map(|p| self.slot_poly(p)).collect();
                let dest = self.lower_dest(&stm.pat[0])?;
                out.push(
                    Instr::MapKernel(Box::new(MapKernelInstr {
                        dest,
                        width,
                        kernel: self.kernels.resolve(name),
                        kernel_name: name.clone(),
                        elem: *elem,
                        row_shape,
                        inputs,
                        args,
                        in_place: m.in_place_result,
                        par: self.par.get(&stm.pat[0].var).copied(),
                    })),
                    blame,
                );
            }
            MapBody::Lambda { params, body } => {
                let mark = self.scope.mark();
                let param_slots: Vec<Slot> =
                    params.iter().map(|(p, _)| self.scope.bind(*p)).collect();
                let mut body_stream = Stream::default();
                let results = self.lower_block(body, &mut body_stream)?;
                self.scope.reset(mark);
                let dests = stm
                    .pat
                    .iter()
                    .map(|pe| self.lower_dest(pe))
                    .collect::<Result<Vec<_>, _>>()?;
                out.push(
                    Instr::MapLambda(Box::new(MapLambdaInstr {
                        dests,
                        width,
                        inputs,
                        params: param_slots,
                        body: body_stream,
                        results,
                        stm_var: blame,
                    })),
                    blame,
                );
            }
        }
        Ok(())
    }
}

fn patch_target(i: &mut Instr, t: usize) {
    match i {
        Instr::Jump { target }
        | Instr::JumpIfFalse { target, .. }
        | Instr::JumpIfGe { target, .. } => *target = t,
        _ => unreachable!("patching a non-jump"),
    }
}

fn transform_vars(tr: &Transform) -> Vec<Sym> {
    let mut out: Vec<Sym> = Vec::new();
    let add = |p: &Poly, out: &mut Vec<Sym>| {
        for v in p.vars() {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    };
    match tr {
        Transform::Permute(_) | Transform::Reverse(_) => {}
        Transform::Reshape(ps) => {
            for p in ps {
                add(p, &mut out);
            }
        }
        Transform::Slice(ts) => {
            for t in ts {
                match t {
                    TripletSlice::Range { start, len, step } => {
                        add(start, &mut out);
                        add(len, &mut out);
                        add(step, &mut out);
                    }
                    TripletSlice::Fix(p) => add(p, &mut out),
                }
            }
        }
        Transform::LmadSlice(l) => {
            for v in l.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pretty printing (golden-snapshot friendly).

/// Strip `#<digits>` freshness suffixes from symbol names, so the rendered
/// plan is stable across interner states (test order, process restarts).
fn scrub(s: &str) -> String {
    arraymem_ir::pretty::scrub_uniques(s)
}

impl ExecPlan {
    /// A deterministic, human-readable rendering of the plan: parameters,
    /// then the instruction stream (lambda bodies indented), with slots as
    /// `%N` and symbol names scrubbed of freshness suffixes. The NW golden
    /// snapshot test diffs this.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "plan {} ({} slots, {} instrs, {} fused releases)\n",
            self.name,
            self.num_slots,
            self.body.instrs.len(),
            self.num_releases
        ));
        if self.blocks_merged > 0 {
            s.push_str(&format!(
                "merged blocks: {} ({} footprint-checked)\n",
                self.blocks_merged,
                self.merge_checks.len()
            ));
        }
        if self.num_colors > 0 {
            s.push_str(&format!("carried colors: {}\n", self.num_colors));
        }
        s.push_str("params:\n");
        for p in &self.params {
            let mem = match p.mem_slot {
                Some(m) => format!(" (mem %{m})"),
                None => String::new(),
            };
            s.push_str(&format!("  %{} {}: {:?}{}\n", p.slot, p.var, p.ty, mem));
        }
        s.push_str("body:\n");
        fmt_stream(&self.body, 1, &mut s);
        s.push_str("results:");
        for (slot, v) in &self.results {
            s.push_str(&format!(" %{slot} ({v})"));
        }
        s.push('\n');
        scrub(&s)
    }
}

fn fmt_stream(st: &Stream, indent: usize, s: &mut String) {
    let pad = "  ".repeat(indent);
    for (k, i) in st.instrs.iter().enumerate() {
        s.push_str(&format!("{pad}{k:>3}  {}\n", fmt_instr(i)));
        if let Instr::MapLambda(ml) = i {
            fmt_stream(&ml.body, indent + 1, s);
            s.push_str(&format!(
                "{pad}     ^ per-element body; results {}\n",
                ml.results
                    .iter()
                    .map(|r| format!("%{r}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            ));
        }
    }
}

fn fmt_dest(d: &Dest) -> String {
    let mem = match &d.mem {
        Some(md) => {
            let block = match md.block {
                Some(b) => format!("%{b}"),
                None => format!("<unbound {}>", md.block_var),
            };
            match &md.ixfn {
                LoweredIxFn::Ready { ixfn, class } => {
                    format!(" @ {block} {ixfn:?} [{class:?}]")
                }
                LoweredIxFn::Dynamic { ixfn, .. } => format!(" @ {block} {ixfn:?}"),
            }
        }
        None => String::new(),
    };
    format!("%{} ({}: {:?}){}", d.slot, d.var, d.elem, mem)
}

fn fmt_exp(e: &LExp) -> String {
    match e {
        LExp::Const(v) => format!("{v:?}"),
        LExp::Slot(s) => format!("%{s}"),
        LExp::Size(p) => format!("size({:?})", p.poly),
        LExp::Bin(op, a, b) => format!("({} {op:?} {})", fmt_exp(a), fmt_exp(b)),
        LExp::Un(op, a) => format!("{op:?}({})", fmt_exp(a)),
        LExp::Index { arr, idx } => format!(
            "%{arr}[{}]",
            idx.iter().map(fmt_exp).collect::<Vec<_>>().join(", ")
        ),
        LExp::Select(c, t, f) => {
            format!("select({}, {}, {})", fmt_exp(c), fmt_exp(t), fmt_exp(f))
        }
    }
}

fn fmt_slots(slots: &[Slot]) -> String {
    slots
        .iter()
        .map(|s| format!("%{s}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn fmt_instr(i: &Instr) -> String {
    match i {
        Instr::Scalar { dst, exp, .. } => format!("%{dst} <- {}", fmt_exp(exp)),
        Instr::Alloc {
            dst,
            elem,
            size,
            color,
        } => {
            let c = color.map(|c| format!(" color {c}")).unwrap_or_default();
            format!("%{dst} <- alloc {elem:?} x {:?}{c}", size.poly)
        }
        Instr::Iota { dest } => format!("{} <- iota", fmt_dest(dest)),
        Instr::Scratch { dest } => format!("{} <- scratch", fmt_dest(dest)),
        Instr::Replicate { dest, value } => {
            format!("{} <- replicate {}", fmt_dest(dest), fmt_exp(value))
        }
        Instr::Copy { dest, src } => format!("{} <- copy %{src}", fmt_dest(dest)),
        Instr::Concat { dest, args } => format!(
            "{} <- concat [{}]",
            fmt_dest(dest),
            args.iter()
                .map(|a| format!("%{}{}", a.src, if a.elided { " (elided)" } else { "" }))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Instr::Transform { dest, src, tr, .. } => {
            format!("{} <- transform %{src} {tr:?}", fmt_dest(dest))
        }
        Instr::Gather { dest, src, idx } => {
            format!("{} <- gather %{src} [%{idx}]", fmt_dest(dest))
        }
        Instr::MapKernel(mk) => format!(
            "{} <- map_kernel {}#{} width {:?} inputs [{}] args [{}]{}",
            fmt_dest(&mk.dest),
            mk.kernel_name,
            mk.kernel
                .map(|k| k.to_string())
                .unwrap_or_else(|| "?".into()),
            mk.width.poly,
            fmt_slots(&mk.inputs),
            mk.args.iter().map(fmt_exp).collect::<Vec<_>>().join(", "),
            match (mk.in_place, mk.par) {
                (true, Some(ParLevel::Safe)) => " in-place par-safe",
                (true, Some(ParLevel::Serial)) => " in-place par-serial",
                (true, _) => " in-place",
                (false, Some(ParLevel::Safe)) => " par-safe",
                (false, Some(ParLevel::Serial)) => " par-serial",
                (false, Some(ParLevel::NeedsBuffer)) => " par-buffered",
                (false, _) => "",
            }
        ),
        Instr::MapLambda(ml) => format!(
            "[{}] <- map_lambda width {:?} inputs [{}] params [{}]",
            ml.dests.iter().map(fmt_dest).collect::<Vec<_>>().join(", "),
            ml.width.poly,
            fmt_slots(&ml.inputs),
            fmt_slots(&ml.params),
        ),
        Instr::Update(u) => {
            let slice = match &u.slice {
                LSlice::Tr { tr, .. } => format!("{tr:?}"),
                LSlice::Point(es) => format!(
                    "point[{}]",
                    es.iter().map(fmt_exp).collect::<Vec<_>>().join(", ")
                ),
                LSlice::Scatter(idx) => format!("scatter[%{idx}]"),
            };
            let src = match &u.src {
                LUpdateSrc::Array(s) => format!("%{s}"),
                LUpdateSrc::Scalar(e) => fmt_exp(e),
            };
            format!(
                "{} <- update %{} {slice} src {src}{}",
                fmt_dest(&u.dest),
                u.dst,
                if u.elided { " (elided)" } else { "" }
            )
        }
        Instr::Release { slot, site } => format!(
            "release %{slot}{}",
            site.map(|v| format!(" (after {v})")).unwrap_or_default()
        ),
        Instr::ReleaseCarried {
            incoming,
            outgoing,
            guards,
            color,
            site,
        } => format!(
            "release-carried %{incoming} (color {color}, unless %{outgoing}{}{})",
            if guards.is_empty() {
                String::new()
            } else {
                format!(" or {}", fmt_slots(guards))
            },
            site.map(|v| format!("; after {v}")).unwrap_or_default()
        ),
        Instr::CopySlots { pairs } => format!(
            "copy-slots [{}]",
            pairs
                .iter()
                .map(|(a, b)| format!("%{a}->%{b}"))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Instr::Jump { target } => format!("jump {target}"),
        Instr::JumpIfFalse { cond, target } => {
            format!("jump-if-false {} -> {target}", fmt_exp(cond))
        }
        Instr::JumpIfGe { a, b, target } => format!("jump-if %{a} >= %{b} -> {target}"),
        Instr::VerifyChecks { checks } => format!(
            "verify-circuits [{}]",
            checks
                .iter()
                .map(|c| c.stm.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}
