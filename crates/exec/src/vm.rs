//! The plan executor.
//!
//! Programs are not interpreted from the IR tree: [`Session::prepare`]
//! lowers a compiled program once into a flat [`ExecPlan`] (see
//! [`crate::plan`]) and caches it by a structural fingerprint;
//! [`Session::run_plan`] then replays the instruction stream against a
//! dense `Vec<Value>` register file. The hot loop performs **no** hash
//! map lookups — operands are pre-resolved slots — and no per-run
//! release-plan analysis: release sites are instructions in the stream.
//!
//! Three modes share one plan:
//!
//! - [`Mode::Memory`]: obeys the compiler's memory annotations — `alloc`
//!   statements create blocks, fresh arrays are constructed through their
//!   (possibly rebased) index functions, elided updates/concats are
//!   no-ops, and non-in-place mapnests pay the per-instance private-row
//!   copy (the implicit copy of §V-A(e)). Kernel mapnests dispatch onto
//!   the work-stealing pool ([`crate::pool`]) under the `par_safety`
//!   stage's verdict: `Safe` maps run parallel writing their result
//!   memory directly, `NeedsBuffer` maps run parallel through private
//!   row buffers, and `Serial` maps (direct writes with unproven
//!   disjointness) are serialized.
//! - [`Mode::Pure`]: direct functional value semantics — every operation
//!   materializes a fresh dense array and annotations are ignored. This is
//!   the semantic ground truth: the paper's invariant that deleting memory
//!   annotations does not change program meaning is checked by comparing
//!   the two modes.
//! - [`Mode::Checked`]: `Memory` semantics plus a shadow-memory sanitizer
//!   that dynamically validates what the optimizer's static reasoning
//!   promised: no read of a never-written cell in a recycled block (the
//!   zero-fill elision's obligation), no read of a released block (the
//!   last-use plan's obligation), no two map iterations writing one cell
//!   (the in-place mapnest's obligation), and — via
//!   [`Session::run_with_checks`] — concrete disjointness of every
//!   footprint pair a short-circuit's symbolic non-overlap test approved.
//!   Mapnests the `par_safety` stage proved safe are **not** serialized:
//!   their chunk disjointness is re-proved concretely by enumeration
//!   before each dispatch, and only a failed re-proof (reported as
//!   [`Diagnostic::ParOverlap`]) falls back to serial execution; maps
//!   without a proof run serially for deterministic diagnostics.
//!   Findings land in [`Stats::diagnostics`] rather than aborting, so one
//!   run reports all. Diagnostics name source statements via the plan's
//!   blame side table.

use crate::cache::PlanCache;
use crate::kernel::{KernelCtx, KernelRegistry};
use crate::plan::{
    lower_plan_with, slot_lookup, Dest, ExecPlan, Instr, LExp, LSlice, LUpdateSrc, ParamSpec,
    Stream,
};
use crate::pool::parallel_for_worker;
use crate::stats::{Diagnostic, Stats};
use crate::store::{CellState, MemStore};
use crate::value::{ArrayRef, InputValue, OutputValue, Value};
use crate::view::{copy_view, fix_outer, View, ViewMut};
use arraymem_core::{CircuitCheck, MergeRecord, ReleasePlan};
use arraymem_core::{ParLevel, ParSafetyRecord};
use arraymem_ir::validate::lmad_slice_is_injective;
use arraymem_ir::{BinOp, ElemType, Program, Type, UnOp};
use arraymem_lmad::{
    footprint_check, ConcreteIxFn, ConcreteLmad, FootprintCheck, IndexFn, Lmad, Transform,
    TripletSlice,
};
use arraymem_symbolic::Poly;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Obey memory annotations (requires a compiled program).
    Memory,
    /// Direct value semantics (works on any validated program).
    Pure,
    /// `Memory` semantics under the shadow-memory sanitizer (see the
    /// module docs). Mapnests with a `par_safety` proof run parallel
    /// after a concrete pre-dispatch re-proof; everything else runs
    /// serially under per-cell shadow tracking — expect a substantial
    /// slowdown. This mode exists for tests and fuzzing, not benchmarks.
    Checked,
}

/// Findings beyond this many per run are counted, not stored.
const MAX_DIAGNOSTICS: usize = 64;

/// Short-circuit footprints larger than this many points are skipped by
/// the runtime disjointness cross-check (enumeration would dominate).
const FOOTPRINT_CAP: i64 = 1 << 20;

/// A prepared plan in a [`Session`]'s cache. Cheap to copy; only valid
/// for the session that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanHandle(usize);

pub use crate::cache::PlanStats;

struct Machine<'a> {
    store: &'a mut MemStore,
    kernels: &'a KernelRegistry,
    regs: Vec<Value>,
    stats: Stats,
    threads: usize,
    mode: Mode,
    /// Checked mode: first pattern variable of the executing statement
    /// (from the plan's blame table) — write provenance for shadow marks,
    /// blame for diagnostics.
    cur_stm: Option<arraymem_ir::Var>,
}

/// A reusable execution context owning the memory store and a view onto
/// a plan cache. Running several programs (or the same program
/// repeatedly, as the benchmark harness does) through one session
/// recycles every block of run *n* into the allocations of run *n+1* via
/// the store's free lists, and compiles + lowers each distinct program
/// exactly once.
///
/// A session is the single-tenant special case of the server layering:
/// [`Session::new`] owns a private single-shard [`PlanCache`];
/// [`Session::with_cache`] shares a (typically global) one, in which
/// case [`plan_stats`](Session::plan_stats) reports the shared cache's
/// accounting across every client.
pub struct Session {
    store: MemStore,
    cache: Arc<PlanCache>,
    /// Session-local handle table: `PlanHandle(i)` indexes here, so
    /// handles stay dense and session-scoped even over a shared cache.
    handles: Vec<Arc<ExecPlan>>,
    by_key: HashMap<u64, usize>,
    /// Outcome of the most recent `prepare`: (was answered without
    /// lowering, lowering time if not). Stamped onto the next run's
    /// [`Stats`].
    last_prepare: (bool, Duration),
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    pub fn new() -> Session {
        Session::with_cache(Arc::new(PlanCache::new(1)))
    }

    /// A session over a shared plan cache: programs another client of
    /// `cache` already prepared are answered without lowering here.
    pub fn with_cache(cache: Arc<PlanCache>) -> Session {
        Session {
            store: MemStore::new(),
            cache,
            handles: Vec::new(),
            by_key: HashMap::new(),
            last_prepare: (true, Duration::ZERO),
        }
    }

    /// The plan cache this session prepares against (share it with
    /// [`Session::with_cache`]).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The session's memory store (tests attach arenas through this).
    pub fn store_mut(&mut self) -> &mut MemStore {
        &mut self.store
    }

    /// Lower `prog` into an executable plan, or return the cached handle
    /// if this session has prepared a structurally identical program (same
    /// IR fingerprint, same kernel registry, no checks) before.
    pub fn prepare(
        &mut self,
        prog: &Program,
        kernels: &KernelRegistry,
    ) -> Result<PlanHandle, String> {
        self.prepare_with_checks(prog, kernels, &[])
    }

    /// [`prepare`](Session::prepare) with checked-mode circuit checks
    /// lowered into the plan (pass the compile report's
    /// [`CircuitCheck`]s; they are part of the cache key).
    pub fn prepare_with_checks(
        &mut self,
        prog: &Program,
        kernels: &KernelRegistry,
        checks: &[CircuitCheck],
    ) -> Result<PlanHandle, String> {
        self.prepare_full(prog, kernels, checks, &[], &[])
    }

    /// [`prepare_with_checks`](Session::prepare_with_checks) additionally
    /// lowering the compile report's [`MergeRecord`]s (`Report::merges`)
    /// and [`ParSafetyRecord`]s (`Report::par_safety`) into the plan:
    /// checked-mode runs re-prove every footprint pair a
    /// footprint-justified merge relied on and every chunk-disjointness
    /// verdict a parallel map relied on, and the plan stamps
    /// `Stats::blocks_merged`. All record sets are part of the cache key.
    pub fn prepare_full(
        &mut self,
        prog: &Program,
        kernels: &KernelRegistry,
        checks: &[CircuitCheck],
        merges: &[MergeRecord],
        par: &[ParSafetyRecord],
    ) -> Result<PlanHandle, String> {
        let (plan, outcome) = self
            .cache
            .prepare_full(prog, kernels, checks, merges, par)?;
        self.last_prepare = (outcome.hit, outcome.build_time);
        let i = match self.by_key.get(&outcome.key) {
            Some(&i) => i,
            None => {
                self.handles.push(plan);
                self.by_key.insert(outcome.key, self.handles.len() - 1);
                self.handles.len() - 1
            }
        };
        Ok(PlanHandle(i))
    }

    /// Cumulative prepare accounting of the session's cache (the harness
    /// asserts `cache_hits == runs - builds` per benchmarked case). Over
    /// a shared cache this aggregates every sharing client.
    pub fn plan_stats(&self) -> PlanStats {
        self.cache.stats()
    }

    /// The prepared plan behind a handle (pretty-printing, inspection).
    pub fn plan(&self, h: PlanHandle) -> &ExecPlan {
        &self.handles[h.0]
    }

    /// Execute a prepared plan. `inputs` must match the parameter list.
    /// Returns the program results plus execution statistics (input
    /// loading and result extraction excluded).
    pub fn run_plan(
        &mut self,
        h: PlanHandle,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        let (hit, build) = self.last_prepare;
        let plan = Arc::clone(&self.handles[h.0]);
        let r = execute_plan(&mut self.store, &plan, inputs, kernels, mode, threads);
        r.map(|(out, mut stats)| {
            stats.plan_cache_hit = hit;
            stats.plan_build_time = build;
            (out, stats)
        })
    }

    /// Prepare (cached) and execute a program in one call.
    pub fn run(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        self.run_with_checks(prog, inputs, kernels, mode, threads, &[])
    }

    /// [`run`](Session::run), additionally cross-checking each recorded
    /// short-circuit decision at runtime (checked mode only): the
    /// candidate's write footprints and the destination's recorded later
    /// uses are evaluated to concrete LMADs and every pair is proved
    /// disjoint by enumeration, or reported as a
    /// [`Diagnostic::CircuitOverlap`]. Pass the compile report's
    /// [`CircuitCheck`]s (`Report::checks`).
    pub fn run_with_checks(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        self.run_full(prog, inputs, kernels, mode, threads, checks, &[], &[])
    }

    /// [`run_with_checks`](Session::run_with_checks) additionally carrying
    /// the compile report's merge records (`Report::merges`) and
    /// parallel-safety records (`Report::par_safety`) — the full set of
    /// runtime obligations the optimizer took on.
    #[allow(clippy::too_many_arguments)]
    pub fn run_full(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
        merges: &[MergeRecord],
        par: &[ParSafetyRecord],
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        let h = self.prepare_full(prog, kernels, checks, merges, par)?;
        self.run_plan(h, inputs, kernels, mode, threads)
    }

    /// [`run_with_checks`](Session::run_with_checks) with a caller-supplied
    /// release plan, lowered fresh and uncached. Tests use this to execute
    /// under a *deliberately wrong* plan
    /// ([`ReleasePlan::compute_skewed_early`]) and assert the checked
    /// mode's use-after-release detector fires.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_plan(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
        plan: &ReleasePlan,
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        let lowered = lower_plan_with(prog, kernels, checks, plan)?;
        execute_plan(&mut self.store, &lowered, inputs, kernels, mode, threads)
    }

    /// [`run_full`](Session::run_full) lowered fresh and uncached with
    /// every carried release **skewed early**
    /// ([`crate::plan::lower_plan_carried_skewed`]): the coloring pass's
    /// mutation hook. The incoming ping-pong block is released right
    /// after its replacement's `alloc`, before the body's analyzed last
    /// use of it, so a checked-mode run must report the premature
    /// release as a [`crate::Diagnostic::UseAfterRelease`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_carried_skewed(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
        merges: &[MergeRecord],
        par: &[ParSafetyRecord],
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        let lowered = crate::plan::lower_plan_carried_skewed(prog, kernels, checks, merges, par)?;
        execute_plan(&mut self.store, &lowered, inputs, kernels, mode, threads)
    }
}

/// Execute a program in a one-shot [`Session`].
pub fn run_program(
    prog: &Program,
    inputs: &[InputValue],
    kernels: &KernelRegistry,
    mode: Mode,
    threads: usize,
) -> Result<(Vec<OutputValue>, Stats), String> {
    Session::new().run(prog, inputs, kernels, mode, threads)
}

/// Run one plan against a store: load inputs, execute the stream, extract
/// results, release everything still live back to the free lists. This is
/// the layer below [`Session`]: the server executes shared
/// `Arc<ExecPlan>`s against per-tenant stores through this entry point.
pub fn execute_plan(
    store: &mut MemStore,
    plan: &ExecPlan,
    inputs: &[InputValue],
    kernels: &KernelRegistry,
    mode: Mode,
    threads: usize,
) -> Result<(Vec<OutputValue>, Stats), String> {
    if mode == Mode::Checked {
        store.enable_shadow();
    } else {
        store.disable_shadow();
    }
    let mut m = Machine {
        store,
        kernels,
        regs: vec![Value::I64(0); plan.num_slots() as usize],
        stats: Stats::default(),
        threads: threads.max(1),
        mode,
        cur_stm: None,
    };
    if inputs.len() != plan.params.len() {
        return Err(format!(
            "expected {} inputs, got {}",
            plan.params.len(),
            inputs.len()
        ));
    }
    for (spec, input) in plan.params.iter().zip(inputs) {
        m.load_param(spec, input)?;
    }
    // Only the body execution is measured.
    m.store.bytes_allocated = 0;
    m.store.num_allocs = 0;
    m.store.blocks_reused = 0;
    m.store.bytes_zeroing_elided = 0;
    m.store.arena_blocks_adopted = 0;
    m.store.bytes_cross_tenant_scrubbed = 0;
    m.store.carried_releases = 0;
    m.store.color_slab_hits = 0;
    m.store.begin_colors(plan.num_colors);
    m.store.reset_peak();
    let t0 = Instant::now();
    m.exec_stream(&plan.body)?;
    m.stats.total_time = t0.elapsed();
    if m.checked() {
        m.verify_merges(&plan.merge_checks);
    }
    m.stats.bytes_allocated = m.store.bytes_allocated;
    m.stats.num_allocs = m.store.num_allocs;
    m.stats.blocks_reused = m.store.blocks_reused;
    m.stats.bytes_zeroing_elided = m.store.bytes_zeroing_elided;
    m.stats.arena_blocks_adopted = m.store.arena_blocks_adopted;
    m.stats.bytes_cross_tenant_scrubbed = m.store.bytes_cross_tenant_scrubbed;
    m.stats.carried_releases = m.store.carried_releases;
    m.stats.color_slab_hits = m.store.color_slab_hits;
    m.stats.peak_bytes_live = m.store.peak_bytes_live;
    m.stats.blocks_merged = plan.blocks_merged;
    let mut out = Vec::with_capacity(plan.results.len());
    for (slot, v) in &plan.results {
        m.cur_stm = Some(*v);
        let value = m.regs[*slot as usize].clone();
        out.push(extract(&mut m, &value));
    }
    let stats = m.stats;
    // Results are extracted (deep-copied) above; everything the run
    // allocated can feed the next run's allocations — including blocks
    // still parked in color slabs.
    store.drain_colors();
    store.release_all_live();
    Ok((out, stats))
}

fn extract(m: &mut Machine, v: &Value) -> OutputValue {
    match v {
        Value::I64(x) => OutputValue::I64(*x),
        Value::F32(x) => OutputValue::F32(*x),
        Value::F64(x) => OutputValue::F64(*x),
        Value::Bool(x) => OutputValue::Bool(*x),
        Value::Mem(_) => OutputValue::I64(0),
        Value::Array(a) => {
            // Result extraction is a read like any other: never-written or
            // already-released result cells are exactly what escapes to
            // the caller.
            m.check_read(a.block, &a.ixfn);
            let view = m.view(a);
            let n = view.num_elems();
            match a.elem {
                ElemType::F32 => {
                    OutputValue::ArrayF32((0..n).map(|f| view.get_f32_flat(f)).collect())
                }
                ElemType::F64 => {
                    OutputValue::ArrayF64((0..n).map(|f| view.get_f64_flat(f)).collect())
                }
                ElemType::I64 | ElemType::Bool => {
                    OutputValue::ArrayI64((0..n).map(|f| view.get_i64_flat(f)).collect())
                }
            }
        }
    }
}

impl Machine<'_> {
    /// `Memory` semantics? (`Checked` is `Memory` plus the sanitizer.)
    fn mem_like(&self) -> bool {
        matches!(self.mode, Mode::Memory | Mode::Checked)
    }

    fn checked(&self) -> bool {
        self.mode == Mode::Checked
    }

    fn load_param(&mut self, spec: &ParamSpec, input: &InputValue) -> Result<(), String> {
        let v = spec.var;
        match (&spec.ty, input) {
            (Type::Scalar(ElemType::I64), InputValue::I64(x)) => {
                self.regs[spec.slot as usize] = Value::I64(*x);
            }
            (Type::Scalar(ElemType::F32), InputValue::F32(x)) => {
                self.regs[spec.slot as usize] = Value::F32(*x);
            }
            (Type::Scalar(ElemType::F64), InputValue::F64(x)) => {
                self.regs[spec.slot as usize] = Value::F64(*x);
            }
            (Type::Scalar(ElemType::Bool), InputValue::Bool(x)) => {
                self.regs[spec.slot as usize] = Value::Bool(*x);
            }
            (Type::Array { elem, .. }, arr) => {
                let shape_c: Vec<i64> = spec
                    .shape
                    .iter()
                    .map(|p| p.eval(&self.regs).ok_or("unresolved param shape"))
                    .collect::<Result<_, _>>()?;
                let n: i64 = shape_c.iter().product();
                let block = match (elem, arr) {
                    (ElemType::F32, InputValue::ArrayF32(d)) => {
                        assert_eq!(d.len() as i64, n, "input length mismatch for {v}");
                        self.store.alloc_f32(d.clone())
                    }
                    (ElemType::F64, InputValue::ArrayF64(d)) => {
                        assert_eq!(d.len() as i64, n);
                        self.store.alloc_f64(d.clone())
                    }
                    (ElemType::I64, InputValue::ArrayI64(d)) => {
                        assert_eq!(d.len() as i64, n);
                        self.store.alloc_i64(d.clone())
                    }
                    _ => return Err(format!("input type mismatch for {v}")),
                };
                self.regs[spec.slot as usize] = Value::Array(ArrayRef::new(
                    block,
                    *elem,
                    ConcreteIxFn::row_major(&shape_c),
                ));
                // The parameter's memory block variable.
                if let Some(ms) = spec.mem_slot {
                    self.regs[ms as usize] = Value::Mem(block);
                }
            }
            _ => return Err(format!("input mismatch for {v}")),
        }
        Ok(())
    }

    /// Record a sanitizer finding (capped; the overflow is counted).
    fn diag(&mut self, d: Diagnostic) {
        if self.stats.diagnostics.len() < MAX_DIAGNOSTICS {
            self.stats.diagnostics.push(d);
        } else {
            self.stats.diagnostics_suppressed += 1;
        }
    }

    /// Display name of the executing statement (diagnostic blame).
    fn stm_name(&self) -> String {
        match self.cur_stm {
            Some(v) => format!("{v}"),
            None => "<unknown>".to_string(),
        }
    }

    /// Shadow-mark every cell of `ixfn`'s footprint as written by the
    /// executing statement. No-op outside checked mode.
    fn mark_write(&mut self, block: usize, ixfn: &ConcreteIxFn) {
        if !self.store.shadow_enabled() {
            return;
        }
        let Some(writer) = self.cur_stm else { return };
        let len = self.store.len(block);
        let offs = ixfn.all_offsets();
        self.stats.cells_checked += offs.len() as u64;
        for off in offs {
            if off >= 0 && (off as usize) < len {
                self.store.shadow_mark(block, off as usize, writer);
            }
        }
    }

    /// Check one cell's shadow state ahead of a read; emits at most one
    /// diagnostic. Returns `false` if the cell was unreadable.
    fn check_cell(&mut self, block: usize, off: i64, ixfn: &ConcreteIxFn) -> bool {
        self.stats.cells_checked += 1;
        if off < 0 || off as usize >= self.store.len(block) {
            return true; // the view's own bounds assert handles it
        }
        match self.store.shadow_cell(block, off as usize) {
            Some(CellState::Stale) => {
                let d = Diagnostic::UninitRead {
                    stm: self.stm_name(),
                    block,
                    offset: off,
                    ixfn: format!("{ixfn:?}"),
                };
                self.diag(d);
                false
            }
            Some(CellState::Released) => {
                let released_after = match self.store.shadow_released_by(block) {
                    Some(s) => format!("{s}"),
                    None => "<unrecorded site>".to_string(),
                };
                let d = Diagnostic::UseAfterRelease {
                    stm: self.stm_name(),
                    block,
                    offset: off,
                    ixfn: format!("{ixfn:?}"),
                    released_after,
                };
                self.diag(d);
                false
            }
            _ => true,
        }
    }

    /// Shadow-mark a single cell as written by the executing statement —
    /// the per-lane variant of [`mark_write`](Machine::mark_write) for
    /// runtime-indexed (scatter) writes, where only the lanes that passed
    /// the bounds check were actually written. No-op outside checked mode.
    fn mark_cell(&mut self, block: usize, off: i64) {
        if !self.store.shadow_enabled() {
            return;
        }
        let Some(writer) = self.cur_stm else { return };
        self.stats.cells_checked += 1;
        if off >= 0 && (off as usize) < self.store.len(block) {
            self.store.shadow_mark(block, off as usize, writer);
        }
    }

    /// Check every cell of a read footprint; stops at the first finding
    /// (one diagnostic per read site keeps reports legible). No-op outside
    /// checked mode.
    fn check_read(&mut self, block: usize, ixfn: &ConcreteIxFn) {
        if !self.store.shadow_enabled() {
            return;
        }
        for off in ixfn.all_offsets() {
            if !self.check_cell(block, off, ixfn) {
                return;
            }
        }
    }

    /// Dynamic race detector for one map statement: enumerate each
    /// iteration's write footprint (the result index function with the
    /// outer dimension fixed) and report the first cell two different
    /// iterations both write. No-op outside checked mode.
    fn race_check(&mut self, block: usize, ixfn: &ConcreteIxFn, width: i64) {
        if !self.store.shadow_enabled() || ixfn.rank() == 0 {
            return;
        }
        let mut owner: HashMap<i64, i64> = HashMap::new();
        for i in 0..width.max(0) {
            let row = fix_outer(ixfn, i);
            for off in row.all_offsets() {
                self.stats.cells_checked += 1;
                match owner.insert(off, i) {
                    Some(prev) if prev != i => {
                        let d = Diagnostic::MapRace {
                            stm: self.stm_name(),
                            block,
                            offset: off,
                            iter_a: prev,
                            iter_b: i,
                            ixfn: format!("{ixfn:?}"),
                        };
                        self.diag(d);
                        return;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Checked mode's pre-dispatch re-proof for a `par_safety`-approved
    /// map: concretely enumerate each iteration's write footprint and
    /// confirm chunk-wise disjointness. Returns `true` when the symbolic
    /// verdict holds (the map may run parallel under the sanitizer); an
    /// overlap reports [`Diagnostic::ParOverlap`] and the caller runs the
    /// map serially. The enumeration is thread-count independent, so a
    /// verdict at one thread count transfers to any other.
    fn par_precheck(&mut self, block: usize, ixfn: &ConcreteIxFn, width: i64) -> bool {
        if ixfn.rank() == 0 {
            // A rank-0 result cannot be split into per-iteration rows;
            // fall back to serial without claiming a verification.
            return false;
        }
        let mut owner: HashMap<i64, i64> = HashMap::new();
        for i in 0..width.max(0) {
            let row = fix_outer(ixfn, i);
            for off in row.all_offsets() {
                self.stats.cells_checked += 1;
                match owner.insert(off, i) {
                    Some(prev) if prev != i => {
                        let d = Diagnostic::ParOverlap {
                            stm: self.stm_name(),
                            block,
                            offset: off,
                            iter_a: prev,
                            iter_b: i,
                            ixfn: format!("{ixfn:?}"),
                        };
                        self.diag(d);
                        return false;
                    }
                    _ => {}
                }
            }
        }
        self.stats.par_checks_verified += 1;
        true
    }

    /// Execute a (linear, jump-threaded) instruction stream.
    fn exec_stream(&mut self, s: &Stream) -> Result<(), String> {
        let mut pc = 0usize;
        while pc < s.instrs.len() {
            if let Some(v) = s.blame[pc] {
                self.cur_stm = Some(v);
            }
            match &s.instrs[pc] {
                Instr::Jump { target } => {
                    pc = *target;
                    continue;
                }
                Instr::JumpIfFalse { cond, target } => {
                    let t = *target;
                    if !self.eval_lexp(cond)?.as_bool() {
                        pc = t;
                        continue;
                    }
                }
                Instr::JumpIfGe { a, b, target } => {
                    if self.regs[*a as usize].as_i64() >= self.regs[*b as usize].as_i64() {
                        pc = *target;
                        continue;
                    }
                }
                i => self.exec_instr(i)?,
            }
            pc += 1;
        }
        Ok(())
    }

    fn exec_instr(&mut self, instr: &Instr) -> Result<(), String> {
        match instr {
            Instr::Scalar { dst, elem, exp } => {
                let v = self.eval_lexp(exp)?;
                self.regs[*dst as usize] = coerce(v, *elem);
            }
            Instr::Alloc {
                dst,
                elem,
                size,
                color,
            } => {
                let n = size.eval(&self.regs).ok_or("unresolved alloc size")?;
                let n = n.max(0) as usize;
                let block = match color {
                    Some(c) => self.store.alloc_colored(*elem, n, *c),
                    None => self.store.alloc(*elem, n),
                };
                self.regs[*dst as usize] = Value::Mem(block);
            }
            Instr::Iota { dest } => {
                let dst = self.fresh_dest(dest)?;
                let view = self.view_mut(&dst);
                let n = view.num_elems();
                for i in 0..n {
                    view.set_i64_flat(i, i);
                }
                self.mark_write(dst.block, &dst.ixfn);
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::Scratch { dest } => {
                let dst = self.fresh_dest(dest)?;
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::Replicate { dest, value } => {
                let v = self.eval_lexp(value)?;
                let dst = self.fresh_dest(dest)?;
                let view = self.view_mut(&dst);
                let n = view.num_elems();
                match dst.elem {
                    ElemType::F32 => {
                        let x = v.as_f32();
                        if let Some(s) = view.as_slice_f32_mut() {
                            s.fill(x);
                        } else {
                            for i in 0..n {
                                view.set_f32_flat(i, x);
                            }
                        }
                    }
                    ElemType::F64 => {
                        let x = v.as_f64();
                        for i in 0..n {
                            view.set_f64(&unflat(&view.shape(), i), x);
                        }
                    }
                    ElemType::I64 | ElemType::Bool => {
                        let x = v.as_i64();
                        if let Some(s) = view.as_slice_i64_mut() {
                            s.fill(x);
                        } else {
                            for i in 0..n {
                                view.set_i64_flat(i, x);
                            }
                        }
                    }
                }
                self.mark_write(dst.block, &dst.ixfn);
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::Copy { dest, src } => {
                let src_a = self.regs[*src as usize].as_array().clone();
                self.check_read(src_a.block, &src_a.ixfn);
                let dst = self.fresh_dest(dest)?;
                let sv = self.view(&src_a);
                let dv = self.view_mut(&dst);
                let t = Instant::now();
                let bytes = copy_view(&dv, &sv);
                self.stats.copy_time += t.elapsed();
                self.stats.bytes_copied += bytes;
                self.stats.num_copies += 1;
                self.mark_write(dst.block, &dst.ixfn);
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::Concat { dest, args } => {
                let dst = self.fresh_dest(dest)?;
                let dv = self.view_mut(&dst);
                let mut row = 0i64;
                for arg in args {
                    let src_a = self.regs[arg.src as usize].as_array().clone();
                    // Every argument is read (an elided one was constructed
                    // directly in the destination — its cells must already
                    // be written there).
                    self.check_read(src_a.block, &src_a.ixfn);
                    let rows = src_a.ixfn.shape()[0];
                    let elided_here = arg.elided && self.mem_like();
                    if elided_here {
                        let bytes = src_a.ixfn.num_elems() as u64 * src_a.elem.size_bytes() as u64;
                        self.stats.bytes_elided += bytes;
                        self.stats.num_elided += 1;
                    } else {
                        let sv = self.view(&src_a);
                        // Destination sub-view: rows [row, row+rows).
                        let sub = slice_rows(&dv, row, rows);
                        let t = Instant::now();
                        let bytes = copy_view(&sub, &sv);
                        self.stats.copy_time += t.elapsed();
                        self.stats.bytes_copied += bytes;
                        self.stats.num_copies += 1;
                        let sub_ix = sub.ixfn().clone();
                        self.mark_write(dst.block, &sub_ix);
                    }
                    row += rows;
                }
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::Transform {
                dest,
                src,
                tr,
                vars,
            } => {
                let src_a = self.regs[*src as usize].as_array().clone();
                let ixfn = {
                    let lookup = slot_lookup(vars, &self.regs);
                    apply_transform_concrete(&src_a.ixfn, tr, &lookup)
                }
                .ok_or("unsupported concrete transform")?;
                if self.mode == Mode::Pure {
                    // Materialize the transformed view into a fresh array.
                    let dst = self.fresh_dest(dest)?;
                    let sv = View::new(self.store.raw(src_a.block), ixfn);
                    let dv = self.view_mut(&dst);
                    copy_view(&dv, &sv);
                    self.regs[dest.slot as usize] = Value::Array(dst);
                } else {
                    self.regs[dest.slot as usize] =
                        Value::Array(ArrayRef::new(src_a.block, src_a.elem, ixfn));
                }
            }
            Instr::Gather { dest, src, idx } => {
                let src_a = self.regs[*src as usize].as_array().clone();
                let idx_a = self.regs[*idx as usize].as_array().clone();
                if idx_a.elem != ElemType::I64 {
                    return Err("gather index array must be i64".into());
                }
                self.check_read(idx_a.block, &idx_a.ixfn);
                let dst = self.fresh_dest(dest)?;
                let iv = self.view(&idx_a);
                let sv = self.view(&src_a);
                let dv = self.view_mut(&dst);
                let n = iv.num_elems();
                let extent = src_a.ixfn.num_elems();
                let src_shape = sv.shape();
                let dst_shape = dv.shape();
                let t = Instant::now();
                for k in 0..n.max(0) {
                    let j = iv.get_i64_flat(k);
                    if j < 0 || j >= extent {
                        // Checked mode records the finding and skips the
                        // lane; the unchecked evaluators abort.
                        if self.checked() {
                            let d = Diagnostic::IndexOutOfBounds {
                                stm: self.stm_name(),
                                lane: k,
                                index: j,
                                extent,
                            };
                            self.diag(d);
                            continue;
                        }
                        return Err(format!(
                            "gather index {j} out of bounds for {extent} elements (lane {k})"
                        ));
                    }
                    if self.store.shadow_enabled() {
                        let off = src_a.ixfn.index(&unflat(&src_shape, j));
                        self.check_cell(src_a.block, off, &src_a.ixfn);
                    }
                    match dst.elem {
                        ElemType::F32 => dv.set_f32_flat(k, sv.get_f32_flat(j)),
                        ElemType::F64 => {
                            dv.set_f64(&unflat(&dst_shape, k), sv.get_f64(&unflat(&src_shape, j)))
                        }
                        ElemType::I64 | ElemType::Bool => dv.set_i64_flat(k, sv.get_i64_flat(j)),
                    }
                }
                self.stats.copy_time += t.elapsed();
                self.stats.bytes_copied += n.max(0) as u64 * dst.elem.size_bytes() as u64;
                self.stats.num_copies += 1;
                self.mark_write(dst.block, &dst.ixfn);
                self.regs[dest.slot as usize] = Value::Array(dst);
            }
            Instr::MapKernel(mk) => {
                let width = mk.width.eval(&self.regs).ok_or("unresolved map width")?;
                let dst = self.fresh_dest(&mk.dest)?;
                let kernel = match mk.kernel {
                    Some(k) => self.kernels.by_index(k).clone(),
                    None => return Err(format!("unregistered kernel {}", mk.kernel_name)),
                };
                let in_arrays: Vec<ArrayRef> = mk
                    .inputs
                    .iter()
                    .map(|s| self.regs[*s as usize].as_array().clone())
                    .collect();
                for a in &in_arrays {
                    self.check_read(a.block, &a.ixfn);
                }
                let inputs: Vec<View> = in_arrays.iter().map(|a| self.view(a)).collect();
                let argv: Vec<Value> = mk
                    .args
                    .iter()
                    .map(|a| self.eval_lexp(a))
                    .collect::<Result<_, _>>()?;
                let row_shape_c: Vec<i64> = mk
                    .row_shape
                    .iter()
                    .map(|p| {
                        p.eval(&self.regs)
                            .ok_or_else(|| "unresolved row shape".to_string())
                    })
                    .collect::<Result<_, _>>()?;
                let row_elems: i64 = row_shape_c.iter().product();
                let scalar_rows = row_shape_c.is_empty();
                let par_proven = matches!(mk.par, Some(ParLevel::Safe));
                // Checked mode re-proves a `Safe` verdict concretely before
                // dispatching: enumerate every iteration's write footprint
                // and confirm no cell is written twice. A failed re-proof
                // reports [`Diagnostic::ParOverlap`] and the map falls back
                // to serial execution.
                let precheck_ran = par_proven && self.checked();
                let prechecked = precheck_ran && self.par_precheck(dst.block, &dst.ixfn, width);
                // Pure mode writes rows directly (fresh dense memory never
                // aliases inputs); Memory mode honours the pass's verdicts:
                // `Safe` writes result memory directly, `Serial` means
                // direct writes with *unproven* disjointness.
                let direct = scalar_rows || mk.in_place || self.mode == Mode::Pure || par_proven;
                let out_view = self.view_mut(&dst);
                // Private per-worker row buffers for the non-in-place case:
                // the mapnest's implicit result copy (§V-A(e)). The copy-out
                // targets a worker-private row, so buffered maps parallelize
                // freely; `Serial` maps never dispatch in parallel.
                let workers = match self.mode {
                    Mode::Pure => self.threads,
                    Mode::Memory if matches!(mk.par, Some(ParLevel::Serial)) => 1,
                    Mode::Memory => self.threads,
                    // Under the sanitizer, only maps the pre-dispatch
                    // re-proof cleared may run parallel.
                    Mode::Checked => {
                        if prechecked {
                            self.threads
                        } else {
                            1
                        }
                    }
                };
                let temp_block = if direct {
                    None
                } else {
                    Some(
                        self.store
                            .alloc(mk.elem, (row_elems * workers as i64).max(0) as usize),
                    )
                };
                let temp_raw = temp_block.map(|b| self.store.raw(b));
                let t0 = Instant::now();
                let info = parallel_for_worker(workers, width, |i, w| {
                    let row = out_view.row(i);
                    if direct {
                        let ctx = KernelCtx {
                            i,
                            inputs: &inputs,
                            args: &argv,
                            out: row,
                        };
                        kernel(&ctx);
                    } else {
                        // Build the private row, then copy it out.
                        let mut priv_lmad = ConcreteLmad::row_major(&row_shape_c);
                        priv_lmad.offset = w as i64 * row_elems;
                        let priv_row =
                            ViewMut::new(temp_raw.unwrap(), ConcreteIxFn::from_lmad(priv_lmad));
                        let ctx = KernelCtx {
                            i,
                            inputs: &inputs,
                            args: &argv,
                            out: priv_row.clone(),
                        };
                        kernel(&ctx);
                        copy_view(&row, &priv_row.as_view());
                    }
                });
                self.stats.kernel_time += t0.elapsed();
                self.stats.kernel_launches += width.max(0) as u64;
                self.stats.pool_dispatches += info.dispatched as u64;
                if info.dispatched {
                    self.stats.par_chunks += info.chunks;
                    self.stats.par_chunks_stolen += info.chunks_stolen;
                    self.stats.par_workers_engaged += info.workers_engaged as u64;
                    self.stats.par_workers_offered += info.workers_offered as u64;
                    if par_proven && direct && self.mem_like() {
                        self.stats.maps_parallel_in_place += 1;
                    }
                }
                // The private-row scratch dies with the dispatch; recycle
                // it so the next non-in-place map pays no fresh alloc.
                if let Some(b) = temp_block {
                    self.store.release(b);
                }
                if !direct {
                    let bytes = (width * row_elems).max(0) as u64 * mk.elem.size_bytes() as u64;
                    self.stats.bytes_copied += bytes;
                    self.stats.num_copies += width.max(0) as u64;
                } else if mk.in_place && self.mem_like() && !scalar_rows {
                    let bytes = (width * row_elems).max(0) as u64 * mk.elem.size_bytes() as u64;
                    self.stats.bytes_elided += bytes;
                    self.stats.num_elided += width.max(0) as u64;
                }
                // Dynamic race detector: no two iterations of the map may
                // write one cell. The kernel writes each row through the
                // result's index function with the outer dim fixed, so
                // enumerating those footprints covers its stores. For
                // `par_safety`-approved maps the pre-dispatch re-proof
                // already enumerated exactly these footprints (and reported
                // any overlap as `ParOverlap`), so skip the post-hoc pass.
                if !precheck_ran {
                    self.race_check(dst.block, &dst.ixfn, width);
                }
                self.mark_write(dst.block, &dst.ixfn);
                self.regs[mk.dest.slot as usize] = Value::Array(dst);
            }
            Instr::MapLambda(ml) => {
                // Interpreted elementwise map over rank-1 inputs.
                let width = ml.width.eval(&self.regs).ok_or("unresolved map width")?;
                let dsts: Vec<ArrayRef> = ml
                    .dests
                    .iter()
                    .map(|d| self.fresh_dest(d))
                    .collect::<Result<_, _>>()?;
                let in_arrays: Vec<ArrayRef> = ml
                    .inputs
                    .iter()
                    .map(|s| self.regs[*s as usize].as_array().clone())
                    .collect();
                for a in &in_arrays {
                    self.check_read(a.block, &a.ixfn);
                }
                let in_views: Vec<View> = in_arrays.iter().map(|a| self.view(a)).collect();
                let out_views: Vec<ViewMut> = dsts.iter().map(|a| self.view_mut(a)).collect();
                let t0 = Instant::now();
                // Parameter slots are overwritten per element; body-local
                // slots are re-executed before any use, so the register
                // file needs no per-element reset.
                for i in 0..width {
                    for (p, (view, a)) in ml.params.iter().zip(in_views.iter().zip(&in_arrays)) {
                        let v = match a.elem {
                            ElemType::F32 => Value::F32(view.get_f32(&[i])),
                            ElemType::F64 => Value::F64(view.get_f64(&[i])),
                            ElemType::I64 => Value::I64(view.get_i64(&[i])),
                            ElemType::Bool => Value::Bool(view.get_i64(&[i]) != 0),
                        };
                        self.regs[*p as usize] = v;
                    }
                    self.exec_stream(&ml.body)?;
                    for ((r, out), dst) in ml.results.iter().zip(&out_views).zip(&dsts) {
                        let v = &self.regs[*r as usize];
                        match dst.elem {
                            ElemType::F32 => out.set_f32(&[i], v.as_f32()),
                            ElemType::F64 => out.set_f64(&[i], v.as_f64()),
                            ElemType::I64 => out.set_i64(&[i], v.as_i64()),
                            ElemType::Bool => out.set_i64(&[i], v.as_bool() as i64),
                        }
                    }
                }
                self.stats.kernel_time += t0.elapsed();
                self.stats.kernel_launches += width.max(0) as u64;
                // The body's instructions moved `cur_stm`; provenance of
                // the map's results is the map statement itself.
                self.cur_stm = ml.stm_var;
                for (d, dst) in ml.dests.iter().zip(dsts) {
                    self.race_check(dst.block, &dst.ixfn, width);
                    self.mark_write(dst.block, &dst.ixfn);
                    self.regs[d.slot as usize] = Value::Array(dst);
                }
            }
            Instr::Update(u) => {
                let dst_a = self.regs[u.dst as usize].as_array().clone();
                // Pure mode: the update result is a fresh copy of dst with
                // the slice overwritten (true value semantics).
                let result = if self.mode == Mode::Pure {
                    let fresh = self.fresh_dest(&u.dest)?;
                    let sv = self.view(&dst_a);
                    let dv = self.view_mut(&fresh);
                    copy_view(&dv, &sv);
                    fresh
                } else {
                    dst_a.clone()
                };
                if let LSlice::Scatter(idx_slot) = &u.slice {
                    // Runtime-indexed write: element `k` of the source
                    // lands at flat position `idx[k]` of the destination.
                    // Lanes run in ascending order serially, so duplicate
                    // indices are legal and the last write wins — the
                    // schedule `par_safety` pinned with
                    // `ParReject::RuntimeIndexedWrite`.
                    let idx_a = self.regs[*idx_slot as usize].as_array().clone();
                    if idx_a.elem != ElemType::I64 {
                        return Err("scatter index array must be i64".into());
                    }
                    let LUpdateSrc::Array(s) = &u.src else {
                        return Err("scatter requires an array source".into());
                    };
                    let src_a = self.regs[*s as usize].as_array().clone();
                    self.check_read(idx_a.block, &idx_a.ixfn);
                    self.check_read(src_a.block, &src_a.ixfn);
                    let iv = self.view(&idx_a);
                    let sv = self.view(&src_a);
                    let dview = self.view_mut(&result);
                    let n = iv.num_elems();
                    if sv.num_elems() != n {
                        return Err(format!(
                            "scatter source holds {} elements for {} indices",
                            sv.num_elems(),
                            n
                        ));
                    }
                    let extent = result.ixfn.num_elems();
                    let src_shape = sv.shape();
                    let dst_shape = dview.shape();
                    let t = Instant::now();
                    let mut lanes_written = 0u64;
                    for k in 0..n.max(0) {
                        let j = iv.get_i64_flat(k);
                        if j < 0 || j >= extent {
                            if self.checked() {
                                let d = Diagnostic::IndexOutOfBounds {
                                    stm: self.stm_name(),
                                    lane: k,
                                    index: j,
                                    extent,
                                };
                                self.diag(d);
                                continue;
                            }
                            return Err(format!(
                                "scatter index {j} out of bounds for {extent} elements (lane {k})"
                            ));
                        }
                        match result.elem {
                            ElemType::F32 => dview.set_f32_flat(j, sv.get_f32_flat(k)),
                            ElemType::F64 => dview.set_f64(
                                &unflat(&dst_shape, j),
                                sv.get_f64(&unflat(&src_shape, k)),
                            ),
                            ElemType::I64 | ElemType::Bool => {
                                dview.set_i64_flat(j, sv.get_i64_flat(k))
                            }
                        }
                        lanes_written += 1;
                        if self.store.shadow_enabled() {
                            let off = result.ixfn.index(&unflat(&dst_shape, j));
                            self.mark_cell(result.block, off);
                        }
                    }
                    self.stats.copy_time += t.elapsed();
                    self.stats.bytes_copied += lanes_written * result.elem.size_bytes() as u64;
                    self.stats.num_copies += 1;
                    self.regs[u.dest.slot as usize] = Value::Array(result);
                    return Ok(());
                }
                let slice_ixfn = match &u.slice {
                    LSlice::Tr { tr, vars } => {
                        let lookup = slot_lookup(vars, &self.regs);
                        apply_transform_concrete(&result.ixfn, tr, &lookup)
                    }
                    LSlice::Point(es) => {
                        let mut fixed = Vec::with_capacity(es.len());
                        for e in es {
                            let v = self.eval_lexp(e)?.as_i64();
                            fixed.push(TripletSlice::Fix(Poly::constant(v)));
                        }
                        apply_transform_concrete(&result.ixfn, &Transform::Slice(fixed), &|_| None)
                    }
                    LSlice::Scatter(_) => unreachable!("scatter handled above"),
                }
                .ok_or_else(|| "bad slice".to_string())?;
                // The language's dynamic legality check for LMAD-slice
                // updates (§III-B): the written positions must not
                // self-overlap.
                if u.lmad_slice {
                    if let Some(l) = slice_ixfn.as_single() {
                        if !lmad_slice_is_injective(l) {
                            return Err("LMAD-slice update writes overlapping positions".into());
                        }
                    }
                }
                match &u.src {
                    LUpdateSrc::Scalar(se) => {
                        let v = self.eval_lexp(se)?;
                        let dview = ViewMut::new(self.store.raw(result.block), slice_ixfn.clone());
                        let n = dview.num_elems();
                        for f in 0..n.max(0) {
                            match result.elem {
                                ElemType::F32 => dview.set_f32_flat(f, v.as_f32()),
                                ElemType::F64 => {
                                    let idx = unflat(&dview.shape(), f);
                                    dview.set_f64(&idx, v.as_f64());
                                }
                                ElemType::I64 | ElemType::Bool => dview.set_i64_flat(f, v.as_i64()),
                            }
                        }
                        self.mark_write(result.block, &slice_ixfn);
                    }
                    LUpdateSrc::Array(s) => {
                        let src_a = self.regs[*s as usize].as_array().clone();
                        // Read check either way: an elided update's source
                        // was constructed directly in the destination
                        // slice, so its cells must already be written there.
                        self.check_read(src_a.block, &src_a.ixfn);
                        if u.elided && self.mem_like() {
                            let bytes =
                                src_a.ixfn.num_elems() as u64 * src_a.elem.size_bytes() as u64;
                            self.stats.bytes_elided += bytes;
                            self.stats.num_elided += 1;
                        } else {
                            let sv = self.view(&src_a);
                            let dview =
                                ViewMut::new(self.store.raw(result.block), slice_ixfn.clone());
                            let t = Instant::now();
                            let bytes = copy_view(&dview, &sv);
                            self.stats.copy_time += t.elapsed();
                            self.stats.bytes_copied += bytes;
                            self.stats.num_copies += 1;
                            self.mark_write(result.block, &slice_ixfn);
                        }
                    }
                }
                self.regs[u.dest.slot as usize] = Value::Array(result);
            }
            Instr::Release { slot, site } => {
                // Return blocks that just saw their last use to the free
                // list. Checked mode records the release site: a later
                // read of the block names the statement whose plan entry
                // freed it.
                if let Value::Mem(id) = self.regs[*slot as usize] {
                    let site = if self.checked() { *site } else { None };
                    self.store.release_at(id, site);
                }
            }
            Instr::ReleaseCarried {
                incoming,
                outgoing,
                guards,
                color,
                site,
            } => {
                // Release a loop's dead carried ping-pong block into its
                // color's slab, so the next iteration's colored `alloc`
                // takes it back. Guarded concretely: when the body
                // yielded the incoming block itself (or it backs another
                // carried slot), it is still live and stays put.
                let incoming_id = match self.regs[*incoming as usize] {
                    Value::Mem(id) => id,
                    _ => return Err("release-carried on a non-mem slot".into()),
                };
                let outgoing_id = match self.regs[*outgoing as usize] {
                    Value::Mem(id) => id,
                    _ => return Err("release-carried outgoing is not a mem slot".into()),
                };
                let aliased = incoming_id == outgoing_id
                    || guards.iter().any(
                        |g| matches!(self.regs[*g as usize], Value::Mem(id) if id == incoming_id),
                    );
                if !aliased {
                    let site = if self.checked() { *site } else { None };
                    self.store.release_colored(incoming_id, *color, site);
                }
            }
            Instr::CopySlots { pairs } => {
                // Two-phase: loop merge parameters may permute, so all
                // sources are read before any destination is written.
                let vals: Vec<Value> = pairs
                    .iter()
                    .map(|(src, _)| self.regs[*src as usize].clone())
                    .collect();
                for ((_, dst), v) in pairs.iter().zip(vals) {
                    self.regs[*dst as usize] = v;
                }
            }
            Instr::VerifyChecks { checks } => {
                if self.checked() {
                    self.verify_checks(checks);
                }
            }
            Instr::Jump { .. } | Instr::JumpIfFalse { .. } | Instr::JumpIfGe { .. } => {
                unreachable!("jumps are handled by exec_stream")
            }
        }
        Ok(())
    }

    /// Cross-check lowered short-circuit footprints with the current
    /// block's symbols in scope: evaluate the recorded symbolic footprints
    /// and prove each (write, later-use) pair disjoint by enumeration.
    /// The instruction sits at the end of the defining block, so circuits
    /// inside loop bodies are re-verified per iteration against that
    /// iteration's concrete offsets. Checked mode only.
    fn verify_checks(&mut self, checks: &[crate::plan::LoweredCheck]) {
        for c in checks {
            let (writes, uses): (Vec<ConcreteLmad>, Vec<ConcreteLmad>) = {
                let lookup = slot_lookup(&c.vars, &self.regs);
                (
                    c.writes.iter().filter_map(|l| l.eval(&lookup)).collect(),
                    c.uses.iter().filter_map(|l| l.eval(&lookup)).collect(),
                )
            };
            // The check only counts as verified when every recorded
            // footprint evaluated and every pair enumerated cleanly.
            let mut confirmed = writes.len() == c.writes.len() && uses.len() == c.uses.len();
            for w in &writes {
                for u in &uses {
                    match footprint_check(w, u, FOOTPRINT_CAP) {
                        FootprintCheck::Disjoint => {}
                        FootprintCheck::TooLarge => confirmed = false,
                        FootprintCheck::Overlap(off) => {
                            confirmed = false;
                            let d = Diagnostic::CircuitOverlap {
                                root: c.root.clone(),
                                stm: c.stm.clone(),
                                offset: off,
                                write_ixfn: format!("{w:?}"),
                                use_ixfn: format!("{u:?}"),
                            };
                            self.diag(d);
                        }
                    }
                }
            }
            if confirmed {
                self.stats.circuits_verified += 1;
            }
        }
    }

    /// Re-prove every footprint-justified merge: each recorded
    /// (victim-tenant, resident) pair is evaluated to concrete LMADs
    /// against the final register file (merge footprints reference
    /// top-level scalars, which stay bound for the whole run) and
    /// enumerated for disjointness — the merge-pass analogue of
    /// [`verify_checks`](Machine::verify_checks).
    fn verify_merges(&mut self, checks: &[crate::plan::LoweredMergeCheck]) {
        for c in checks {
            let pairs: Vec<(Option<ConcreteLmad>, Option<ConcreteLmad>)> = {
                let lookup = slot_lookup(&c.vars, &self.regs);
                c.pairs
                    .iter()
                    .map(|(a, b)| (a.eval(&lookup), b.eval(&lookup)))
                    .collect()
            };
            let mut confirmed = true;
            for pair in &pairs {
                let (Some(v), Some(r)) = pair else {
                    confirmed = false;
                    continue;
                };
                match footprint_check(v, r, FOOTPRINT_CAP) {
                    FootprintCheck::Disjoint => {}
                    FootprintCheck::TooLarge => confirmed = false,
                    FootprintCheck::Overlap(off) => {
                        confirmed = false;
                        let d = Diagnostic::MergeOverlap {
                            host: c.host.clone(),
                            victim: c.victim.clone(),
                            offset: off,
                            victim_ixfn: format!("{v:?}"),
                            resident_ixfn: format!("{r:?}"),
                        };
                        self.diag(d);
                    }
                }
            }
            if confirmed {
                self.stats.merges_verified += 1;
            }
        }
    }

    fn view(&mut self, a: &ArrayRef) -> View {
        View::with_class(self.store.raw(a.block), a.ixfn.clone(), a.class)
    }

    fn view_mut(&mut self, a: &ArrayRef) -> ViewMut {
        ViewMut::with_class(self.store.raw(a.block), a.ixfn.clone(), a.class)
    }

    /// Resolve the destination array for a fresh creation: in `Memory`
    /// mode this honours the lowered binding (block slot + index function,
    /// with the access class precomputed when static); in `Pure` mode a
    /// fresh dense block is allocated.
    fn fresh_dest(&mut self, d: &Dest) -> Result<ArrayRef, String> {
        if self.mem_like() {
            let md = d
                .mem
                .as_ref()
                .ok_or_else(|| format!("{} has no memory binding (run the pipeline)", d.var))?;
            let block_slot = md
                .block
                .ok_or_else(|| format!("memory block {} unbound", md.block_var))?;
            let block = match &self.regs[block_slot as usize] {
                Value::Mem(b) => *b,
                _ => return Err(format!("memory block {} unbound", md.block_var)),
            };
            let (ixfn, class) = md
                .ixfn
                .eval_access(&self.regs)
                .ok_or_else(|| format!("cannot evaluate index function of {}", d.var))?;
            Ok(ArrayRef::with_class(block, d.elem, ixfn, class))
        } else {
            let shape: Vec<i64> = d
                .shape
                .iter()
                .map(|p| p.eval(&self.regs).ok_or("unresolved shape"))
                .collect::<Result<_, _>>()?;
            let n: i64 = shape.iter().product();
            let block = self.store.alloc(d.elem, n.max(0) as usize);
            Ok(ArrayRef::new(
                block,
                d.elem,
                ConcreteIxFn::row_major(&shape),
            ))
        }
    }

    fn eval_lexp(&mut self, e: &LExp) -> Result<Value, String> {
        Ok(match e {
            LExp::Const(v) => v.clone(),
            LExp::Slot(s) => self.regs[*s as usize].clone(),
            LExp::Size(p) => Value::I64(p.eval(&self.regs).ok_or("unresolved size expression")?),
            LExp::Bin(op, a, b) => {
                let x = self.eval_lexp(a)?;
                let y = self.eval_lexp(b)?;
                eval_bin(*op, &x, &y)?
            }
            LExp::Un(op, a) => {
                let x = self.eval_lexp(a)?;
                eval_un(*op, &x)?
            }
            LExp::Index { arr, idx } => {
                let a = self.regs[*arr as usize].as_array().clone();
                let idx: Vec<i64> = idx
                    .iter()
                    .map(|i| Ok(self.eval_lexp(i)?.as_i64()))
                    .collect::<Result<_, String>>()?;
                if self.store.shadow_enabled() {
                    let off = a.ixfn.index(&idx);
                    self.check_cell(a.block, off, &a.ixfn);
                }
                let view = self.view(&a);
                match a.elem {
                    ElemType::F32 => Value::F32(view.get_f32(&idx)),
                    ElemType::F64 => Value::F64(view.get_f64(&idx)),
                    ElemType::I64 => Value::I64(view.get_i64(&idx)),
                    ElemType::Bool => Value::Bool(view.get_i64(&idx) != 0),
                }
            }
            LExp::Select(c, t, f) => {
                if self.eval_lexp(c)?.as_bool() {
                    self.eval_lexp(t)?
                } else {
                    self.eval_lexp(f)?
                }
            }
        })
    }
}

fn coerce(v: Value, elem: Option<ElemType>) -> Value {
    match elem {
        Some(ElemType::F32) => Value::F32(v.as_f32()),
        Some(ElemType::F64) => Value::F64(v.as_f64()),
        Some(ElemType::I64) => Value::I64(v.as_i64()),
        Some(ElemType::Bool) => Value::Bool(v.as_bool()),
        None => v,
    }
}

fn eval_bin(op: BinOp, x: &Value, y: &Value) -> Result<Value, String> {
    use BinOp::*;
    Ok(match (x, y) {
        (Value::F32(_), _) | (_, Value::F32(_)) => {
            let (a, b) = (x.as_f32(), y.as_f32());
            match op {
                Add => Value::F32(a + b),
                Sub => Value::F32(a - b),
                Mul => Value::F32(a * b),
                Div => Value::F32(a / b),
                Rem => Value::F32(a % b),
                Min => Value::F32(a.min(b)),
                Max => Value::F32(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And | Or => return Err("boolean op on floats".into()),
            }
        }
        (Value::F64(_), _) | (_, Value::F64(_)) => {
            let (a, b) = (x.as_f64(), y.as_f64());
            match op {
                Add => Value::F64(a + b),
                Sub => Value::F64(a - b),
                Mul => Value::F64(a * b),
                Div => Value::F64(a / b),
                Rem => Value::F64(a % b),
                Min => Value::F64(a.min(b)),
                Max => Value::F64(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And | Or => return Err("boolean op on floats".into()),
            }
        }
        (Value::Bool(a), Value::Bool(b)) => match op {
            And => Value::Bool(*a && *b),
            Or => Value::Bool(*a || *b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            _ => return Err("arithmetic on booleans".into()),
        },
        _ => {
            let (a, b) = (x.as_i64(), y.as_i64());
            match op {
                Add => Value::I64(a + b),
                Sub => Value::I64(a - b),
                Mul => Value::I64(a * b),
                Div => Value::I64(a.div_euclid(b)),
                Rem => Value::I64(a.rem_euclid(b)),
                Min => Value::I64(a.min(b)),
                Max => Value::I64(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And => Value::Bool(a != 0 && b != 0),
                Or => Value::Bool(a != 0 || b != 0),
            }
        }
    })
}

fn eval_un(op: UnOp, x: &Value) -> Result<Value, String> {
    use UnOp::*;
    Ok(match op {
        Neg => match x {
            Value::F32(v) => Value::F32(-v),
            Value::F64(v) => Value::F64(-v),
            Value::I64(v) => Value::I64(-v),
            _ => return Err("neg on non-number".into()),
        },
        Not => Value::Bool(!x.as_bool()),
        Sqrt => match x {
            Value::F64(v) => Value::F64(v.sqrt()),
            v => Value::F32(v.as_f32().sqrt()),
        },
        Exp => match x {
            Value::F64(v) => Value::F64(v.exp()),
            v => Value::F32(v.as_f32().exp()),
        },
        Log => match x {
            Value::F64(v) => Value::F64(v.ln()),
            v => Value::F32(v.as_f32().ln()),
        },
        Abs => match x {
            Value::F32(v) => Value::F32(v.abs()),
            Value::F64(v) => Value::F64(v.abs()),
            Value::I64(v) => Value::I64(v.abs()),
            _ => return Err("abs on non-number".into()),
        },
        ToF32 => Value::F32(x.as_f32()),
        ToF64 => Value::F64(x.as_f64()),
        ToI64 => Value::I64(x.as_i64()),
    })
}

/// Sub-view of rows `[row, row+rows)` along the outer dimension.
fn slice_rows(v: &ViewMut, row: i64, rows: i64) -> ViewMut {
    let mut ixfn = v.ixfn().clone();
    let logical = ixfn.lmads.last_mut().unwrap();
    let (card, stride) = logical.dims[0];
    debug_assert!(row + rows <= card);
    logical.offset += row * stride;
    logical.dims[0] = (rows, stride);
    ViewMut::new(v.raw(), ixfn)
}

/// Unrank a flat position into an index vector.
fn unflat(shape: &[i64], flat: i64) -> Vec<i64> {
    let mut idx = vec![0i64; shape.len()];
    arraymem_lmad::concrete::unrank(flat, shape, &mut idx);
    idx
}

/// Evaluate a (symbolic) layout transform against a concrete index
/// function by constantizing its polynomials and reusing the symbolic
/// transform algebra.
pub fn apply_transform_concrete(
    ixfn: &ConcreteIxFn,
    tr: &Transform,
    lookup: &impl Fn(arraymem_symbolic::Sym) -> Option<i64>,
) -> Option<ConcreteIxFn> {
    let sym_ixfn = concrete_to_symbolic(ixfn);
    let tr_c = constantize_transform(tr, lookup)?;
    let out = sym_ixfn.transform(&tr_c)?;
    out.eval(&|_| None)
}

fn concrete_to_symbolic(ixfn: &ConcreteIxFn) -> IndexFn {
    IndexFn {
        lmads: ixfn
            .lmads
            .iter()
            .map(|l| {
                Lmad::new(
                    Poly::constant(l.offset),
                    l.dims
                        .iter()
                        .map(|&(c, s)| {
                            arraymem_lmad::Dim::new(Poly::constant(c), Poly::constant(s))
                        })
                        .collect(),
                )
            })
            .collect(),
    }
}

fn constantize_transform(
    tr: &Transform,
    lookup: &impl Fn(arraymem_symbolic::Sym) -> Option<i64>,
) -> Option<Transform> {
    let cp = |p: &Poly| -> Option<Poly> { Some(Poly::constant(p.eval(lookup)?)) };
    Some(match tr {
        Transform::Permute(p) => Transform::Permute(p.clone()),
        Transform::Reverse(d) => Transform::Reverse(*d),
        Transform::Reshape(s) => Transform::Reshape(s.iter().map(&cp).collect::<Option<_>>()?),
        Transform::Slice(ts) => Transform::Slice(
            ts.iter()
                .map(|t| {
                    Some(match t {
                        TripletSlice::Range { start, len, step } => TripletSlice::Range {
                            start: cp(start)?,
                            len: cp(len)?,
                            step: cp(step)?,
                        },
                        TripletSlice::Fix(i) => TripletSlice::Fix(cp(i)?),
                    })
                })
                .collect::<Option<_>>()?,
        ),
        Transform::LmadSlice(l) => Transform::LmadSlice(Lmad::new(
            cp(&l.offset)?,
            l.dims
                .iter()
                .map(|d| Some(arraymem_lmad::Dim::new(cp(&d.card)?, cp(&d.stride)?)))
                .collect::<Option<_>>()?,
        )),
    })
}
