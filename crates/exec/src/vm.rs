//! The program executor.
//!
//! Three modes:
//!
//! - [`Mode::Memory`]: obeys the compiler's memory annotations — `alloc`
//!   statements create blocks, fresh arrays are constructed through their
//!   (possibly rebased) index functions, elided updates/concats are
//!   no-ops, and non-in-place mapnests pay the per-instance private-row
//!   copy (the implicit copy of §V-A(e)).
//! - [`Mode::Pure`]: direct functional value semantics — every operation
//!   materializes a fresh dense array and annotations are ignored. This is
//!   the semantic ground truth: the paper's invariant that deleting memory
//!   annotations does not change program meaning is checked by comparing
//!   the two modes.
//! - [`Mode::Checked`]: `Memory` semantics plus a shadow-memory sanitizer
//!   that dynamically validates what the optimizer's static reasoning
//!   promised: no read of a never-written cell in a recycled block (the
//!   zero-fill elision's obligation), no read of a released block (the
//!   last-use plan's obligation), no two map iterations writing one cell
//!   (the in-place mapnest's obligation), and — via
//!   [`Session::run_with_checks`] — concrete disjointness of every
//!   footprint pair a short-circuit's symbolic non-overlap test approved.
//!   Maps run serially for deterministic diagnostics; findings land in
//!   [`Stats::diagnostics`] rather than aborting, so one run reports all.

use crate::kernel::{KernelCtx, KernelRegistry};
use crate::pool::parallel_for_worker;
use crate::stats::{Diagnostic, Stats};
use crate::store::{CellState, MemStore};
use crate::value::{ArrayRef, InputValue, OutputValue, Value};
use crate::view::{copy_view, fix_outer, View, ViewMut};
use arraymem_core::{CircuitCheck, ReleasePlan};
use arraymem_ir::validate::lmad_slice_is_injective;
use arraymem_ir::{
    BinOp, Block, Constant, ElemType, Exp, MapBody, MapExp, Program, ScalarExp, SliceSpec, Stm,
    Type, UnOp, UpdateSrc, Var,
};
use arraymem_lmad::{footprint_check, ConcreteIxFn, FootprintCheck, IndexFn, Lmad, Transform,
    TripletSlice};
use arraymem_symbolic::Poly;
use std::collections::HashMap;
use std::time::Instant;

/// Execution mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Obey memory annotations (requires a compiled program).
    Memory,
    /// Direct value semantics (works on any validated program).
    Pure,
    /// `Memory` semantics under the shadow-memory sanitizer (see the
    /// module docs). Maps run serially; expect an order-of-magnitude
    /// slowdown — this mode exists for tests and fuzzing, not benchmarks.
    Checked,
}

/// Findings beyond this many per run are counted, not stored.
const MAX_DIAGNOSTICS: usize = 64;

/// Short-circuit footprints larger than this many points are skipped by
/// the runtime disjointness cross-check (enumeration would dominate).
const FOOTPRINT_CAP: i64 = 1 << 20;

struct Machine<'a> {
    store: &'a mut MemStore,
    kernels: &'a KernelRegistry,
    stats: Stats,
    threads: usize,
    mode: Mode,
    /// Where locally-allocated blocks die (computed per run from the
    /// compiler's alias + last-use analyses); the store recycles them.
    plan: &'a ReleasePlan,
    /// Checked mode: recorded short-circuit footprints, cross-checked at
    /// the end of each execution of the block containing the circuit
    /// statement (so loop-scoped symbols evaluate per iteration).
    checks: &'a [CircuitCheck],
    /// Checked mode: first pattern variable of the executing statement —
    /// write provenance for shadow marks, blame for diagnostics.
    cur_stm: Option<Var>,
}

type Env = HashMap<Var, Value>;

/// A reusable execution context owning the memory store. Running several
/// programs (or the same program repeatedly, as the benchmark harness
/// does) through one session recycles every block of run *n* into the
/// allocations of run *n+1* via the store's free lists.
#[derive(Default)]
pub struct Session {
    store: MemStore,
}

impl Session {
    pub fn new() -> Session {
        Session::default()
    }

    /// Execute a program. `inputs` must match the parameter list. Returns
    /// the program results plus execution statistics (input loading and
    /// result extraction excluded).
    pub fn run(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        self.run_with_checks(prog, inputs, kernels, mode, threads, &[])
    }

    /// [`run`](Session::run), additionally cross-checking each recorded
    /// short-circuit decision at runtime (checked mode only): the
    /// candidate's write footprints and the destination's recorded later
    /// uses are evaluated to concrete LMADs and every pair is proved
    /// disjoint by enumeration, or reported as a
    /// [`Diagnostic::CircuitOverlap`]. Pass the compile report's
    /// [`CircuitCheck`]s (`Report::checks`).
    pub fn run_with_checks(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        let plan = ReleasePlan::compute(prog);
        self.run_with_plan(prog, inputs, kernels, mode, threads, checks, &plan)
    }

    /// [`run_with_checks`](Session::run_with_checks) with a caller-supplied
    /// release plan. Tests use this to execute under a *deliberately wrong*
    /// plan ([`ReleasePlan::compute_skewed_early`]) and assert the checked
    /// mode's use-after-release detector fires.
    pub fn run_with_plan(
        &mut self,
        prog: &Program,
        inputs: &[InputValue],
        kernels: &KernelRegistry,
        mode: Mode,
        threads: usize,
        checks: &[CircuitCheck],
        plan: &ReleasePlan,
    ) -> Result<(Vec<OutputValue>, Stats), String> {
        if mode == Mode::Checked {
            self.store.enable_shadow();
        } else {
            self.store.disable_shadow();
        }
        let mut m = Machine {
            store: &mut self.store,
            kernels,
            stats: Stats::default(),
            threads: threads.max(1),
            mode,
            plan,
            checks,
            cur_stm: None,
        };
        let mut env: Env = HashMap::new();
        if inputs.len() != prog.params.len() {
            return Err(format!(
                "expected {} inputs, got {}",
                prog.params.len(),
                inputs.len()
            ));
        }
        for ((v, ty), input) in prog.params.iter().zip(inputs) {
            load_param(&mut m, &mut env, *v, ty, input)?;
        }
        // Only the body execution is measured.
        m.store.bytes_allocated = 0;
        m.store.num_allocs = 0;
        m.store.blocks_reused = 0;
        m.store.bytes_zeroing_elided = 0;
        let t0 = Instant::now();
        m.exec_block(&prog.body, &mut env)?;
        m.stats.total_time = t0.elapsed();
        m.stats.bytes_allocated = m.store.bytes_allocated;
        m.stats.num_allocs = m.store.num_allocs;
        m.stats.blocks_reused = m.store.blocks_reused;
        m.stats.bytes_zeroing_elided = m.store.bytes_zeroing_elided;
        let mut out = Vec::with_capacity(prog.body.result.len());
        for v in &prog.body.result {
            m.cur_stm = Some(*v);
            out.push(extract(&mut m, env.get(v).ok_or("missing result")?));
        }
        let stats = m.stats;
        // Results are extracted (deep-copied) above; everything the run
        // allocated can feed the next run's allocations.
        self.store.release_all_live();
        Ok((out, stats))
    }
}

/// Execute a program in a one-shot [`Session`].
pub fn run_program(
    prog: &Program,
    inputs: &[InputValue],
    kernels: &KernelRegistry,
    mode: Mode,
    threads: usize,
) -> Result<(Vec<OutputValue>, Stats), String> {
    Session::new().run(prog, inputs, kernels, mode, threads)
}

fn load_param(
    m: &mut Machine,
    env: &mut Env,
    v: Var,
    ty: &Type,
    input: &InputValue,
) -> Result<(), String> {
    match (ty, input) {
        (Type::Scalar(ElemType::I64), InputValue::I64(x)) => {
            env.insert(v, Value::I64(*x));
        }
        (Type::Scalar(ElemType::F32), InputValue::F32(x)) => {
            env.insert(v, Value::F32(*x));
        }
        (Type::Scalar(ElemType::F64), InputValue::F64(x)) => {
            env.insert(v, Value::F64(*x));
        }
        (Type::Scalar(ElemType::Bool), InputValue::Bool(x)) => {
            env.insert(v, Value::Bool(*x));
        }
        (Type::Array { elem, shape }, arr) => {
            let shape_c: Vec<i64> = {
                let lookup = lookup_fn(env);
                shape
                    .iter()
                    .map(|p| p.eval(&lookup).ok_or("unresolved param shape"))
                    .collect::<Result<_, _>>()?
            };
            let n: i64 = shape_c.iter().product();
            let block = match (elem, arr) {
                (ElemType::F32, InputValue::ArrayF32(d)) => {
                    assert_eq!(d.len() as i64, n, "input length mismatch for {v}");
                    m.store.alloc_f32(d.clone())
                }
                (ElemType::F64, InputValue::ArrayF64(d)) => {
                    assert_eq!(d.len() as i64, n);
                    m.store.alloc_f64(d.clone())
                }
                (ElemType::I64, InputValue::ArrayI64(d)) => {
                    assert_eq!(d.len() as i64, n);
                    m.store.alloc_i64(d.clone())
                }
                _ => return Err(format!("input type mismatch for {v}")),
            };
            env.insert(
                v,
                Value::Array(ArrayRef {
                    block,
                    elem: *elem,
                    ixfn: ConcreteIxFn::row_major(&shape_c),
                }),
            );
            // The parameter's memory block variable.
            env.insert(param_block_sym(v), Value::Mem(block));
        }
        _ => return Err(format!("input mismatch for {v}")),
    }
    Ok(())
}

fn param_block_sym(v: Var) -> Var {
    arraymem_symbolic::sym(&format!("{v}_mem"))
}

fn lookup_fn(env: &Env) -> impl Fn(arraymem_symbolic::Sym) -> Option<i64> + '_ {
    |s| match env.get(&s) {
        Some(Value::I64(x)) => Some(*x),
        Some(Value::Bool(b)) => Some(*b as i64),
        _ => None,
    }
}

fn extract(m: &mut Machine, v: &Value) -> OutputValue {
    match v {
        Value::I64(x) => OutputValue::I64(*x),
        Value::F32(x) => OutputValue::F32(*x),
        Value::F64(x) => OutputValue::F64(*x),
        Value::Bool(x) => OutputValue::Bool(*x),
        Value::Mem(_) => OutputValue::I64(0),
        Value::Array(a) => {
            // Result extraction is a read like any other: never-written or
            // already-released result cells are exactly what escapes to
            // the caller.
            m.check_read(a.block, &a.ixfn);
            let view = View::new(m.store.raw(a.block), a.ixfn.clone());
            let n = view.num_elems();
            match a.elem {
                ElemType::F32 => {
                    OutputValue::ArrayF32((0..n).map(|f| view.get_f32_flat(f)).collect())
                }
                ElemType::F64 => {
                    OutputValue::ArrayF64((0..n).map(|f| view.get_f64_flat(f)).collect())
                }
                ElemType::I64 | ElemType::Bool => {
                    OutputValue::ArrayI64((0..n).map(|f| view.get_i64_flat(f)).collect())
                }
            }
        }
    }
}

impl Machine<'_> {
    /// `Memory` semantics? (`Checked` is `Memory` plus the sanitizer.)
    fn mem_like(&self) -> bool {
        matches!(self.mode, Mode::Memory | Mode::Checked)
    }

    fn checked(&self) -> bool {
        self.mode == Mode::Checked
    }

    /// Record a sanitizer finding (capped; the overflow is counted).
    fn diag(&mut self, d: Diagnostic) {
        if self.stats.diagnostics.len() < MAX_DIAGNOSTICS {
            self.stats.diagnostics.push(d);
        } else {
            self.stats.diagnostics_suppressed += 1;
        }
    }

    /// Display name of the executing statement (diagnostic blame).
    fn stm_name(&self) -> String {
        match self.cur_stm {
            Some(v) => format!("{v}"),
            None => "<unknown>".to_string(),
        }
    }

    /// Shadow-mark every cell of `ixfn`'s footprint as written by the
    /// executing statement. No-op outside checked mode.
    fn mark_write(&mut self, block: usize, ixfn: &ConcreteIxFn) {
        if !self.store.shadow_enabled() {
            return;
        }
        let Some(writer) = self.cur_stm else { return };
        let len = self.store.len(block);
        let offs = ixfn.all_offsets();
        self.stats.cells_checked += offs.len() as u64;
        for off in offs {
            if off >= 0 && (off as usize) < len {
                self.store.shadow_mark(block, off as usize, writer);
            }
        }
    }

    /// Check one cell's shadow state ahead of a read; emits at most one
    /// diagnostic. Returns `false` if the cell was unreadable.
    fn check_cell(&mut self, block: usize, off: i64, ixfn: &ConcreteIxFn) -> bool {
        self.stats.cells_checked += 1;
        if off < 0 || off as usize >= self.store.len(block) {
            return true; // the view's own bounds assert handles it
        }
        match self.store.shadow_cell(block, off as usize) {
            Some(CellState::Stale) => {
                let d = Diagnostic::UninitRead {
                    stm: self.stm_name(),
                    block,
                    offset: off,
                    ixfn: format!("{ixfn:?}"),
                };
                self.diag(d);
                false
            }
            Some(CellState::Released) => {
                let released_after = match self.store.shadow_released_by(block) {
                    Some(s) => format!("{s}"),
                    None => "<unrecorded site>".to_string(),
                };
                let d = Diagnostic::UseAfterRelease {
                    stm: self.stm_name(),
                    block,
                    offset: off,
                    ixfn: format!("{ixfn:?}"),
                    released_after,
                };
                self.diag(d);
                false
            }
            _ => true,
        }
    }

    /// Check every cell of a read footprint; stops at the first finding
    /// (one diagnostic per read site keeps reports legible). No-op outside
    /// checked mode.
    fn check_read(&mut self, block: usize, ixfn: &ConcreteIxFn) {
        if !self.store.shadow_enabled() {
            return;
        }
        for off in ixfn.all_offsets() {
            if !self.check_cell(block, off, ixfn) {
                return;
            }
        }
    }

    /// Dynamic race detector for one map statement: enumerate each
    /// iteration's write footprint (the result index function with the
    /// outer dimension fixed) and report the first cell two different
    /// iterations both write. No-op outside checked mode.
    fn race_check(&mut self, block: usize, ixfn: &ConcreteIxFn, width: i64) {
        if !self.store.shadow_enabled() || ixfn.rank() == 0 {
            return;
        }
        let mut owner: HashMap<i64, i64> = HashMap::new();
        for i in 0..width.max(0) {
            let row = fix_outer(ixfn, i);
            for off in row.all_offsets() {
                self.stats.cells_checked += 1;
                match owner.insert(off, i) {
                    Some(prev) if prev != i => {
                        let d = Diagnostic::MapRace {
                            stm: self.stm_name(),
                            block,
                            offset: off,
                            iter_a: prev,
                            iter_b: i,
                            ixfn: format!("{ixfn:?}"),
                        };
                        self.diag(d);
                        return;
                    }
                    _ => {}
                }
            }
        }
    }

    /// Cross-check the short-circuits whose circuit statement lives in
    /// `block`, with that block's symbols in scope: evaluate the recorded
    /// symbolic footprints and prove each (write, later-use) pair disjoint
    /// by enumeration. Called at the end of every execution of the block,
    /// so circuits inside loop bodies are re-verified per iteration
    /// against that iteration's concrete offsets. Checked mode only.
    fn verify_block_checks(&mut self, block: &Block, env: &Env) {
        let checks = self.checks;
        let names: Vec<String> = block
            .stms
            .iter()
            .filter_map(|s| s.pat.first())
            .map(|p| p.var.to_string())
            .collect();
        for c in checks {
            if !names.iter().any(|n| *n == c.stm) {
                continue;
            }
            let (writes, uses): (Vec<_>, Vec<_>) = {
                let lookup = lookup_fn(env);
                (
                    c.writes.iter().filter_map(|l| l.eval(&lookup)).collect(),
                    c.uses.iter().filter_map(|l| l.eval(&lookup)).collect(),
                )
            };
            // The check only counts as verified when every recorded
            // footprint evaluated and every pair enumerated cleanly.
            let mut confirmed =
                writes.len() == c.writes.len() && uses.len() == c.uses.len();
            for w in &writes {
                for u in &uses {
                    match footprint_check(w, u, FOOTPRINT_CAP) {
                        FootprintCheck::Disjoint => {}
                        FootprintCheck::TooLarge => confirmed = false,
                        FootprintCheck::Overlap(off) => {
                            confirmed = false;
                            let d = Diagnostic::CircuitOverlap {
                                root: c.root.clone(),
                                stm: c.stm.clone(),
                                offset: off,
                                write_ixfn: format!("{w:?}"),
                                use_ixfn: format!("{u:?}"),
                            };
                            self.diag(d);
                        }
                    }
                }
            }
            if confirmed {
                self.stats.circuits_verified += 1;
            }
        }
    }

    fn exec_block(&mut self, block: &Block, env: &mut Env) -> Result<(), String> {
        let plan = self.plan;
        for (k, stm) in block.stms.iter().enumerate() {
            self.exec_stm(stm, env)?;
            // Return blocks that just saw their last use to the free list.
            // Checked mode records the release site: a later read of the
            // block names the statement whose plan entry freed it.
            let site = if self.checked() {
                stm.pat.first().map(|p| p.var)
            } else {
                None
            };
            for mv in plan.after(block, k) {
                if let Some(Value::Mem(id)) = env.get(mv) {
                    self.store.release_at(*id, site);
                }
            }
        }
        if self.checked() && !self.checks.is_empty() {
            self.verify_block_checks(block, env);
        }
        Ok(())
    }

    fn view(&mut self, a: &ArrayRef) -> View {
        View::new(self.store.raw(a.block), a.ixfn.clone())
    }

    fn view_mut(&mut self, a: &ArrayRef) -> ViewMut {
        ViewMut::new(self.store.raw(a.block), a.ixfn.clone())
    }

    /// Resolve the destination array for a fresh creation: in `Memory`
    /// mode this honours the pattern's binding (block variable + index
    /// function); in `Pure` mode a fresh dense block is allocated.
    fn fresh_dest(
        &mut self,
        stm: &Stm,
        pat_idx: usize,
        env: &Env,
    ) -> Result<ArrayRef, String> {
        let pe = &stm.pat[pat_idx];
        let elem = pe.ty.elem().ok_or("array expected")?;
        let lookup = lookup_fn(env);
        let shape: Vec<i64> = pe
            .ty
            .shape()
            .iter()
            .map(|p| p.eval(&lookup).ok_or("unresolved shape"))
            .collect::<Result<_, _>>()?;
        if self.mem_like() {
            let mb = pe
                .mem
                .as_ref()
                .ok_or_else(|| format!("{} has no memory binding (run the pipeline)", pe.var))?;
            let block = env
                .get(&mb.block)
                .ok_or_else(|| format!("memory block {} unbound", mb.block))?
                .as_mem();
            let ixfn = mb
                .ixfn
                .eval(&lookup)
                .ok_or_else(|| format!("cannot evaluate index function of {}", pe.var))?;
            Ok(ArrayRef { block, elem, ixfn })
        } else {
            let n: i64 = shape.iter().product();
            let block = self.store.alloc(elem, n.max(0) as usize);
            Ok(ArrayRef {
                block,
                elem,
                ixfn: ConcreteIxFn::row_major(&shape),
            })
        }
    }

    fn exec_stm(&mut self, stm: &Stm, env: &mut Env) -> Result<(), String> {
        self.cur_stm = stm.pat.first().map(|p| p.var);
        match &stm.exp {
            Exp::Scalar(se) => {
                let v = self.eval_scalar(se, env)?;
                let v = coerce(v, &stm.pat[0].ty);
                env.insert(stm.pat[0].var, v);
            }
            Exp::Alloc { elem, size } => {
                let n = {
                    let lookup = lookup_fn(env);
                    size.eval(&lookup).ok_or("unresolved alloc size")?
                };
                let block = self.store.alloc(*elem, n.max(0) as usize);
                env.insert(stm.pat[0].var, Value::Mem(block));
            }
            Exp::Iota(_) => {
                let dst = self.fresh_dest(stm, 0, env)?;
                let view = self.view_mut(&dst);
                let n = view.num_elems();
                for i in 0..n {
                    view.set_i64_flat(i, i);
                }
                self.mark_write(dst.block, &dst.ixfn);
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            Exp::Scratch { .. } => {
                let dst = self.fresh_dest(stm, 0, env)?;
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            Exp::Replicate { value, .. } => {
                let v = self.eval_scalar(value, env)?;
                let dst = self.fresh_dest(stm, 0, env)?;
                let view = self.view_mut(&dst);
                let n = view.num_elems();
                match dst.elem {
                    ElemType::F32 => {
                        let x = v.as_f32();
                        if let Some(s) = view.as_slice_f32_mut() {
                            s.fill(x);
                        } else {
                            for i in 0..n {
                                view.set_f32_flat(i, x);
                            }
                        }
                    }
                    ElemType::F64 => {
                        let x = v.as_f64();
                        for i in 0..n {
                            view.set_f64(&unflat(&view.shape(), i), x);
                        }
                    }
                    ElemType::I64 | ElemType::Bool => {
                        let x = v.as_i64();
                        if let Some(s) = view.as_slice_i64_mut() {
                            s.fill(x);
                        } else {
                            for i in 0..n {
                                view.set_i64_flat(i, x);
                            }
                        }
                    }
                }
                self.mark_write(dst.block, &dst.ixfn);
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            Exp::Copy(src) => {
                let src_a = env.get(src).ok_or("copy of unbound array")?.as_array().clone();
                self.check_read(src_a.block, &src_a.ixfn);
                let dst = self.fresh_dest(stm, 0, env)?;
                let sv = self.view(&src_a);
                let dv = self.view_mut(&dst);
                let t = Instant::now();
                let bytes = copy_view(&dv, &sv);
                self.stats.copy_time += t.elapsed();
                self.stats.bytes_copied += bytes;
                self.stats.num_copies += 1;
                self.mark_write(dst.block, &dst.ixfn);
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            Exp::Concat { args, elided } => {
                let dst = self.fresh_dest(stm, 0, env)?;
                let dv = self.view_mut(&dst);
                let mut row = 0i64;
                for (a, el) in args.iter().zip(elided) {
                    let src_a = env.get(a).ok_or("concat of unbound array")?.as_array().clone();
                    // Every argument is read (an elided one was constructed
                    // directly in the destination — its cells must already
                    // be written there).
                    self.check_read(src_a.block, &src_a.ixfn);
                    let rows = src_a.ixfn.shape()[0];
                    let elided_here = *el && self.mem_like();
                    if elided_here {
                        let bytes =
                            src_a.ixfn.num_elems() as u64 * src_a.elem.size_bytes() as u64;
                        self.stats.bytes_elided += bytes;
                        self.stats.num_elided += 1;
                    } else {
                        let sv = self.view(&src_a);
                        // Destination sub-view: rows [row, row+rows).
                        let sub = slice_rows(&dv, row, rows);
                        let t = Instant::now();
                        let bytes = copy_view(&sub, &sv);
                        self.stats.copy_time += t.elapsed();
                        self.stats.bytes_copied += bytes;
                        self.stats.num_copies += 1;
                        let sub_ix = sub.ixfn().clone();
                        self.mark_write(dst.block, &sub_ix);
                    }
                    row += rows;
                }
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            Exp::Transform { src, tr } => {
                let src_a = env.get(src).ok_or("transform of unbound array")?.as_array().clone();
                let lookup = lookup_fn(env);
                let ixfn = apply_transform_concrete(&src_a.ixfn, tr, &lookup)
                    .ok_or("unsupported concrete transform")?;
                drop(lookup);
                if self.mode == Mode::Pure {
                    // Materialize the transformed view into a fresh array.
                    let dst = self.fresh_dest(stm, 0, env)?;
                    let sv = View::new(self.store.raw(src_a.block), ixfn);
                    let dv = self.view_mut(&dst);
                    copy_view(&dv, &sv);
                    env.insert(stm.pat[0].var, Value::Array(dst));
                } else {
                    env.insert(
                        stm.pat[0].var,
                        Value::Array(ArrayRef {
                            block: src_a.block,
                            elem: src_a.elem,
                            ixfn,
                        }),
                    );
                }
            }
            Exp::Map(m) => self.exec_map(stm, m, env)?,
            Exp::Update {
                dst,
                slice,
                src,
                elided,
            } => self.exec_update(stm, *dst, slice, src, *elided, env)?,
            Exp::If {
                cond,
                then_b,
                else_b,
            } => {
                let c = self.eval_scalar(cond, env)?.as_bool();
                let branch = if c { then_b } else { else_b };
                let mut benv = env.clone();
                self.exec_block(branch, &mut benv)?;
                for (pe, r) in stm.pat.iter().zip(&branch.result) {
                    let v = benv.get(r).ok_or("missing branch result")?.clone();
                    env.insert(pe.var, v);
                }
            }
            Exp::Loop {
                params,
                inits,
                index,
                count,
                body,
            } => {
                let lookup = lookup_fn(env);
                let n = count.eval(&lookup).ok_or("unresolved loop count")?;
                drop(lookup);
                let mut cur: Vec<Value> = inits
                    .iter()
                    .map(|v| env.get(v).cloned().ok_or("unbound loop init"))
                    .collect::<Result<_, _>>()?;
                for i in 0..n.max(0) {
                    let mut benv = env.clone();
                    benv.insert(*index, Value::I64(i));
                    for (pe, v) in params.iter().zip(&cur) {
                        benv.insert(pe.var, v.clone());
                    }
                    self.exec_block(body, &mut benv)?;
                    cur = body
                        .result
                        .iter()
                        .map(|v| benv.get(v).cloned().ok_or("missing loop result"))
                        .collect::<Result<_, _>>()?;
                }
                for (pe, v) in stm.pat.iter().zip(cur) {
                    env.insert(pe.var, v);
                }
            }
        }
        Ok(())
    }

    fn exec_map(&mut self, stm: &Stm, m: &MapExp, env: &mut Env) -> Result<(), String> {
        let lookup = lookup_fn(env);
        let width = m.width.eval(&lookup).ok_or("unresolved map width")?;
        drop(lookup);
        match &m.body {
            MapBody::Kernel {
                name,
                elem,
                row_shape,
                args,
                ..
            } => {
                let dst = self.fresh_dest(stm, 0, env)?;
                let kernel = self
                    .kernels
                    .get(name)
                    .ok_or_else(|| format!("unregistered kernel {name}"))?
                    .clone();
                let in_arrays: Vec<ArrayRef> = m
                    .inputs
                    .iter()
                    .map(|v| Ok(env.get(v).ok_or("unbound map input")?.as_array().clone()))
                    .collect::<Result<_, String>>()?;
                for a in &in_arrays {
                    self.check_read(a.block, &a.ixfn);
                }
                let inputs: Vec<View> = in_arrays.iter().map(|a| self.view(a)).collect();
                let argv: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_scalar(a, env))
                    .collect::<Result<_, _>>()?;
                let lookup = lookup_fn(env);
                let row_shape_c: Vec<i64> = row_shape
                    .iter()
                    .map(|p| p.eval(&lookup).ok_or_else(|| "unresolved row shape".to_string()))
                    .collect::<Result<_, _>>()?;
                drop(lookup);
                let row_elems: i64 = row_shape_c.iter().product();
                let scalar_rows = row_shape_c.is_empty();
                // Pure mode writes rows directly (fresh dense memory never
                // aliases inputs); Memory mode honours the pass's decision.
                let direct = scalar_rows || m.in_place_result || self.mode == Mode::Pure;
                let out_view = self.view_mut(&dst);
                // Private per-worker row buffers for the non-in-place case:
                // the mapnest's implicit result copy (§V-A(e)). Checked
                // mode runs serially: diagnostics stay deterministic and
                // the race detector (below) subsumes parallel scheduling.
                let workers = if self.checked() { 1 } else { self.threads };
                let temp_block = if direct {
                    None
                } else {
                    Some(
                        self.store
                            .alloc(*elem, (row_elems * workers as i64).max(0) as usize),
                    )
                };
                let temp_raw = temp_block.map(|b| self.store.raw(b));
                let t0 = Instant::now();
                let dispatched = parallel_for_worker(workers, width, |i, w| {
                    let row = out_view.row(i);
                    if direct {
                        let ctx = KernelCtx {
                            i,
                            inputs: &inputs,
                            args: &argv,
                            out: row,
                        };
                        kernel(&ctx);
                    } else {
                        // Build the private row, then copy it out.
                        let mut priv_lmad = arraymem_lmad::ConcreteLmad::row_major(&row_shape_c);
                        priv_lmad.offset = w as i64 * row_elems;
                        let priv_row =
                            ViewMut::new(temp_raw.unwrap(), ConcreteIxFn::from_lmad(priv_lmad));
                        let ctx = KernelCtx {
                            i,
                            inputs: &inputs,
                            args: &argv,
                            out: priv_row.clone(),
                        };
                        kernel(&ctx);
                        copy_view(&row, &priv_row.as_view());
                    }
                });
                self.stats.kernel_time += t0.elapsed();
                self.stats.kernel_launches += width.max(0) as u64;
                self.stats.pool_dispatches += dispatched as u64;
                // The private-row scratch dies with the dispatch; recycle
                // it so the next non-in-place map pays no fresh alloc.
                if let Some(b) = temp_block {
                    self.store.release(b);
                }
                if !direct {
                    let bytes = (width * row_elems).max(0) as u64 * elem.size_bytes() as u64;
                    self.stats.bytes_copied += bytes;
                    self.stats.num_copies += width.max(0) as u64;
                } else if m.in_place_result && self.mem_like() && !scalar_rows {
                    let bytes = (width * row_elems).max(0) as u64 * elem.size_bytes() as u64;
                    self.stats.bytes_elided += bytes;
                    self.stats.num_elided += width.max(0) as u64;
                }
                // Dynamic race detector: no two iterations of the map may
                // write one cell. The kernel writes each row through the
                // result's index function with the outer dim fixed, so
                // enumerating those footprints covers its stores.
                self.race_check(dst.block, &dst.ixfn, width);
                self.mark_write(dst.block, &dst.ixfn);
                env.insert(stm.pat[0].var, Value::Array(dst));
            }
            MapBody::Lambda { params, body } => {
                // Interpreted elementwise map over rank-1 inputs.
                let dsts: Vec<ArrayRef> = (0..stm.pat.len())
                    .map(|k| self.fresh_dest(stm, k, env))
                    .collect::<Result<_, _>>()?;
                let in_arrays: Vec<ArrayRef> = m
                    .inputs
                    .iter()
                    .map(|v| Ok(env.get(v).ok_or("unbound map input")?.as_array().clone()))
                    .collect::<Result<_, String>>()?;
                for a in &in_arrays {
                    self.check_read(a.block, &a.ixfn);
                }
                let in_views: Vec<View> = in_arrays.iter().map(|a| self.view(a)).collect();
                let out_views: Vec<ViewMut> = dsts.iter().map(|a| self.view_mut(a)).collect();
                let t0 = Instant::now();
                // One instance environment for the whole map: parameter
                // bindings are overwritten per iteration, and body-local
                // bindings are simply re-inserted before any use (cloning
                // the full environment per element is O(width·|env|)).
                let mut benv = env.clone();
                for i in 0..width {
                    for ((p, _), (view, a)) in
                        params.iter().zip(in_views.iter().zip(&in_arrays))
                    {
                        let v = match a.elem {
                            ElemType::F32 => Value::F32(view.get_f32(&[i])),
                            ElemType::F64 => Value::F64(view.get_f64(&[i])),
                            ElemType::I64 => Value::I64(view.get_i64(&[i])),
                            ElemType::Bool => Value::Bool(view.get_i64(&[i]) != 0),
                        };
                        benv.insert(*p, v);
                    }
                    self.exec_block(body, &mut benv)?;
                    for ((r, out), dst) in body.result.iter().zip(&out_views).zip(&dsts) {
                        let v = benv.get(r).ok_or("missing lambda result")?;
                        match dst.elem {
                            ElemType::F32 => out.set_f32(&[i], v.as_f32()),
                            ElemType::F64 => out.set_f64(&[i], v.as_f64()),
                            ElemType::I64 => out.set_i64(&[i], v.as_i64()),
                            ElemType::Bool => out.set_i64(&[i], v.as_bool() as i64),
                        }
                    }
                }
                self.stats.kernel_time += t0.elapsed();
                self.stats.kernel_launches += width.max(0) as u64;
                // The body's statements moved `cur_stm`; provenance of the
                // map's results is the map statement itself.
                self.cur_stm = stm.pat.first().map(|p| p.var);
                for (pe, dst) in stm.pat.iter().zip(dsts) {
                    self.race_check(dst.block, &dst.ixfn, width);
                    self.mark_write(dst.block, &dst.ixfn);
                    env.insert(pe.var, Value::Array(dst));
                }
            }
        }
        Ok(())
    }

    fn exec_update(
        &mut self,
        stm: &Stm,
        dst: Var,
        slice: &SliceSpec,
        src: &UpdateSrc,
        elided: bool,
        env: &mut Env,
    ) -> Result<(), String> {
        let dst_a = env.get(&dst).ok_or("update of unbound array")?.as_array().clone();
        // Pure mode: the update result is a fresh copy of dst with the
        // slice overwritten (true value semantics).
        let result = if self.mode == Mode::Pure {
            let fresh = self.fresh_dest(stm, 0, env)?;
            let sv = self.view(&dst_a);
            let dv = self.view_mut(&fresh);
            copy_view(&dv, &sv);
            fresh
        } else {
            dst_a.clone()
        };
        let slice_ixfn = slice_ixfn_concrete(&result.ixfn, slice, env, self)?;
        // The language's dynamic legality check for LMAD-slice updates
        // (§III-B): the written positions must not self-overlap.
        if let SliceSpec::Lmad(_) = slice {
            if let Some(l) = slice_ixfn.as_single() {
                if !lmad_slice_is_injective(l) {
                    return Err("LMAD-slice update writes overlapping positions".into());
                }
            }
        }
        match src {
            UpdateSrc::Scalar(se) => {
                let v = self.eval_scalar(se, env)?;
                let dview = ViewMut::new(self.store.raw(result.block), slice_ixfn.clone());
                let n = dview.num_elems();
                for f in 0..n.max(0) {
                    match result.elem {
                        ElemType::F32 => dview.set_f32_flat(f, v.as_f32()),
                        ElemType::F64 => {
                            let idx = unflat(&dview.shape(), f);
                            dview.set_f64(&idx, v.as_f64());
                        }
                        ElemType::I64 | ElemType::Bool => dview.set_i64_flat(f, v.as_i64()),
                    }
                }
                self.mark_write(result.block, &slice_ixfn);
            }
            UpdateSrc::Array(s) => {
                let src_a = env.get(s).ok_or("unbound update source")?.as_array().clone();
                // Read check either way: an elided update's source was
                // constructed directly in the destination slice, so its
                // cells must already be written there.
                self.check_read(src_a.block, &src_a.ixfn);
                if elided && self.mem_like() {
                    let bytes = src_a.ixfn.num_elems() as u64 * src_a.elem.size_bytes() as u64;
                    self.stats.bytes_elided += bytes;
                    self.stats.num_elided += 1;
                } else {
                    let sv = self.view(&src_a);
                    let dview = ViewMut::new(self.store.raw(result.block), slice_ixfn.clone());
                    let t = Instant::now();
                    let bytes = copy_view(&dview, &sv);
                    self.stats.copy_time += t.elapsed();
                    self.stats.bytes_copied += bytes;
                    self.stats.num_copies += 1;
                    self.mark_write(result.block, &slice_ixfn);
                }
            }
        }
        env.insert(stm.pat[0].var, Value::Array(result));
        Ok(())
    }

    fn eval_scalar(&mut self, e: &ScalarExp, env: &Env) -> Result<Value, String> {
        Ok(match e {
            ScalarExp::Const(c) => match c {
                Constant::F32(x) => Value::F32(*x),
                Constant::F64(x) => Value::F64(*x),
                Constant::I64(x) => Value::I64(*x),
                Constant::Bool(x) => Value::Bool(*x),
            },
            ScalarExp::Var(v) => env.get(v).ok_or_else(|| format!("unbound {v}"))?.clone(),
            ScalarExp::Size(p) => {
                let lookup = lookup_fn(env);
                Value::I64(p.eval(&lookup).ok_or("unresolved size expression")?)
            }
            ScalarExp::Bin(op, a, b) => {
                let x = self.eval_scalar(a, env)?;
                let y = self.eval_scalar(b, env)?;
                eval_bin(*op, &x, &y)?
            }
            ScalarExp::Un(op, a) => {
                let x = self.eval_scalar(a, env)?;
                eval_un(*op, &x)?
            }
            ScalarExp::Index(v, idx) => {
                let a = env.get(v).ok_or("unbound array")?.as_array().clone();
                let idx: Vec<i64> = idx
                    .iter()
                    .map(|i| Ok(self.eval_scalar(i, env)?.as_i64()))
                    .collect::<Result<_, String>>()?;
                if self.store.shadow_enabled() {
                    let off = a.ixfn.index(&idx);
                    self.check_cell(a.block, off, &a.ixfn);
                }
                let view = self.view(&a);
                match a.elem {
                    ElemType::F32 => Value::F32(view.get_f32(&idx)),
                    ElemType::F64 => Value::F64(view.get_f64(&idx)),
                    ElemType::I64 => Value::I64(view.get_i64(&idx)),
                    ElemType::Bool => Value::Bool(view.get_i64(&idx) != 0),
                }
            }
            ScalarExp::Select(c, t, f) => {
                if self.eval_scalar(c, env)?.as_bool() {
                    self.eval_scalar(t, env)?
                } else {
                    self.eval_scalar(f, env)?
                }
            }
        })
    }
}

fn coerce(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Scalar(ElemType::F32) => Value::F32(v.as_f32()),
        Type::Scalar(ElemType::F64) => Value::F64(v.as_f64()),
        Type::Scalar(ElemType::I64) => Value::I64(v.as_i64()),
        Type::Scalar(ElemType::Bool) => Value::Bool(v.as_bool()),
        _ => v,
    }
}

fn eval_bin(op: BinOp, x: &Value, y: &Value) -> Result<Value, String> {
    use BinOp::*;
    Ok(match (x, y) {
        (Value::F32(_), _) | (_, Value::F32(_)) => {
            let (a, b) = (x.as_f32(), y.as_f32());
            match op {
                Add => Value::F32(a + b),
                Sub => Value::F32(a - b),
                Mul => Value::F32(a * b),
                Div => Value::F32(a / b),
                Rem => Value::F32(a % b),
                Min => Value::F32(a.min(b)),
                Max => Value::F32(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And | Or => return Err("boolean op on floats".into()),
            }
        }
        (Value::F64(_), _) | (_, Value::F64(_)) => {
            let (a, b) = (x.as_f64(), y.as_f64());
            match op {
                Add => Value::F64(a + b),
                Sub => Value::F64(a - b),
                Mul => Value::F64(a * b),
                Div => Value::F64(a / b),
                Rem => Value::F64(a % b),
                Min => Value::F64(a.min(b)),
                Max => Value::F64(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And | Or => return Err("boolean op on floats".into()),
            }
        }
        (Value::Bool(a), Value::Bool(b)) => match op {
            And => Value::Bool(*a && *b),
            Or => Value::Bool(*a || *b),
            Eq => Value::Bool(a == b),
            Ne => Value::Bool(a != b),
            _ => return Err("arithmetic on booleans".into()),
        },
        _ => {
            let (a, b) = (x.as_i64(), y.as_i64());
            match op {
                Add => Value::I64(a + b),
                Sub => Value::I64(a - b),
                Mul => Value::I64(a * b),
                Div => Value::I64(a.div_euclid(b)),
                Rem => Value::I64(a.rem_euclid(b)),
                Min => Value::I64(a.min(b)),
                Max => Value::I64(a.max(b)),
                Eq => Value::Bool(a == b),
                Ne => Value::Bool(a != b),
                Lt => Value::Bool(a < b),
                Le => Value::Bool(a <= b),
                And => Value::Bool(a != 0 && b != 0),
                Or => Value::Bool(a != 0 || b != 0),
            }
        }
    })
}

fn eval_un(op: UnOp, x: &Value) -> Result<Value, String> {
    use UnOp::*;
    Ok(match op {
        Neg => match x {
            Value::F32(v) => Value::F32(-v),
            Value::F64(v) => Value::F64(-v),
            Value::I64(v) => Value::I64(-v),
            _ => return Err("neg on non-number".into()),
        },
        Not => Value::Bool(!x.as_bool()),
        Sqrt => match x {
            Value::F64(v) => Value::F64(v.sqrt()),
            v => Value::F32(v.as_f32().sqrt()),
        },
        Exp => match x {
            Value::F64(v) => Value::F64(v.exp()),
            v => Value::F32(v.as_f32().exp()),
        },
        Log => match x {
            Value::F64(v) => Value::F64(v.ln()),
            v => Value::F32(v.as_f32().ln()),
        },
        Abs => match x {
            Value::F32(v) => Value::F32(v.abs()),
            Value::F64(v) => Value::F64(v.abs()),
            Value::I64(v) => Value::I64(v.abs()),
            _ => return Err("abs on non-number".into()),
        },
        ToF32 => Value::F32(x.as_f32()),
        ToF64 => Value::F64(x.as_f64()),
        ToI64 => Value::I64(x.as_i64()),
    })
}

/// Sub-view of rows `[row, row+rows)` along the outer dimension.
fn slice_rows(v: &ViewMut, row: i64, rows: i64) -> ViewMut {
    let mut ixfn = v.ixfn().clone();
    let logical = ixfn.lmads.last_mut().unwrap();
    let (card, stride) = logical.dims[0];
    debug_assert!(row + rows <= card);
    logical.offset += row * stride;
    logical.dims[0] = (rows, stride);
    ViewMut::new(raw_of(v), ixfn)
}

fn raw_of(v: &ViewMut) -> crate::store::RawBuf {
    v.raw()
}

/// Unrank a flat position into an index vector.
fn unflat(shape: &[i64], flat: i64) -> Vec<i64> {
    let mut idx = vec![0i64; shape.len()];
    arraymem_lmad::concrete::unrank(flat, shape, &mut idx);
    idx
}

/// Evaluate a (symbolic) layout transform against a concrete index
/// function by constantizing its polynomials and reusing the symbolic
/// transform algebra.
pub fn apply_transform_concrete(
    ixfn: &ConcreteIxFn,
    tr: &Transform,
    lookup: &impl Fn(arraymem_symbolic::Sym) -> Option<i64>,
) -> Option<ConcreteIxFn> {
    let sym_ixfn = concrete_to_symbolic(ixfn);
    let tr_c = constantize_transform(tr, lookup)?;
    let out = sym_ixfn.transform(&tr_c)?;
    out.eval(&|_| None)
}

fn concrete_to_symbolic(ixfn: &ConcreteIxFn) -> IndexFn {
    IndexFn {
        lmads: ixfn
            .lmads
            .iter()
            .map(|l| {
                Lmad::new(
                    Poly::constant(l.offset),
                    l.dims
                        .iter()
                        .map(|&(c, s)| arraymem_lmad::Dim::new(Poly::constant(c), Poly::constant(s)))
                        .collect(),
                )
            })
            .collect(),
    }
}

fn constantize_transform(
    tr: &Transform,
    lookup: &impl Fn(arraymem_symbolic::Sym) -> Option<i64>,
) -> Option<Transform> {
    let cp = |p: &Poly| -> Option<Poly> { Some(Poly::constant(p.eval(lookup)?)) };
    Some(match tr {
        Transform::Permute(p) => Transform::Permute(p.clone()),
        Transform::Reverse(d) => Transform::Reverse(*d),
        Transform::Reshape(s) => {
            Transform::Reshape(s.iter().map(&cp).collect::<Option<_>>()?)
        }
        Transform::Slice(ts) => Transform::Slice(
            ts.iter()
                .map(|t| {
                    Some(match t {
                        TripletSlice::Range { start, len, step } => TripletSlice::Range {
                            start: cp(start)?,
                            len: cp(len)?,
                            step: cp(step)?,
                        },
                        TripletSlice::Fix(i) => TripletSlice::Fix(cp(i)?),
                    })
                })
                .collect::<Option<_>>()?,
        ),
        Transform::LmadSlice(l) =>

            Transform::LmadSlice(Lmad::new(
                cp(&l.offset)?,
                l.dims
                    .iter()
                    .map(|d| Some(arraymem_lmad::Dim::new(cp(&d.card)?, cp(&d.stride)?)))
                    .collect::<Option<_>>()?,
            )),
    })
}

/// Concrete index function of a slice of `base`.
fn slice_ixfn_concrete(
    base: &ConcreteIxFn,
    slice: &SliceSpec,
    env: &Env,
    m: &mut Machine,
) -> Result<ConcreteIxFn, String> {
    let tr = match slice {
        SliceSpec::Triplet(ts) => Transform::Slice(ts.clone()),
        SliceSpec::Lmad(l) => Transform::LmadSlice(l.clone()),
        SliceSpec::Point(es) => {
            let mut fixed = Vec::with_capacity(es.len());
            for e in es {
                let v = m.eval_scalar(e, env)?.as_i64();
                fixed.push(TripletSlice::Fix(Poly::constant(v)));
            }
            Transform::Slice(fixed)
        }
    };
    let lookup = lookup_fn(env);
    apply_transform_concrete(base, &tr, &lookup).ok_or_else(|| "bad slice".to_string())
}

