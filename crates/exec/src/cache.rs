//! The sharded, shareable plan cache.
//!
//! A lowered [`ExecPlan`] is a pure function of (program, kernel name
//! table, check/merge/par-safety record sets) — plain data with no
//! interior mutability, so one `Arc<ExecPlan>` can serve every client
//! that presents the same fingerprint tuple. This module turns that
//! observation into the server's compile-once/execute-everywhere story:
//!
//! - **Sharding**: the key space is split across `N` independent
//!   `RwLock`-protected maps, so concurrent *hits* (the steady state of a
//!   serving system) never contend on one lock. A hit takes one shared
//!   read lock on one shard.
//! - **Single-flight builds**: when a stampede of identical requests
//!   misses simultaneously, exactly one caller lowers the plan; the rest
//!   park on the shard's condvar and adopt the winner's `Arc`. Coalesced
//!   waiters count as `cache_hits` *and* as `stampedes_coalesced` — the
//!   dedicated counter tests assert on. If the build fails, waiters are
//!   woken and retry (one becomes the next builder), so a failing
//!   program cannot wedge a shard.
//!
//! [`Session`](crate::Session) is the single-tenant special case: it owns
//! a private single-shard cache unless constructed over a shared one.

use crate::kernel::KernelRegistry;
use crate::plan::{lower_plan_full, ExecPlan};
use arraymem_core::{CircuitCheck, MergeRecord, ParSafetyRecord};
use arraymem_ir::Program;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Cumulative plan-preparation accounting for a cache (and therefore for
/// every session/tenant sharing it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Plans actually lowered (cache misses that won the build race).
    pub builds: u64,
    /// `prepare` calls answered with an already-lowered plan — including
    /// coalesced stampede waiters.
    pub cache_hits: u64,
    /// Total time spent lowering (cache misses only).
    pub build_time: Duration,
    /// Requests that arrived while an identical build was in flight and
    /// adopted its result instead of lowering again.
    pub stampedes_coalesced: u64,
}

/// Outcome of one [`PlanCache::prepare_full`] call, for stamping onto the
/// run's [`Stats`](crate::Stats).
#[derive(Clone, Copy, Debug)]
pub struct PrepareOutcome {
    /// The request's cache key (see [`PlanCache::key`]).
    pub key: u64,
    /// Answered without lowering (plain hit or coalesced stampede).
    pub hit: bool,
    /// This call waited out another caller's in-flight build.
    pub coalesced: bool,
    /// Lowering time, when this call built (zero otherwise).
    pub build_time: Duration,
}

struct Shard {
    plans: RwLock<HashMap<u64, Arc<ExecPlan>>>,
    /// Keys with a build in flight; guarded separately from `plans` so
    /// waiters never hold the read path hostage.
    building: Mutex<HashSet<u64>>,
    done: Condvar,
}

/// A sharded map from fingerprint keys to lowered plans, safe to share
/// across threads and tenants. See the module docs.
pub struct PlanCache {
    shards: Vec<Shard>,
    /// Shard index mask (`shards.len()` is a power of two).
    mask: u64,
    builds: AtomicU64,
    cache_hits: AtomicU64,
    stampedes_coalesced: AtomicU64,
    build_nanos: AtomicU64,
    /// Test hook: runs inside the single-flight critical section, before
    /// lowering. Lets tests hold a build open deterministically.
    #[doc(hidden)]
    pub build_hook: Option<Box<dyn Fn() + Send + Sync>>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new(16)
    }
}

impl PlanCache {
    /// A cache with at least `shards` shards (rounded up to a power of
    /// two, minimum 1).
    pub fn new(shards: usize) -> PlanCache {
        let n = shards.max(1).next_power_of_two();
        PlanCache {
            shards: (0..n)
                .map(|_| Shard {
                    plans: RwLock::new(HashMap::new()),
                    building: Mutex::new(HashSet::new()),
                    done: Condvar::new(),
                })
                .collect(),
            mask: (n - 1) as u64,
            builds: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            stampedes_coalesced: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            build_hook: None,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total plans currently cached (sums every shard; takes each read
    /// lock briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.plans.read().unwrap().len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> PlanStats {
        PlanStats {
            builds: self.builds.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            build_time: Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed)),
            stampedes_coalesced: self.stampedes_coalesced.load(Ordering::Relaxed),
        }
    }

    /// The cache key for a prepare request: the program's structural
    /// fingerprint, the kernel registry's name table, and the three
    /// runtime-obligation record sets. Thread count is deliberately *not*
    /// part of the key — plans are thread-agnostic.
    pub fn key(
        prog: &Program,
        kernels: &KernelRegistry,
        checks: &[CircuitCheck],
        merges: &[MergeRecord],
        par: &[ParSafetyRecord],
    ) -> u64 {
        arraymem_core::combine_fingerprints(&[
            arraymem_core::fingerprint(prog),
            kernels.fingerprint(),
            arraymem_core::fingerprint_items(checks),
            arraymem_core::fingerprint_items(merges),
            arraymem_core::fingerprint_items(par),
        ])
    }

    /// Look up or lower the plan for a prepare request. At most one
    /// caller per key lowers; concurrent identical requests coalesce.
    pub fn prepare_full(
        &self,
        prog: &Program,
        kernels: &KernelRegistry,
        checks: &[CircuitCheck],
        merges: &[MergeRecord],
        par: &[ParSafetyRecord],
    ) -> Result<(Arc<ExecPlan>, PrepareOutcome), String> {
        let key = Self::key(prog, kernels, checks, merges, par);
        let shard = &self.shards[(key & self.mask) as usize];
        // Fast path: shared read lock, no allocation.
        if let Some(plan) = shard.plans.read().unwrap().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((
                Arc::clone(plan),
                PrepareOutcome {
                    key,
                    hit: true,
                    coalesced: false,
                    build_time: Duration::ZERO,
                },
            ));
        }
        let mut coalesced = false;
        loop {
            // Decide between building and waiting under the shard's
            // single-flight lock.
            {
                let mut building = shard.building.lock().unwrap();
                // Re-check under the lock: a build may have completed
                // between the read above and here.
                if let Some(plan) = shard.plans.read().unwrap().get(&key) {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((
                        Arc::clone(plan),
                        PrepareOutcome {
                            key,
                            hit: true,
                            coalesced,
                            build_time: Duration::ZERO,
                        },
                    ));
                }
                if building.contains(&key) {
                    // An identical build is in flight: park until it
                    // publishes (or fails), then re-loop. Counted at wait
                    // entry — the counter means "requests that arrived
                    // during an identical in-flight build".
                    if !coalesced {
                        coalesced = true;
                        self.stampedes_coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    while building.contains(&key) {
                        building = shard.done.wait(building).unwrap();
                    }
                    continue;
                }
                building.insert(key);
            }
            // We are the builder; lowering happens outside every lock.
            if let Some(hook) = &self.build_hook {
                hook();
            }
            let t0 = Instant::now();
            let result = lower_plan_full(prog, kernels, checks, merges, par);
            let dt = t0.elapsed();
            let published = result.map(|plan| {
                let plan = Arc::new(plan);
                shard.plans.write().unwrap().insert(key, Arc::clone(&plan));
                plan
            });
            {
                let mut building = shard.building.lock().unwrap();
                building.remove(&key);
                shard.done.notify_all();
            }
            return published.map(|plan| {
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.build_nanos
                    .fetch_add(dt.as_nanos() as u64, Ordering::Relaxed);
                (
                    plan,
                    PrepareOutcome {
                        key,
                        hit: false,
                        coalesced,
                        build_time: dt,
                    },
                )
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arraymem_ir::builder::Builder;
    use arraymem_symbolic::Poly;

    fn prog(n: i64) -> Program {
        let b = Builder::new("cache_test");
        let mut bb = b.block();
        let a = bb.iota("a", Poly::constant(n));
        let body = bb.finish(vec![a]);
        b.finish(body)
    }

    #[test]
    fn hit_returns_the_same_plan() {
        let cache = PlanCache::new(4);
        let kernels = KernelRegistry::new();
        let p = prog(8);
        let (a, o1) = cache
            .prepare_full(&p, &kernels, &[], &[], &[])
            .expect("lower");
        let (b, o2) = cache
            .prepare_full(&p, &kernels, &[], &[], &[])
            .expect("lower");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!o1.hit);
        assert!(o2.hit);
        let s = cache.stats();
        assert_eq!((s.builds, s.cache_hits, s.stampedes_coalesced), (1, 1, 0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_programs_build_distinct_plans() {
        let cache = PlanCache::new(1);
        let kernels = KernelRegistry::new();
        cache
            .prepare_full(&prog(8), &kernels, &[], &[], &[])
            .expect("lower");
        cache
            .prepare_full(&prog(9), &kernels, &[], &[], &[])
            .expect("lower");
        assert_eq!(cache.stats().builds, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(PlanCache::new(0).num_shards(), 1);
        assert_eq!(PlanCache::new(3).num_shards(), 4);
        assert_eq!(PlanCache::new(16).num_shards(), 16);
    }
}
