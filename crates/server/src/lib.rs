//! The multi-tenant execution server.
//!
//! `Session` (crates/exec) is one tenant, one store, one thread. This
//! crate serves the same compiled-plan universe to many concurrent
//! clients by composing the exec crate's layers:
//!
//! - one **shared [`PlanCache`]** (sharded, single-flight) — a program
//!   any tenant has prepared executes everywhere without re-lowering;
//! - one **[`SharedArena`]** under per-tenant [`MemStore`]s — block
//!   recycling and zero-fill elision work across tenants, with
//!   cross-tenant buffers scrubbed so no tenant observes another's
//!   bytes (and shadow provenance still firing in checked mode);
//! - an **admission controller** in front: `max_in_flight` execution
//!   permits, a bounded FIFO overflow queue with depth/wait metrics,
//!   and typed rejection ([`ServerError::Overloaded`]) when full;
//! - per-tenant **[`Stats`] aggregation** ([`Stats::merge`]) queryable
//!   per tenant ([`Server::tenant_stats`]) or fleet-wide
//!   ([`Server::global_stats`]).
//!
//! Requests from one tenant serialize on that tenant's store; requests
//! from different tenants execute concurrently (each execution may
//! itself fan out onto the exec crate's work-stealing pool).
//!
//! ```
//! use arraymem_core::{compile, Options};
//! use arraymem_exec::{KernelRegistry, Mode};
//! use arraymem_ir::builder::Builder;
//! use arraymem_server::{ExecRequest, Server, ServerConfig};
//! use arraymem_symbolic::Poly;
//!
//! let mut b = Builder::new("quickstart");
//! let mut bb = b.block();
//! let xs = bb.iota("xs", Poly::constant(8));
//! let body = bb.finish(vec![xs]);
//! let prog = b.finish(body);
//! let compiled = compile(&prog, &Options::optimized()).expect("compile");
//! let checks: Vec<_> = compiled.report.checks().cloned().collect();
//!
//! let server = Server::new(ServerConfig::default());
//! let kernels = KernelRegistry::new();
//! let req = ExecRequest::from_compiled(&compiled, &kernels, &checks, &[], Mode::Memory);
//! let (out, stats) = server.execute("tenant-a", req).expect("admitted and executed");
//! assert_eq!(out.len(), 1);
//! assert!(!stats.plan_cache_hit); // first request lowered the plan
//! let (_, warm) = server.execute("tenant-b", req).expect("second tenant");
//! assert!(warm.plan_cache_hit); // …which now serves every tenant
//! ```

mod admission;

pub use admission::AdmissionMetrics;

use admission::Admission;
use arraymem_core::{CircuitCheck, Compiled, MergeRecord, ParSafetyRecord};
use arraymem_exec::{
    execute_plan, ArenaStats, InputValue, KernelRegistry, MemStore, Mode, OutputValue, PlanCache,
    PlanStats, SharedArena, Stats,
};
use arraymem_ir::Program;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Server tuning knobs. The defaults serve tests and small fleets; the
/// bench harness overrides them per sweep.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Plan-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Executions allowed to run simultaneously.
    pub max_in_flight: usize,
    /// Requests allowed to wait for a permit before rejection sets in.
    pub queue_depth: usize,
    /// Worker threads offered to each execution's parallel maps (the
    /// exec crate's global work-stealing pool is shared; dispatches
    /// serialize there).
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            cache_shards: 16,
            max_in_flight: 4,
            queue_depth: 64,
            threads: 1,
        }
    }
}

/// Typed failure of [`Server::execute`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// Admission control turned the request away: every execution slot
    /// was busy and the overflow queue was full.
    Overloaded {
        /// Executions in flight at the moment of rejection.
        in_flight: usize,
        /// Requests already waiting at the moment of rejection.
        queued: usize,
    },
    /// Lowering the program into a plan failed.
    Prepare(String),
    /// The execution itself failed.
    Execution(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded { in_flight, queued } => write!(
                f,
                "server overloaded: {in_flight} executions in flight, {queued} queued"
            ),
            ServerError::Prepare(e) => write!(f, "plan preparation failed: {e}"),
            ServerError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// One execution request: a program plus the compile report's runtime
/// obligations, the inputs, and the mode. Borrowed — a request is cheap
/// to build per call while programs/kernels/records live elsewhere.
#[derive(Clone, Copy)]
pub struct ExecRequest<'a> {
    pub program: &'a Program,
    pub kernels: &'a KernelRegistry,
    pub checks: &'a [CircuitCheck],
    pub merges: &'a [MergeRecord],
    pub par: &'a [ParSafetyRecord],
    pub inputs: &'a [InputValue],
    pub mode: Mode,
}

impl<'a> ExecRequest<'a> {
    /// A plain `Mode::Memory` request with no runtime-obligation records.
    pub fn new(
        program: &'a Program,
        kernels: &'a KernelRegistry,
        inputs: &'a [InputValue],
    ) -> ExecRequest<'a> {
        ExecRequest {
            program,
            kernels,
            checks: &[],
            merges: &[],
            par: &[],
            inputs,
            mode: Mode::Memory,
        }
    }

    /// A request carrying a compile's merge and par-safety records
    /// (checked-mode callers pass the collected circuit checks too —
    /// `Report::checks` yields borrows, so the caller owns the `Vec`).
    pub fn from_compiled(
        compiled: &'a Compiled,
        kernels: &'a KernelRegistry,
        checks: &'a [CircuitCheck],
        inputs: &'a [InputValue],
        mode: Mode,
    ) -> ExecRequest<'a> {
        ExecRequest {
            program: &compiled.program,
            kernels,
            checks,
            merges: &compiled.report.merges,
            par: &compiled.report.par_safety,
            inputs,
            mode,
        }
    }
}

/// Per-tenant aggregate returned by [`Server::tenant_stats`] /
/// [`Server::global_stats`].
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Executions completed successfully.
    pub runs: u64,
    /// Their merged [`Stats`] (see [`Stats::merge`] for the semantics of
    /// each field under aggregation).
    pub stats: Stats,
    /// The shared arena's byte high-water across **every** tenant
    /// ([`ArenaStats::peak_bytes_live`]). Populated by
    /// [`Server::global_stats`] only (per-tenant views report 0).
    /// Tenants execute concurrently against one arena, so this can
    /// exceed `stats.peak_bytes_live` — which is a *max over tenants*
    /// and blind to tenants peaking together.
    pub arena_peak_bytes_live: u64,
}

struct Tenant {
    /// Serializes the tenant's executions (the store is single-threaded
    /// state; different tenants' mutexes are independent).
    state: Mutex<TenantState>,
}

struct TenantState {
    store: MemStore,
    agg: TenantStats,
}

/// The multi-tenant front door. See the crate docs.
pub struct Server {
    config: ServerConfig,
    cache: Arc<PlanCache>,
    arena: SharedArena,
    admission: Admission,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    next_tenant_tag: Mutex<u64>,
}

impl Default for Server {
    fn default() -> Server {
        Server::new(ServerConfig::default())
    }
}

impl Server {
    pub fn new(config: ServerConfig) -> Server {
        Server::with_cache(config, Arc::new(PlanCache::new(config.cache_shards)))
    }

    /// A server over a caller-supplied (possibly shared) plan cache.
    pub fn with_cache(config: ServerConfig, cache: Arc<PlanCache>) -> Server {
        Server {
            config,
            cache,
            arena: SharedArena::new(),
            admission: Admission::new(config.max_in_flight, config.queue_depth),
            tenants: Mutex::new(HashMap::new()),
            next_tenant_tag: Mutex::new(1),
        }
    }

    pub fn config(&self) -> ServerConfig {
        self.config
    }

    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut tenants = self.tenants.lock().unwrap();
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let tag = {
            let mut next = self.next_tenant_tag.lock().unwrap();
            let tag = *next;
            *next += 1;
            tag
        };
        let mut store = MemStore::new();
        store.attach_arena(self.arena.clone(), tag);
        let mut agg = TenantStats::default();
        // `plan_cache_hit` aggregates by AND; the empty accumulator must
        // start true for that to mean "every run hit".
        agg.stats.plan_cache_hit = true;
        let t = Arc::new(Tenant {
            state: Mutex::new(TenantState { store, agg }),
        });
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// Execute one request for `tenant`, blocking through admission
    /// control and the tenant's store lock. Returns the program outputs
    /// and this run's [`Stats`] (also folded into the tenant aggregate).
    pub fn execute(
        &self,
        tenant: &str,
        req: ExecRequest,
    ) -> Result<(Vec<OutputValue>, Stats), ServerError> {
        let _permit = self
            .admission
            .acquire()
            .map_err(|o| ServerError::Overloaded {
                in_flight: o.in_flight,
                queued: o.queued,
            })?;
        let (plan, outcome) = self
            .cache
            .prepare_full(req.program, req.kernels, req.checks, req.merges, req.par)
            .map_err(ServerError::Prepare)?;
        let tenant = self.tenant(tenant);
        let mut st = tenant.state.lock().unwrap();
        let result = execute_plan(
            &mut st.store,
            &plan,
            req.inputs,
            req.kernels,
            req.mode,
            self.config.threads,
        );
        let (out, mut stats) = result.map_err(ServerError::Execution)?;
        stats.plan_cache_hit = outcome.hit;
        stats.plan_build_time = outcome.build_time;
        st.agg.runs += 1;
        st.agg.stats.merge(&stats);
        // End-of-run blocks feed the arena so any tenant's next
        // allocation can recycle them.
        st.store.donate_free_blocks();
        Ok((out, stats))
    }

    /// The merged stats of one tenant (None if it never executed).
    pub fn tenant_stats(&self, name: &str) -> Option<TenantStats> {
        let t = Arc::clone(self.tenants.lock().unwrap().get(name)?);
        let agg = t.state.lock().unwrap().agg.clone();
        Some(agg)
    }

    /// Every tenant name the server has seen, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.lock().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// The fleet-wide aggregate: every tenant's stats merged.
    pub fn global_stats(&self) -> TenantStats {
        let tenants = self.tenants.lock().unwrap();
        let mut g = TenantStats {
            runs: 0,
            stats: Stats {
                plan_cache_hit: true,
                ..Stats::default()
            },
            arena_peak_bytes_live: self.arena.stats().peak_bytes_live,
        };
        for t in tenants.values() {
            let st = t.state.lock().unwrap();
            g.runs += st.agg.runs;
            g.stats.merge(&st.agg.stats);
        }
        if g.runs == 0 {
            g.stats.plan_cache_hit = false;
        }
        g
    }

    /// The shared plan cache's accounting (builds, hits, coalesced
    /// stampedes).
    pub fn plan_stats(&self) -> PlanStats {
        self.cache.stats()
    }

    /// The shared cache itself (to share with another server or
    /// `Session::with_cache`).
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The cross-tenant arena's accounting.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Admission-control counters (admitted/rejected/queued, queue depth
    /// and wait).
    pub fn admission_metrics(&self) -> AdmissionMetrics {
        self.admission.metrics()
    }

    /// Instantaneous admission load: (executions in flight, requests
    /// queued).
    pub fn load(&self) -> (usize, usize) {
        self.admission.load()
    }
}
