//! Admission control: a bounded in-flight limit with a bounded FIFO
//! overflow queue.
//!
//! A request first tries for one of `max_in_flight` execution permits.
//! When none is free it takes a FIFO ticket and parks — unless the queue
//! already holds `queue_depth` waiters, in which case the request is
//! rejected immediately (the caller gets a typed error and can shed the
//! load upstream). Permits release on drop, so a panicking execution
//! still frees its slot.
//!
//! Everything is a plain `Mutex` + `Condvar` over two integers and a
//! ticket deque: admission decisions are O(1) and the metrics come from
//! the same critical section that made the decision.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters exported by [`Server::admission_metrics`]
/// (crate::Server::admission_metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionMetrics {
    /// Requests granted an execution permit (immediately or after
    /// queueing).
    pub admitted: u64,
    /// Requests rejected because the overflow queue was full.
    pub rejected: u64,
    /// Requests that had to wait in the overflow queue before admission.
    pub queued: u64,
    /// Highest simultaneous queue occupancy observed.
    pub peak_queue_depth: usize,
    /// Highest simultaneous in-flight count observed.
    pub peak_in_flight: usize,
    /// Total time admitted requests spent waiting in the queue.
    pub total_queue_wait: Duration,
}

impl AdmissionMetrics {
    /// Mean queue wait over the requests that queued (zero if none did).
    pub fn avg_queue_wait(&self) -> Duration {
        if self.queued == 0 {
            Duration::ZERO
        } else {
            self.total_queue_wait / self.queued as u32
        }
    }
}

struct AdmState {
    in_flight: usize,
    /// FIFO tickets of parked requests (front is next to admit).
    queue: VecDeque<u64>,
    next_ticket: u64,
    metrics: AdmissionMetrics,
}

pub(crate) struct Admission {
    max_in_flight: usize,
    queue_depth: usize,
    state: Mutex<AdmState>,
    turn: Condvar,
}

/// An execution permit; dropping it frees the slot and wakes the queue.
pub(crate) struct Permit<'a> {
    admission: &'a Admission,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock().unwrap();
        st.in_flight -= 1;
        drop(st);
        self.admission.turn.notify_all();
    }
}

/// Rejection detail: the load observed at the moment of rejection.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Overloaded {
    pub in_flight: usize,
    pub queued: usize,
}

impl Admission {
    pub fn new(max_in_flight: usize, queue_depth: usize) -> Admission {
        Admission {
            max_in_flight: max_in_flight.max(1),
            queue_depth,
            state: Mutex::new(AdmState {
                in_flight: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
                metrics: AdmissionMetrics::default(),
            }),
            turn: Condvar::new(),
        }
    }

    pub fn metrics(&self) -> AdmissionMetrics {
        self.state.lock().unwrap().metrics
    }

    /// Current load: (in-flight, queued). For introspection/tests.
    pub fn load(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.in_flight, st.queue.len())
    }

    pub fn acquire(&self) -> Result<Permit<'_>, Overloaded> {
        let mut st = self.state.lock().unwrap();
        // Fast path: a free slot and nobody queued ahead of us.
        if st.in_flight < self.max_in_flight && st.queue.is_empty() {
            st.in_flight += 1;
            st.metrics.admitted += 1;
            st.metrics.peak_in_flight = st.metrics.peak_in_flight.max(st.in_flight);
            return Ok(Permit { admission: self });
        }
        if st.queue.len() >= self.queue_depth {
            st.metrics.rejected += 1;
            return Err(Overloaded {
                in_flight: st.in_flight,
                queued: st.queue.len(),
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        st.metrics.queued += 1;
        st.metrics.peak_queue_depth = st.metrics.peak_queue_depth.max(st.queue.len());
        let t0 = Instant::now();
        while st.queue.front() != Some(&ticket) || st.in_flight >= self.max_in_flight {
            st = self.turn.wait(st).unwrap();
        }
        st.queue.pop_front();
        st.in_flight += 1;
        st.metrics.admitted += 1;
        st.metrics.peak_in_flight = st.metrics.peak_in_flight.max(st.in_flight);
        st.metrics.total_queue_wait += t0.elapsed();
        drop(st);
        // The next ticket may also be admittable (several permits can
        // free while the queue head sleeps).
        self.turn.notify_all();
        Ok(Permit { admission: self })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fast_path_admits_up_to_the_limit() {
        let adm = Admission::new(2, 4);
        let p1 = adm.acquire().expect("admit");
        let p2 = adm.acquire().expect("admit");
        assert_eq!(adm.load(), (2, 0));
        drop(p1);
        drop(p2);
        assert_eq!(adm.load(), (0, 0));
        let m = adm.metrics();
        assert_eq!((m.admitted, m.rejected, m.queued), (2, 0, 0));
        assert_eq!(m.peak_in_flight, 2);
    }

    #[test]
    fn zero_queue_depth_rejects_at_the_limit() {
        let adm = Admission::new(1, 0);
        let _p = adm.acquire().expect("admit");
        let err = match adm.acquire() {
            Err(o) => o,
            Ok(_) => panic!("must reject"),
        };
        assert_eq!((err.in_flight, err.queued), (1, 0));
        assert_eq!(adm.metrics().rejected, 1);
    }

    #[test]
    fn queued_requests_admit_in_fifo_order() {
        let adm = Arc::new(Admission::new(1, 8));
        let first = adm.acquire().expect("admit");
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let adm = Arc::clone(&adm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so queue order is deterministic.
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
                let p = adm.acquire().expect("admit");
                order.lock().unwrap().push(i);
                std::thread::sleep(Duration::from_millis(5));
                drop(p);
            }));
        }
        // Hold the permit until all four are queued.
        while adm.load().1 < 4 {
            std::thread::yield_now();
        }
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
        let m = adm.metrics();
        assert_eq!(m.admitted, 5);
        assert_eq!(m.queued, 4);
        assert_eq!(m.peak_queue_depth, 4);
        assert!(m.total_queue_wait > Duration::ZERO);
        assert!(m.avg_queue_wait() > Duration::ZERO);
    }
}
