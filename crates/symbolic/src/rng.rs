//! A tiny deterministic PRNG (splitmix64) for workload generation and
//! randomized tests.
//!
//! The repository builds with no third-party crates so it compiles offline
//! (see README "Offline build"); this module replaces the `rand` /
//! `proptest` sampling the seed code used. Determinism is load-bearing:
//! the reference implementation and the compiled program must see
//! byte-identical inputs, and test failures must reproduce from a seed.

/// Splitmix64: tiny, fast, passes BigCrush for this use (test-input
/// generation, not cryptography).
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u128;
        lo + (self.next_u64() as u128 % span) as i64
    }

    /// Uniform in `[lo, hi]` (inclusive).
    pub fn i64_incl(&mut self, lo: i64, hi: i64) -> i64 {
        self.i64_in(lo, hi + 1)
    }

    /// Uniform in `[0, n)`.
    pub fn usize_in(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range [0, 0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f32 in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.f64_unit() as f32) * (hi - lo)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..1000 {
            let x = a.i64_in(-5, 17);
            assert_eq!(x, b.i64_in(-5, 17));
            assert!((-5..17).contains(&x));
        }
        let mut c = Rng64::new(7);
        for _ in 0..1000 {
            let f = c.f32_in(0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
            let u = c.f64_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng64::new(3);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2600..3400).contains(&hits), "got {hits}");
    }
}
