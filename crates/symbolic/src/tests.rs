use crate::{sym, Env, Poly, Rng64, Sym};

fn v(name: &str) -> Poly {
    Poly::var(sym(name))
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

#[test]
fn poly_basic_arithmetic() {
    let n = v("n");
    let m = v("m");
    let p = (n.clone() + c(1)) * (m.clone() - c(1));
    // n*m - n + m - 1
    let q = n.clone() * m.clone() - n.clone() + m.clone() - c(1);
    assert_eq!(p, q);
    assert_eq!((n.clone() - n.clone()), Poly::zero());
    assert!((n.clone() - n).is_zero());
}

#[test]
fn poly_constants_and_vars() {
    assert_eq!(c(5).as_const(), Some(5));
    assert_eq!(Poly::zero().as_const(), Some(0));
    assert_eq!(v("x").as_const(), None);
    assert_eq!(v("x").as_var(), Some(sym("x")));
    assert_eq!((v("x") * c(2)).as_var(), None);
    assert_eq!((v("x") * v("y")).as_var(), None);
}

#[test]
fn poly_subst_expands() {
    // (q*b + 1) for n in n*n - n  ==>  (qb+1)^2 - (qb+1)
    let n = v("n");
    let p = n.clone() * n.clone() - n.clone();
    let def = v("q") * v("b") + c(1);
    let s = p.subst(sym("n"), &def);
    let expected = def.clone() * def.clone() - def;
    assert_eq!(s, expected);
}

#[test]
fn poly_subst_all_is_simultaneous() {
    // x -> y, y -> x must swap, not chain.
    let p = v("x") - v("y");
    let swapped = p.subst_all(&[(sym("x"), v("y")), (sym("y"), v("x"))]);
    assert_eq!(swapped, v("y") - v("x"));
}

#[test]
fn poly_try_div_term() {
    let p = v("n") * v("b") * c(6) + v("b") * c(2);
    let (m, _) = Poly::var(sym("b")).leading_term().unwrap();
    let q = p.try_div_term(&m, 2).unwrap();
    assert_eq!(q, v("n") * c(3) + c(1));
    // Not exact: dividing n + 1 by n fails.
    let (mn, _) = Poly::var(sym("n")).leading_term().unwrap();
    assert!((v("n") + c(1)).try_div_term(&mn, 1).is_none());
}

#[test]
fn poly_eval() {
    let p = v("n") * v("b") + c(1);
    let r = p.eval(|s| {
        if s == sym("n") {
            Some(7)
        } else if s == sym("b") {
            Some(3)
        } else {
            None
        }
    });
    assert_eq!(r, Some(22));
    assert_eq!(p.eval(|_| None), None);
}

#[test]
fn leading_term_prefers_high_degree() {
    let p = v("n") * v("b") + v("n") * c(100) + c(5);
    let (m, coef) = p.leading_term().unwrap();
    assert_eq!(coef, 1);
    assert_eq!(m.degree(), 2);
}

#[test]
fn env_rewrite_fixpoint() {
    let mut env = Env::new();
    env.define(sym("n"), v("q") * v("b") + c(1));
    env.define(sym("q"), v("r") + c(2));
    let p = v("n");
    let rw = env.rewrite(&p);
    assert_eq!(rw, (v("r") + c(2)) * v("b") + c(1));
}

/// The actual inequalities needed by the paper's Fig. 9 NW derivation.
#[test]
fn env_proves_nw_inequalities() {
    let mut env = Env::new();
    env.define(sym("n"), v("q") * v("b") + c(1));
    env.assume_ge(sym("q"), 2);
    env.assume_ge(sym("b"), 2);
    env.assume_ge(sym("i"), 0);

    // strides positive: n > 0, n*b - b > 0
    assert!(env.prove_pos(&v("n")));
    assert!(env.prove_pos(&(v("n") * v("b") - v("b"))));
    // n > b  (dimension non-overlap: stride n vs u*1 = b)
    assert!(env.prove_lt(&v("b"), &v("n")));
    // n - 2b - 1 >= 0  (n > 2b)
    assert!(env.prove_nonneg(&(v("n") - v("b") * c(2) - c(1))));
    // n*b - b > 2b, i.e. q*b^2 - 2b - 1 >= 0 under q>=2, b>=2
    assert!(env.prove_pos(&(v("n") * v("b") - v("b") - v("b") * c(2))));
}

#[test]
fn env_cannot_prove_false_or_unknown() {
    let mut env = Env::new();
    env.assume_ge(sym("x"), 0);
    // x - 1 >= 0 is not implied by x >= 0.
    assert!(!env.prove_nonneg(&(v("x") - c(1))));
    // y is unconstrained.
    assert!(!env.prove_nonneg(&v("y")));
    // -x - 1 is definitely negative.
    assert!(!env.prove_nonneg(&(-(v("x")) - c(1))));
}

#[test]
fn env_upper_bound_substitution() {
    let mut env = Env::new();
    env.assume_ge(sym("i"), 0);
    env.assume_le(sym("i"), v("m") - c(1));
    env.assume_ge(sym("m"), 1);
    env.assume_ge(sym("n"), 0);
    // n + m - 1 - i >= 0 given i <= m - 1 and n >= 0.
    assert!(env.prove_nonneg(&(v("n") + v("m") - c(1) - v("i"))));
    // But m - 1 - i*i cannot be proven (i appears non-linearly).
    assert!(!env.prove_nonneg(&(v("m") - c(1) - v("i") * v("i"))));
}

#[test]
fn env_prove_eq_via_rewriting() {
    let mut env = Env::new();
    env.define(sym("n"), v("q") * v("b") + c(1));
    assert!(env.prove_eq(&(v("n") - c(1)), &(v("q") * v("b"))));
    assert!(!env.prove_eq(&v("n"), &v("q")));
}

// ---------------------------------------------------------------------
// Randomized properties (hand-rolled generators; seeds make every
// failure reproducible, and no third-party framework is needed for the
// offline build).
// ---------------------------------------------------------------------

/// Addition/multiplication on polynomials must agree with evaluation.
#[test]
fn prop_eval_homomorphism() {
    let mut r = Rng64::new(0xE7A1);
    for _ in 0..300 {
        let (a0, a1, a2) = (r.i64_in(-20, 20), r.i64_in(-20, 20), r.i64_in(-20, 20));
        let (b0, b1, b2) = (r.i64_in(-20, 20), r.i64_in(-20, 20), r.i64_in(-20, 20));
        let (x, y) = (r.i64_in(-50, 50), r.i64_in(-50, 50));
        let p = c(a0) + v("px") * c(a1) + v("py") * c(a2);
        let q = c(b0) + v("px") * c(b1) + v("px") * v("py") * c(b2);
        let lookup = |s: Sym| {
            if s == sym("px") {
                Some(x)
            } else if s == sym("py") {
                Some(y)
            } else {
                None
            }
        };
        let pv = p.eval(lookup).unwrap();
        let qv = q.eval(lookup).unwrap();
        assert_eq!((p.clone() + q.clone()).eval(lookup).unwrap(), pv + qv);
        assert_eq!((p.clone() - q.clone()).eval(lookup).unwrap(), pv - qv);
        assert_eq!((p.clone() * q.clone()).eval(lookup).unwrap(), pv * qv);
        assert_eq!((-p.clone()).eval(lookup).unwrap(), -pv);
    }
}

/// Substitution commutes with evaluation.
#[test]
fn prop_subst_eval() {
    let mut r = Rng64::new(0x5B57);
    for _ in 0..300 {
        let (a, b, xval) = (r.i64_in(-9, 9), r.i64_in(-9, 9), r.i64_in(-20, 20));
        let p = v("sx") * v("sx") * c(a) + v("sx") * c(b) + c(1);
        let repl = v("sy") + c(3);
        let s = p.subst(sym("sx"), &repl);
        let lookup = |sm: Sym| if sm == sym("sy") { Some(xval) } else { None };
        let direct = p
            .eval(|sm| {
                if sm == sym("sx") {
                    Some(xval + 3)
                } else {
                    None
                }
            })
            .unwrap();
        assert_eq!(s.eval(lookup).unwrap(), direct);
    }
}

/// Soundness of the prover: whenever `prove_nonneg` succeeds, the
/// polynomial really is non-negative for all assignments satisfying the
/// assumptions (tested on sampled assignments).
#[test]
fn prop_prover_sound() {
    let mut r = Rng64::new(0x9047);
    for _ in 0..500 {
        let (c0, c1, c2) = (r.i64_in(-6, 6), r.i64_in(-6, 6), r.i64_in(-6, 6));
        let (lo_a, lo_b) = (r.i64_in(0, 4), r.i64_in(0, 4));
        let (a, b) = (r.i64_in(0, 12), r.i64_in(0, 12));
        let p = c(c0) + v("pa") * c(c1) + v("pa") * v("pb") * c(c2);
        let mut env = Env::new();
        env.assume_ge(sym("pa"), lo_a);
        env.assume_ge(sym("pb"), lo_b);
        if env.prove_nonneg(&p) {
            let av = lo_a + a;
            let bv = lo_b + b;
            let val = p
                .eval(|s| {
                    if s == sym("pa") {
                        Some(av)
                    } else if s == sym("pb") {
                        Some(bv)
                    } else {
                        None
                    }
                })
                .unwrap();
            assert!(val >= 0, "prover claimed nonneg but p({av},{bv}) = {val}");
        }
    }
}
