//! Assumption environments and the sufficient-condition prover.

use crate::poly::Poly;
use crate::sym::Sym;
use std::collections::HashMap;

/// A set of assumptions about program variables, as collected by the client
/// analyses (e.g. `n = q*b + 1`, `q >= 2`, `b >= 1`, `0 <= i`).
///
/// The prover answers `true` only when the fact *provably* holds under the
/// assumptions; `false` means "could not prove", never "disproved".
#[derive(Clone, Default)]
pub struct Env {
    /// Rewrite rules `var -> definition`, applied to a fixpoint. Must be
    /// acyclic (later definitions may use earlier variables).
    equalities: Vec<(Sym, Poly)>,
    /// Constant lower bounds: `var >= lo`.
    lower: HashMap<Sym, i64>,
    /// Symbolic upper bounds: `var <= poly` (used by aggregation
    /// overestimates, not by the core positivity check).
    upper: HashMap<Sym, Poly>,
}

/// Rewrite-to-fixpoint iteration bound; equality chains deeper than this are
/// not expected in practice (the paper's symbol tables are shallow).
const MAX_REWRITE_ITERS: usize = 16;

impl Env {
    pub fn new() -> Self {
        Env::default()
    }

    /// Record `var = def`. Cyclic definitions are the caller's bug; rewriting
    /// is iteration-bounded so they cannot hang the prover, but they make it
    /// useless.
    pub fn define(&mut self, var: Sym, def: Poly) {
        self.equalities.push((var, def));
    }

    /// Record `var >= lo`. Multiple bounds keep the largest.
    pub fn assume_ge(&mut self, var: Sym, lo: i64) {
        let e = self.lower.entry(var).or_insert(lo);
        *e = (*e).max(lo);
    }

    /// Record `var <= up`.
    pub fn assume_le(&mut self, var: Sym, up: Poly) {
        self.upper.insert(var, up);
    }

    pub fn lower_bound(&self, var: Sym) -> Option<i64> {
        self.lower.get(&var).copied()
    }

    pub fn upper_bound(&self, var: Sym) -> Option<&Poly> {
        self.upper.get(&var)
    }

    pub fn equalities(&self) -> &[(Sym, Poly)] {
        &self.equalities
    }

    /// Apply the equality rewrite rules to a fixpoint (bounded).
    pub fn rewrite(&self, p: &Poly) -> Poly {
        let mut cur = p.clone();
        for _ in 0..MAX_REWRITE_ITERS {
            let mut next = cur.clone();
            for (v, def) in &self.equalities {
                if next.contains_var(*v) {
                    next = next.subst(*v, def);
                }
            }
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// Shift every lower-bounded variable `x >= lo` by `x ↦ x' + lo` (the
    /// new `x'` is implicitly `>= 0`); succeeds when the resulting
    /// polynomial has only non-negative coefficients and every remaining
    /// variable is known non-negative. A sum of products of non-negative
    /// quantities with non-negative coefficients is non-negative.
    fn shift_check_nonneg(&self, p: &Poly) -> bool {
        let vars = p.vars();
        let mut shifts: Vec<(Sym, Poly)> = Vec::new();
        for v in &vars {
            match self.lower.get(v) {
                Some(&lo) => {
                    if lo != 0 {
                        shifts.push((*v, Poly::var(*v) + Poly::constant(lo)));
                    }
                }
                None => return false, // unbounded-below variable
            }
        }
        let shifted = p.subst_all(&shifts);
        // After shifting, any lower bound that was negative makes the
        // variable still potentially negative; require lo >= 0 originally
        // (shifted variable is >= 0 by construction when lo is its bound).
        let ok = shifted.terms().all(|(_, c)| c >= 0);
        ok
    }

    /// Prove `p >= 0` under the assumptions (sufficient condition).
    pub fn prove_nonneg(&self, p: &Poly) -> bool {
        if let Some(c) = p.as_const() {
            return c >= 0;
        }
        if self.shift_check_nonneg(p) {
            return true;
        }
        let rw = self.rewrite(p);
        if let Some(c) = rw.as_const() {
            return c >= 0;
        }
        if rw != *p && self.shift_check_nonneg(&rw) {
            return true;
        }
        // Last resort: replace variables that occur only linearly and only
        // with negative coefficients by their (rewritten) upper bounds.
        for target in [&rw, p] {
            if let Some(sub) = self.upper_substituted(target) {
                if sub != *target && self.shift_check_nonneg(&self.rewrite(&sub)) {
                    return true;
                }
            }
        }
        false
    }

    /// For each variable with a known upper bound that appears only with
    /// negative coefficients (and non-negative cofactors), substitute the
    /// bound: `x <= u`, `c < 0` and `rest >= 0` imply `c·x·rest >= c·u·rest`,
    /// so the substitution only lowers the polynomial — if the result is
    /// non-negative, so was the original.
    fn upper_substituted(&self, p: &Poly) -> Option<Poly> {
        let mut subs: Vec<(Sym, Poly)> = Vec::new();
        for v in p.vars() {
            let Some(u) = self.upper.get(&v) else {
                continue;
            };
            let mut substitutable = true;
            let mut occurs = false;
            for (m, c) in p.terms() {
                let pw = m.power(v);
                if pw == 0 {
                    continue;
                }
                occurs = true;
                // Soundness: `v` linear, coefficient negative, and every
                // other variable in the monomial non-negative.
                let cofactor_nonneg = m
                    .vars()
                    .filter(|w| *w != v)
                    .all(|w| self.lower.get(&w).is_some_and(|&lo| lo >= 0));
                if pw != 1 || c > 0 || !cofactor_nonneg {
                    substitutable = false;
                    break;
                }
            }
            if occurs && substitutable {
                subs.push((v, u.clone()));
            }
        }
        if subs.is_empty() {
            None
        } else {
            Some(p.subst_all(&subs))
        }
    }

    /// Prove `p > 0`.
    pub fn prove_pos(&self, p: &Poly) -> bool {
        self.prove_nonneg(&(p.clone() - Poly::constant(1)))
    }

    /// Prove `a <= b`.
    pub fn prove_le(&self, a: &Poly, b: &Poly) -> bool {
        self.prove_nonneg(&(b.clone() - a.clone()))
    }

    /// Prove `a < b`.
    pub fn prove_lt(&self, a: &Poly, b: &Poly) -> bool {
        self.prove_pos(&(b.clone() - a.clone()))
    }

    /// Prove `a = b` (by canonical-form equality after rewriting).
    pub fn prove_eq(&self, a: &Poly, b: &Poly) -> bool {
        if a == b {
            return true;
        }
        self.rewrite(a) == self.rewrite(b)
    }
}

impl std::fmt::Debug for Env {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Env {{")?;
        for (v, d) in &self.equalities {
            writeln!(f, "  {v} = {d:?}")?;
        }
        for (v, lo) in &self.lower {
            writeln!(f, "  {v} >= {lo}")?;
        }
        for (v, up) in &self.upper {
            writeln!(f, "  {v} <= {up:?}")?;
        }
        write!(f, "}}")
    }
}
