//! Interned symbols (program variables appearing in index expressions).

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// An interned symbol. Cheap to copy, hash and compare; the ordering is the
/// interning order, which is stable within a process and only used to give
/// monomials a canonical form.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

/// Intern `name`, returning its symbol. Interning the same name twice yields
/// the same symbol.
pub fn sym(name: &str) -> Sym {
    let mut it = interner().lock().unwrap();
    if let Some(&id) = it.by_name.get(name) {
        return Sym(id);
    }
    let id = it.names.len() as u32;
    it.names.push(name.to_string());
    it.by_name.insert(name.to_string(), id);
    Sym(id)
}

/// The name a symbol was interned under.
pub fn sym_name(s: Sym) -> String {
    interner().lock().unwrap().names[s.0 as usize].clone()
}

impl Sym {
    /// A fresh symbol guaranteed distinct from all previously interned ones,
    /// with a `prefix` for readability in debug output.
    pub fn fresh(prefix: &str) -> Sym {
        let mut it = interner().lock().unwrap();
        let id = it.names.len() as u32;
        let name = format!("{prefix}#{id}");
        it.names.push(name.clone());
        it.by_name.insert(name, id);
        Sym(id)
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", sym_name(*self))
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", sym_name(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        assert_eq!(sym("n"), sym("n"));
        assert_ne!(sym("n"), sym("m"));
        assert_eq!(sym_name(sym("n")), "n");
    }

    #[test]
    fn fresh_is_distinct() {
        let a = Sym::fresh("t");
        let b = Sym::fresh("t");
        assert_ne!(a, b);
        assert!(sym_name(a).starts_with("t#"));
    }
}
