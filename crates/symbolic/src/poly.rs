//! Multivariate integer polynomials in canonical (expanded) form.

use crate::sym::Sym;
use std::collections::BTreeMap;
use std::ops::{Add, Mul, Neg, Sub};

/// A product of variables with positive integer powers, in canonical order.
/// The empty monomial is the constant `1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Monomial(Vec<(Sym, u32)>);

impl Monomial {
    pub fn one() -> Self {
        Monomial(Vec::new())
    }

    pub fn var(s: Sym) -> Self {
        Monomial(vec![(s, 1)])
    }

    pub fn is_one(&self) -> bool {
        self.0.is_empty()
    }

    /// Total degree (sum of powers).
    pub fn degree(&self) -> u32 {
        self.0.iter().map(|&(_, p)| p).sum()
    }

    pub fn vars(&self) -> impl Iterator<Item = Sym> + '_ {
        self.0.iter().map(|&(s, _)| s)
    }

    pub fn factors(&self) -> &[(Sym, u32)] {
        &self.0
    }

    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut map: BTreeMap<Sym, u32> = BTreeMap::new();
        for &(s, p) in self.0.iter().chain(other.0.iter()) {
            *map.entry(s).or_insert(0) += p;
        }
        Monomial(map.into_iter().collect())
    }

    /// `self / other` when `other` divides `self` exactly.
    pub fn try_div(&self, other: &Monomial) -> Option<Monomial> {
        let mut map: BTreeMap<Sym, u32> = self.0.iter().copied().collect();
        for &(s, p) in &other.0 {
            let e = map.get_mut(&s)?;
            if *e < p {
                return None;
            }
            *e -= p;
            if *e == 0 {
                map.remove(&s);
            }
        }
        Some(Monomial(map.into_iter().collect()))
    }

    pub fn power(&self, s: Sym) -> u32 {
        self.0
            .iter()
            .find_map(|&(v, p)| (v == s).then_some(p))
            .unwrap_or(0)
    }
}

/// A polynomial with `i64` coefficients, stored as a map from monomials to
/// non-zero coefficients. The zero polynomial has an empty map.
///
/// Arithmetic keeps the representation canonical, so structural equality is
/// semantic equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    pub fn zero() -> Self {
        Poly::default()
    }

    pub fn constant(c: i64) -> Self {
        let mut p = Poly::zero();
        if c != 0 {
            p.terms.insert(Monomial::one(), c);
        }
        p
    }

    pub fn var(s: Sym) -> Self {
        let mut p = Poly::zero();
        p.terms.insert(Monomial::var(s), 1);
        p
    }

    /// Build from raw terms (coefficient, monomial); zero coefficients are
    /// dropped, duplicates summed.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, i64)>) -> Self {
        let mut p = Poly::zero();
        for (m, c) in terms {
            p.add_term(m, c);
        }
        p
    }

    fn add_term(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let e = self.terms.entry(m).or_insert(0);
        *e += c;
        if *e == 0 {
            // Remove to keep canonical form; need the key back.
            let key = self
                .terms
                .iter()
                .find(|(_, &v)| v == 0)
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.terms.remove(&k);
            }
        }
    }

    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some(c)` iff the polynomial is the constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.terms.len() == 1 {
            let (m, &c) = self.terms.iter().next().unwrap();
            if m.is_one() {
                return Some(c);
            }
        }
        None
    }

    /// `Some(s)` iff the polynomial is exactly the variable `s`.
    pub fn as_var(&self) -> Option<Sym> {
        if self.terms.len() == 1 {
            let (m, &c) = self.terms.iter().next().unwrap();
            if c == 1 && m.factors().len() == 1 && m.factors()[0].1 == 1 {
                return Some(m.factors()[0].0);
            }
        }
        None
    }

    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, i64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The constant term.
    pub fn constant_term(&self) -> i64 {
        self.terms.get(&Monomial::one()).copied().unwrap_or(0)
    }

    /// All distinct variables occurring in the polynomial.
    pub fn vars(&self) -> Vec<Sym> {
        let mut vs: Vec<Sym> = self.terms.keys().flat_map(|m| m.vars()).collect();
        vs.sort();
        vs.dedup();
        vs
    }

    pub fn contains_var(&self, s: Sym) -> bool {
        self.terms.keys().any(|m| m.power(s) > 0)
    }

    /// Total degree of the polynomial (0 for constants and zero).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Substitute `s := value` and re-expand.
    pub fn subst(&self, s: Sym, value: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            let p = m.power(s);
            if p == 0 {
                out.add_term(m.clone(), c);
                continue;
            }
            // rest = m / s^p
            let mut rest: Vec<(Sym, u32)> = m
                .factors()
                .iter()
                .copied()
                .filter(|&(v, _)| v != s)
                .collect();
            rest.sort();
            let rest = Monomial(rest);
            let mut acc = Poly::constant(c) * Poly::from_terms([(rest, 1)]);
            for _ in 0..p {
                acc = acc * value.clone();
            }
            out = out + acc;
        }
        out
    }

    /// Substitute several variables simultaneously.
    pub fn subst_all(&self, map: &[(Sym, Poly)]) -> Poly {
        // Simultaneous substitution: expand each term against the map.
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            let mut acc = Poly::constant(c);
            for &(v, p) in m.factors() {
                let repl = map
                    .iter()
                    .find_map(|(s, q)| (*s == v).then(|| q.clone()))
                    .unwrap_or_else(|| Poly::var(v));
                for _ in 0..p {
                    acc = acc * repl.clone();
                }
            }
            out = out + acc;
        }
        out
    }

    /// Evaluate with a total assignment. Returns `None` if a variable is
    /// unbound.
    pub fn eval<F: Fn(Sym) -> Option<i64>>(&self, lookup: F) -> Option<i64> {
        let mut total: i64 = 0;
        for (m, c) in self.terms() {
            let mut v: i64 = c;
            for &(s, p) in m.factors() {
                let x = lookup(s)?;
                for _ in 0..p {
                    v = v.wrapping_mul(x);
                }
            }
            total = total.wrapping_add(v);
        }
        Some(total)
    }

    /// The "most complex" term: highest degree, then largest monomial, i.e.
    /// the term the non-overlap test distributes first (paper footnote 27).
    pub fn leading_term(&self) -> Option<(Monomial, i64)> {
        self.terms
            .iter()
            .max_by_key(|(m, _)| (m.degree(), (*m).clone()))
            .map(|(m, &c)| (m.clone(), c))
    }

    /// Try `self / divisor` yielding an exact polynomial quotient, for the
    /// common case where `divisor` is a single term. Returns `None` when the
    /// division is not exact.
    pub fn try_div_term(&self, dm: &Monomial, dc: i64) -> Option<Poly> {
        if dc == 0 {
            return None;
        }
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            if c % dc != 0 {
                return None;
            }
            let q = m.try_div(dm)?;
            out.add_term(q, c / dc);
        }
        Some(out)
    }

    /// Multiply by an integer scalar.
    pub fn scale(&self, k: i64) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in self.terms() {
            out.add_term(m.clone(), c * k);
        }
        out
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (m, c) in rhs.terms {
            out.add_term(m, c);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        self + (-rhs)
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in self.terms {
            out.add_term(m, -c);
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        let mut out = Poly::zero();
        for (m1, c1) in self.terms() {
            for (m2, c2) in rhs.terms() {
                out.add_term(m1.mul(m2), c1 * c2);
            }
        }
        out
    }
}

impl From<i64> for Poly {
    fn from(c: i64) -> Poly {
        Poly::constant(c)
    }
}

impl From<Sym> for Poly {
    fn from(s: Sym) -> Poly {
        Poly::var(s)
    }
}

impl std::fmt::Debug for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        // Print highest-degree terms first for readability.
        let mut terms: Vec<_> = self.terms.iter().collect();
        terms.sort_by_key(|(m, _)| std::cmp::Reverse((m.degree(), (*m).clone())));
        for (m, c) in terms {
            if first {
                if *c < 0 {
                    write!(f, "-")?;
                }
                first = false;
            } else if *c < 0 {
                write!(f, " - ")?;
            } else {
                write!(f, " + ")?;
            }
            let a = c.abs();
            if m.is_one() {
                write!(f, "{a}")?;
            } else {
                if a != 1 {
                    write!(f, "{a}*")?;
                }
                let mut firstv = true;
                for &(s, p) in m.factors() {
                    if !firstv {
                        write!(f, "*")?;
                    }
                    firstv = false;
                    if p == 1 {
                        write!(f, "{s}")?;
                    } else {
                        write!(f, "{s}^{p}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}
