use crate::parse_program;
use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, InputValue, KernelRegistry, Mode};

fn run_both(
    src: &str,
    inputs: &[InputValue],
) -> (
    Vec<arraymem_exec::OutputValue>,
    arraymem_exec::Stats,
    arraymem_exec::Stats,
) {
    let elab = parse_program(src).expect("parse");
    let kernels = KernelRegistry::new();
    let unopt = compile(
        &elab.program,
        &Options::default().with_env(elab.env.clone()),
    )
    .unwrap();
    let opt = compile(
        &elab.program,
        &Options::optimized().with_env(elab.env.clone()),
    )
    .unwrap();
    let (u, us) = run_program(&unopt.program, inputs, &kernels, Mode::Memory, 1).unwrap();
    let (o, os) = run_program(&opt.program, inputs, &kernels, Mode::Memory, 1).unwrap();
    assert_eq!(u, o, "unopt and opt disagree");
    (u, us, os)
}

/// The paper's Fig. 1 (left), in concrete syntax — parsed, compiled,
/// short-circuited, executed.
#[test]
fn fig1_in_concrete_syntax() {
    let src = r"
        -- add the first row to the diagonal of a flattened n*n matrix
        assume n >= 1
        fn diag_plus_row(n: i64, A: [n*n]f32) =
          let diag = A[lmad 0 + {(n : n+1)}] in
          let row  = A[lmad 0 + {(n : 1)}] in
          let X    = map (\d r -> d + r) diag row in
          let A2   = A with [lmad 0 + {(n : n+1)}] = X in
          A2
    ";
    let n = 5usize;
    let data: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
    let (out, us, os) = run_both(
        src,
        &[
            InputValue::I64(n as i64),
            InputValue::ArrayF32(data.clone()),
        ],
    );
    let mut expect = data;
    for i in 0..n {
        expect[i * n + i] += expect[i];
    }
    assert_eq!(out[0].as_f32s(), &expect[..]);
    // The update is short-circuited.
    assert!(us.bytes_copied > 0);
    assert_eq!(os.bytes_copied, 0);
}

#[test]
fn triplet_slices_and_concat() {
    let src = r"
        assume n >= 2
        fn halves(n: i64, A: [2*n]f32) =
          let lo = A[0 : n : 1] in
          let hi = A[n : n : 1] in
          let swapped = concat hi lo in
          swapped
    ";
    let data: Vec<f32> = (0..8).map(|i| i as f32).collect();
    let (out, _, _) = run_both(src, &[InputValue::I64(4), InputValue::ArrayF32(data)]);
    assert_eq!(out[0].as_f32s(), &[4.0, 5.0, 6.0, 7.0, 0.0, 1.0, 2.0, 3.0]);
}

#[test]
fn loops_and_scalar_updates() {
    let src = r"
        assume n >= 1
        fn squares(n: i64) =
          let z = replicate [n] 0 in
          let out = loop (acc = z) for i < n do {
            let acc2 = acc with [i] = i * i in
            acc2
          } in
          out
    ";
    let (out, _, _) = run_both(src, &[InputValue::I64(5)]);
    assert_eq!(out[0].as_i64s(), &[0, 1, 4, 9, 16]);
}

#[test]
fn if_expressions() {
    let src = r"
        fn pick(c: bool, A: [4]i64) =
          let t = copy A in
          let r = if c then { t } else {
            let z = replicate [4] 9 in
            z
          } in
          r
    ";
    let data = vec![1i64, 2, 3, 4];
    let (out, _, _) = run_both(
        src,
        &[InputValue::Bool(true), InputValue::ArrayI64(data.clone())],
    );
    assert_eq!(out[0].as_i64s(), &data[..]);
    let (out, _, _) = run_both(src, &[InputValue::Bool(false), InputValue::ArrayI64(data)]);
    assert_eq!(out[0].as_i64s(), &[9, 9, 9, 9]);
}

#[test]
fn transforms_and_element_reads() {
    let src = r"
        fn spin(A: [3][4]i64) =
          let t = transpose A in
          let f = flatten t in
          let x = f[5] in
          let r = replicate [2] x in
          r
    ";
    let data: Vec<i64> = (0..12).collect();
    let (out, _, _) = run_both(src, &[InputValue::ArrayI64(data)]);
    // t is 4x3 with t[i][j] = A[j][i]; flat index 5 = t[1][2] = A[2][1] = 9.
    assert_eq!(out[0].as_i64s(), &[9, 9]);
}

#[test]
fn iota_map_and_arith() {
    let src = r"
        assume n >= 1
        fn affine(n: i64) =
          let xs = iota n in
          let ys = map (\x -> x * 3 + 1) xs in
          ys
    ";
    let (out, _, _) = run_both(src, &[InputValue::I64(4)]);
    assert_eq!(out[0].as_i64s(), &[1, 4, 7, 10]);
}

/// A miniature NW anti-diagonal step written in concrete syntax, with the
/// `assume` header feeding the Fig. 9 proof: the update must elide.
#[test]
fn nw_step_in_concrete_syntax() {
    let src = r"
        assume q >= 2
        assume b >= 2
        assume n = q*b + 1
        fn nw_step(n: i64, q: i64, b: i64, A: [n*n]i64) =
          let out = loop (M = A) for d < q do {
            let rv = M[lmad d*b + {(d+1 : n*b - b)}] in
            let rh = M[lmad d*b + 1 + {(d+1 : n*b - b)}] in
            let sums = map (\v h -> v + h) rv rh in
            let M2 = M with [lmad d*b + n + 1 + {(d+1 : n*b - b)}] = sums in
            M2
          } in
          out
    ";
    let elab = parse_program(src).expect("parse");
    let opt = compile(
        &elab.program,
        &Options::optimized().with_env(elab.env.clone()),
    )
    .unwrap();
    assert_eq!(
        opt.report.successes(),
        1,
        "the NW-style update should circuit: {:?}",
        opt.report.candidates
    );
}

#[test]
fn parse_errors_are_reported() {
    assert!(parse_program("fn broken(").is_err());
    assert!(parse_program("fn f(x: i64) = y").is_err(), "unbound result");
    assert!(parse_program("fn f(x: wat) = x").is_err(), "unknown type");
    assert!(
        parse_program("assume n >= fn f(n: i64) = n").is_err(),
        "malformed assume"
    );
}

/// The elaborated output always passes the IR validator (checked inside
/// parse_program) and round-trips through the pretty-printer.
#[test]
fn elaboration_validates_and_prints() {
    let src = r"
        assume n >= 1
        fn p(n: i64, A: [n]f32) =
          let B = reverse A in
          let C = copy B in
          C
    ";
    let elab = parse_program(src).unwrap();
    let text = arraymem_ir::pretty::program_to_string(&elab.program);
    assert!(text.contains("Reverse"));
}
