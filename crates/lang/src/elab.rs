//! Elaboration output and scalar-type inference helpers.

use arraymem_ir::{BinOp, Program, ScalarExp, Type, UnOp, Var};
use arraymem_symbolic::Env;
use std::collections::HashMap;

/// A parsed-and-elaborated source program: the IR plus the assumption
/// environment collected from `assume` headers.
pub struct Elaborated {
    pub program: Program,
    pub env: Env,
}

/// Infer the element type of a scalar expression from literals and the
/// types of the variables it mentions. `f32` is contagious; comparisons
/// yield `Bool`.
pub fn infer_scalar_type(e: &ScalarExp, types: &HashMap<Var, Type>) -> arraymem_ir::ElemType {
    use arraymem_ir::ElemType as ET;
    match e {
        ScalarExp::Const(c) => c.elem_type(),
        ScalarExp::Var(v) => types.get(v).and_then(|t| t.elem()).unwrap_or(ET::I64),
        ScalarExp::Size(_) => ET::I64,
        ScalarExp::Bin(op, a, b) => match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::And | BinOp::Or => ET::Bool,
            _ => {
                let (ta, tb) = (infer_scalar_type(a, types), infer_scalar_type(b, types));
                if ta == ET::F32 || tb == ET::F32 {
                    ET::F32
                } else if ta == ET::F64 || tb == ET::F64 {
                    ET::F64
                } else {
                    ET::I64
                }
            }
        },
        ScalarExp::Un(op, a) => match op {
            UnOp::Not => ET::Bool,
            UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::ToF32 => ET::F32,
            UnOp::ToF64 => ET::F64,
            UnOp::ToI64 => ET::I64,
            UnOp::Neg | UnOp::Abs => infer_scalar_type(a, types),
        },
        ScalarExp::Index(v, _) => types.get(v).and_then(|t| t.elem()).unwrap_or(ET::I64),
        ScalarExp::Select(_, t, _) => infer_scalar_type(t, types),
    }
}
