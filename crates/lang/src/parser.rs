//! Recursive-descent parser and on-the-fly elaboration into the IR.

use crate::elab::{infer_scalar_type, Elaborated};
use crate::lexer::{lex, SpannedTok, Tok};
use arraymem_ir::builder::{BlockBuilder, Builder};
use arraymem_ir::{BinOp, Block, ElemType, ScalarExp, SliceSpec, Type, UnOp, Var};
use arraymem_lmad::{Dim, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly};
use std::collections::HashMap;

/// Parse and elaborate a source program.
pub fn parse_program(src: &str) -> Result<Elaborated, String> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        scope: HashMap::new(),
        types: HashMap::new(),
        env: Env::new(),
        builder: None,
        pending_ge: Vec::new(),
        pending_eq: Vec::new(),
    };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Name → variable, lexical (saved/restored around nested blocks).
    scope: HashMap<String, Var>,
    /// Variable → type (mirror of the builder's table, readable here).
    types: HashMap<Var, Type>,
    env: Env,
    builder: Option<Builder>,
    /// `assume x >= c` headers, resolved once parameters are bound.
    pending_ge: Vec<(String, i64)>,
    /// `assume x = e` headers (definitions for the prover).
    pending_eq: Vec<(String, Poly)>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), String> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(format!(
                "line {}: expected {:?}, found {:?}",
                self.line(),
                t,
                self.peek()
            ))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(format!(
                "line {}: expected identifier, found {other:?}",
                self.line()
            )),
        }
    }

    fn lookup(&self, name: &str) -> Result<Var, String> {
        self.scope
            .get(name)
            .copied()
            .ok_or_else(|| format!("unbound name {name}"))
    }

    fn builder(&mut self) -> &mut Builder {
        self.builder.as_mut().expect("builder initialized")
    }

    // ---------------------------------------------------------------
    // program := assume* fn
    fn program(&mut self) -> Result<Elaborated, String> {
        while *self.peek() == Tok::Assume {
            self.bump();
            let name = self.ident()?;
            match self.bump() {
                Tok::Ge => {
                    let lo = match self.bump() {
                        Tok::Int(n) => n,
                        other => return Err(format!("assume: expected integer, found {other:?}")),
                    };
                    // The name may not be bound yet; assumptions attach to
                    // the parameter variable once declared, so remember by
                    // name and fix up after the parameter list.
                    self.pending_ge.push((name, lo));
                }
                Tok::Eq => {
                    let poly = self.size_expr_by_name()?;
                    self.pending_eq.push((name, poly));
                }
                other => return Err(format!("assume: expected >= or =, found {other:?}")),
            }
        }
        self.expect(Tok::Fn)?;
        let fname = self.ident()?;
        self.builder = Some(Builder::new(&fname));
        self.expect(Tok::LParen)?;
        loop {
            let pname = self.ident()?;
            self.expect(Tok::Colon)?;
            let ty = self.parse_type_by_name()?;
            let v = match &ty {
                PType::Scalar(et) => self.builder().scalar_param(&pname, *et),
                PType::Array(et, dims) => {
                    let shape: Vec<Poly> = dims
                        .iter()
                        .map(|d| self.resolve_size(d))
                        .collect::<Result<_, _>>()?;
                    self.builder().array_param(&pname, *et, shape)
                }
            };
            let ty_v = self.builder().ty(v);
            self.types.insert(v, ty_v);
            self.scope.insert(pname, v);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Eq)?;
        // Resolve the pending assumptions now that parameters exist.
        for (name, lo) in std::mem::take(&mut self.pending_ge) {
            let v = self.lookup(&name)?;
            self.env.assume_ge(v, lo);
        }
        for (name, poly) in std::mem::take(&mut self.pending_eq) {
            let v = self.lookup(&name)?;
            let poly = self.resolve_size(&poly)?;
            self.env.define(v, poly);
        }
        let block = self.block()?;
        let program = self.builder.take().unwrap().finish(block);
        arraymem_ir::validate::validate(&program)?;
        Ok(Elaborated {
            program,
            env: std::mem::take(&mut self.env),
        })
    }

    // block := ("let" pat "=" exp "in")* result
    fn block(&mut self) -> Result<Block, String> {
        let mut bb = self.builder().block();
        while *self.peek() == Tok::Let {
            self.bump();
            let names: Vec<String> = if *self.peek() == Tok::LParen {
                self.bump();
                let mut ns = vec![self.ident()?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    ns.push(self.ident()?);
                }
                self.expect(Tok::RParen)?;
                ns
            } else {
                vec![self.ident()?]
            };
            self.expect(Tok::Eq)?;
            let vars = self.exp(&mut bb, &names)?;
            if vars.len() != names.len() {
                return Err(format!(
                    "line {}: pattern binds {} names but expression yields {}",
                    self.line(),
                    names.len(),
                    vars.len()
                ));
            }
            for (n, v) in names.iter().zip(&vars) {
                self.scope.insert(n.clone(), *v);
                let ty_v = self.builder().ty(*v);
                self.types.insert(*v, ty_v);
            }
            self.expect(Tok::In)?;
        }
        // result := IDENT | "(" IDENT, ... ")"
        let results = if *self.peek() == Tok::LParen {
            self.bump();
            let mut rs = vec![self.ident_var()?];
            while *self.peek() == Tok::Comma {
                self.bump();
                rs.push(self.ident_var()?);
            }
            self.expect(Tok::RParen)?;
            rs
        } else {
            vec![self.ident_var()?]
        };
        Ok(bb.finish(results))
    }

    /// Parse an identifier and resolve it in scope.
    fn ident_var(&mut self) -> Result<Var, String> {
        let name = self.ident()?;
        self.lookup(&name)
    }

    // ---------------------------------------------------------------
    // Expressions. Returns the bound variables (usually one).
    fn exp(&mut self, bb: &mut BlockBuilder, names: &[String]) -> Result<Vec<Var>, String> {
        let name0 = names.first().map(|s| s.as_str()).unwrap_or("x");
        match self.peek().clone() {
            Tok::Ident(kw) => match kw.as_str() {
                "iota" => {
                    self.bump();
                    let n = self.size_atom()?;
                    Ok(vec![bb.iota(name0, n)])
                }
                "replicate" => {
                    self.bump();
                    self.expect(Tok::LBrack)?;
                    let mut dims = vec![self.size_expr()?];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        dims.push(self.size_expr()?);
                    }
                    self.expect(Tok::RBrack)?;
                    let value = self.scalar_expr()?;
                    let et = infer_scalar_type(&value, &self.types);
                    Ok(vec![bb.replicate_typed(name0, et, dims, value)])
                }
                "copy" => {
                    self.bump();
                    let src = self.ident_var()?;
                    Ok(vec![bb.copy(name0, src)])
                }
                "concat" => {
                    self.bump();
                    let mut args = vec![self.ident_var()?];
                    while matches!(self.peek(), Tok::Ident(_)) && *self.peek2() != Tok::With {
                        // Stop at `in` (a keyword, so not Ident).
                        args.push(self.ident_var()?);
                    }
                    Ok(vec![bb.concat(name0, args)])
                }
                "transpose" => {
                    self.bump();
                    let src = self.ident_var()?;
                    let rank = bb.ty(src).rank();
                    let mut perm: Vec<usize> = (0..rank).collect();
                    if rank >= 2 {
                        perm.swap(rank - 2, rank - 1);
                    }
                    Ok(vec![bb.transform(name0, src, Transform::Permute(perm))])
                }
                "reverse" => {
                    self.bump();
                    let src = self.ident_var()?;
                    Ok(vec![bb.transform(name0, src, Transform::Reverse(0))])
                }
                "flatten" => {
                    self.bump();
                    let src = self.ident_var()?;
                    let total = bb.ty(src).num_elems();
                    Ok(vec![bb.transform(
                        name0,
                        src,
                        Transform::Reshape(vec![total]),
                    )])
                }
                "unflatten" => {
                    self.bump();
                    let a = self.size_atom()?;
                    let b = self.size_atom()?;
                    let src = self.ident_var()?;
                    Ok(vec![bb.transform(
                        name0,
                        src,
                        Transform::Reshape(vec![a, b]),
                    )])
                }
                _ => self.ident_headed_exp(bb, name0),
            },
            Tok::Map => {
                self.bump();
                self.map_exp(bb, name0)
            }
            Tok::Loop => {
                self.bump();
                self.loop_exp(bb, names)
            }
            Tok::If => {
                self.bump();
                self.if_exp(bb, names)
            }
            _ => {
                // A scalar expression.
                let e = self.scalar_expr()?;
                let et = infer_scalar_type(&e, &self.types);
                Ok(vec![bb.scalar(name0, et, e)])
            }
        }
    }

    /// Expressions headed by a variable name: `x with [slice] = rhs`,
    /// `x[slice]` (array read) or a scalar expression.
    fn ident_headed_exp(&mut self, bb: &mut BlockBuilder, name0: &str) -> Result<Vec<Var>, String> {
        // Look ahead without consuming: IDENT (with | [slicespec-with-colon])
        let save = self.pos;
        let head = self.ident()?;
        match self.peek().clone() {
            Tok::With => {
                self.bump();
                self.expect(Tok::LBrack)?;
                let slice = self.slice_spec()?;
                self.expect(Tok::RBrack)?;
                self.expect(Tok::Eq)?;
                let dst = self.lookup(&head)?;
                // rhs: a bare array name, or a scalar expression.
                if let Tok::Ident(rhs) = self.peek().clone() {
                    if let Ok(v) = self.lookup(&rhs) {
                        if self.types.get(&v).map(|t| t.is_array()).unwrap_or(false)
                            && !matches!(
                                self.peek2(),
                                Tok::Plus | Tok::Minus | Tok::Star | Tok::Slash | Tok::LBrack
                            )
                        {
                            self.bump();
                            return Ok(vec![bb.update(name0, dst, slice, v)]);
                        }
                    }
                }
                let value = self.scalar_expr()?;
                match slice {
                    SliceSpec::Point(pt) => Ok(vec![bb.update_scalar(name0, dst, pt, value)]),
                    _ => Err("scalar update requires a point index".into()),
                }
            }
            Tok::LBrack if self.slice_ahead_is_array() => {
                self.bump(); // [
                let slice = self.slice_spec()?;
                self.expect(Tok::RBrack)?;
                let src = self.lookup(&head)?;
                let tr = match slice {
                    SliceSpec::Triplet(ts) => Transform::Slice(ts),
                    SliceSpec::Lmad(l) => Transform::LmadSlice(l),
                    SliceSpec::Point(_) | SliceSpec::Scatter(_) => {
                        unreachable!("array slice has a range")
                    }
                };
                Ok(vec![bb.transform(name0, src, tr)])
            }
            _ => {
                self.pos = save;
                let e = self.scalar_expr()?;
                let et = infer_scalar_type(&e, &self.types);
                Ok(vec![bb.scalar(name0, et, e)])
            }
        }
    }

    /// After seeing `IDENT [`, decide whether the bracket content is an
    /// array slice (contains `:` at this bracket depth, or starts with
    /// `lmad`) or a scalar element read.
    fn slice_ahead_is_array(&self) -> bool {
        let mut i = self.pos + 1; // after '['
        if self.toks.get(i).map(|t| &t.tok) == Some(&Tok::Lmad) {
            return true;
        }
        let mut depth = 0i32;
        while let Some(t) = self.toks.get(i) {
            match &t.tok {
                Tok::LBrack | Tok::LParen | Tok::LBrace => depth += 1,
                Tok::RBrack if depth == 0 => return false,
                Tok::RBrack | Tok::RParen | Tok::RBrace => depth -= 1,
                Tok::Colon if depth == 0 => return true,
                Tok::Eof => return false,
                _ => {}
            }
            i += 1;
        }
        false
    }

    // map (\a b -> body) xs ys
    fn map_exp(&mut self, bb: &mut BlockBuilder, name0: &str) -> Result<Vec<Var>, String> {
        self.expect(Tok::LParen)?;
        self.expect(Tok::Backslash)?;
        let mut pnames = vec![self.ident()?];
        while matches!(self.peek(), Tok::Ident(_)) {
            pnames.push(self.ident()?);
        }
        self.expect(Tok::Arrow)?;
        // Body parsed later (needs param vars in scope); remember position.
        let body_start = self.pos;
        // Skip to the matching ')'.
        let mut depth = 0i32;
        while !(depth == 0 && *self.peek() == Tok::RParen) {
            match self.peek() {
                Tok::LParen => depth += 1,
                Tok::RParen => depth -= 1,
                Tok::Eof => return Err("unterminated lambda".into()),
                _ => {}
            }
            self.bump();
        }
        let body_end = self.pos;
        self.expect(Tok::RParen)?;
        let mut inputs = vec![self.ident_var()?];
        while matches!(self.peek(), Tok::Ident(_)) {
            inputs.push(self.ident_var()?);
        }
        if inputs.len() != pnames.len() {
            return Err(format!(
                "map: {} lambda params for {} inputs",
                pnames.len(),
                inputs.len()
            ));
        }
        let width = self
            .types
            .get(&inputs[0])
            .and_then(|t| t.shape().first().cloned())
            .ok_or("map over a scalar")?;
        // Elaborate: bind params, re-parse the body as a scalar expr.
        let saved_scope = self.scope.clone();
        let after = self.pos;
        // Infer the output type after binding parameter types.
        let input_types: Vec<ElemType> = inputs
            .iter()
            .map(|v| self.types[v].elem().unwrap())
            .collect();
        let pn = pnames.clone();
        let it = input_types.clone();
        let (body_toks_start, body_toks_end) = (body_start, body_end);
        // We cannot capture `self` in the closure handed to map_lambda, so
        // parse the body expression separately first.
        self.pos = body_toks_start;
        // Bind lambda parameter names to placeholder vars for parsing.
        let mut pvars = Vec::new();
        {
            let btmp = self.builder().block();
            for (nm, et) in pn.iter().zip(&it) {
                let v = btmp.lambda_param(nm, Type::Scalar(*et));
                self.scope.insert(nm.clone(), v);
                self.types.insert(v, Type::Scalar(*et));
                pvars.push(v);
            }
        }
        let body_expr = self.scalar_expr()?;
        if self.pos != body_toks_end {
            return Err(format!(
                "line {}: trailing tokens in lambda body",
                self.line()
            ));
        }
        self.pos = after;
        self.scope = saved_scope;
        let out_et = infer_scalar_type(&body_expr, &self.types);
        // Build the map with a lambda that emits the parsed body.
        let params: Vec<(Var, Type)> = pvars
            .iter()
            .zip(&it)
            .map(|(v, et)| (*v, Type::Scalar(*et)))
            .collect();
        let mut inner = self.builder().block();
        let res = inner.scalar("lam", out_et, body_expr);
        let body_block = inner.finish(vec![res]);
        let v = bb.bind(
            name0,
            Type::array(out_et, vec![width.clone()]),
            arraymem_ir::Exp::Map(arraymem_ir::MapExp {
                width,
                inputs,
                body: arraymem_ir::MapBody::Lambda {
                    params,
                    body: body_block,
                },
                in_place_result: false,
            }),
        );
        Ok(vec![v])
    }

    // loop (p1 = init1, ...) for i < count do { block }
    fn loop_exp(&mut self, bb: &mut BlockBuilder, names: &[String]) -> Result<Vec<Var>, String> {
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        let mut inits = Vec::new();
        loop {
            let pname = self.ident()?;
            self.expect(Tok::Eq)?;
            let init = self.ident_var()?;
            let pv = bb.loop_param(&pname, init);
            self.types.insert(pv, bb.ty(init));
            params.push((pname, pv));
            inits.push(init);
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::For)?;
        let iname = self.ident()?;
        let iv = bb.loop_index(&iname);
        self.types.insert(iv, Type::Scalar(ElemType::I64));
        self.expect(Tok::Lt)?;
        let count = self.size_expr()?;
        self.expect(Tok::Do)?;
        self.expect(Tok::LBrace)?;
        let saved = self.scope.clone();
        for (pname, pv) in &params {
            self.scope.insert(pname.clone(), *pv);
        }
        self.scope.insert(iname.clone(), iv);
        // Loop index is usable in size expressions.
        let body = self.block()?;
        self.scope = saved;
        self.expect(Tok::RBrace)?;
        let ptys: Vec<(Var, Type)> = params
            .iter()
            .map(|(_, pv)| (*pv, self.types[pv].clone()))
            .collect();
        let outs = bb.loop_(
            names.iter().map(|s| s.as_str()).collect(),
            ptys,
            inits,
            iv,
            count,
            body,
        );
        Ok(outs)
    }

    // if cond then { block } else { block }
    fn if_exp(&mut self, bb: &mut BlockBuilder, names: &[String]) -> Result<Vec<Var>, String> {
        let cond = self.scalar_expr()?;
        self.expect(Tok::Then)?;
        self.expect(Tok::LBrace)?;
        let saved = self.scope.clone();
        let then_b = self.block()?;
        self.scope = saved.clone();
        self.expect(Tok::RBrace)?;
        self.expect(Tok::Else)?;
        self.expect(Tok::LBrace)?;
        let else_b = self.block()?;
        self.scope = saved;
        self.expect(Tok::RBrace)?;
        let tys: Vec<Type> = then_b
            .result
            .iter()
            .map(|v| self.types[v].clone())
            .collect();
        let outs = bb.if_(
            names.iter().map(|s| s.as_str()).collect(),
            tys,
            cond,
            then_b,
            else_b,
        );
        Ok(outs)
    }

    // ---------------------------------------------------------------
    // slicespec := "lmad" size "+" "{" "(" size ":" size ")", ... "}"
    //            | dim ("," dim)*   with  dim := size (":" size ":" size)?
    fn slice_spec(&mut self) -> Result<SliceSpec, String> {
        if *self.peek() == Tok::Lmad {
            self.bump();
            let offset = self.size_expr_until_brace()?;
            self.expect(Tok::Plus)?;
            self.expect(Tok::LBrace)?;
            let mut dims = Vec::new();
            loop {
                self.expect(Tok::LParen)?;
                let card = self.size_expr()?;
                self.expect(Tok::Colon)?;
                let stride = self.size_expr()?;
                self.expect(Tok::RParen)?;
                dims.push(Dim::new(card, stride));
                if *self.peek() == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RBrace)?;
            return Ok(SliceSpec::Lmad(Lmad::new(offset, dims)));
        }
        let mut triplets = Vec::new();
        let mut all_fixed = true;
        let mut points = Vec::new();
        loop {
            let first = self.size_expr()?;
            if *self.peek() == Tok::Colon {
                self.bump();
                let len = self.size_expr()?;
                self.expect(Tok::Colon)?;
                let step = self.size_expr()?;
                triplets.push(TripletSlice::range(first, len, step));
                all_fixed = false;
            } else {
                points.push(ScalarExp::Size(first.clone()));
                triplets.push(TripletSlice::Fix(first));
            }
            if *self.peek() == Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        if all_fixed {
            Ok(SliceSpec::Point(points))
        } else {
            Ok(SliceSpec::Triplet(triplets))
        }
    }

    /// A size expression that stops before the final `+ {` of an LMAD
    /// slice (the `+` there separates the offset from the dimension list).
    fn size_expr_until_brace(&mut self) -> Result<Poly, String> {
        let mut acc = self.size_term()?;
        loop {
            match self.peek() {
                Tok::Plus if *self.peek2() == Tok::LBrace => return Ok(acc),
                Tok::Plus => {
                    self.bump();
                    acc = acc + self.size_term()?;
                }
                Tok::Minus => {
                    self.bump();
                    acc = acc - self.size_term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    // ---------------------------------------------------------------
    // Size expressions elaborate to polynomials over bound i64 variables.
    fn size_expr(&mut self) -> Result<Poly, String> {
        let mut acc = self.size_term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    acc = acc + self.size_term()?;
                }
                Tok::Minus => {
                    self.bump();
                    acc = acc - self.size_term()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn size_term(&mut self) -> Result<Poly, String> {
        let mut acc = self.size_atom()?;
        while *self.peek() == Tok::Star {
            self.bump();
            acc = acc * self.size_atom()?;
        }
        Ok(acc)
    }

    fn size_atom(&mut self) -> Result<Poly, String> {
        match self.bump() {
            Tok::Int(n) => Ok(Poly::constant(n)),
            Tok::Ident(name) => Ok(Poly::var(self.lookup(&name)?)),
            Tok::LParen => {
                let e = self.size_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Minus => Ok(-(self.size_atom()?)),
            other => Err(format!(
                "line {}: expected size expression, found {other:?}",
                self.line()
            )),
        }
    }

    /// A size expression in the `assume` header, before names are bound:
    /// resolved against the parameter scope later.
    fn size_expr_by_name(&mut self) -> Result<Poly, String> {
        // Parse with placeholder symbols keyed by name; resolve after the
        // parameter list (see resolve_size).
        let mut acc = self.size_term_by_name()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    acc = acc + self.size_term_by_name()?;
                }
                Tok::Minus => {
                    self.bump();
                    acc = acc - self.size_term_by_name()?;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn size_term_by_name(&mut self) -> Result<Poly, String> {
        let mut acc = self.size_atom_by_name()?;
        while *self.peek() == Tok::Star {
            self.bump();
            acc = acc * self.size_atom_by_name()?;
        }
        Ok(acc)
    }

    fn size_atom_by_name(&mut self) -> Result<Poly, String> {
        match self.bump() {
            Tok::Int(n) => Ok(Poly::constant(n)),
            Tok::Ident(name) => Ok(Poly::var(name_placeholder(&name))),
            Tok::LParen => {
                let e = self.size_expr_by_name()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(format!("assume: unexpected {other:?}")),
        }
    }

    /// Substitute name placeholders for the real parameter variables.
    fn resolve_size(&self, p: &Poly) -> Result<Poly, String> {
        let mut out = p.clone();
        for v in p.vars() {
            let name = arraymem_symbolic::sym_name(v);
            if let Some(stripped) = name.strip_prefix("srcname$") {
                let real = self.lookup(stripped)?;
                out = out.subst(v, &Poly::var(real));
            }
        }
        Ok(out)
    }

    // type := ("[" size "]")* ("i64"|"f32")
    fn parse_type_by_name(&mut self) -> Result<PType, String> {
        let mut dims = Vec::new();
        while *self.peek() == Tok::LBrack {
            self.bump();
            dims.push(self.size_expr_by_name()?);
            self.expect(Tok::RBrack)?;
        }
        let base = self.ident()?;
        let et = match base.as_str() {
            "i64" => ElemType::I64,
            "f32" => ElemType::F32,
            "f64" => ElemType::F64,
            "bool" => ElemType::Bool,
            other => return Err(format!("unknown type {other}")),
        };
        Ok(if dims.is_empty() {
            PType::Scalar(et)
        } else {
            PType::Array(et, dims)
        })
    }

    // ---------------------------------------------------------------
    // Scalar expressions (arithmetic over bound variables and literals,
    // element reads, calls to sqrt/min/max).
    fn scalar_expr(&mut self) -> Result<ScalarExp, String> {
        let mut acc = self.scalar_term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    acc = ScalarExp::bin(BinOp::Add, acc, self.scalar_term()?);
                }
                Tok::Minus => {
                    self.bump();
                    acc = ScalarExp::bin(BinOp::Sub, acc, self.scalar_term()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn scalar_term(&mut self) -> Result<ScalarExp, String> {
        let mut acc = self.scalar_atom()?;
        loop {
            match self.peek() {
                Tok::Star => {
                    self.bump();
                    acc = ScalarExp::bin(BinOp::Mul, acc, self.scalar_atom()?);
                }
                Tok::Slash => {
                    self.bump();
                    acc = ScalarExp::bin(BinOp::Div, acc, self.scalar_atom()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn scalar_atom(&mut self) -> Result<ScalarExp, String> {
        match self.bump() {
            Tok::Int(n) => Ok(ScalarExp::i64(n)),
            Tok::Float(f) => Ok(ScalarExp::f32(f)),
            Tok::Minus => Ok(ScalarExp::un(UnOp::Neg, self.scalar_atom()?)),
            Tok::LParen => {
                let e = self.scalar_expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                // Calls: sqrt(x), min(a,b), max(a,b), f32(x), i64(x).
                if *self.peek() == Tok::LParen
                    && matches!(
                        name.as_str(),
                        "sqrt" | "exp" | "log" | "abs" | "min" | "max" | "f32" | "i64"
                    )
                {
                    self.bump();
                    let a = self.scalar_expr()?;
                    let e = match name.as_str() {
                        "sqrt" => ScalarExp::un(UnOp::Sqrt, a),
                        "exp" => ScalarExp::un(UnOp::Exp, a),
                        "log" => ScalarExp::un(UnOp::Log, a),
                        "abs" => ScalarExp::un(UnOp::Abs, a),
                        "f32" => ScalarExp::un(UnOp::ToF32, a),
                        "i64" => ScalarExp::un(UnOp::ToI64, a),
                        mm => {
                            self.expect(Tok::Comma)?;
                            let b = self.scalar_expr()?;
                            let op = if mm == "min" { BinOp::Min } else { BinOp::Max };
                            ScalarExp::bin(op, a, b)
                        }
                    };
                    self.expect(Tok::RParen)?;
                    return Ok(e);
                }
                let v = self.lookup(&name)?;
                // Element read: x[i, j].
                if *self.peek() == Tok::LBrack {
                    self.bump();
                    let mut idx = vec![self.scalar_expr()?];
                    while *self.peek() == Tok::Comma {
                        self.bump();
                        idx.push(self.scalar_expr()?);
                    }
                    self.expect(Tok::RBrack)?;
                    return Ok(ScalarExp::Index(v, idx));
                }
                Ok(ScalarExp::Var(v))
            }
            other => Err(format!(
                "line {}: expected scalar expression, found {other:?}",
                self.line()
            )),
        }
    }
}

/// Placeholder symbol for a not-yet-bound name in `assume` headers.
fn name_placeholder(name: &str) -> Var {
    arraymem_symbolic::sym(&format!("srcname${name}"))
}

enum PType {
    Scalar(ElemType),
    Array(ElemType, Vec<Poly>),
}
