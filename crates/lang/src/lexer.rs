//! Tokenizer.

#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Float(f32),
    // punctuation
    LParen,
    RParen,
    LBrack,
    RBrack,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semi,
    Eq,
    Plus,
    Minus,
    Star,
    Slash,
    Lt,
    Ge,
    Arrow,
    Backslash,
    // keywords
    Fn,
    Let,
    In,
    Loop,
    For,
    Do,
    If,
    Then,
    Else,
    With,
    Map,
    Assume,
    Lmad,
    Eof,
}

/// A token plus its source line (for error messages).
#[derive(Clone, Debug)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenize a program. `--` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, String> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let ch = bytes[i];
        match ch {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '-' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '-' if i + 1 < bytes.len() && bytes[i + 1] == '>' => {
                out.push(SpannedTok {
                    tok: Tok::Arrow,
                    line,
                });
                i += 2;
            }
            '>' if i + 1 < bytes.len() && bytes[i + 1] == '=' => {
                out.push(SpannedTok { tok: Tok::Ge, line });
                i += 2;
            }
            '(' => {
                out.push(SpannedTok {
                    tok: Tok::LParen,
                    line,
                });
                i += 1;
            }
            ')' => {
                out.push(SpannedTok {
                    tok: Tok::RParen,
                    line,
                });
                i += 1;
            }
            '[' => {
                out.push(SpannedTok {
                    tok: Tok::LBrack,
                    line,
                });
                i += 1;
            }
            ']' => {
                out.push(SpannedTok {
                    tok: Tok::RBrack,
                    line,
                });
                i += 1;
            }
            '{' => {
                out.push(SpannedTok {
                    tok: Tok::LBrace,
                    line,
                });
                i += 1;
            }
            '}' => {
                out.push(SpannedTok {
                    tok: Tok::RBrace,
                    line,
                });
                i += 1;
            }
            ',' => {
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    line,
                });
                i += 1;
            }
            ':' => {
                out.push(SpannedTok {
                    tok: Tok::Colon,
                    line,
                });
                i += 1;
            }
            ';' => {
                out.push(SpannedTok {
                    tok: Tok::Semi,
                    line,
                });
                i += 1;
            }
            '=' => {
                out.push(SpannedTok { tok: Tok::Eq, line });
                i += 1;
            }
            '+' => {
                out.push(SpannedTok {
                    tok: Tok::Plus,
                    line,
                });
                i += 1;
            }
            '-' => {
                out.push(SpannedTok {
                    tok: Tok::Minus,
                    line,
                });
                i += 1;
            }
            '*' => {
                out.push(SpannedTok {
                    tok: Tok::Star,
                    line,
                });
                i += 1;
            }
            '/' => {
                out.push(SpannedTok {
                    tok: Tok::Slash,
                    line,
                });
                i += 1;
            }
            '<' => {
                out.push(SpannedTok { tok: Tok::Lt, line });
                i += 1;
            }
            '\\' => {
                out.push(SpannedTok {
                    tok: Tok::Backslash,
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let f: f32 = text
                        .parse()
                        .map_err(|_| format!("line {line}: bad float literal {text}"))?;
                    out.push(SpannedTok {
                        tok: Tok::Float(f),
                        line,
                    });
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| format!("line {line}: bad integer literal {text}"))?;
                    out.push(SpannedTok {
                        tok: Tok::Int(n),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let tok = match text.as_str() {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "in" => Tok::In,
                    "loop" => Tok::Loop,
                    "for" => Tok::For,
                    "do" => Tok::Do,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "with" => Tok::With,
                    "map" => Tok::Map,
                    "assume" => Tok::Assume,
                    "lmad" => Tok::Lmad,
                    _ => Tok::Ident(text),
                };
                out.push(SpannedTok { tok, line });
            }
            other => return Err(format!("line {line}: unexpected character {other:?}")),
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_basics() {
        let toks = lex("fn f(n: i64) = -- comment\n  let x = iota n in x").unwrap();
        assert!(matches!(toks[0].tok, Tok::Fn));
        assert!(matches!(toks[1].tok, Tok::Ident(ref s) if s == "f"));
        // comment swallowed
        assert!(toks.iter().all(|t| !matches!(t.tok, Tok::Minus)));
        assert_eq!(toks.last().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn lexes_arrows_and_ge() {
        let toks = lex(r"\d r -> d  n >= 2").unwrap();
        assert!(toks.iter().any(|t| t.tok == Tok::Arrow));
        assert!(toks.iter().any(|t| t.tok == Tok::Ge));
        assert!(toks.iter().any(|t| t.tok == Tok::Backslash));
    }

    #[test]
    fn lexes_numbers() {
        let toks = lex("42 3.5").unwrap();
        assert_eq!(toks[0].tok, Tok::Int(42));
        assert_eq!(toks[1].tok, Tok::Float(3.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let x = @").is_err());
    }
}
