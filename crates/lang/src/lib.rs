//! A textual frontend for the array IR.
//!
//! The paper's §III-B argues for **LMAD slicing at the source-language
//! level**: "this not only allows a shorter and nicer notation, but also
//! hints to the compiler that such read/write accesses may be worth
//! analyzing since they have structure." This crate provides that source
//! language: a small, Futhark-flavoured notation that elaborates into the
//! `arraymem-ir` AST (and an assumption `Env` for the prover).
//!
//! ```text
//! -- Fig. 1 (left): add the first row to the diagonal.
//! assume n >= 1
//! fn diag_plus_row(n: i64, A: [n*n]f32) =
//!   let diag = A[lmad 0 + {(n : n+1)}] in
//!   let row  = A[lmad 0 + {(n : 1)}] in
//!   let X    = map (\d r -> d + r) diag row in
//!   let A2   = A with [lmad 0 + {(n : n+1)}] = X in
//!   A2
//! ```
//!
//! Grammar sketch (see the parser module for the full rules):
//!
//! ```text
//! program  := assume* "fn" name "(" params ")" "=" block
//! assume   := "assume" name ">=" int | "assume" name "=" sizeexpr
//! block    := ("let" pat "=" exp "in")* result
//! exp      := iota | replicate | copy | concat | transpose | reverse
//!           | flatten | map | loop | if | slice-read | with-update | scalar
//! slice    := "lmad" sizeexpr "+" "{" "(" size ":" size ")" ... "}"
//!           | triplet "a:l:s" per dimension
//! ```

mod elab;
mod lexer;
mod parser;

pub use elab::Elaborated;
pub use parser::parse_program;

#[cfg(test)]
mod tests;
