//! K-nearest neighbours (paper §VI-H; Rodinia).
//!
//! "The Futhark version contains a loop with a reduction whose result is
//! used in an in-place update, resulting in a copy. Short-circuiting
//! correctly identifies that the result of the reduce can be put directly
//! in the memory of the result, eliminating a copy."
//!
//! The reference mirrors Rodinia's structure, whose weakness the paper
//! calls out ("Rodinia is significantly slower, because it uses a
//! sequential reduction"): it re-evaluates distances on every selection
//! pass instead of staging them, so its cost is `k · n · dist` versus the
//! compiled version's `n · dist + k · n` scan.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, SliceSpec, UnOp, Var};
use arraymem_lmad::TripletSlice;
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

#[inline]
fn dist(lat: f32, lng: f32, lat0: f32, lng0: f32) -> f32 {
    ((lat - lat0) * (lat - lat0) + (lng - lng0) * (lng - lng0)).sqrt()
}

/// Rodinia-style reference: `k` sequential selection passes, each
/// recomputing every distance.
pub fn reference(lats: &[f32], lngs: &[f32], lat0: f32, lng0: f32, k: usize) -> Vec<f32> {
    let n = lats.len();
    let mut taken = vec![false; n];
    let mut out = vec![0f32; k * 2];
    for j in 0..k {
        let mut best = f32::INFINITY;
        let mut best_i = 0usize;
        for i in 0..n {
            if taken[i] {
                continue;
            }
            let d = dist(lats[i], lngs[i], lat0, lng0);
            if d < best {
                best = d;
                best_i = i;
            }
        }
        taken[best_i] = true;
        out[j * 2] = best;
        out[j * 2 + 1] = best_i as f32;
    }
    out
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    // Stage 1: squared coordinate deltas, one (Δlat², Δlng²) pair per
    // point — the staging buffer a naive functional formulation writes.
    reg.register("nn_delta_sq", |ctx| {
        let lat0 = ctx.arg_f32(0);
        let lng0 = ctx.arg_f32(1);
        let lat = ctx.inputs[0].get_f32(&[ctx.i]);
        let lng = ctx.inputs[1].get_f32(&[ctx.i]);
        ctx.out.set_f32(&[0], (lat - lat0) * (lat - lat0));
        ctx.out.set_f32(&[1], (lng - lng0) * (lng - lng0));
    });
    // Stage 2: Euclidean norm of each pair. Identical arithmetic to
    // `dist` above, split across the two launches.
    reg.register("nn_norm", |ctx| {
        let a = ctx.inputs[0].get_f32(&[ctx.i, 0]);
        let b = ctx.inputs[0].get_f32(&[ctx.i, 1]);
        ctx.out.set_f32(&[], (a + b).sqrt());
    });
    // The "reduction": a single instance scanning for the minimum
    // (value, index) pair.
    reg.register("nn_argmin", |ctx| {
        let dists = &ctx.inputs[0];
        let l = dists.lmad().expect("dists is one LMAD");
        let n = l.dims[0].0;
        let s = l.dims[0].1;
        let mut best = f32::INFINITY;
        let mut best_i = 0i64;
        let mut off = l.offset;
        for i in 0..n {
            let d = dists.read_f32_off(off);
            if d < best {
                best = d;
                best_i = i;
            }
            off += s;
        }
        ctx.out.set_f32(&[0], best);
        ctx.out.set_f32(&[1], best_i as f32);
    });
}

pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("nn");
    let n = bld.scalar_param("nn_n", ElemType::I64);
    let k = bld.scalar_param("nn_k", ElemType::I64);
    let lat0 = bld.scalar_param("nn_lat0", ElemType::F32);
    let lng0 = bld.scalar_param("nn_lng0", ElemType::F32);
    let lats = bld.array_param("nn_lats", ElemType::F32, vec![p(n)]);
    let lngs = bld.array_param("nn_lngs", ElemType::F32, vec![p(n)]);
    let mut body = bld.block();

    // Staged distance computation: squared deltas first, then the norm.
    // The [n][2] delta buffer dies once the norms are taken, so the merge
    // pass can put the [k][2] result scratch inside it (k ≤ n).
    let d2 = body.map_kernel(
        "d2",
        "nn_delta_sq",
        p(n),
        vec![c(2)],
        ElemType::F32,
        vec![lats, lngs],
        vec![ScalarExp::var(lat0), ScalarExp::var(lng0)],
    );
    let dists0 = body.map_kernel(
        "dists",
        "nn_norm",
        p(n),
        vec![],
        ElemType::F32,
        vec![d2],
        vec![],
    );
    let res0 = body.scratch("res0", ElemType::F32, vec![p(k), c(2)]);

    let res_p = body.loop_param("res", res0);
    let dists_p = body.loop_param("ds", dists0);
    let j = body.loop_index("nn_j");
    let mut lb = bld.block();
    let red = lb.map_kernel_acc(
        "red",
        "nn_argmin",
        c(1),
        vec![c(2)],
        ElemType::F32,
        vec![dists_p],
        vec![],
        vec![0],
    );
    // Extract the winning index *before* the circuit point, so `red` is
    // lastly used by the update.
    let mi = lb.scalar(
        "mi",
        ElemType::I64,
        ScalarExp::un(
            UnOp::ToI64,
            ScalarExp::Index(red, vec![ScalarExp::i64(0), ScalarExp::i64(1)]),
        ),
    );
    let res_next = lb.update(
        "res'",
        res_p,
        SliceSpec::Triplet(vec![
            TripletSlice::range(p(j), c(1), c(1)),
            TripletSlice::full(c(2)),
        ]),
        red,
    );
    let ds_next = lb.update_scalar(
        "ds'",
        dists_p,
        vec![ScalarExp::var(mi)],
        ScalarExp::f32(f32::INFINITY),
    );
    let lbody = lb.finish(vec![res_next, ds_next]);
    let outs = body.loop_(
        vec!["res_final", "ds_final"],
        vec![(res_p, bld.ty(res0)), (dists_p, bld.ty(dists0))],
        vec![res0, dists0],
        j,
        p(k),
        lbody,
    );
    let blk = body.finish(vec![outs[0]]);

    let mut env = Env::new();
    env.assume_ge(n, 1);
    env.assume_ge(k, 1);
    // k nearest of n points: k never exceeds n (lets the merge pass
    // prove the 2k-element result scratch fits the 2n-element deltas).
    env.assume_le(k, p(n));
    (bld.finish(blk), env)
}

pub fn case(label: &str, n: usize, k: usize, runs: usize) -> Case {
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let lats = crate::data::f32s(21, n, 0.0, 90.0);
    let lngs = crate::data::f32s(22, n, 0.0, 180.0);
    let (lat0, lng0) = (45.0f32, 90.0f32);
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::I64(k as i64),
        InputValue::F32(lat0),
        InputValue::F32(lng0),
        InputValue::ArrayF32(lats),
        InputValue::ArrayF32(lngs),
    ];
    Case {
        name: "nn".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let k = match &inp[1] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let (lat0, lng0) = match (&inp[2], &inp[3]) {
                (InputValue::F32(a), InputValue::F32(b)) => (*a, *b),
                _ => unreachable!(),
            };
            let lats = match &inp[4] {
                InputValue::ArrayF32(d) => d,
                _ => unreachable!(),
            };
            let lngs = match &inp[5] {
                InputValue::ArrayF32(d) => d,
                _ => unreachable!(),
            };
            let t0 = std::time::Instant::now();
            let out = reference(lats, lngs, lat0, lng0, k);
            (t0.elapsed(), vec![OutputValue::ArrayF32(out)])
        }),
        runs,
        tol: 0.0,
    }
}

/// The paper's Table VII datasets, scaled /10.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize)> {
    // (label, n, k, runs)
    vec![
        ("85528", 85_528, 16, 5),
        ("855280", 855_280, 16, 3),
        ("8552800", 8_552_800, 16, 2),
    ]
}
