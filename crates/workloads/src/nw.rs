//! Needleman-Wunsch DNA sequence alignment (paper §III, §VI-B; Rodinia).
//!
//! The dependence pattern (Fig. 2) is parallelized by block tiling + loop
//! skewing: the `b×b` blocks on each anti-diagonal are computed in
//! parallel, each from its vertical and horizontal perimeter bars. The
//! Futhark-style program expresses exactly the paper's pseudo-code:
//!
//! ```text
//! loop A for i < q do
//!   let R_vert  = A[i·b     + {(i+1 : n·b−b), (b+1 : n)}]
//!   let R_horiz = A[i·b + 1 + {(i+1 : n·b−b), (b : 1)}]
//!   let X = map2 process_block R_vert R_horiz
//!   let A[i·b + n + 1 + {(i+1 : n·b−b), (b : n), (b : 1)}] = X
//!   in A
//! ```
//! followed by the mirrored loop for the second half. Short-circuiting
//! must prove `W ∩ (R_vert ∪ R_horiz) = ∅` (Fig. 9) to compute the blocks
//! in place.

use crate::data::nw_similarity;
use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, SliceSpec, Var};
use arraymem_lmad::{Dim, Lmad, Transform};
use arraymem_symbolic::{Env, Poly};

pub const PENALTY: i64 = 10;

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// The initial matrix: first row/column hold the gap penalties, the rest
/// is zero (filled in by the algorithm).
pub fn init_matrix(n: usize) -> Vec<i64> {
    let mut a = vec![0i64; n * n];
    for j in 0..n {
        a[j] = -(j as i64) * PENALTY;
        a[j * n] = -(j as i64) * PENALTY;
    }
    a
}

/// Golden sequential implementation — also the "hand-written imperative"
/// reference: a single in-place traversal (the natural CPU equivalent of
/// Rodinia's implementation).
pub fn reference(n: usize, a: &mut [i64]) {
    for i in 1..n {
        for j in 1..n {
            let m = a[(i - 1) * n + (j - 1)] + nw_similarity(i as i64, j as i64);
            let up = a[(i - 1) * n + j] - PENALTY;
            let left = a[i * n + (j - 1)] - PENALTY;
            a[i * n + j] = m.max(up).max(left);
        }
    }
}

/// Register the per-anti-diagonal block kernel. Instance `k` computes one
/// `b×b` block from its perimeter bars (inputs are row-wise: bar `k` of
/// each). Scalar args: `n`, `b`, `base` (flat offset of block 0's origin;
/// block `k`'s origin is `base + k·(n·b − b)`).
pub fn register_kernels(reg: &mut KernelRegistry) {
    reg.register("nw_process_block", |ctx| {
        let n = ctx.arg_i64(0);
        let b = ctx.arg_i64(1) as usize;
        let base = ctx.arg_i64(2);
        let origin = base + ctx.i * (n * (b as i64) - b as i64);
        let r0 = origin / n;
        let c0 = origin % n;
        // Load the perimeter bars into registers/locals, incremental
        // addressing through the inlined LMADs.
        let vlm = ctx.inputs[0].row(ctx.i);
        let hlm = ctx.inputs[1].row(ctx.i);
        let vl = vlm.lmad().expect("bar is one LMAD");
        let hl = hlm.lmad().expect("bar is one LMAD");
        let mut vert = vec![0i64; b + 1];
        let mut off = vl.offset;
        for v in vert.iter_mut() {
            *v = vlm.read_i64_off(off);
            off += vl.dims[0].1;
        }
        // row_above starts as the horizontal bar; diag_left as the corner.
        let mut above = vec![0i64; b];
        let mut off = hl.offset;
        for a in above.iter_mut() {
            *a = hlm.read_i64_off(off);
            off += hl.dims[0].1;
        }
        let mut cur = vec![0i64; b];
        let ol = ctx.out.lmad().expect("block is one LMAD").clone();
        let (sr, sc) = (ol.dims[0].1, ol.dims[1].1);
        let mut corner = vert[0];
        for r in 0..b {
            let mut left = vert[r + 1];
            let mut woff = ol.offset + r as i64 * sr;
            let grow = r0 + r as i64;
            for (cc, above_cc) in above.iter().enumerate() {
                let diag = if cc == 0 { corner } else { above[cc - 1] };
                let v = (diag + nw_similarity(grow, c0 + cc as i64))
                    .max((*above_cc).max(left) - PENALTY);
                ctx.out.write_i64_off(woff, v);
                cur[cc] = v;
                left = v;
                woff += sc;
            }
            corner = vert[r + 1];
            std::mem::swap(&mut above, &mut cur);
        }
    });
}

/// Build the Futhark-style NW program: two anti-diagonal loops over the
/// blocked matrix, using LMAD slices for the bars and the write set.
pub fn program() -> (Program, Env, NwVars) {
    let mut bld = Builder::new("nw");
    let n = bld.scalar_param("nw_n", ElemType::I64);
    let q = bld.scalar_param("nw_q", ElemType::I64);
    let b = bld.scalar_param("nw_b", ElemType::I64);
    let a = bld.array_param("nw_A", ElemType::I64, vec![p(n) * p(n)]);
    let mut body = bld.block();

    let block_stride = p(n) * p(b) - p(b); // distance between blocks on a diagonal

    // ---- First half: anti-diagonals d = 0 .. q-1, d+1 blocks each.
    let param1 = body.loop_param("A1", a);
    let d = body.loop_index("nw_d");
    let mut l1 = bld.block();
    let count1 = p(d) + c(1);
    let corner1 = p(d) * p(b); // corner of block 0 on diagonal d
    let rvert1 = l1.slice(
        "Rvert",
        param1,
        Transform::LmadSlice(Lmad::new(
            corner1.clone(),
            vec![
                Dim::new(count1.clone(), block_stride.clone()),
                Dim::new(p(b) + c(1), p(n)),
            ],
        )),
    );
    let rhoriz1 = l1.slice(
        "Rhoriz",
        param1,
        Transform::LmadSlice(Lmad::new(
            corner1.clone() + c(1),
            vec![
                Dim::new(count1.clone(), block_stride.clone()),
                Dim::new(p(b), c(1)),
            ],
        )),
    );
    let base1 = corner1.clone() + p(n) + c(1);
    let x1 = l1.map_kernel(
        "X1",
        "nw_process_block",
        count1.clone(),
        vec![p(b), p(b)],
        ElemType::I64,
        vec![rvert1, rhoriz1],
        vec![
            ScalarExp::var(n),
            ScalarExp::var(b),
            ScalarExp::Size(base1.clone()),
        ],
    );
    let w1 = Lmad::new(
        base1,
        vec![
            Dim::new(count1, block_stride.clone()),
            Dim::new(p(b), p(n)),
            Dim::new(p(b), c(1)),
        ],
    );
    let a1next = l1.update("A1'", param1, SliceSpec::Lmad(w1), x1);
    let l1_body = l1.finish(vec![a1next]);
    let a_half = body.loop_(
        vec!["Ahalf"],
        vec![(param1, bld.ty(a))],
        vec![a],
        d,
        p(q),
        l1_body,
    )[0];

    // ---- Second half: ii = 0 .. q-2, q-1-ii blocks each.
    let param2 = body.loop_param("A2", a_half);
    let ii = body.loop_index("nw_ii");
    let mut l2 = bld.block();
    let count2 = p(q) - c(1) - p(ii);
    // Origin of block 0 on this diagonal: block (ii+1, q-1).
    let base2 = (p(ii) + c(1)) * p(b) * p(n) + p(n) + c(1) + (p(q) - c(1)) * p(b);
    let corner2 = base2.clone() - p(n) - c(1);
    let rvert2 = l2.slice(
        "Rvert2",
        param2,
        Transform::LmadSlice(Lmad::new(
            corner2.clone(),
            vec![
                Dim::new(count2.clone(), block_stride.clone()),
                Dim::new(p(b) + c(1), p(n)),
            ],
        )),
    );
    let rhoriz2 = l2.slice(
        "Rhoriz2",
        param2,
        Transform::LmadSlice(Lmad::new(
            corner2 + c(1),
            vec![
                Dim::new(count2.clone(), block_stride.clone()),
                Dim::new(p(b), c(1)),
            ],
        )),
    );
    let x2 = l2.map_kernel(
        "X2",
        "nw_process_block",
        count2.clone(),
        vec![p(b), p(b)],
        ElemType::I64,
        vec![rvert2, rhoriz2],
        vec![
            ScalarExp::var(n),
            ScalarExp::var(b),
            ScalarExp::Size(base2.clone()),
        ],
    );
    let w2 = Lmad::new(
        base2,
        vec![
            Dim::new(count2, block_stride),
            Dim::new(p(b), p(n)),
            Dim::new(p(b), c(1)),
        ],
    );
    let a2next = l2.update("A2'", param2, SliceSpec::Lmad(w2), x2);
    let l2_body = l2.finish(vec![a2next]);
    let a_final = body.loop_(
        vec!["Afinal"],
        vec![(param2, bld.ty(a_half))],
        vec![a_half],
        ii,
        p(q) - c(1),
        l2_body,
    )[0];

    let blk = body.finish(vec![a_final]);
    let mut env = Env::new();
    env.define(n, p(q) * p(b) + c(1));
    env.assume_ge(q, 2);
    env.assume_ge(b, 2);
    (bld.finish(blk), env, NwVars { n, q, b, a })
}

/// The program's parameter variables, for building inputs.
pub struct NwVars {
    pub n: Var,
    pub q: Var,
    pub b: Var,
    pub a: Var,
}

/// Build a full benchmark case for `q` blocks of size `b` per side.
pub fn case(label: &str, q: usize, b: usize, runs: usize) -> Case {
    let n = q * b + 1;
    let (program, env, _) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::I64(q as i64),
        InputValue::I64(b as i64),
        InputValue::ArrayI64(init_matrix(n)),
    ];
    Case {
        name: "nw".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let n = match &inp[0] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let mut a = match &inp[3] {
                InputValue::ArrayI64(d) => d.clone(),
                _ => unreachable!(),
            };
            let t0 = std::time::Instant::now();
            reference(n, &mut a);
            (t0.elapsed(), vec![OutputValue::ArrayI64(a)])
        }),
        runs,
        tol: 0.0,
    }
}

/// The paper's Table I datasets, scaled (see EXPERIMENTS.md).
pub fn datasets() -> Vec<(&'static str, usize, usize, usize)> {
    // (label, q, b, runs)
    vec![
        ("1024", 64, 16, 5),
        ("2048", 128, 16, 3),
        ("4096", 256, 16, 2),
    ]
}
