use crate::{irregular, nw};
use arraymem_core::{MergeReject, ParReject, RejectReason, RemarkKind};

#[test]
fn nw_small_validates_and_circuits() {
    let case = nw::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0, "unopt NW must copy blocks");
    assert_eq!(
        opt.bytes_copied, 0,
        "opt NW must elide all block copies: {opt}"
    );
    assert!(opt.bytes_elided > 0);
}

#[test]
fn lud_small_validates_and_circuits_perimeter_and_interior() {
    let case = crate::lud::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    // The diagonal block keeps its (small) copy; everything else is
    // elided, so the optimized copies are far smaller.
    assert!(
        opt.bytes_copied < unopt.bytes_copied / 4,
        "opt copies {} vs unopt {}",
        opt.bytes_copied,
        unopt.bytes_copied
    );
    assert!(opt.bytes_elided > 0);
}

#[test]
fn hotspot_small_validates_and_elides_concat() {
    let case = crate::hotspot::case("tiny", 32, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "all hotspot copies elided: {opt}");
}

#[test]
fn nn_small_validates_and_elides_reduce_copy() {
    let case = crate::nn::case("tiny", 4096, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn lbm_small_validates_and_builds_rows_in_place() {
    let case = crate::lbm::case("tiny", (8, 8, 4), 3, 2);
    let (unopt, opt) = case.validate();
    // Unopt pays the mapnest private-row copy every step.
    assert_eq!(unopt.bytes_copied, (3 * 8 * 8 * 4 * 19 * 4) as u64);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn optionpricing_small_validates() {
    let case = crate::optionpricing::case("tiny", 512, 16, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn locvolcalib_small_validates() {
    let case = crate::locvolcalib::case("tiny", 8, 32, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

/// The three irregular cases at test scale.
fn irregular_cases() -> Vec<crate::Case> {
    vec![
        irregular::spmv_case("tiny", 64, 48, 4, 2),
        irregular::histogram_case("tiny", 512, 32, 2),
        irregular::permutation_case("tiny", 256, 2),
    ]
}

/// Value, Memory and Checked semantics agree **bit-exactly** on every
/// irregular workload, at 1, 2 and 8 worker threads. Value semantics
/// interprets the memory-free source program; Memory/Checked run the
/// fully optimized compile, so this is the differential test that the
/// sound-degradation story preserves meaning.
#[test]
fn irregular_three_way_equivalence_across_threads() {
    for case in irregular_cases() {
        let opt = case.compile(true);
        let (_, expect) = (case.reference)(&case.inputs);
        for threads in [1usize, 2, 8] {
            let (pure_out, _) = arraymem_exec::run_program(
                &case.program,
                &case.inputs,
                &case.kernels,
                arraymem_exec::Mode::Pure,
                threads,
            )
            .unwrap_or_else(|e| panic!("{}: pure run failed: {e}", case.name));
            let mut session = arraymem_exec::Session::new();
            let (mem_out, _) = case.run_in_at(&mut session, &opt, threads);
            let mut csession = arraymem_exec::Session::new();
            let (chk_out, chk_stats) = case.run_checked_in_at(&mut csession, &opt, threads);
            assert_eq!(
                pure_out, mem_out,
                "{}@{threads}: Value vs Memory outputs differ",
                case.name
            );
            assert_eq!(
                pure_out, chk_out,
                "{}@{threads}: Value vs Checked outputs differ",
                case.name
            );
            assert!(
                chk_stats.diagnostics.is_empty(),
                "{}@{threads}: sanitizer fired:\n{chk_stats}",
                case.name
            );
            // And all three agree with the hand-written reference.
            for (k, (e, o)) in expect.iter().zip(&pure_out).enumerate() {
                assert!(
                    e.approx_eq(o, case.tol),
                    "{}@{threads}: output {k} differs from reference",
                    case.name
                );
            }
        }
    }
}

/// The affine-only passes must **reject** runtime-indexed accesses with
/// their closed-enum reasons — a remark is the receipt that the pass saw
/// the construct and declined, rather than silently skipping it.
#[test]
fn irregular_passes_reject_opaque_accesses_with_remarks() {
    // Permutation fires all three rejections at once.
    let case = irregular::permutation_case("tiny", 256, 1);
    let report = case.compile(true).compile_report;
    assert!(
        report.remarks.iter().any(|r| matches!(
            r.kind,
            RemarkKind::CircuitRejected(RejectReason::RuntimeIndexedWrite)
        )),
        "permutation: no short-circuit rejection for the scatter:\n{:#?}",
        report.remarks
    );
    assert!(
        report.remarks.iter().any(|r| matches!(
            r.kind,
            RemarkKind::MergeRejected(MergeReject::RuntimeIndexed)
        )),
        "permutation: no merge rejection for the runtime-indexed block:\n{:#?}",
        report.remarks
    );
    assert!(
        report.remarks.iter().any(|r| matches!(
            r.kind,
            RemarkKind::MapParRejected(ParReject::RuntimeIndexedWrite)
        )),
        "permutation: no parallel-safety rejection for the scatter:\n{:#?}",
        report.remarks
    );

    // Histogram: the gather-read histogram block coexists with `wsq`, so
    // the merge attempt must fail for the runtime-index reason.
    let case = irregular::histogram_case("tiny", 512, 32, 1);
    let report = case.compile(true).compile_report;
    assert!(
        report.remarks.iter().any(|r| matches!(
            r.kind,
            RemarkKind::MergeRejected(MergeReject::RuntimeIndexed)
        )),
        "histogram: no merge rejection for the runtime-indexed block:\n{:#?}",
        report.remarks
    );

    // Spmv is the positive control: the affine row-sum mapnest around the
    // gather still earns its parallel-safety proof.
    let case = irregular::spmv_case("tiny", 64, 48, 4, 1);
    let report = case.compile(true).compile_report;
    assert!(
        report
            .remarks
            .iter()
            .any(|r| matches!(r.kind, RemarkKind::MapParallelSafe)),
        "spmv: the row-sum mapnest lost its parallel-safety proof:\n{:#?}",
        report.remarks
    );
}

/// An out-of-range runtime index is an `Err` under Value and Memory
/// semantics, and a structured [`Diagnostic::IndexOutOfBounds`] (with the
/// lane skipped) under Checked semantics.
///
/// [`Diagnostic::IndexOutOfBounds`]: arraymem_exec::Diagnostic
#[test]
fn irregular_checked_mode_flags_out_of_bounds_indices() {
    use arraymem_exec::{Diagnostic, InputValue, KernelRegistry, Mode};

    let mut bld = arraymem_ir::Builder::new("oob_gather");
    let n = bld.scalar_param("n", arraymem_ir::ElemType::I64);
    let src = bld.array_param(
        "src",
        arraymem_ir::ElemType::F32,
        vec![arraymem_symbolic::Poly::var(n)],
    );
    let idx = bld.array_param(
        "idx",
        arraymem_ir::ElemType::I64,
        vec![arraymem_symbolic::Poly::var(n)],
    );
    let mut body = bld.block();
    let g = body.gather("g", src, idx);
    let blk = body.finish(vec![g]);
    let prog = bld.finish(blk);

    let inputs = vec![
        InputValue::I64(4),
        InputValue::ArrayF32(vec![1.0, 2.0, 3.0, 4.0]),
        InputValue::ArrayI64(vec![2, 7, 0, -1]), // 7 and -1 are out of range
    ];
    let kernels = KernelRegistry::new();

    for mode in [Mode::Pure, Mode::Memory] {
        let r = arraymem_exec::run_program(&prog, &inputs, &kernels, mode, 1);
        assert!(
            r.is_err(),
            "{mode:?}: out-of-bounds gather index must abort, got {r:?}"
        );
    }

    // Checked mode interprets memory annotations, so compile first.
    let compiled = arraymem_core::compile(&prog, &arraymem_core::Options::default())
        .expect("oob probe compiles");
    let (out, stats) =
        arraymem_exec::run_program(&compiled.program, &inputs, &kernels, Mode::Checked, 1)
            .expect("checked mode records the finding and continues");
    let oob: Vec<_> = stats
        .diagnostics
        .iter()
        .filter(|d| matches!(d, Diagnostic::IndexOutOfBounds { .. }))
        .collect();
    assert_eq!(oob.len(), 2, "two poisoned lanes, two findings: {stats}");
    // In-range lanes still executed.
    let got = match &out[0] {
        arraymem_exec::OutputValue::ArrayF32(v) => v.clone(),
        other => panic!("unexpected output {other:?}"),
    };
    assert_eq!(got[0], 3.0);
    assert_eq!(got[2], 1.0);
}

/// Every workload, fully optimized, twice through one session under the
/// shadow-memory sanitizer: no uninitialized reads of recycled blocks, no
/// use-after-release, no map races, and every short-circuited footprint
/// pair concretely disjoint.
#[test]
fn all_workloads_run_clean_under_checked_mode() {
    let cases = [
        nw::case("tiny", 4, 4, 2),
        crate::lud::case("tiny", 4, 4, 2),
        crate::hotspot::case("tiny", 32, 4, 2),
        crate::nn::case("tiny", 4096, 8, 2),
        crate::lbm::case("tiny", (8, 8, 4), 3, 2),
        crate::optionpricing::case("tiny", 512, 16, 2),
        crate::locvolcalib::case("tiny", 8, 32, 8, 2),
        irregular::spmv_case("tiny", 64, 48, 4, 2),
        irregular::histogram_case("tiny", 512, 32, 2),
        irregular::permutation_case("tiny", 256, 2),
    ];
    let mut circuits_verified = 0;
    for case in cases {
        let stats = case.validate_checked();
        assert!(
            stats.diagnostics.is_empty() && stats.diagnostics_suppressed == 0,
            "{}/{}: sanitizer fired:\n{stats}",
            case.name,
            case.dataset
        );
        assert!(
            stats.cells_checked > 0,
            "{}/{}: sanitizer inspected nothing — shadow layer not engaged",
            case.name,
            case.dataset
        );
        circuits_verified += stats.circuits_verified;
    }
    // The footprint cross-check must actually engage somewhere in the
    // suite — a cross-check that never evaluates proves nothing.
    assert!(
        circuits_verified > 0,
        "no short-circuit check was concretely verified"
    );
}
