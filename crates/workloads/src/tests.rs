use crate::nw;

#[test]
fn nw_small_validates_and_circuits() {
    let case = nw::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0, "unopt NW must copy blocks");
    assert_eq!(opt.bytes_copied, 0, "opt NW must elide all block copies: {opt}");
    assert!(opt.bytes_elided > 0);
}

#[test]
fn lud_small_validates_and_circuits_perimeter_and_interior() {
    let case = crate::lud::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    // The diagonal block keeps its (small) copy; everything else is
    // elided, so the optimized copies are far smaller.
    assert!(
        opt.bytes_copied < unopt.bytes_copied / 4,
        "opt copies {} vs unopt {}",
        opt.bytes_copied,
        unopt.bytes_copied
    );
    assert!(opt.bytes_elided > 0);
}

#[test]
fn hotspot_small_validates_and_elides_concat() {
    let case = crate::hotspot::case("tiny", 32, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "all hotspot copies elided: {opt}");
}

#[test]
fn nn_small_validates_and_elides_reduce_copy() {
    let case = crate::nn::case("tiny", 4096, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn lbm_small_validates_and_builds_rows_in_place() {
    let case = crate::lbm::case("tiny", (8, 8, 4), 3, 2);
    let (unopt, opt) = case.validate();
    // Unopt pays the mapnest private-row copy every step.
    assert_eq!(unopt.bytes_copied, (3 * 8 * 8 * 4 * 19 * 4) as u64);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn optionpricing_small_validates() {
    let case = crate::optionpricing::case("tiny", 512, 16, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn locvolcalib_small_validates() {
    let case = crate::locvolcalib::case("tiny", 8, 32, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}
