use crate::nw;

#[test]
fn nw_small_validates_and_circuits() {
    let case = nw::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0, "unopt NW must copy blocks");
    assert_eq!(
        opt.bytes_copied, 0,
        "opt NW must elide all block copies: {opt}"
    );
    assert!(opt.bytes_elided > 0);
}

#[test]
fn lud_small_validates_and_circuits_perimeter_and_interior() {
    let case = crate::lud::case("tiny", 4, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    // The diagonal block keeps its (small) copy; everything else is
    // elided, so the optimized copies are far smaller.
    assert!(
        opt.bytes_copied < unopt.bytes_copied / 4,
        "opt copies {} vs unopt {}",
        opt.bytes_copied,
        unopt.bytes_copied
    );
    assert!(opt.bytes_elided > 0);
}

#[test]
fn hotspot_small_validates_and_elides_concat() {
    let case = crate::hotspot::case("tiny", 32, 4, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "all hotspot copies elided: {opt}");
}

#[test]
fn nn_small_validates_and_elides_reduce_copy() {
    let case = crate::nn::case("tiny", 4096, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn lbm_small_validates_and_builds_rows_in_place() {
    let case = crate::lbm::case("tiny", (8, 8, 4), 3, 2);
    let (unopt, opt) = case.validate();
    // Unopt pays the mapnest private-row copy every step.
    assert_eq!(unopt.bytes_copied, (3 * 8 * 8 * 4 * 19 * 4) as u64);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn optionpricing_small_validates() {
    let case = crate::optionpricing::case("tiny", 512, 16, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

#[test]
fn locvolcalib_small_validates() {
    let case = crate::locvolcalib::case("tiny", 8, 32, 8, 2);
    let (unopt, opt) = case.validate();
    assert!(unopt.bytes_copied > 0);
    assert_eq!(opt.bytes_copied, 0, "{opt}");
}

/// Every workload, fully optimized, twice through one session under the
/// shadow-memory sanitizer: no uninitialized reads of recycled blocks, no
/// use-after-release, no map races, and every short-circuited footprint
/// pair concretely disjoint.
#[test]
fn all_workloads_run_clean_under_checked_mode() {
    let cases = [
        nw::case("tiny", 4, 4, 2),
        crate::lud::case("tiny", 4, 4, 2),
        crate::hotspot::case("tiny", 32, 4, 2),
        crate::nn::case("tiny", 4096, 8, 2),
        crate::lbm::case("tiny", (8, 8, 4), 3, 2),
        crate::optionpricing::case("tiny", 512, 16, 2),
        crate::locvolcalib::case("tiny", 8, 32, 8, 2),
    ];
    let mut circuits_verified = 0;
    for case in cases {
        let stats = case.validate_checked();
        assert!(
            stats.diagnostics.is_empty() && stats.diagnostics_suppressed == 0,
            "{}/{}: sanitizer fired:\n{stats}",
            case.name,
            case.dataset
        );
        assert!(
            stats.cells_checked > 0,
            "{}/{}: sanitizer inspected nothing — shadow layer not engaged",
            case.name,
            case.dataset
        );
        circuits_verified += stats.circuits_verified;
    }
    // The footprint cross-check must actually engage somewhere in the
    // suite — a cross-check that never evaluates proves nothing.
    assert!(
        circuits_verified > 0,
        "no short-circuit check was concretely verified"
    );
}
