//! LocVolCalib (paper §VI-G; FinPar's local-volatility calibration).
//!
//! Batched Crank-Nicolson-style pricing: each option evolves a value grid
//! of `numX` points through `numT` implicit time steps, each solved with
//! the Thomas tridiagonal algorithm. The compiled program stages the
//! pipeline the way the functional source is written: an initial payoff
//! grid, a first batch of time steps into a fresh grid, and the remaining
//! steps into the result grid. The payoff grid is dead once the first
//! batch has consumed it, so the merge pass folds the result grid into
//! its allocation — the hand-written reference gets the same effect by
//! evolving one buffer in place.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, Var};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

/// Initial condition for one option: call payoff on the price grid.
pub fn payoff_row(opt: i64, num_x: usize) -> Vec<f32> {
    let strike = 50.0 + opt as f32; // per-option strike (the "calibration" axis)
    let dx = 4.0 * strike / num_x as f32;
    (0..num_x)
        .map(|i| (i as f32 * dx - strike).max(0.0))
        .collect()
}

/// Evolve one option's grid through implicit time steps `t0..t1` of a
/// `num_t`-step schedule. Shared by the kernels and the reference so all
/// versions perform identical arithmetic.
pub fn evolve_row(opt: i64, num_x: usize, num_t: usize, t0: usize, t1: usize, v: &mut [f32]) {
    let strike = 50.0 + opt as f32;
    let dx = 4.0 * strike / num_x as f32;
    let dt = 1.0 / num_t as f32;
    // Thomas scratch.
    let mut cp = vec![0f32; num_x];
    let mut dp = vec![0f32; num_x];
    for t in t0..t1 {
        // Local-volatility coefficient (varies over the grid and time).
        let tfrac = t as f32 * dt;
        let alpha = |i: usize| -> f32 {
            let x = i as f32 * dx;
            let sigma = 0.2 + 0.1 * (x / (4.0 * strike)) + 0.05 * tfrac;
            0.5 * sigma * sigma * dt / (dx * dx) * x.max(1.0)
        };
        // Implicit system: -a·v[i-1] + (1+2a)·v[i] - a·v[i+1] = v_old[i].
        let a0 = alpha(0);
        cp[0] = -a0 / (1.0 + 2.0 * a0);
        dp[0] = v[0] / (1.0 + 2.0 * a0);
        for i in 1..num_x {
            let a = alpha(i);
            let m = 1.0 + 2.0 * a + a * cp[i - 1];
            cp[i] = -a / m;
            dp[i] = (v[i] + a * dp[i - 1]) / m;
        }
        v[num_x - 1] = dp[num_x - 1];
        for i in (0..num_x - 1).rev() {
            v[i] = dp[i] - cp[i] * v[i + 1];
        }
    }
}

/// Hand-written imperative reference: one buffer per option, evolved in
/// place through the full schedule.
pub fn reference(num_o: usize, num_x: usize, num_t: usize) -> Vec<f32> {
    let mut out = vec![0f32; num_o * num_x];
    for o in 0..num_o {
        let mut v = payoff_row(o as i64, num_x);
        evolve_row(o as i64, num_x, num_t, 0, num_t, &mut v);
        out[o * num_x..(o + 1) * num_x].copy_from_slice(&v);
    }
    out
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    reg.register("lvc_payoff", |ctx| {
        let num_x = ctx.arg_i64(0) as usize;
        for (i, v) in payoff_row(ctx.i, num_x).into_iter().enumerate() {
            ctx.out.set_f32(&[i as i64], v);
        }
    });
    // Half the time schedule per launch: `phase` 0 runs steps
    // `0..numT/2`, phase 1 runs `numT/2..numT` — sequential composition,
    // so the staged pipeline computes exactly what one fused solve would.
    reg.register("lvc_steps", |ctx| {
        let num_x = ctx.arg_i64(0) as usize;
        let num_t = ctx.arg_i64(1) as usize;
        let phase = ctx.arg_i64(2);
        let half = num_t / 2;
        let (t0, t1) = if phase == 0 { (0, half) } else { (half, num_t) };
        let mut v: Vec<f32> = (0..num_x)
            .map(|i| ctx.inputs[0].get_f32(&[ctx.i, i as i64]))
            .collect();
        evolve_row(ctx.i, num_x, num_t, t0, t1, &mut v);
        for (i, val) in v.into_iter().enumerate() {
            ctx.out.set_f32(&[i as i64], val);
        }
    });
}

pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("locvolcalib");
    let num_o = bld.scalar_param("lvc_numO", ElemType::I64);
    let num_x = bld.scalar_param("lvc_numX", ElemType::I64);
    let num_t = bld.scalar_param("lvc_numT", ElemType::I64);
    let mut body = bld.block();
    // Stage 1: initial payoff grid.
    let grid0 = body.map_kernel(
        "grid0",
        "lvc_payoff",
        p(num_o),
        vec![p(num_x)],
        ElemType::F32,
        vec![],
        vec![ScalarExp::var(num_x)],
    );
    // Stage 2: first half of the time schedule, consuming the payoff.
    let grid_h = body.map_kernel(
        "gridH",
        "lvc_steps",
        p(num_o),
        vec![p(num_x)],
        ElemType::F32,
        vec![grid0],
        vec![
            ScalarExp::var(num_x),
            ScalarExp::var(num_t),
            ScalarExp::i64(0),
        ],
    );
    // Stage 3: remaining steps into the result grid. The payoff grid is
    // dead by now, so the merge pass can fold this allocation into it.
    let res = body.map_kernel(
        "res",
        "lvc_steps",
        p(num_o),
        vec![p(num_x)],
        ElemType::F32,
        vec![grid_h],
        vec![
            ScalarExp::var(num_x),
            ScalarExp::var(num_t),
            ScalarExp::i64(1),
        ],
    );
    let blk = body.finish(vec![res]);
    let mut env = Env::new();
    env.assume_ge(num_o, 1);
    env.assume_ge(num_x, 2);
    env.assume_ge(num_t, 1);
    (bld.finish(blk), env)
}

pub fn case(label: &str, num_o: usize, num_x: usize, num_t: usize, runs: usize) -> Case {
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(num_o as i64),
        InputValue::I64(num_x as i64),
        InputValue::I64(num_t as i64),
    ];
    Case {
        name: "locvolcalib".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |_| {
            let t0 = std::time::Instant::now();
            let out = reference(num_o, num_x, num_t);
            (t0.elapsed(), vec![OutputValue::ArrayF32(out)])
        }),
        runs,
        tol: 1e-5,
    }
}

/// The paper's Table VI datasets, scaled.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize, usize)> {
    // (label, numO, numX, numT, runs)
    vec![
        ("small", 64, 128, 32, 5),
        ("medium", 128, 128, 64, 3),
        ("large", 128, 256, 128, 2),
    ]
}
