//! LocVolCalib (paper §VI-G; FinPar's local-volatility calibration).
//!
//! Batched Crank-Nicolson-style pricing: each option evolves a value grid
//! of `numX` points through `numT` implicit time steps, each solved with
//! the Thomas tridiagonal algorithm. The per-option result row is the
//! paper's mapnest case (§V-A(e)): the inner loop computes it "in place,
//! one element at a time" in private memory; short-circuiting constructs
//! it directly in the result array.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, Var};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

/// Solve one option's grid: initial payoff, then `numT` implicit steps.
/// Generic over the output writer so the kernel and the reference share
/// identical arithmetic.
pub fn solve_option(opt: i64, num_x: usize, num_t: usize, out: &mut dyn FnMut(usize, f32)) {
    let strike = 50.0 + opt as f32; // per-option strike (the "calibration" axis)
    let dx = 4.0 * strike / num_x as f32;
    let dt = 1.0 / num_t as f32;
    // Initial condition: call payoff on the price grid.
    let mut v: Vec<f32> = (0..num_x)
        .map(|i| (i as f32 * dx - strike).max(0.0))
        .collect();
    // Thomas scratch.
    let mut cp = vec![0f32; num_x];
    let mut dp = vec![0f32; num_x];
    for t in 0..num_t {
        // Local-volatility coefficient (varies over the grid and time).
        let tfrac = t as f32 * dt;
        let alpha = |i: usize| -> f32 {
            let x = i as f32 * dx;
            let sigma = 0.2 + 0.1 * (x / (4.0 * strike)) + 0.05 * tfrac;
            0.5 * sigma * sigma * dt / (dx * dx) * x.max(1.0)
        };
        // Implicit system: -a·v[i-1] + (1+2a)·v[i] - a·v[i+1] = v_old[i].
        let a0 = alpha(0);
        cp[0] = -a0 / (1.0 + 2.0 * a0);
        dp[0] = v[0] / (1.0 + 2.0 * a0);
        for i in 1..num_x {
            let a = alpha(i);
            let m = 1.0 + 2.0 * a + a * cp[i - 1];
            cp[i] = -a / m;
            dp[i] = (v[i] + a * dp[i - 1]) / m;
        }
        v[num_x - 1] = dp[num_x - 1];
        for i in (0..num_x - 1).rev() {
            v[i] = dp[i] - cp[i] * v[i + 1];
        }
    }
    for (i, val) in v.iter().enumerate() {
        out(i, *val);
    }
}

/// Hand-written imperative reference.
pub fn reference(num_o: usize, num_x: usize, num_t: usize) -> Vec<f32> {
    let mut out = vec![0f32; num_o * num_x];
    for o in 0..num_o {
        let base = o * num_x;
        solve_option(o as i64, num_x, num_t, &mut |i, v| out[base + i] = v);
    }
    out
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    reg.register("lvc_solve", |ctx| {
        let num_x = ctx.arg_i64(0) as usize;
        let num_t = ctx.arg_i64(1) as usize;
        let l = ctx.out.lmad().expect("row is one LMAD").clone();
        let out = &ctx.out;
        solve_option(ctx.i, num_x, num_t, &mut |i, v| {
            out.write_f32_off(l.offset + i as i64 * l.dims[0].1, v)
        });
    });
}

pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("locvolcalib");
    let num_o = bld.scalar_param("lvc_numO", ElemType::I64);
    let num_x = bld.scalar_param("lvc_numX", ElemType::I64);
    let num_t = bld.scalar_param("lvc_numT", ElemType::I64);
    let mut body = bld.block();
    let res = body.map_kernel(
        "res",
        "lvc_solve",
        p(num_o),
        vec![p(num_x)],
        ElemType::F32,
        vec![],
        vec![ScalarExp::var(num_x), ScalarExp::var(num_t)],
    );
    let blk = body.finish(vec![res]);
    let mut env = Env::new();
    env.assume_ge(num_o, 1);
    env.assume_ge(num_x, 2);
    env.assume_ge(num_t, 1);
    (bld.finish(blk), env)
}

pub fn case(label: &str, num_o: usize, num_x: usize, num_t: usize, runs: usize) -> Case {
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(num_o as i64),
        InputValue::I64(num_x as i64),
        InputValue::I64(num_t as i64),
    ];
    Case {
        name: "locvolcalib".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |_| {
            let t0 = std::time::Instant::now();
            let out = reference(num_o, num_x, num_t);
            (t0.elapsed(), vec![OutputValue::ArrayF32(out)])
        }),
        runs,
        tol: 1e-5,
    }
}

/// The paper's Table VI datasets, scaled.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize, usize)> {
    // (label, numO, numX, numT, runs)
    vec![
        ("small", 64, 128, 32, 5),
        ("medium", 128, 128, 64, 3),
        ("large", 128, 256, 128, 2),
    ]
}
