//! Lattice-Boltzmann Method, D3Q19 (paper §VI-E; Parboil).
//!
//! A pull-scheme stream-and-collide over a 3D lattice with 19 distribution
//! functions per cell, BGK relaxation, and bounce-back walls at the domain
//! boundary. Each time step maps over all cells producing a fresh
//! `[19]`-row per cell — exactly the paper's mapnest case (§V-A(e)): the
//! per-cell result array would be built in private memory and copied into
//! the step's result; short-circuiting constructs it there directly.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, Var};
use arraymem_symbolic::{Env, Poly};

/// D3Q19 velocity set; direction 0 is rest.
pub const C: [(i64, i64, i64); 19] = [
    (0, 0, 0),
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// Opposite direction (for bounce-back).
pub const OPP: [usize; 19] = [
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17,
];

/// Lattice weights.
pub const W: [f32; 19] = [
    1.0 / 3.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 18.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
    1.0 / 36.0,
];

const TAU: f32 = 0.6;

fn p(v: Var) -> Poly {
    Poly::var(v)
}

/// One cell's stream (pull) + collide step, generic over how the previous
/// lattice is read so the reference and the kernel share bit-identical
/// arithmetic. `read(cell, q)` returns distribution `q` of `cell`.
#[inline]
pub fn cell_step<R: Fn(i64, usize) -> f32>(
    (x, y, z): (i64, i64, i64),
    dims: (i64, i64, i64),
    read: R,
    out: &mut [f32; 19],
) {
    let (nx, ny, nz) = dims;
    let cell = (z * ny + y) * nx + x;
    let mut fin = [0f32; 19];
    for q in 0..19 {
        let (cx, cy, cz) = C[q];
        let (sx, sy, sz) = (x - cx, y - cy, z - cz);
        fin[q] = if sx < 0 || sx >= nx || sy < 0 || sy >= ny || sz < 0 || sz >= nz {
            // Bounce-back at the wall: reflect the opposite distribution
            // of this cell.
            read(cell, OPP[q])
        } else {
            read((sz * ny + sy) * nx + sx, q)
        };
    }
    let mut rho = 0f32;
    let (mut ux, mut uy, mut uz) = (0f32, 0f32, 0f32);
    for q in 0..19 {
        rho += fin[q];
        ux += C[q].0 as f32 * fin[q];
        uy += C[q].1 as f32 * fin[q];
        uz += C[q].2 as f32 * fin[q];
    }
    ux /= rho;
    uy /= rho;
    uz /= rho;
    let usq = 1.5 * (ux * ux + uy * uy + uz * uz);
    for q in 0..19 {
        let cu = 3.0 * (C[q].0 as f32 * ux + C[q].1 as f32 * uy + C[q].2 as f32 * uz);
        let feq = W[q] * rho * (1.0 + cu + 0.5 * cu * cu - usq);
        out[q] = fin[q] + (feq - fin[q]) / TAU;
    }
}

/// Initial lattice: equilibrium at rest with a density perturbation.
pub fn init_lattice(nx: usize, ny: usize, nz: usize) -> Vec<f32> {
    let cells = nx * ny * nz;
    let mut f = vec![0f32; cells * 19];
    for cidx in 0..cells {
        let x = cidx % nx;
        let rho = 1.0 + 0.01 * ((x * 7 % 13) as f32 / 13.0);
        for q in 0..19 {
            f[cidx * 19 + q] = W[q] * rho;
        }
    }
    f
}

/// Hand-written imperative reference: double-buffered stepping.
pub fn reference(nx: usize, ny: usize, nz: usize, steps: usize, f: &mut Vec<f32>) {
    let cells = nx * ny * nz;
    let mut next = vec![0f32; cells * 19];
    let dims = (nx as i64, ny as i64, nz as i64);
    for _ in 0..steps {
        for z in 0..nz as i64 {
            for y in 0..ny as i64 {
                for x in 0..nx as i64 {
                    let cell = ((z * ny as i64 + y) * nx as i64 + x) as usize;
                    let mut out = [0f32; 19];
                    cell_step((x, y, z), dims, |c, q| f[c as usize * 19 + q], &mut out);
                    next[cell * 19..cell * 19 + 19].copy_from_slice(&out);
                }
            }
        }
        std::mem::swap(f, &mut next);
    }
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    reg.register("lbm_step", |ctx| {
        let nx = ctx.arg_i64(0);
        let ny = ctx.arg_i64(1);
        let nz = ctx.arg_i64(2);
        let f = &ctx.inputs[0];
        let l = f.lmad().expect("lattice is one LMAD");
        let (sc, sq) = (l.dims[0].1, l.dims[1].1);
        let base = l.offset;
        let cell = ctx.i;
        let x = cell % nx;
        let y = (cell / nx) % ny;
        let z = cell / (nx * ny);
        let mut out = [0f32; 19];
        cell_step(
            (x, y, z),
            (nx, ny, nz),
            |c, q| f.read_f32_off(base + c * sc + q as i64 * sq),
            &mut out,
        );
        let ol = ctx.out.lmad().expect("row is one LMAD").clone();
        let mut woff = ol.offset;
        for v in out {
            ctx.out.write_f32_off(woff, v);
            woff += ol.dims[0].1;
        }
    });
}

pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("lbm");
    let nx = bld.scalar_param("lbm_nx", ElemType::I64);
    let ny = bld.scalar_param("lbm_ny", ElemType::I64);
    let nz = bld.scalar_param("lbm_nz", ElemType::I64);
    let steps = bld.scalar_param("lbm_steps", ElemType::I64);
    let cells = p(nx) * p(ny) * p(nz);
    let f0 = bld.array_param(
        "lbm_f",
        ElemType::F32,
        vec![cells.clone(), Poly::constant(19)],
    );
    let mut body = bld.block();

    let param = body.loop_param("F", f0);
    let it = body.loop_index("lbm_it");
    let mut lb = bld.block();
    let fnext = lb.map_kernel_acc(
        "F'",
        "lbm_step",
        cells,
        vec![Poly::constant(19)],
        ElemType::F32,
        vec![param],
        vec![ScalarExp::var(nx), ScalarExp::var(ny), ScalarExp::var(nz)],
        vec![0],
    );
    let lbody = lb.finish(vec![fnext]);
    let ffinal = body.loop_(
        vec!["Ffinal"],
        vec![(param, bld.ty(f0))],
        vec![f0],
        it,
        p(steps),
        lbody,
    )[0];
    let blk = body.finish(vec![ffinal]);

    let mut env = Env::new();
    env.assume_ge(nx, 1);
    env.assume_ge(ny, 1);
    env.assume_ge(nz, 1);
    env.assume_ge(steps, 1);
    (bld.finish(blk), env)
}

pub fn case(label: &str, dims: (usize, usize, usize), steps: usize, runs: usize) -> Case {
    let (nx, ny, nz) = dims;
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(nx as i64),
        InputValue::I64(ny as i64),
        InputValue::I64(nz as i64),
        InputValue::I64(steps as i64),
        InputValue::ArrayF32(init_lattice(nx, ny, nz)),
    ];
    Case {
        name: "lbm".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let steps = match &inp[3] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let mut f = match &inp[4] {
                InputValue::ArrayF32(d) => d.clone(),
                _ => unreachable!(),
            };
            let t0 = std::time::Instant::now();
            reference(nx, ny, nz, steps, &mut f);
            (t0.elapsed(), vec![OutputValue::ArrayF32(f)])
        }),
        runs,
        tol: 1e-4,
    }
}

/// One dataset row: label, lattice dims, timesteps, measured runs.
pub type Dataset = (&'static str, (usize, usize, usize), usize, usize);

/// The paper's Table IV datasets (Parboil "short"/"long"), scaled.
pub fn datasets() -> Vec<Dataset> {
    vec![("short", (32, 32, 16), 3, 4), ("long", (32, 32, 16), 30, 2)]
}
