//! OptionPricing (paper §VI-F; FinPar's extended option pricing engine).
//!
//! A Monte-Carlo engine: each path draws quasi-random gaussians, builds a
//! geometric-Brownian-motion price path (the per-path array is the
//! mapnest case — built in private memory and copied without
//! short-circuiting), computes an arithmetic-Asian payoff, and the payoffs
//! are reduced into the result, whose update short-circuits.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, SliceSpec, Var};
use arraymem_lmad::{Transform, TripletSlice};
use arraymem_symbolic::{Env, Poly};

const S0: f32 = 100.0;
const STRIKE: f32 = 100.0;
const RATE: f32 = 0.03;
const VOL: f32 = 0.2;
const YEARS: f32 = 1.0;

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// A cheap counter-based quasi-random generator (plays the role of the
/// Sobol sequence): hash (path, step) to a uniform, then an inverse-CDF
/// style approximation to a gaussian via the sum-of-uniforms trick.
#[inline]
fn gaussian(path: i64, step: i64) -> f32 {
    let mut acc = 0f32;
    let mut h = (path as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (step as u64).wrapping_mul(0xD1B54A32D192ED03);
    for _ in 0..4 {
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        acc += (h >> 40) as f32 / (1u64 << 24) as f32; // uniform [0,1)
    }
    // Sum of 4 uniforms ≈ N(2, 1/3); normalize.
    (acc - 2.0) * (3.0f32).sqrt()
}

/// Build one GBM path (the per-path array the mapnest materializes).
#[inline]
pub fn gen_path(path: i64, steps: usize, out: &mut dyn FnMut(usize, f32)) {
    let dt = YEARS / steps as f32;
    let drift = (RATE - 0.5 * VOL * VOL) * dt;
    let sdt = VOL * dt.sqrt();
    let mut s = S0;
    for t in 0..steps {
        s *= (drift + sdt * gaussian(path, t as i64)).exp();
        out(t, s);
    }
}

/// Arithmetic-Asian call payoff, discounted.
#[inline]
pub fn payoff(read: &mut dyn FnMut(usize) -> f32, steps: usize) -> f32 {
    let mut avg = 0f32;
    for t in 0..steps {
        avg += read(t);
    }
    avg /= steps as f32;
    (avg - STRIKE).max(0.0) * (-RATE * YEARS).exp()
}

/// Hand-written reference: fuse generation + payoff per path, sum.
pub fn reference(npaths: usize, steps: usize) -> f32 {
    let mut total = 0f32;
    let mut path = vec![0f32; steps];
    for i in 0..npaths {
        gen_path(i as i64, steps, &mut |t, v| path[t] = v);
        total += payoff(&mut |t| path[t], steps);
    }
    total / npaths as f32
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    reg.register("op_bridge", |ctx| {
        let steps = ctx.arg_i64(0) as usize;
        let l = ctx.out.lmad().expect("path row is one LMAD").clone();
        let s0 = l.offset;
        let st = l.dims[0].1;
        let out = &ctx.out;
        gen_path(ctx.i, steps, &mut |t, v| {
            out.write_f32_off(s0 + t as i64 * st, v)
        });
    });
    reg.register("op_payoff", |ctx| {
        let steps = ctx.arg_i64(0) as usize;
        let row = ctx.inputs[0].row(ctx.i);
        let l = row.lmad().expect("path row is one LMAD").clone();
        let v = payoff(
            &mut |t| row.read_f32_off(l.offset + t as i64 * l.dims[0].1),
            steps,
        );
        ctx.out.set_f32(&[], v);
    });
    reg.register("op_mean", |ctx| {
        let l = ctx.inputs[0].lmad().expect("payoffs one LMAD").clone();
        let n = l.dims[0].0;
        let mut total = 0f32;
        let mut off = l.offset;
        for _ in 0..n {
            total += ctx.inputs[0].read_f32_off(off);
            off += l.dims[0].1;
        }
        ctx.out.set_f32(&[0], total / n as f32);
    });
}

pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("optionpricing");
    let npaths = bld.scalar_param("op_npaths", ElemType::I64);
    let steps = bld.scalar_param("op_steps", ElemType::I64);
    let mut body = bld.block();

    let paths = body.map_kernel(
        "paths",
        "op_bridge",
        p(npaths),
        vec![p(steps)],
        ElemType::F32,
        vec![],
        vec![ScalarExp::var(steps)],
    );
    let payoffs = body.map_kernel(
        "payoffs",
        "op_payoff",
        p(npaths),
        vec![],
        ElemType::F32,
        vec![paths],
        vec![ScalarExp::var(steps)],
    );
    let red = body.map_kernel_acc(
        "red",
        "op_mean",
        c(1),
        vec![c(1)],
        ElemType::F32,
        vec![payoffs],
        vec![],
        vec![0],
    );
    // Flatten the [1][1] reduction result and write it into the result
    // array — the in-place update the paper describes for NN-style
    // reductions, short-circuited.
    let red_flat = body.transform("red_flat", red, Transform::Reshape(vec![c(1)]));
    let res0 = body.scratch("res0", ElemType::F32, vec![c(1)]);
    let res = body.update(
        "res",
        res0,
        SliceSpec::Triplet(vec![TripletSlice::range(c(0), c(1), c(1))]),
        red_flat,
    );
    let blk = body.finish(vec![res]);

    let mut env = Env::new();
    env.assume_ge(npaths, 1);
    env.assume_ge(steps, 1);
    (bld.finish(blk), env)
}

pub fn case(label: &str, npaths: usize, steps: usize, runs: usize) -> Case {
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(npaths as i64),
        InputValue::I64(steps as i64),
    ];
    Case {
        name: "optionpricing".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |_| {
            let t0 = std::time::Instant::now();
            let v = reference(npaths, steps);
            (t0.elapsed(), vec![OutputValue::ArrayF32(vec![v])])
        }),
        runs,
        tol: 1e-4,
    }
}

/// The paper's Table V datasets, scaled.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize)> {
    // (label, npaths, steps, runs)
    vec![("medium", 16_384, 64, 4), ("large", 65_536, 64, 2)]
}
