//! Hotspot thermal simulation (paper §VI-D, Fig. 10b; Rodinia).
//!
//! A repeated 5-point stencil over a temperature grid driven by a power
//! grid. "The stencil boundaries are treated separately: the corners are
//! handled first, then the four edges and finally the internal cells.
//! Because the new value of each cell depends on the old value of its
//! neighbours, we cannot perform the computation in place. Instead we
//! compute the different parts separately and **concatenate** them at the
//! end." Short-circuiting constructs the parts directly in the result
//! memory, eliding the whole-grid copy per time step (paper speedups up
//! to 2×).
//!
//! We partition by rows: the top boundary row (with its two corners), the
//! interior rows (each handling its left/right edge cells), and the bottom
//! boundary row — a three-way concat along the outer dimension.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue, View};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, Var};
use arraymem_symbolic::{Env, Poly};

// Rodinia's chip parameters (simplified to the per-step coefficients).
const CAP: f32 = 0.5;
const RX: f32 = 1.0;
const RY: f32 = 1.0;
const RZ: f32 = 1.0;
const AMB: f32 = 80.0;

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

#[inline]
fn cell_update(t: f32, power: f32, tn: f32, ts: f32, te: f32, tw: f32) -> f32 {
    t + (1.0 / CAP) * (power + (tn + ts - 2.0 * t) / RY + (te + tw - 2.0 * t) / RX + (AMB - t) / RZ)
}

/// Neighbour with boundary clamping.
#[inline]
fn at(temp: &[f32], n: usize, r: i64, cc: i64) -> f32 {
    let r = r.clamp(0, n as i64 - 1) as usize;
    let cc = cc.clamp(0, n as i64 - 1) as usize;
    temp[r * n + cc]
}

/// Hand-written imperative reference: double-buffered in-place stepping.
pub fn reference(n: usize, steps: usize, temp: &mut Vec<f32>, power: &[f32]) {
    let mut next = vec![0f32; n * n];
    for _ in 0..steps {
        for r in 0..n {
            for cc in 0..n {
                let t = temp[r * n + cc];
                next[r * n + cc] = cell_update(
                    t,
                    power[r * n + cc],
                    at(temp, n, r as i64 - 1, cc as i64),
                    at(temp, n, r as i64 + 1, cc as i64),
                    at(temp, n, r as i64, cc as i64 + 1),
                    at(temp, n, r as i64, cc as i64 - 1),
                );
            }
        }
        std::mem::swap(temp, &mut next);
    }
}

fn row_kernel(temp: &View, power: &View, n: i64, r: i64, out: &arraymem_exec::ViewMut) {
    // Incremental flat addressing through the (row-major) input LMADs.
    let tl = temp.lmad().expect("temp is one LMAD");
    let base = tl.offset + r * n;
    let up = if r == 0 { 0 } else { n };
    let down = if r == n - 1 { 0 } else { n };
    let pl = power.lmad().expect("power is one LMAD");
    let pbase = pl.offset + r * n;
    let ol = out.lmad().expect("row is one LMAD").clone();
    let sc = ol.dims[0].1;
    let mut woff = ol.offset;
    for cc in 0..n {
        let t = temp.read_f32_off(base + cc);
        let e = if cc == n - 1 {
            t
        } else {
            temp.read_f32_off(base + cc + 1)
        };
        let w = if cc == 0 {
            t
        } else {
            temp.read_f32_off(base + cc - 1)
        };
        let v = cell_update(
            t,
            power.read_f32_off(pbase + cc),
            temp.read_f32_off(base - up + cc),
            temp.read_f32_off(base + down + cc),
            e,
            w,
        );
        out.write_f32_off(woff, v);
        woff += sc;
    }
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    // Top boundary row (instance 0 computes row 0, corners included).
    reg.register("hotspot_top", |ctx| {
        let n = ctx.arg_i64(0);
        row_kernel(&ctx.inputs[0], &ctx.inputs[1], n, 0, &ctx.out);
    });
    // Interior rows: instance i computes row i+1.
    reg.register("hotspot_mid", |ctx| {
        let n = ctx.arg_i64(0);
        row_kernel(&ctx.inputs[0], &ctx.inputs[1], n, ctx.i + 1, &ctx.out);
    });
    // Bottom boundary row.
    reg.register("hotspot_bot", |ctx| {
        let n = ctx.arg_i64(0);
        row_kernel(&ctx.inputs[0], &ctx.inputs[1], n, n - 1, &ctx.out);
    });
}

/// The Futhark-style program: a step loop whose body computes the three
/// parts and concatenates them.
pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("hotspot");
    let n = bld.scalar_param("hs_n", ElemType::I64);
    let steps = bld.scalar_param("hs_steps", ElemType::I64);
    let temp0 = bld.array_param("hs_temp", ElemType::F32, vec![p(n), p(n)]);
    let power = bld.array_param("hs_power", ElemType::F32, vec![p(n), p(n)]);
    let mut body = bld.block();

    let param = body.loop_param("T", temp0);
    let it = body.loop_index("hs_it");
    let mut lb = bld.block();
    let args = vec![ScalarExp::var(n)];
    let top = lb.map_kernel_acc(
        "top",
        "hotspot_top",
        c(1),
        vec![p(n)],
        ElemType::F32,
        vec![param, power],
        args.clone(),
        vec![0, 1],
    );
    let mid = lb.map_kernel_acc(
        "mid",
        "hotspot_mid",
        p(n) - c(2),
        vec![p(n)],
        ElemType::F32,
        vec![param, power],
        args.clone(),
        vec![0, 1],
    );
    let bot = lb.map_kernel_acc(
        "bot",
        "hotspot_bot",
        c(1),
        vec![p(n)],
        ElemType::F32,
        vec![param, power],
        args,
        vec![0, 1],
    );
    let joined = lb.concat("T'", vec![top, mid, bot]);
    let lbody = lb.finish(vec![joined]);
    let tfinal = body.loop_(
        vec!["Tfinal"],
        vec![(param, bld.ty(temp0))],
        vec![temp0],
        it,
        p(steps),
        lbody,
    )[0];
    let blk = body.finish(vec![tfinal]);

    let mut env = Env::new();
    env.assume_ge(n, 4);
    env.assume_ge(steps, 1);
    (bld.finish(blk), env)
}

pub fn case(label: &str, n: usize, steps: usize, runs: usize) -> Case {
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::I64(steps as i64),
        InputValue::ArrayF32(crate::data::f32s(7, n * n, 322.0, 342.0)),
        InputValue::ArrayF32(crate::data::f32s(8, n * n, 0.0, 5.0)),
    ];
    Case {
        name: "hotspot".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let n = match &inp[0] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let steps = match &inp[1] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let mut temp = match &inp[2] {
                InputValue::ArrayF32(d) => d.clone(),
                _ => unreachable!(),
            };
            let power = match &inp[3] {
                InputValue::ArrayF32(d) => d.clone(),
                _ => unreachable!(),
            };
            let t0 = std::time::Instant::now();
            reference(n, steps, &mut temp, &power);
            (t0.elapsed(), vec![OutputValue::ArrayF32(temp)])
        }),
        runs,
        tol: 1e-4,
    }
}

/// The paper's Table III datasets, scaled.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize)> {
    // (label, n, steps, runs)
    vec![
        ("512", 512, 16, 4),
        ("1024", 1024, 16, 3),
        ("2048", 2048, 16, 2),
    ]
}
