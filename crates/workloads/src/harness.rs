//! The common benchmark-case shape and measurement helpers.

use arraymem_core::{compile, Compiled, Options, PassRun};
use arraymem_exec::{InputValue, KernelRegistry, Mode, OutputValue, PlanStats, Session, Stats};
use arraymem_ir::Program;
use arraymem_symbolic::Env;
use std::time::Duration;

/// Runs the reference implementation over the same inputs, returning the
/// time spent in its core computation (excluding input cloning) and its
/// outputs (for validation).
pub type RefFn = Box<dyn Fn(&[InputValue]) -> (Duration, Vec<OutputValue>)>;

/// Iteration scale shared by the fuzzers and property tests: the default
/// keeps CI fast; `ARRAYMEM_SLOW=1` opts into the deeper sweep.
pub fn scale(fast: usize, slow: usize) -> usize {
    match std::env::var("ARRAYMEM_SLOW") {
        Ok(v) if v == "1" => slow,
        _ => fast,
    }
}

/// One benchmark × dataset instance.
pub struct Case {
    /// Benchmark name, e.g. `"nw"`.
    pub name: String,
    /// Dataset label as printed in the table, e.g. `"2048"`.
    pub dataset: String,
    pub program: Program,
    pub env: Env,
    pub inputs: Vec<InputValue>,
    pub kernels: KernelRegistry,
    pub reference: RefFn,
    /// Measurement repetitions (scaled from the paper's run counts).
    pub runs: usize,
    /// Relative tolerance for output validation.
    pub tol: f64,
}

impl Case {
    pub fn compile(&self, short_circuit: bool) -> Compiled {
        let base = if short_circuit {
            Options::optimized()
        } else {
            Options::default()
        };
        compile(&self.program, &base.with_env(self.env.clone()))
            .unwrap_or_else(|e| panic!("{}/{}: compile failed: {e}", self.name, self.dataset))
    }

    /// Run a compiled variant once in a fresh session.
    pub fn run(&self, compiled: &Compiled) -> (Vec<OutputValue>, Stats) {
        self.run_in(&mut Session::new(), compiled)
    }

    /// Run a compiled variant in an existing session, so this run's
    /// allocations recycle blocks released by earlier runs and the plan
    /// is lowered once, on the session's first `prepare`, then replayed
    /// from the cache.
    pub fn run_in(&self, session: &mut Session, compiled: &Compiled) -> (Vec<OutputValue>, Stats) {
        self.run_in_at(session, compiled, arraymem_exec::pool::default_threads())
    }

    /// [`run_in`](Case::run_in) at an explicit thread count — the scaling
    /// benchmark sweeps this while reusing one session per thread count.
    pub fn run_in_at(
        &self,
        session: &mut Session,
        compiled: &Compiled,
        threads: usize,
    ) -> (Vec<OutputValue>, Stats) {
        let h = session
            .prepare_full(
                &compiled.program,
                &self.kernels,
                &[],
                &compiled.report.merges,
                &compiled.report.par_safety,
            )
            .unwrap_or_else(|e| panic!("{}/{}: prepare failed: {e}", self.name, self.dataset));
        session
            .run_plan(h, &self.inputs, &self.kernels, Mode::Memory, threads)
            .unwrap_or_else(|e| panic!("{}/{}: run failed: {e}", self.name, self.dataset))
    }

    /// Validate all three versions against each other. Returns the unopt
    /// and opt stats for mechanism assertions.
    pub fn validate(&self) -> (Stats, Stats) {
        let unopt = self.compile(false);
        let opt = self.compile(true);
        let (_, expect) = (self.reference)(&self.inputs);
        let (u_out, u_stats) = self.run(&unopt);
        let (o_out, o_stats) = self.run(&opt);
        assert_eq!(
            expect.len(),
            u_out.len(),
            "{}: arity mismatch vs reference",
            self.name
        );
        for (k, ((e, u), o)) in expect.iter().zip(&u_out).zip(&o_out).enumerate() {
            assert!(
                e.approx_eq(u, self.tol),
                "{}/{}: unopt output {k} differs from reference",
                self.name,
                self.dataset
            );
            assert!(
                e.approx_eq(o, self.tol),
                "{}/{}: opt output {k} differs from reference",
                self.name,
                self.dataset
            );
        }
        (u_stats, o_stats)
    }

    /// Run a compiled variant under [`Mode::Checked`] in an existing
    /// session, cross-checking every short-circuit decision the compile
    /// report recorded. Returns outputs plus the sanitizer's stats.
    pub fn run_checked_in(
        &self,
        session: &mut Session,
        compiled: &Compiled,
    ) -> (Vec<OutputValue>, Stats) {
        self.run_checked_in_at(session, compiled, arraymem_exec::pool::default_threads())
    }

    /// [`run_checked_in`](Case::run_checked_in) at an explicit thread
    /// count. `par_safety`-proven maps run parallel under the sanitizer
    /// (after the concrete pre-dispatch re-proof); unproven maps still
    /// serialize regardless of `threads`.
    pub fn run_checked_in_at(
        &self,
        session: &mut Session,
        compiled: &Compiled,
        threads: usize,
    ) -> (Vec<OutputValue>, Stats) {
        let checks: Vec<_> = compiled.report.checks().cloned().collect();
        let h = session
            .prepare_full(
                &compiled.program,
                &self.kernels,
                &checks,
                &compiled.report.merges,
                &compiled.report.par_safety,
            )
            .unwrap_or_else(|e| panic!("{}/{}: prepare failed: {e}", self.name, self.dataset));
        session
            .run_plan(h, &self.inputs, &self.kernels, Mode::Checked, threads)
            .unwrap_or_else(|e| panic!("{}/{}: checked run failed: {e}", self.name, self.dataset))
    }

    /// Compile with short-circuiting and run **twice** in one session
    /// under the sanitizer — the second run recycles the first run's
    /// released blocks, so its allocations carry stale contents and the
    /// zero-fill-elision obligation is actually exercised. Outputs of both
    /// runs are validated against the reference; the second run's stats
    /// (with any diagnostics) are returned.
    pub fn validate_checked(&self) -> Stats {
        let opt = self.compile(true);
        let (_, expect) = (self.reference)(&self.inputs);
        let mut session = Session::new();
        let mut last = None;
        for round in 0..2 {
            let (out, stats) = self.run_checked_in(&mut session, &opt);
            for (k, (e, o)) in expect.iter().zip(&out).enumerate() {
                assert!(
                    e.approx_eq(o, self.tol),
                    "{}/{}: checked-mode output {k} differs from reference (round {round})",
                    self.name,
                    self.dataset
                );
            }
            last = Some(stats);
        }
        last.expect("two checked rounds ran")
    }
}

/// A measured table row: reference time plus the two Futhark-style
/// variants, reported the way the paper's tables do.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub name: String,
    pub dataset: String,
    /// Worker-pool thread count the variants were executed at.
    pub threads: usize,
    pub reference: Duration,
    pub unopt: Duration,
    pub opt: Duration,
    pub unopt_stats: Stats,
    pub opt_stats: Stats,
    /// Plan-cache accounting of the unoptimized variant's session: one
    /// build, then a cache hit per repeated run.
    pub unopt_plan: PlanStats,
    pub opt_plan: PlanStats,
    /// Per-stage pipeline timings of each variant's compile (from
    /// [`arraymem_core::CompileReport`]), for the mechanism tables.
    pub unopt_passes: Vec<PassRun>,
    pub opt_passes: Vec<PassRun>,
}

impl Measurement {
    /// Speed of the unoptimized compiler output relative to the reference
    /// (`>1` = faster than reference), as in the paper's "Unopt. Futhark"
    /// column.
    pub fn unopt_rel(&self) -> f64 {
        self.reference.as_secs_f64() / self.unopt.as_secs_f64()
    }

    pub fn opt_rel(&self) -> f64 {
        self.reference.as_secs_f64() / self.opt.as_secs_f64()
    }

    /// The paper's "Opt. Impact" column: unopt time / opt time.
    pub fn impact(&self) -> f64 {
        self.unopt.as_secs_f64() / self.opt.as_secs_f64()
    }
}

/// Paper methodology: run a number of times, "always discarding the first
/// run and measuring the average wall time of the rest". Each sample is
/// the program-body execution time (input upload and result download are
/// excluded, as GPU benchmarks exclude host transfers).
fn average_body_time<F: FnMut() -> Duration>(runs: usize, mut f: F) -> Duration {
    let runs = runs.max(1);
    f(); // warm-up, discarded
    let mut total = Duration::ZERO;
    for _ in 0..runs {
        total += f();
    }
    total / runs as u32
}

/// Measure one case: reference vs unopt vs opt. Each compiled variant
/// runs inside one persistent [`Session`], the way a GPU benchmark reuses
/// one device context: after the discarded warm-up, every run's
/// allocations are served from the blocks the previous run released. The
/// reported stats are those of the final (steady-state) run.
pub fn measure_case(case: &Case) -> Measurement {
    measure_case_at(case, arraymem_exec::pool::default_threads())
}

/// [`measure_case`] at an explicit worker-pool thread count. The plan
/// cache is keyed on the program and its obligation records, not the
/// thread count, so per-thread-count sessions keep the one-build
/// invariant.
pub fn measure_case_at(case: &Case, threads: usize) -> Measurement {
    let unopt = case.compile(false);
    let opt = case.compile(true);
    let reference = average_body_time(case.runs, || {
        let (t, out) = (case.reference)(&case.inputs);
        std::hint::black_box(out);
        t
    });
    let measure_variant = |compiled: &Compiled| {
        let mut session = Session::new();
        let mut last_stats: Option<Stats> = None;
        let t = average_body_time(case.runs, || {
            let (out, stats) = case.run_in_at(&mut session, compiled, threads);
            std::hint::black_box(out);
            let t = stats.total_time;
            last_stats = Some(stats);
            t
        });
        let plan = session.plan_stats();
        // The whole point of `prepare`: one lowering per variant, every
        // repeated run (warm-up included) served from the cache.
        let total_runs = case.runs.max(1) as u64 + 1;
        assert_eq!(
            (plan.builds, plan.cache_hits),
            (1, total_runs - 1),
            "{}/{}: plan cache missed on a repeated run",
            case.name,
            case.dataset
        );
        (t, last_stats.expect("at least one measured run"), plan)
    };
    let (unopt_t, unopt_stats, unopt_plan) = measure_variant(&unopt);
    let (opt_t, opt_stats, opt_plan) = measure_variant(&opt);
    Measurement {
        name: case.name.clone(),
        dataset: case.dataset.clone(),
        threads,
        reference,
        unopt: unopt_t,
        opt: opt_t,
        unopt_stats,
        opt_stats,
        unopt_plan,
        opt_plan,
        unopt_passes: unopt.compile_report.passes.clone(),
        opt_passes: opt.compile_report.passes.clone(),
    }
}
