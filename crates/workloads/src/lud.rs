//! LU decomposition (paper §VI-C, Fig. 10a; Rodinia).
//!
//! Blocked right-looking LU without pivoting on an `n×n` matrix,
//! `n = q·b`. Each step `k` processes the diagonal block (green), then the
//! perimeter row (blue) and column (yellow) blocks, then the interior
//! (red) blocks.
//!
//! Short-circuiting behaviour mirrors the paper: the diagonal block reads
//! the very block it would be written into, so its update keeps its copy
//! (the paper's green block is likewise not computed in place); the
//! perimeter and interior updates — the O(n²)-per-step bulk — are proven
//! safe and elided.

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue, View};
use arraymem_ir::{Builder, ElemType, Program, ScalarExp, SliceSpec, Var};
use arraymem_lmad::{Dim, Lmad, Transform};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// A diagonally-dominant random matrix (so factorization without pivoting
/// is stable).
pub fn gen_matrix(n: usize, seed: u64) -> Vec<f32> {
    let mut a = crate::data::f32s(seed, n * n, 0.01, 1.0);
    for i in 0..n {
        a[i * n + i] += n as f32;
    }
    a
}

/// In-place sequential *blocked* LU (same blocking as the parallel
/// version, so float rounding matches) — the "hand-written imperative"
/// reference.
pub fn reference(n: usize, b: usize, a: &mut [f32]) {
    let q = n / b;
    for k in 0..q {
        lu_diag_inplace(a, n, k * b, b);
        for j in k + 1..q {
            solve_row_block(a, n, k * b, j * b, b);
        }
        for i in k + 1..q {
            solve_col_block(a, n, i * b, k * b, b);
        }
        for i in k + 1..q {
            for j in k + 1..q {
                mm_sub_block(a, n, i * b, j * b, k * b, b);
            }
        }
    }
}

fn lu_diag_inplace(a: &mut [f32], n: usize, o: usize, b: usize) {
    for kk in 0..b {
        let pivot = a[(o + kk) * n + o + kk];
        for i in kk + 1..b {
            let l = a[(o + i) * n + o + kk] / pivot;
            a[(o + i) * n + o + kk] = l;
            for j in kk + 1..b {
                a[(o + i) * n + o + j] -= l * a[(o + kk) * n + o + j];
            }
        }
    }
}

/// U(k,j) := L(k,k)^-1 · A(k,j) (unit lower triangular solve).
fn solve_row_block(a: &mut [f32], n: usize, ko: usize, jo: usize, b: usize) {
    for r in 1..b {
        for t in 0..r {
            let l = a[(ko + r) * n + ko + t];
            for cc in 0..b {
                let u = a[(ko + t) * n + jo + cc];
                a[(ko + r) * n + jo + cc] -= l * u;
            }
        }
    }
}

/// L(i,k) := A(i,k) · U(k,k)^-1.
fn solve_col_block(a: &mut [f32], n: usize, io: usize, ko: usize, b: usize) {
    for cc in 0..b {
        for r in 0..b {
            let mut v = a[(io + r) * n + ko + cc];
            for t in 0..cc {
                v -= a[(io + r) * n + ko + t] * a[(ko + t) * n + ko + cc];
            }
            a[(io + r) * n + ko + cc] = v / a[(ko + cc) * n + ko + cc];
        }
    }
}

/// A(i,j) -= L(i,k) · U(k,j).
fn mm_sub_block(a: &mut [f32], n: usize, io: usize, jo: usize, ko: usize, b: usize) {
    for r in 0..b {
        for t in 0..b {
            let l = a[(io + r) * n + ko + t];
            for cc in 0..b {
                a[(io + r) * n + jo + cc] -= l * a[(ko + t) * n + jo + cc];
            }
        }
    }
}

/// Read a b×b block from a (possibly strided) rank-2 view into a dense
/// local buffer (the kernels' "shared memory staging", as Rodinia does).
fn load_block(v: &View, b: usize, buf: &mut [f32]) {
    let l = v.lmad().expect("block is one LMAD");
    let (sr, sc) = (l.dims[0].1, l.dims[1].1);
    for r in 0..b {
        let mut off = l.offset + r as i64 * sr;
        for cc in 0..b {
            buf[r * b + cc] = v.read_f32_off(off);
            off += sc;
        }
    }
}

fn store_block(out: &arraymem_exec::ViewMut, b: usize, buf: &[f32]) {
    let l = out.lmad().expect("block is one LMAD").clone();
    let (sr, sc) = (l.dims[0].1, l.dims[1].1);
    for r in 0..b {
        let mut off = l.offset + r as i64 * sr;
        for cc in 0..b {
            out.write_f32_off(off, buf[r * b + cc]);
            off += sc;
        }
    }
}

pub fn register_kernels(reg: &mut KernelRegistry) {
    // Diagonal block LU. Width 1; input: the diagonal block (whole).
    reg.register("lud_diagonal", |ctx| {
        let b = ctx.arg_i64(0) as usize;
        let mut blk = vec![0f32; b * b];
        load_block(&ctx.inputs[0].row(0), b, &mut blk);
        for kk in 0..b {
            let pivot = blk[kk * b + kk];
            for i in kk + 1..b {
                let l = blk[i * b + kk] / pivot;
                blk[i * b + kk] = l;
                for j in kk + 1..b {
                    blk[i * b + j] -= l * blk[kk * b + j];
                }
            }
        }
        store_block(&ctx.out, b, &blk);
    });
    // Perimeter row: instance j computes U(k, k+1+j). Inputs: factored
    // diagonal (whole), own row block (row-wise).
    reg.register("lud_perimeter_row", |ctx| {
        let b = ctx.arg_i64(0) as usize;
        let mut diag = vec![0f32; b * b];
        load_block(&ctx.inputs[0].row(0), b, &mut diag);
        let mut blk = vec![0f32; b * b];
        load_block(&ctx.inputs[1].row(ctx.i), b, &mut blk);
        for r in 1..b {
            for t in 0..r {
                let l = diag[r * b + t];
                for cc in 0..b {
                    blk[r * b + cc] -= l * blk[t * b + cc];
                }
            }
        }
        store_block(&ctx.out, b, &blk);
    });
    // Perimeter column: instance i computes L(k+1+i, k).
    reg.register("lud_perimeter_col", |ctx| {
        let b = ctx.arg_i64(0) as usize;
        let mut diag = vec![0f32; b * b];
        load_block(&ctx.inputs[0].row(0), b, &mut diag);
        let mut blk = vec![0f32; b * b];
        load_block(&ctx.inputs[1].row(ctx.i), b, &mut blk);
        for cc in 0..b {
            for r in 0..b {
                let mut v = blk[r * b + cc];
                for t in 0..cc {
                    v -= blk[r * b + t] * diag[t * b + cc];
                }
                blk[r * b + cc] = v / diag[cc * b + cc];
            }
        }
        store_block(&ctx.out, b, &blk);
    });
    // Interior: instance j computes A(i, k+1+j) -= L(i,k)·U(k, k+1+j).
    // Inputs: L block (whole), U row blocks (row-wise), own blocks
    // (row-wise).
    reg.register("lud_interior", |ctx| {
        let b = ctx.arg_i64(0) as usize;
        let mut lblk = vec![0f32; b * b];
        load_block(&ctx.inputs[0].row(0), b, &mut lblk);
        let mut ublk = vec![0f32; b * b];
        load_block(&ctx.inputs[1].row(ctx.i), b, &mut ublk);
        let mut own = vec![0f32; b * b];
        load_block(&ctx.inputs[2].row(ctx.i), b, &mut own);
        for r in 0..b {
            for t in 0..b {
                let l = lblk[r * b + t];
                for cc in 0..b {
                    own[r * b + cc] -= l * ublk[t * b + cc];
                }
            }
        }
        store_block(&ctx.out, b, &own);
    });
}

/// An LMAD selecting a single b×b block at block coordinates (`br`, `bc`),
/// with a leading unit dimension so shapes line up with width-1 maps.
fn block1_lmad(n: Poly, b: Poly, br: Poly, bc: Poly) -> Lmad {
    Lmad::new(
        br * p_of(&b) * n.clone() + bc * p_of(&b),
        vec![
            Dim::new(c(1), n.clone() * p_of(&b)),
            Dim::new(b.clone(), n),
            Dim::new(b, c(1)),
        ],
    )
}

fn p_of(x: &Poly) -> Poly {
    x.clone()
}

/// An LMAD selecting `m` consecutive blocks along a block row (stride `b`)
/// or column (stride `b·n`).
fn blocks_lmad(n: Poly, b: Poly, origin: Poly, m: Poly, outer_stride: Poly) -> Lmad {
    Lmad::new(
        origin,
        vec![
            Dim::new(m, outer_stride),
            Dim::new(b.clone(), n),
            Dim::new(b, c(1)),
        ],
    )
}

/// Build the Futhark-style blocked-LU program.
pub fn program() -> (Program, Env) {
    let mut bld = Builder::new("lud");
    let n = bld.scalar_param("lud_n", ElemType::I64);
    let q = bld.scalar_param("lud_q", ElemType::I64);
    let b = bld.scalar_param("lud_b", ElemType::I64);
    let a = bld.array_param("lud_A", ElemType::F32, vec![p(n) * p(n)]);
    let mut body = bld.block();

    let param = body.loop_param("Ak", a);
    let k = body.loop_index("lud_k");
    let mut lb = bld.block();
    let m = p(q) - c(1) - p(k); // number of perimeter blocks this step

    // --- Diagonal block (not short-circuitable: reads its own block).
    let diag_slice = block1_lmad(p(n), p(b), p(k), p(k));
    let diag_in = lb.slice("diag_in", param, Transform::LmadSlice(diag_slice.clone()));
    let diag_x = lb.map_kernel_acc(
        "diagX",
        "lud_diagonal",
        c(1),
        vec![p(b), p(b)],
        ElemType::F32,
        vec![diag_in],
        vec![ScalarExp::var(b)],
        vec![0],
    );
    let a_d = lb.update("A_d", param, SliceSpec::Lmad(diag_slice), diag_x);

    // --- Perimeter row blocks U(k, k+1..q).
    let row_origin = p(k) * p(b) * p(n) + (p(k) + c(1)) * p(b);
    let row_slice = blocks_lmad(p(n), p(b), row_origin.clone(), m.clone(), p(b));
    let row_in = lb.slice("row_in", a_d, Transform::LmadSlice(row_slice.clone()));
    let row_x = lb.map_kernel_acc(
        "rowX",
        "lud_perimeter_row",
        m.clone(),
        vec![p(b), p(b)],
        ElemType::F32,
        vec![diag_x, row_in],
        vec![ScalarExp::var(b)],
        vec![0],
    );
    let a_r = lb.update("A_r", a_d, SliceSpec::Lmad(row_slice), row_x);

    // --- Perimeter column blocks L(k+1..q, k).
    let col_origin = (p(k) + c(1)) * p(b) * p(n) + p(k) * p(b);
    let col_slice = blocks_lmad(p(n), p(b), col_origin, m.clone(), p(b) * p(n));
    let col_in = lb.slice("col_in", a_r, Transform::LmadSlice(col_slice.clone()));
    let col_x = lb.map_kernel_acc(
        "colX",
        "lud_perimeter_col",
        m.clone(),
        vec![p(b), p(b)],
        ElemType::F32,
        vec![diag_x, col_in],
        vec![ScalarExp::var(b)],
        vec![0],
    );
    let a_c = lb.update("A_c", a_r, SliceSpec::Lmad(col_slice), col_x);

    // --- Interior: a sequential loop over block rows, a parallel map over
    // block columns within each.
    let inner_param = lb.loop_param("Ai", a_c);
    let ir = lb.loop_index("lud_ir"); // 0-based block-row index below k
    let mut il = bld.block();
    let io = p(k) + c(1) + p(ir); // absolute block row
    let lblk_slice = block1_lmad(p(n), p(b), io.clone(), p(k));
    let lblk = il.slice("lblk", inner_param, Transform::LmadSlice(lblk_slice));
    let urow_slice = blocks_lmad(p(n), p(b), row_origin.clone(), m.clone(), p(b));
    let urow = il.slice("urow", inner_param, Transform::LmadSlice(urow_slice));
    let own_origin = io.clone() * p(b) * p(n) + (p(k) + c(1)) * p(b);
    let own_slice = blocks_lmad(p(n), p(b), own_origin, m.clone(), p(b));
    let own = il.slice("own", inner_param, Transform::LmadSlice(own_slice.clone()));
    let int_x = il.map_kernel_acc(
        "intX",
        "lud_interior",
        m.clone(),
        vec![p(b), p(b)],
        ElemType::F32,
        vec![lblk, urow, own],
        vec![ScalarExp::var(b)],
        vec![0],
    );
    let a_i = il.update("A_i'", inner_param, SliceSpec::Lmad(own_slice), int_x);
    let il_body = il.finish(vec![a_i]);
    let a_int = lb.loop_(
        vec!["Aint"],
        vec![(inner_param, bld.ty(a_c))],
        vec![a_c],
        ir,
        m,
        il_body,
    )[0];

    let lb_body = lb.finish(vec![a_int]);
    let a_final = body.loop_(
        vec!["Afinal"],
        vec![(param, bld.ty(a))],
        vec![a],
        k,
        p(q),
        lb_body,
    )[0];
    let blk = body.finish(vec![a_final]);

    let mut env = Env::new();
    env.define(n, p(q) * p(b));
    env.assume_ge(q, 2);
    env.assume_ge(b, 2);
    (bld.finish(blk), env)
}

pub fn case(label: &str, q: usize, b: usize, runs: usize) -> Case {
    let n = q * b;
    let (program, env) = program();
    let mut kernels = KernelRegistry::new();
    register_kernels(&mut kernels);
    let bb = b;
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::I64(q as i64),
        InputValue::I64(b as i64),
        InputValue::ArrayF32(gen_matrix(n, 42)),
    ];
    Case {
        name: "lud".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let n = match &inp[0] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let mut a = match &inp[3] {
                InputValue::ArrayF32(d) => d.clone(),
                _ => unreachable!(),
            };
            let t0 = std::time::Instant::now();
            reference(n, bb, &mut a);
            (t0.elapsed(), vec![OutputValue::ArrayF32(a)])
        }),
        runs,
        tol: 1e-3,
    }
}

/// The paper's Table II datasets, scaled.
pub fn datasets() -> Vec<(&'static str, usize, usize, usize)> {
    vec![("256", 16, 16, 5), ("512", 32, 16, 3), ("1024", 64, 16, 2)]
}
