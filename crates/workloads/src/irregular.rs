//! The irregular-access workload family: sparse matrix–vector product
//! (CSR), a weighted histogram with data-dependent bins, and an index
//! permutation round-trip.
//!
//! None of these appear in the paper's Table VII — they exist to pin down
//! how the affine LMAD machinery behaves when a program's access pattern
//! is *runtime data*. Each workload routes part of its dataflow through
//! `gather`/`scatter`, whose footprints no LMAD describes, and the tests
//! assert two things about the compiled result:
//!
//! 1. **Sound degradation, with receipts.** Every affine-only pass
//!    (short-circuiting, block merging, parallel-safety) must *reject*
//!    the opaque accesses with a closed-enum reason
//!    ([`RejectReason::RuntimeIndexedWrite`],
//!    [`MergeReject::RuntimeIndexed`],
//!    [`ParReject::RuntimeIndexedWrite`]) — a remark proves the pass saw
//!    the construct and declined, rather than silently skipping it.
//!
//! 2. **The rest of the machinery still works.** Affine maps around the
//!    irregular core still get parallel-safety proofs, lifetime-disjoint
//!    blocks still share storage, plans still cache, and checked mode
//!    validates every runtime index against the addressed extent.
//!
//! [`RejectReason::RuntimeIndexedWrite`]: arraymem_core::RejectReason
//! [`MergeReject::RuntimeIndexed`]: arraymem_core::MergeReject
//! [`ParReject::RuntimeIndexedWrite`]: arraymem_core::ParReject

use crate::harness::Case;
use arraymem_exec::{InputValue, KernelRegistry, OutputValue};
use arraymem_ir::{BinOp, Builder, ElemType, Program, ScalarExp, Var};
use arraymem_symbolic::{Env, Poly};

fn p(v: Var) -> Poly {
    Poly::var(v)
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

fn as_f32s(v: &InputValue) -> &[f32] {
    match v {
        InputValue::ArrayF32(d) => d,
        _ => unreachable!("expected an f32 array input"),
    }
}

fn as_i64s(v: &InputValue) -> &[i64] {
    match v {
        InputValue::ArrayI64(d) => d,
        _ => unreachable!("expected an i64 array input"),
    }
}

// ---------------------------------------------------------------------------
// Sparse matrix–vector product (CSR).
// ---------------------------------------------------------------------------

/// Reference CSR matvec, summing each row's products in ascending
/// column-entry order (the same order the compiled row kernel uses, so
/// the comparison is bit-exact).
pub fn spmv_reference(
    n_rows: usize,
    vals: &[f32],
    col_idx: &[i64],
    row_ptr: &[i64],
    x: &[f32],
) -> Vec<f32> {
    let mut y = vec![0f32; n_rows];
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0f32;
        for j in row_ptr[i]..row_ptr[i + 1] {
            acc += vals[j as usize] * x[col_idx[j as usize] as usize];
        }
        *out = acc;
    }
    y
}

pub fn spmv_register_kernels(reg: &mut KernelRegistry) {
    // Row reduction over the (already gathered and multiplied) products:
    // instance `i` sums products[row_ptr[i] .. row_ptr[i+1]]. Both inputs
    // are declared whole — the segment boundaries are runtime data, so
    // the row-wise read contract cannot describe them.
    reg.register("spmv_row_sum", |ctx| {
        let products = &ctx.inputs[0];
        let row_ptr = &ctx.inputs[1];
        let start = row_ptr.get_i64(&[ctx.i]);
        let end = row_ptr.get_i64(&[ctx.i + 1]);
        let mut acc = 0f32;
        for j in start..end {
            acc += products.get_f32(&[j]);
        }
        ctx.out.set_f32(&[], acc);
    });
}

/// `y = A·x` with `A` in CSR form. The irregular step is the gather
/// `x[col_idx[j]]`; everything downstream of it is affine again, so the
/// row-sum mapnest still earns a parallel-safety proof.
pub fn spmv_program() -> (Program, Env) {
    let mut bld = Builder::new("spmv");
    let nr = bld.scalar_param("spmv_nr", ElemType::I64);
    let nc = bld.scalar_param("spmv_nc", ElemType::I64);
    let nnz = bld.scalar_param("spmv_nnz", ElemType::I64);
    let vals = bld.array_param("spmv_vals", ElemType::F32, vec![p(nnz)]);
    let col_idx = bld.array_param("spmv_col_idx", ElemType::I64, vec![p(nnz)]);
    let row_ptr = bld.array_param("spmv_row_ptr", ElemType::I64, vec![p(nr) + c(1)]);
    let x = bld.array_param("spmv_x", ElemType::F32, vec![p(nc)]);
    let mut body = bld.block();

    // The opaque step: expand x through the runtime column indices.
    let gathered = body.gather("gx", x, col_idx);
    // Affine again: entrywise products, then segmented row sums.
    let products = body.map_lambda(
        "prod",
        p(nnz),
        vec![vals, gathered],
        ElemType::F32,
        |b, ps| {
            vec![b.scalar(
                "m",
                ElemType::F32,
                ScalarExp::bin(BinOp::Mul, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
            )]
        },
    );
    let y = body.map_kernel_acc(
        "y",
        "spmv_row_sum",
        p(nr),
        vec![],
        ElemType::F32,
        vec![products, row_ptr],
        vec![],
        vec![0, 1],
    );
    let blk = body.finish(vec![y]);

    let mut env = Env::new();
    env.assume_ge(nr, 1);
    env.assume_ge(nc, 1);
    env.assume_ge(nnz, 1);
    (bld.finish(blk), env)
}

/// Deterministic CSR instance: ~`avg_nnz` entries per row at random
/// columns. Returns `(vals, col_idx, row_ptr)`.
pub fn spmv_data(
    seed: u64,
    n_rows: usize,
    n_cols: usize,
    avg_nnz: usize,
) -> (Vec<f32>, Vec<i64>, Vec<i64>) {
    let mut r = crate::data::rng(seed);
    let mut row_ptr = Vec::with_capacity(n_rows + 1);
    row_ptr.push(0i64);
    for _ in 0..n_rows {
        // At least one entry per row keeps every segment non-empty.
        let k = r.i64_incl(1, (2 * avg_nnz).max(1) as i64);
        row_ptr.push(row_ptr.last().unwrap() + k);
    }
    let nnz = *row_ptr.last().unwrap() as usize;
    let col_idx: Vec<i64> = (0..nnz).map(|_| r.i64_in(0, n_cols as i64)).collect();
    let vals: Vec<f32> = (0..nnz).map(|_| r.f32_in(-1.0, 1.0)).collect();
    (vals, col_idx, row_ptr)
}

pub fn spmv_case(label: &str, n_rows: usize, n_cols: usize, avg_nnz: usize, runs: usize) -> Case {
    let (program, env) = spmv_program();
    let mut kernels = KernelRegistry::new();
    spmv_register_kernels(&mut kernels);
    let (vals, col_idx, row_ptr) = spmv_data(31, n_rows, n_cols, avg_nnz);
    let x = crate::data::f32s(32, n_cols, -1.0, 1.0);
    let inputs = vec![
        InputValue::I64(n_rows as i64),
        InputValue::I64(n_cols as i64),
        InputValue::I64(vals.len() as i64),
        InputValue::ArrayF32(vals),
        InputValue::ArrayI64(col_idx),
        InputValue::ArrayI64(row_ptr),
        InputValue::ArrayF32(x),
    ];
    Case {
        name: "spmv".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels,
        reference: Box::new(move |inp| {
            let nr = match &inp[0] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let (vals, col_idx, row_ptr, x) = (
                as_f32s(&inp[3]),
                as_i64s(&inp[4]),
                as_i64s(&inp[5]),
                as_f32s(&inp[6]),
            );
            let t0 = std::time::Instant::now();
            let y = spmv_reference(nr, vals, col_idx, row_ptr, x);
            (t0.elapsed(), vec![OutputValue::ArrayF32(y)])
        }),
        runs,
        tol: 0.0,
    }
}

/// (label, n_rows, n_cols, avg_nnz, runs)
pub fn spmv_datasets() -> Vec<(&'static str, usize, usize, usize, usize)> {
    vec![
        ("20k×20k", 20_000, 20_000, 8, 5),
        ("100k×100k", 100_000, 100_000, 8, 3),
    ]
}

// ---------------------------------------------------------------------------
// Weighted histogram with data-dependent bins.
// ---------------------------------------------------------------------------

/// Reference: sequential accumulation in item order (bit-exact against
/// the compiled loop, which accumulates in the same order), then the
/// per-item lookups and the combined output.
pub fn histogram_reference(bins: usize, data: &[i64], weights: &[f32]) -> (Vec<f32>, Vec<f32>) {
    let mut hist = vec![0f32; bins];
    for (k, &b) in data.iter().enumerate() {
        hist[b as usize] += weights[k];
    }
    let combined: Vec<f32> = data
        .iter()
        .zip(weights)
        .map(|(&b, &w)| hist[b as usize] + w * w)
        .collect();
    (hist, combined)
}

/// Weighted histogram: a sequential loop of point updates at runtime
/// bins, then a `gather` that reads each item's final bin total back.
/// The long-lived `wsq` staging buffer coexists with the histogram, so
/// the merge pass *attempts* to fold the histogram into it and must
/// reject with [`MergeReject::RuntimeIndexed`] — the histogram block's
/// footprint story is runtime data.
///
/// [`MergeReject::RuntimeIndexed`]: arraymem_core::MergeReject
pub fn histogram_program() -> (Program, Env) {
    let mut bld = Builder::new("histogram");
    let n = bld.scalar_param("hist_n", ElemType::I64);
    let b = bld.scalar_param("hist_b", ElemType::I64);
    let data = bld.array_param("hist_data", ElemType::I64, vec![p(n)]);
    let weights = bld.array_param("hist_w", ElemType::F32, vec![p(n)]);
    let mut body = bld.block();

    // Long-lived affine block, allocated before the histogram and used
    // after it: the merge candidate the histogram is tested against.
    let wsq = body.map_lambda("wsq", p(n), vec![weights], ElemType::F32, |bb, ps| {
        vec![bb.scalar(
            "sq",
            ElemType::F32,
            ScalarExp::bin(BinOp::Mul, ScalarExp::var(ps[0]), ScalarExp::var(ps[0])),
        )]
    });

    let hist0 = body.replicate("hist0", vec![p(b)], ScalarExp::f32(0.0));
    let hist_p = body.loop_param("hist", hist0);
    let k = body.loop_index("hist_k");
    let mut lb = bld.block();
    let bin = lb.scalar(
        "bin",
        ElemType::I64,
        ScalarExp::Index(data, vec![ScalarExp::var(k)]),
    );
    let cur = lb.scalar(
        "cur",
        ElemType::F32,
        ScalarExp::Index(hist_p, vec![ScalarExp::var(bin)]),
    );
    let w = lb.scalar(
        "w",
        ElemType::F32,
        ScalarExp::Index(weights, vec![ScalarExp::var(k)]),
    );
    let hist_next = lb.update_scalar(
        "hist'",
        hist_p,
        vec![ScalarExp::var(bin)],
        ScalarExp::bin(BinOp::Add, ScalarExp::var(cur), ScalarExp::var(w)),
    );
    let lbody = lb.finish(vec![hist_next]);
    let outs = body.loop_(
        vec!["hist_final"],
        vec![(hist_p, bld.ty(hist0))],
        vec![hist0],
        k,
        p(n),
        lbody,
    );
    let hist_final = outs[0];

    // The opaque read-back: each item's final bin total.
    let sampled = body.gather("sampled", hist_final, data);
    let combined = body.map_lambda(
        "combined",
        p(n),
        vec![sampled, wsq],
        ElemType::F32,
        |bb, ps| {
            vec![bb.scalar(
                "s",
                ElemType::F32,
                ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
            )]
        },
    );
    let blk = body.finish(vec![hist_final, combined]);

    let mut env = Env::new();
    env.assume_ge(n, 1);
    env.assume_ge(b, 1);
    // Bins never outnumber items: lets the merge pass prove the histogram
    // would *fit* inside `wsq`, so its rejection is about footprints
    // (runtime-indexed), not size.
    env.assume_le(b, p(n));
    (bld.finish(blk), env)
}

pub fn histogram_case(label: &str, n: usize, bins: usize, runs: usize) -> Case {
    let (program, env) = histogram_program();
    let data = crate::data::i64s(41, n, 0, bins as i64);
    let weights = crate::data::f32s(42, n, 0.0, 1.0);
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::I64(bins as i64),
        InputValue::ArrayI64(data),
        InputValue::ArrayF32(weights),
    ];
    Case {
        name: "histogram".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels: KernelRegistry::new(),
        reference: Box::new(move |inp| {
            let bins = match &inp[1] {
                InputValue::I64(x) => *x as usize,
                _ => unreachable!(),
            };
            let (data, weights) = (as_i64s(&inp[2]), as_f32s(&inp[3]));
            let t0 = std::time::Instant::now();
            let (hist, combined) = histogram_reference(bins, data, weights);
            (
                t0.elapsed(),
                vec![OutputValue::ArrayF32(hist), OutputValue::ArrayF32(combined)],
            )
        }),
        runs,
        tol: 0.0,
    }
}

/// (label, n, bins, runs)
pub fn histogram_datasets() -> Vec<(&'static str, usize, usize, usize)> {
    vec![
        ("100k/256", 100_000, 256, 5),
        ("1M/1024", 1_000_000, 1024, 3),
    ]
}

// ---------------------------------------------------------------------------
// Index permutation round-trip.
// ---------------------------------------------------------------------------

/// Reference: scatter `x` through `perm`, gather it back (recovering `x`
/// when `perm` is a permutation), and combine with the affine side chain.
pub fn permutation_reference(x: &[f32], perm: &[i64]) -> (Vec<f32>, Vec<f32>) {
    let n = x.len();
    let mut permuted = vec![0f32; n];
    for (k, &j) in perm.iter().enumerate() {
        permuted[j as usize] = x[k];
    }
    let z: Vec<f32> = perm.iter().map(|&j| permuted[j as usize]).collect();
    let w: Vec<f32> = z
        .iter()
        .zip(x)
        .map(|(&zi, &xi)| zi + (2.0 * xi + 1.0))
        .collect();
    (z, w)
}

/// Scatter/gather round-trip through a runtime permutation. The scatter
/// is the only write to the scratch destination, so this workload fires
/// all three runtime-index rejections at once: the scatter is a recorded
/// short-circuit candidate killed by
/// [`RejectReason::RuntimeIndexedWrite`], the scratch block coexists
/// with the affine `y` block and merge rejects it with
/// [`MergeReject::RuntimeIndexed`], and parallel safety pins the scatter
/// serial with [`ParReject::RuntimeIndexedWrite`].
///
/// [`RejectReason::RuntimeIndexedWrite`]: arraymem_core::RejectReason
/// [`MergeReject::RuntimeIndexed`]: arraymem_core::MergeReject
/// [`ParReject::RuntimeIndexedWrite`]: arraymem_core::ParReject
pub fn permutation_program() -> (Program, Env) {
    let mut bld = Builder::new("permutation");
    let n = bld.scalar_param("perm_n", ElemType::I64);
    let x = bld.array_param("perm_x", ElemType::F32, vec![p(n)]);
    let perm = bld.array_param("perm_perm", ElemType::I64, vec![p(n)]);
    let mut body = bld.block();

    // Long-lived affine block predating the scratch — the merge pass's
    // host candidate.
    let y = body.map_lambda("y", p(n), vec![x], ElemType::F32, |bb, ps| {
        vec![bb.scalar(
            "t",
            ElemType::F32,
            ScalarExp::bin(
                BinOp::Add,
                ScalarExp::bin(BinOp::Mul, ScalarExp::f32(2.0), ScalarExp::var(ps[0])),
                ScalarExp::f32(1.0),
            ),
        )]
    });

    let scr = body.scratch("scr", ElemType::F32, vec![p(n)]);
    let permuted = body.scatter("permuted", scr, perm, x);
    let z = body.gather("z", permuted, perm);
    let w = body.map_lambda("w", p(n), vec![z, y], ElemType::F32, |bb, ps| {
        vec![bb.scalar(
            "s",
            ElemType::F32,
            ScalarExp::bin(BinOp::Add, ScalarExp::var(ps[0]), ScalarExp::var(ps[1])),
        )]
    });
    let blk = body.finish(vec![z, w]);

    let mut env = Env::new();
    env.assume_ge(n, 1);
    (bld.finish(blk), env)
}

/// A deterministic Fisher–Yates permutation of `0..n`.
pub fn permutation_data(seed: u64, n: usize) -> Vec<i64> {
    let mut r = crate::data::rng(seed);
    let mut perm: Vec<i64> = (0..n as i64).collect();
    for i in (1..n).rev() {
        perm.swap(i, r.usize_in(i + 1));
    }
    perm
}

pub fn permutation_case(label: &str, n: usize, runs: usize) -> Case {
    let (program, env) = permutation_program();
    let x = crate::data::f32s(51, n, -1.0, 1.0);
    let perm = permutation_data(52, n);
    let inputs = vec![
        InputValue::I64(n as i64),
        InputValue::ArrayF32(x),
        InputValue::ArrayI64(perm),
    ];
    Case {
        name: "permutation".into(),
        dataset: label.into(),
        program,
        env,
        inputs,
        kernels: KernelRegistry::new(),
        reference: Box::new(move |inp| {
            let (x, perm) = (as_f32s(&inp[1]), as_i64s(&inp[2]));
            let t0 = std::time::Instant::now();
            let (z, w) = permutation_reference(x, perm);
            (
                t0.elapsed(),
                vec![OutputValue::ArrayF32(z), OutputValue::ArrayF32(w)],
            )
        }),
        runs,
        tol: 0.0,
    }
}

/// (label, n, runs)
pub fn permutation_datasets() -> Vec<(&'static str, usize, usize)> {
    vec![("100k", 100_000, 5), ("1M", 1_000_000, 3)]
}
