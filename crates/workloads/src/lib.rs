//! The seven benchmarks of the paper's evaluation (§VI), each as:
//!
//! - a **reference** implementation — hand-written imperative Rust with
//!   manual in-place memory reuse, playing the role of the Rodinia /
//!   Parboil / FinPar hand-written GPU code;
//! - a **Futhark-style IR program** built with the `arraymem-ir` builder,
//!   expressing the same computation with correct-by-construction
//!   parallelism (separate reads/writes, fresh arrays, slice updates);
//! - the **native kernels** its maps invoke (the "generated GPU code");
//! - input generators and a validator comparing all versions.
//!
//! Datasets are scaled from the paper's GPU sizes to a single-core CI
//! machine; the mapping is documented per table in `EXPERIMENTS.md`.

pub mod data;
pub mod harness;
pub mod hotspot;
pub mod irregular;
pub mod lbm;
pub mod locvolcalib;
pub mod lud;
pub mod nn;
pub mod nw;
pub mod optionpricing;

pub use harness::{measure_case, measure_case_at, Case, Measurement, RefFn};

#[cfg(test)]
mod tests;
