//! Deterministic input generation.

use arraymem_symbolic::Rng64;

/// A seeded RNG so every run (and the reference vs compiled comparison)
/// sees identical inputs.
pub fn rng(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

pub fn f32s(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.f32_in(lo, hi)).collect()
}

pub fn i64s(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<i64> {
    let mut r = rng(seed);
    (0..n).map(|_| r.i64_in(lo, hi)).collect()
}

/// The NW "similarity matrix" stand-in: a cheap deterministic function of
/// the global cell coordinates, used identically by the reference and the
/// kernel (replaces Rodinia's random `reference[i][j]` table).
#[inline]
pub fn nw_similarity(row: i64, col: i64) -> i64 {
    ((row * 7 + col * 13) % 21) - 10
}
