//! The differential oracle: one program, every semantics.
//!
//! [`run_all_modes`] executes seven legs and reports the first divergence
//! as an `Err` (rather than panicking) so the minimizer can use it as a
//! predicate:
//!
//! 1. pure value semantics on the source program;
//! 2. the unoptimized compile under `Mode::Memory`;
//! 3. the fully optimized compile (whole-program coloring on) under
//!    `Mode::Memory`;
//! 4. the coloring toggle: the same optimization pipeline with the merge
//!    pass held to greedy pairwise (coloring off) — both positions of
//!    the toggle must agree with the oracle;
//! 5. the optimized compile under `Mode::Checked` in a caller-shared
//!    session (so corpus replay recycles blocks across programs), with
//!    the sanitizer required to stay silent;
//! 6. a thread sweep (1 and 8 workers) of the optimized program through
//!    a second shared session — work-stealing dispatch must be
//!    bit-identical to serial execution;
//! 7. a multi-tenant leg: two tenants run the optimized program
//!    *concurrently* through one process-shared [`Server`] (one in
//!    `Memory` mode, one in `Checked`), so corpus replay exercises the
//!    sharded plan cache, stampede coalescing, and cross-tenant arena
//!    recycling across every seed — both tenants must reproduce the
//!    single-tenant oracle bit-for-bit, with the sanitizer silent.

use crate::gen::GenOp;
use arraymem_core::{compile, CompileReport, Options};
use arraymem_exec::{run_program, KernelRegistry, Mode, OutputValue, Session, Stats};
use arraymem_ir::Program;
use arraymem_server::{ExecRequest, Server, ServerConfig};
use std::sync::OnceLock;

/// Everything a caller might want to assert on after a clean run.
pub struct DiffReport {
    pub pure_out: Vec<OutputValue>,
    pub unopt_copied: u64,
    pub opt_copied: u64,
    /// The optimized compile's per-pass report (the coverage signal).
    pub opt_report: CompileReport,
    /// Stats of the checked-mode leg (diagnostics guaranteed empty).
    pub checked_stats: Stats,
    /// Stats of the optimized `Mode::Memory` leg.
    pub opt_stats: Stats,
}

fn differ(a: &[OutputValue], b: &[OutputValue]) -> bool {
    a != b
}

/// The process-wide server every fuzz run's multi-tenant leg goes
/// through: sharing it across seeds means tenant stores keep recycling
/// blocks from *earlier programs* through the arena — exactly the
/// cross-program contamination surface the leg exists to test.
fn shared_server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::new(ServerConfig {
            cache_shards: 4,
            max_in_flight: 2,
            queue_depth: 8,
            threads: 1,
        })
    })
}

/// Run every leg; `Err` describes the first divergence, sanitizer
/// finding, or execution failure.
pub fn run_all_modes(
    prog: &Program,
    checked_session: &mut Session,
    par_session: &mut Session,
) -> Result<DiffReport, String> {
    let kernels = KernelRegistry::new();
    let unopt = compile(prog, &Options::default()).map_err(|e| format!("unopt compile: {e}"))?;
    let opt = compile(prog, &Options::optimized()).map_err(|e| format!("opt compile: {e}"))?;
    let (pure_out, _) =
        run_program(prog, &[], &kernels, Mode::Pure, 1).map_err(|e| format!("pure: {e}"))?;
    let (u_out, u_stats) = run_program(&unopt.program, &[], &kernels, Mode::Memory, 1)
        .map_err(|e| format!("unopt run: {e}"))?;
    let (o_out, o_stats) = run_program(&opt.program, &[], &kernels, Mode::Memory, 1)
        .map_err(|e| format!("opt run: {e}"))?;
    if differ(&pure_out, &u_out) {
        return Err("pure vs unopt outputs differ".into());
    }
    if differ(&pure_out, &o_out) {
        return Err("pure vs opt outputs differ".into());
    }
    if o_stats.bytes_copied > u_stats.bytes_copied {
        return Err(format!(
            "optimizer increased copies ({} -> {})",
            u_stats.bytes_copied, o_stats.bytes_copied
        ));
    }
    // Coloring toggle leg: the merge pass held to greedy pairwise must
    // agree with the oracle too. (No peak comparison here: on adversarial
    // random shapes the two algorithms can pick different share hosts and
    // trade a handful of bytes either way; the curated workload suite is
    // where coloring must dominate.)
    let greedy_opts = Options {
        coloring: false,
        ..Options::optimized()
    };
    let greedy = compile(prog, &greedy_opts).map_err(|e| format!("greedy compile: {e}"))?;
    let (g_out, _) = run_program(&greedy.program, &[], &kernels, Mode::Memory, 1)
        .map_err(|e| format!("greedy run: {e}"))?;
    if differ(&pure_out, &g_out) {
        return Err("pure vs greedy-merge outputs differ".into());
    }
    // Checked leg in the shared session: recycled blocks, silent sanitizer.
    let checks: Vec<_> = opt.report.checks().cloned().collect();
    let (c_out, c_stats) = checked_session
        .run_full(
            &opt.program,
            &[],
            &kernels,
            Mode::Checked,
            1,
            &checks,
            &opt.report.merges,
            &opt.report.par_safety,
        )
        .map_err(|e| format!("checked run: {e}"))?;
    if differ(&o_out, &c_out) {
        return Err("checked mode changed the output".into());
    }
    if !c_stats.diagnostics.is_empty() || c_stats.diagnostics_suppressed > 0 {
        return Err(format!("sanitizer fired:\n{c_stats}"));
    }
    // Thread sweep through the second shared session.
    for threads in [1usize, 8] {
        let (p_out, _) = par_session
            .run_full(
                &opt.program,
                &[],
                &kernels,
                Mode::Memory,
                threads,
                &[],
                &opt.report.merges,
                &opt.report.par_safety,
            )
            .map_err(|e| format!("par sweep at {threads} threads: {e}"))?;
        if differ(&o_out, &p_out) {
            return Err(format!("{threads}-worker run diverged from the serial leg"));
        }
    }
    // Multi-tenant leg: two tenants, one server, concurrently. Tenant A
    // replays in memory mode, tenant B under the sanitizer — cross-tenant
    // arena adoptions must neither leak bytes (outputs would change) nor
    // trip provenance (the program fully writes before reading).
    let server = shared_server();
    let tenant_results = std::thread::scope(|scope| {
        let legs = [("mt-a", Mode::Memory), ("mt-b", Mode::Checked)];
        let handles = legs.map(|(tenant, mode)| {
            let opt = &opt;
            let checks = &checks;
            let kernels = &kernels;
            scope.spawn(move || {
                let req = ExecRequest::from_compiled(opt, kernels, checks, &[], mode);
                (tenant, mode, server.execute(tenant, req))
            })
        });
        handles.map(|h| h.join().expect("tenant thread panicked"))
    });
    for (tenant, mode, result) in tenant_results {
        let (t_out, t_stats) =
            result.map_err(|e| format!("multi-tenant leg ({tenant}, {mode:?}): {e}"))?;
        if differ(&o_out, &t_out) {
            return Err(format!(
                "multi-tenant leg: tenant {tenant} ({mode:?}) diverged from the oracle"
            ));
        }
        if !t_stats.diagnostics.is_empty() || t_stats.diagnostics_suppressed > 0 {
            return Err(format!(
                "multi-tenant leg: sanitizer fired for tenant {tenant}:\n{t_stats}"
            ));
        }
    }
    Ok(DiffReport {
        pure_out,
        unopt_copied: u_stats.bytes_copied,
        opt_copied: o_stats.bytes_copied,
        opt_report: opt.compile_report,
        checked_stats: c_stats,
        opt_stats: o_stats,
    })
}

/// Serialize a trace the way a repro wants it: the corpus text format,
/// ready to paste into a regression file.
pub fn ops_text(ops: &[GenOp]) -> String {
    crate::corpus::format_entry(&crate::corpus::CorpusEntry {
        name: String::new(),
        note: String::new(),
        ops: ops.to_vec(),
    })
}

/// Panic with a full reproduction dossier: the failure, the generator
/// seed, the decision trace (corpus format), and the program's pretty
/// IR. Every fuzzing test funnels its failures through here, so a CI
/// mismatch is reproducible from the log alone.
pub fn fail_with_repro(failure: &str, seed_desc: &str, ops: &[GenOp], prog: &Program) -> ! {
    panic!(
        "differential fuzz failure: {failure}\n\
         seed: {seed_desc}\n\
         trace ({} ops, corpus format):\n{}\
         program:\n{}",
        ops.len(),
        ops_text(ops),
        arraymem_ir::pretty::program_to_string(prog)
    );
}
