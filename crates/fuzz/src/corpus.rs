//! The on-disk corpus: decision traces as human-readable text files.
//!
//! Layout (committed to the repository, under this crate):
//!
//! ```text
//! crates/fuzz/corpus/
//!   seeds/        curated coverage-diverse traces; replayed by the
//!                 differential tests and scripts/verify.sh
//!   regressions/  minimized traces distilled from historical bug
//!                 classes; each must keep firing its target remark
//! ```
//!
//! Entry format, one op per line (blank lines and `#` comments ignored):
//!
//! ```text
//! # free-form provenance comment
//! note: <one-line description, optional>
//! op <kind> <sel> <sel2> <seed>
//! ```
//!
//! `sel`/`sel2` are signed decimal, `seed` unsigned decimal — exactly the
//! four fields of [`GenOp`]. The format has no version header to bump:
//! unknown lines are an error, and totality of the interpreter means old
//! traces stay valid as the generator grows new kinds.

use crate::gen::GenOp;
use std::path::{Path, PathBuf};

/// One corpus entry: a named trace plus an optional one-line note.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusEntry {
    /// File stem, e.g. `"seed-0007"`.
    pub name: String,
    /// One-line description (serialized as `note: ...`).
    pub note: String,
    pub ops: Vec<GenOp>,
}

/// Root of the committed corpus (resolved from this crate's manifest, so
/// tests find it regardless of the working directory).
pub fn corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

pub fn seeds_dir() -> PathBuf {
    corpus_root().join("seeds")
}

pub fn regressions_dir() -> PathBuf {
    corpus_root().join("regressions")
}

/// Serialize an entry to the text format.
pub fn format_entry(entry: &CorpusEntry) -> String {
    let mut s = String::new();
    if !entry.note.is_empty() {
        s.push_str(&format!("note: {}\n", entry.note));
    }
    for op in &entry.ops {
        s.push_str(&format!(
            "op {} {} {} {}\n",
            op.kind, op.sel, op.sel2, op.seed
        ));
    }
    s
}

/// Parse the text format. `name` is the caller-supplied entry name (file
/// stem); the text supplies the note and ops.
pub fn parse_entry(name: &str, text: &str) -> Result<CorpusEntry, String> {
    let mut note = String::new();
    let mut ops = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(n) = line.strip_prefix("note:") {
            note = n.trim().to_string();
            continue;
        }
        let Some(rest) = line.strip_prefix("op ") else {
            return Err(format!("{name}:{}: unrecognized line {line:?}", ln + 1));
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(format!(
                "{name}:{}: expected `op <kind> <sel> <sel2> <seed>`, got {line:?}",
                ln + 1
            ));
        }
        let parse = |what: &str, s: &str| -> Result<i64, String> {
            s.parse()
                .map_err(|e| format!("{name}:{}: bad {what} {s:?}: {e}", ln + 1))
        };
        ops.push(GenOp {
            kind: parse("kind", fields[0])? as u8,
            sel: parse("sel", fields[1])?,
            sel2: parse("sel2", fields[2])?,
            seed: fields[3]
                .parse()
                .map_err(|e| format!("{name}:{}: bad seed {:?}: {e}", ln + 1, fields[3]))?,
        });
    }
    if ops.is_empty() {
        return Err(format!("{name}: entry has no ops"));
    }
    Ok(CorpusEntry {
        name: name.to_string(),
        note,
        ops,
    })
}

/// Load every `.txt` entry of a corpus directory, sorted by name so
/// replay order is deterministic. A missing directory is an empty corpus.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(_) => return Ok(entries),
    };
    for de in rd {
        let de = de.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = de.path();
        if path.extension().and_then(|e| e.to_str()) != Some("txt") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("entry")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push(parse_entry(&name, &text)?);
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(entries)
}

/// Write an entry as `<dir>/<name>.txt`, creating the directory.
pub fn save(dir: &Path, entry: &CorpusEntry) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.txt", entry.name));
    std::fs::write(&path, format_entry(entry)).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_round_trips_through_text() {
        let e = CorpusEntry {
            name: "t".into(),
            note: "a note".into(),
            ops: vec![
                GenOp {
                    kind: 12,
                    sel: -3,
                    sel2: 99,
                    seed: 7,
                },
                GenOp {
                    kind: 0,
                    sel: 0,
                    sel2: 0,
                    seed: u64::MAX,
                },
            ],
        };
        let text = format_entry(&e);
        assert_eq!(parse_entry("t", &text).unwrap(), e);
    }

    #[test]
    fn junk_lines_are_rejected_with_location() {
        let err = parse_entry("bad", "op 1 2 3 4\nwat\n").unwrap_err();
        assert!(err.contains("bad:2"), "{err}");
    }
}
