//! The corpus-growth signal: a (pass × remark-kind) bitmap over compile
//! reports, plus named mechanism counters over run stats.
//!
//! A trace is *interesting* — worth adding to the corpus — when replaying
//! it lights a bit no earlier trace lit: a pass emitted a remark kind
//! (down to the individual reject-reason variant) it had not emitted
//! before, or a runtime mechanism (copy elision, block merging, parallel
//! in-place dispatch, free-list reuse, …) engaged for the first time.
//! This is deliberately the same granularity the taxonomy-completeness
//! test wants, so one structure serves both.

use arraymem_core::{CompileReport, MergeReject, ParReject, RejectReason, Remark, RemarkKind};
use arraymem_exec::Stats;
use std::collections::{BTreeSet, HashSet};

/// A stable small integer per remark kind, with reject-taxonomy variants
/// given their own bits.
pub fn kind_bit(kind: &RemarkKind) -> u16 {
    let pos = |p: Option<usize>| p.expect("variant present in its ALL array") as u16;
    match kind {
        RemarkKind::CircuitElided => 0,
        RemarkKind::MapInPlace => 1,
        RemarkKind::ExistentialMemory => 2,
        RemarkKind::NormalizationCopy => 3,
        RemarkKind::Hoisted => 4,
        RemarkKind::BlocksMerged => 5,
        RemarkKind::DeadAllocRemoved => 6,
        RemarkKind::MapParallelSafe => 7,
        RemarkKind::ReleaseScheduled => 8,
        RemarkKind::HostGrown => 9,
        RemarkKind::CarriedRelease => 10,
        RemarkKind::CircuitRejected(r) => 16 + pos(RejectReason::ALL.iter().position(|x| x == r)),
        RemarkKind::MergeRejected(m) => 48 + pos(MergeReject::ALL.iter().position(|x| x == m)),
        RemarkKind::MapParRejected(p) => 64 + pos(ParReject::ALL.iter().position(|x| x == p)),
    }
}

/// Accumulated coverage across replayed traces.
#[derive(Default, Clone, Debug)]
pub struct Coverage {
    /// (pass name, remark-kind bit) pairs observed.
    bits: BTreeSet<(&'static str, u16)>,
    /// Mechanism counters observed nonzero at least once.
    mech: BTreeSet<&'static str>,
    /// Reject variants observed, per taxonomy (for completeness tests).
    pub reject_reasons: HashSet<RejectReason>,
    pub merge_rejects: HashSet<MergeReject>,
    pub par_rejects: HashSet<ParReject>,
}

impl Coverage {
    pub fn new() -> Coverage {
        Coverage::default()
    }

    /// Record one remark; true if it lit a new bit.
    pub fn observe_remark(&mut self, r: &Remark) -> bool {
        match r.kind {
            RemarkKind::CircuitRejected(why) => {
                self.reject_reasons.insert(why);
            }
            RemarkKind::MergeRejected(why) => {
                self.merge_rejects.insert(why);
            }
            RemarkKind::MapParRejected(why) => {
                self.par_rejects.insert(why);
            }
            _ => {}
        }
        self.bits.insert((r.pass, kind_bit(&r.kind)))
    }

    /// Record a whole compile report; true if anything was new.
    pub fn observe_report(&mut self, report: &CompileReport) -> bool {
        let mut grew = false;
        for r in &report.remarks {
            grew |= self.observe_remark(r);
        }
        grew
    }

    /// Record a run's mechanism counters; true if a mechanism engaged for
    /// the first time.
    pub fn observe_stats(&mut self, stats: &Stats) -> bool {
        let mut grew = false;
        let mut mark = |name: &'static str, engaged: bool| {
            if engaged {
                grew |= self.mech.insert(name);
            }
        };
        mark("bytes_elided", stats.bytes_elided > 0);
        mark("blocks_merged", stats.blocks_merged > 0);
        mark("carried_releases", stats.carried_releases > 0);
        mark("color_slab_hits", stats.color_slab_hits > 0);
        mark("blocks_reused", stats.blocks_reused > 0);
        mark("bytes_zeroing_elided", stats.bytes_zeroing_elided > 0);
        mark("maps_parallel_in_place", stats.maps_parallel_in_place > 0);
        mark("pool_dispatches", stats.pool_dispatches > 0);
        mark("par_chunks_stolen", stats.par_chunks_stolen > 0);
        mark("circuits_verified", stats.circuits_verified > 0);
        mark("merges_verified", stats.merges_verified > 0);
        mark("par_checks_verified", stats.par_checks_verified > 0);
        grew
    }

    /// Number of lit bits (remark bitmap + mechanisms) — the scalar the
    /// growth demonstration charts.
    pub fn popcount(&self) -> usize {
        self.bits.len() + self.mech.len()
    }

    /// The lit (pass, bit) pairs, for debugging corpus composition.
    pub fn bits(&self) -> impl Iterator<Item = &(&'static str, u16)> {
        self.bits.iter()
    }

    /// The engaged mechanism names.
    pub fn mechanisms(&self) -> impl Iterator<Item = &&'static str> {
        self.mech.iter()
    }
}
