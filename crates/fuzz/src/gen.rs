//! The decision-trace program generator.
//!
//! A trace is a sequence of [`GenOp`]s. Each op names a statement kind
//! plus three raw integers: two operand selectors (interpreted modulo
//! whatever the live array pool holds when the op executes) and a local
//! seed driving the op's fine-grained choices (shapes, slice bounds,
//! constants) through its own `Rng64`. Interpretation is **total**:
//! selectors never go out of range and an op whose preconditions are
//! unmet (e.g. "permute a rank-2 array" with none in the pool) is a
//! no-op. Totality is the property the minimizer leans on — deleting any
//! subset of ops still yields a well-formed program.
//!
//! Kinds 12 (gather) and 13 (scatter) produce the runtime-indexed
//! programs the affine passes must degrade soundly on. Their index
//! arrays are constructed *in bounds* by arithmetic (`|x·k₁+k₂| mod n`),
//! so every semantics agrees and the differential check stays
//! meaningful; out-of-bounds behavior is probed by dedicated tests, not
//! the corpus.

use arraymem_ir::{BinOp, Builder, ElemType, Program, ScalarExp, SliceSpec, UnOp, Var};
use arraymem_lmad::{Transform, TripletSlice};
use arraymem_symbolic::{Poly, Rng64};

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// One generator decision. `kind` is taken modulo [`GenOp::NUM_KINDS`];
/// `sel`/`sel2` select pool operands (modulo pool size at execution
/// time); `seed` drives the op's local `Rng64` for every other choice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GenOp {
    pub kind: u8,
    pub sel: i64,
    pub sel2: i64,
    pub seed: u64,
}

impl GenOp {
    /// Statement kinds the interpreter knows:
    /// 0 replicate, 1 iota, 2 copy, 3 permute, 4 reverse, 5 slice,
    /// 6 flatten, 7 map, 8 update, 9 concat, 10 rotate, 11 nested map,
    /// 12 gather, 13 scatter, 14 carried loop.
    pub const NUM_KINDS: u8 = 15;
}

/// A uniformly random op (any field value is meaningful, so sampling is
/// unconstrained).
pub fn random_op(rng: &mut Rng64) -> GenOp {
    GenOp {
        kind: (rng.next_u64() % GenOp::NUM_KINDS as u64) as u8,
        sel: rng.next_u64() as i64,
        sel2: rng.next_u64() as i64,
        seed: rng.next_u64(),
    }
}

/// A random trace of `len` ops from one seed.
pub fn random_ops(seed: u64, len: usize) -> Vec<GenOp> {
    let mut rng = Rng64::new(seed);
    (0..len).map(|_| random_op(&mut rng)).collect()
}

#[derive(Clone)]
struct GenArray {
    var: Var,
    shape: Vec<i64>,
    /// Alias class; consumed together when any member is updated.
    class: usize,
}

struct Interp {
    bld: Builder,
    body: arraymem_ir::builder::BlockBuilder,
    pool: Vec<GenArray>,
    next_class: usize,
    fill: i64,
}

impl Interp {
    fn fresh_class(&mut self) -> usize {
        self.next_class += 1;
        self.next_class
    }

    fn pick(&self, sel: i64) -> Option<GenArray> {
        if self.pool.is_empty() {
            return None;
        }
        Some(self.pool[sel.unsigned_abs() as usize % self.pool.len()].clone())
    }

    fn pick_rank(&self, sel: i64, rank: usize) -> Option<GenArray> {
        let cands: Vec<&GenArray> = self.pool.iter().filter(|a| a.shape.len() == rank).collect();
        if cands.is_empty() {
            return None;
        }
        Some(cands[sel.unsigned_abs() as usize % cands.len()].clone())
    }

    fn replicate(&mut self, shape: Vec<i64>) -> GenArray {
        self.fill += 1;
        let v = self.body.replicate_typed(
            "g_rep",
            ElemType::I64,
            shape.iter().map(|&d| c(d)).collect(),
            ScalarExp::i64(self.fill * 7),
        );
        let class = self.fresh_class();
        GenArray {
            var: v,
            shape,
            class,
        }
    }

    /// A rank-1 `i64` index array of length `m`, every element in
    /// `[0, extent)`: `|i·k₁ + k₂| mod extent` over an iota.
    fn bounded_indices(&mut self, m: i64, extent: i64, r: &mut Rng64) -> Var {
        let base = self.body.iota("g_idx_base", c(m));
        let k1 = r.i64_incl(1, 7);
        let k2 = r.i64_in(0, extent.max(1) * 2);
        self.body
            .map_lambda("g_idx", c(m), vec![base], ElemType::I64, |lb, ps| {
                let t = lb.scalar(
                    "g_ix",
                    ElemType::I64,
                    ScalarExp::bin(
                        BinOp::Rem,
                        ScalarExp::un(
                            UnOp::Abs,
                            ScalarExp::bin(
                                BinOp::Add,
                                ScalarExp::bin(
                                    BinOp::Mul,
                                    ScalarExp::var(ps[0]),
                                    ScalarExp::i64(k1),
                                ),
                                ScalarExp::i64(k2),
                            ),
                        ),
                        ScalarExp::i64(extent.max(1)),
                    ),
                );
                vec![t]
            })
    }

    /// Execute one op (possibly a no-op when preconditions fail).
    fn step(&mut self, op: &GenOp) {
        let mut r = Rng64::new(op.seed);
        match op.kind % GenOp::NUM_KINDS {
            0 => {
                let rank = r.i64_incl(1, 2);
                let shape: Vec<i64> = (0..rank).map(|_| r.i64_incl(1, 5)).collect();
                let a = self.replicate(shape);
                self.pool.push(a);
            }
            1 => {
                let n = r.i64_incl(1, 8);
                let v = self.body.iota("g_iota", c(n));
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: vec![n],
                    class,
                });
            }
            2 => {
                if let Some(src) = self.pick(op.sel) {
                    let v = self.body.copy("g_copy", src.var);
                    let class = self.fresh_class();
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class,
                    });
                }
            }
            3 => {
                if let Some(src) = self.pick_rank(op.sel, 2) {
                    let v = self
                        .body
                        .transform("g_perm", src.var, Transform::Permute(vec![1, 0]));
                    self.pool.push(GenArray {
                        var: v,
                        shape: vec![src.shape[1], src.shape[0]],
                        class: src.class,
                    });
                }
            }
            4 => {
                if let Some(src) = self.pick(op.sel) {
                    let d = r.usize_in(src.shape.len());
                    let v = self.body.transform("g_rev", src.var, Transform::Reverse(d));
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class: src.class,
                    });
                }
            }
            5 => {
                // Triplet slice (step 1 or 2 when it fits).
                if let Some(src) = self.pick(op.sel) {
                    let mut ts = Vec::new();
                    let mut shape = Vec::new();
                    for &d in &src.shape {
                        let start = r.i64_in(0, d);
                        let step = if d - start >= 3 && r.chance(0.3) {
                            2
                        } else {
                            1
                        };
                        let max_len = (d - start + step - 1) / step;
                        let len = r.i64_incl(1, max_len);
                        ts.push(TripletSlice::range(c(start), c(len), c(step)));
                        shape.push(len);
                    }
                    let v = self
                        .body
                        .transform("g_slice", src.var, Transform::Slice(ts));
                    self.pool.push(GenArray {
                        var: v,
                        shape,
                        class: src.class,
                    });
                }
            }
            6 => {
                // Flatten a rank-2 array.
                if let Some(src) = self.pick_rank(op.sel, 2) {
                    let total = src.shape[0] * src.shape[1];
                    let v =
                        self.body
                            .transform("g_flat", src.var, Transform::Reshape(vec![c(total)]));
                    self.pool.push(GenArray {
                        var: v,
                        shape: vec![total],
                        class: src.class,
                    });
                }
            }
            7 => {
                // Lambda map over a rank-1 array: x*3 + 1.
                if let Some(src) = self.pick_rank(op.sel, 1) {
                    let v = self.body.map_lambda(
                        "g_map",
                        c(src.shape[0]),
                        vec![src.var],
                        ElemType::I64,
                        |lb, ps| {
                            let t = lb.scalar(
                                "g_t",
                                ElemType::I64,
                                ScalarExp::bin(
                                    BinOp::Add,
                                    ScalarExp::bin(
                                        BinOp::Mul,
                                        ScalarExp::var(ps[0]),
                                        ScalarExp::i64(3),
                                    ),
                                    ScalarExp::i64(1),
                                ),
                            );
                            vec![t]
                        },
                    );
                    let class = self.fresh_class();
                    self.pool.push(GenArray {
                        var: v,
                        shape: src.shape,
                        class,
                    });
                }
            }
            8 => {
                // In-place update of a random sub-slice with a fresh (or
                // fresh-through-a-transform) source — the circuit-point
                // shape the optimizer hunts for.
                let Some(dst) = self.pick(op.sel) else { return };
                let mut ts = Vec::new();
                let mut sshape = Vec::new();
                for &d in &dst.shape {
                    let start = r.i64_in(0, d);
                    let len = r.i64_incl(1, d - start);
                    ts.push(TripletSlice::range(c(start), c(len), c(1)));
                    sshape.push(len);
                }
                let src = self.replicate(sshape.clone());
                let src_var = if sshape.len() == 1 && r.chance(0.4) {
                    // A layout transform between the fresh array and the
                    // circuit point exercises web rebasing.
                    self.body
                        .transform("g_src_rev", src.var, Transform::Reverse(0))
                } else {
                    src.var
                };
                // Occasionally keep the source visible afterwards so the
                // last-use condition sometimes fails.
                if r.chance(0.25) {
                    self.pool.push(GenArray {
                        var: src_var,
                        shape: sshape,
                        class: src.class,
                    });
                }
                let v = self
                    .body
                    .update("g_upd", dst.var, SliceSpec::Triplet(ts), src_var);
                // The destination's whole alias class is consumed.
                self.pool.retain(|a| a.class != dst.class);
                self.pool.push(GenArray {
                    var: v,
                    shape: dst.shape,
                    class: dst.class,
                });
            }
            9 => {
                // Concat along the outer dimension. When the optimizer
                // proves an argument's last use, it constructs it directly
                // in the destination slot.
                let Some(first) = self.pick(op.sel) else {
                    return;
                };
                let mut args = vec![first.var];
                let mut outer = first.shape[0];
                let compatible: Vec<GenArray> = self
                    .pool
                    .iter()
                    .filter(|a| {
                        a.shape.len() == first.shape.len() && a.shape[1..] == first.shape[1..]
                    })
                    .cloned()
                    .collect();
                let extra = r.i64_incl(1, 2);
                for k in 0..extra {
                    let sel =
                        (op.sel2.unsigned_abs() as usize + k as usize * 31) % compatible.len();
                    let pickd = &compatible[sel];
                    args.push(pickd.var);
                    outer += pickd.shape[0];
                }
                let v = self.body.concat("g_cat", args);
                let mut shape = first.shape.clone();
                shape[0] = outer;
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape,
                    class,
                });
            }
            10 => {
                // Rotate a rank-1 array by k: concat of its two halves.
                // Both arguments alias the same source memory, which the
                // elision analysis must treat soundly.
                let Some(src) = self.pick_rank(op.sel, 1) else {
                    return;
                };
                let d = src.shape[0];
                if d < 2 {
                    return;
                }
                let k = r.i64_in(1, d);
                let hi = self.body.transform(
                    "g_rot_hi",
                    src.var,
                    Transform::Slice(vec![TripletSlice::range(c(k), c(d - k), c(1))]),
                );
                let lo = self.body.transform(
                    "g_rot_lo",
                    src.var,
                    Transform::Slice(vec![TripletSlice::range(c(0), c(k), c(1))]),
                );
                let v = self.body.concat("g_rot", vec![hi, lo]);
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: vec![d],
                    class,
                });
            }
            11 => {
                // Nested mapnest: the outer lambda body runs an inner map
                // over a second (outer-scope) array and combines one of
                // its elements with the outer element.
                let Some(src) = self.pick_rank(op.sel, 1) else {
                    return;
                };
                let Some(other) = self.pick_rank(op.sel2, 1) else {
                    return;
                };
                let m = other.shape[0];
                let j = r.i64_in(0, m);
                let other_var = other.var;
                let v = self.body.map_lambda(
                    "g_nest",
                    c(src.shape[0]),
                    vec![src.var],
                    ElemType::I64,
                    |lb, ps| {
                        let inner = lb.map_lambda(
                            "g_nest_in",
                            c(m),
                            vec![other_var],
                            ElemType::I64,
                            |ib, ips| {
                                let t = ib.scalar(
                                    "g_nt",
                                    ElemType::I64,
                                    ScalarExp::bin(
                                        BinOp::Mul,
                                        ScalarExp::var(ips[0]),
                                        ScalarExp::i64(2),
                                    ),
                                );
                                vec![t]
                            },
                        );
                        let t = lb.scalar(
                            "g_gather",
                            ElemType::I64,
                            ScalarExp::bin(
                                BinOp::Add,
                                ScalarExp::Index(inner, vec![ScalarExp::i64(j)]),
                                ScalarExp::var(ps[0]),
                            ),
                        );
                        vec![t]
                    },
                );
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: src.shape,
                    class,
                });
            }
            12 => {
                // Gather through runtime (but in-bounds) indices: the
                // result is a fresh dense array; the source read is
                // opaque to every affine analysis.
                let Some(src) = self.pick_rank(op.sel, 1) else {
                    return;
                };
                let m = r.i64_incl(1, 8);
                let idx = self.bounded_indices(m, src.shape[0], &mut r);
                let v = self.body.gather("g_gat", src.var, idx);
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: vec![m],
                    class,
                });
            }
            13 => {
                // Scatter through runtime indices (possibly duplicated —
                // last write wins under the serial ascending-k contract).
                // Consumes the destination's alias class like any update.
                let Some(dst) = self.pick_rank(op.sel, 1) else {
                    return;
                };
                let d = dst.shape[0];
                let m = r.i64_incl(1, d.min(8));
                let idx = self.bounded_indices(m, d, &mut r);
                let src = self.replicate(vec![m]);
                let v = self.body.scatter("g_sct", dst.var, idx, src.var);
                self.pool.retain(|a| a.class != dst.class);
                self.pool.push(GenArray {
                    var: v,
                    shape: dst.shape,
                    class: dst.class,
                });
            }
            14 => {
                // Loop-carried ping-pong: map the carried rank-1 array
                // into a fresh allocation each iteration and yield it —
                // the shape whose per-iteration garbage only the coloring
                // pass's carried-release scheduling reclaims.
                let Some(init) = self.pick_rank(op.sel, 1) else {
                    return;
                };
                let steps = r.i64_incl(2, 4);
                let delta = r.i64_incl(1, 5);
                let param = self.body.loop_param("g_T", init.var);
                let it = self.body.loop_index("g_it");
                let mut lb = self.bld.block();
                let next = lb.map_lambda(
                    "g_Tn",
                    c(init.shape[0]),
                    vec![param],
                    ElemType::I64,
                    |ib, ps| {
                        let t = ib.scalar(
                            "g_step",
                            ElemType::I64,
                            ScalarExp::bin(
                                BinOp::Add,
                                ScalarExp::var(ps[0]),
                                ScalarExp::i64(delta),
                            ),
                        );
                        vec![t]
                    },
                );
                let lbody = lb.finish(vec![next]);
                let v = self.body.loop_(
                    vec!["g_loop"],
                    vec![(param, self.bld.ty(init.var))],
                    vec![init.var],
                    it,
                    c(steps),
                    lbody,
                )[0];
                // The initializer's memory becomes the loop's existential
                // memory: its whole alias class is consumed.
                self.pool.retain(|a| a.class != init.class);
                let class = self.fresh_class();
                self.pool.push(GenArray {
                    var: v,
                    shape: init.shape,
                    class,
                });
            }
            _ => unreachable!("kind is taken modulo NUM_KINDS"),
        }
    }
}

/// Interpret a trace into a program. Returns `None` when the trace ends
/// with an empty pool (nothing to return).
pub fn build_program(ops: &[GenOp]) -> Option<Program> {
    let bld = Builder::new("fuzz");
    let body = bld.block();
    let mut g = Interp {
        bld,
        body,
        pool: Vec::new(),
        next_class: 0,
        fill: 0,
    };
    // Seed the pool so early ops have operands.
    let a = g.replicate(vec![4, 3]);
    g.pool.push(a);
    let b = g.replicate(vec![6]);
    g.pool.push(b);
    for op in ops {
        g.step(op);
    }
    if g.pool.is_empty() {
        return None;
    }
    // Return up to two distinct arrays (one per alias class).
    let mut results: Vec<Var> = Vec::new();
    let mut seen_classes = Vec::new();
    for entry in g.pool.iter().rev() {
        if results.len() == 2 {
            break;
        }
        if seen_classes.contains(&entry.class) {
            continue;
        }
        seen_classes.push(entry.class);
        results.push(entry.var);
    }
    let Interp { bld, body, .. } = g;
    let block = body.finish(results);
    Some(bld.finish(block))
}
