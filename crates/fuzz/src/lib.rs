//! Corpus-driven differential fuzzing of the memory pipeline.
//!
//! The fuzzer's unit of currency is a **decision trace** ([`GenOp`]
//! sequence), not a program: every op is interpreted *totally* (operand
//! selectors are taken modulo the live pool, inapplicable ops become
//! no-ops), so any subsequence of any trace is still a well-formed
//! program. That property is what makes the pieces compose:
//!
//! - [`gen`] interprets traces into IR programs (including
//!   gather/scatter ops whose index arrays are constructed in-bounds by
//!   arithmetic);
//! - [`corpus`] persists traces as human-readable text files under
//!   `crates/fuzz/corpus/{seeds,regressions}`;
//! - [`coverage`] turns a compile report and run stats into a
//!   (pass × remark-kind) bitmap plus mechanism counters — the signal
//!   deciding whether a trace earns a place in the corpus;
//! - [`diff`] runs one program through every semantics
//!   (Value / Memory unopt / Memory opt / Checked / thread sweep) and
//!   reports the first divergence instead of panicking;
//! - [`minimize`] delta-debugs a failing trace down to a minimal one
//!   that still fails, ready to be committed as a regression entry.

pub mod corpus;
pub mod coverage;
pub mod diff;
pub mod gen;
pub mod minimize;

pub use corpus::CorpusEntry;
pub use coverage::Coverage;
pub use diff::{run_all_modes, DiffReport};
pub use gen::{build_program, random_ops, GenOp};
pub use minimize::minimize;
