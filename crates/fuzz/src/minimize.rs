//! Delta-debugging minimizer for failing traces.
//!
//! Because trace interpretation is total (see [`crate::gen`]), *any*
//! subsequence of a failing trace is still a valid program — so
//! minimization is pure list shrinking: remove chunks while the caller's
//! predicate still reports the interesting behavior, halving the chunk
//! size down to single ops. The result is what gets committed under
//! `corpus/regressions/`.

use crate::gen::GenOp;

/// Shrink `ops` while `still_fails` keeps returning `true` on the
/// candidate. The input must itself satisfy the predicate; the result is
/// 1-minimal (no single op can be removed without losing the failure).
pub fn minimize<F: FnMut(&[GenOp]) -> bool>(ops: &[GenOp], mut still_fails: F) -> Vec<GenOp> {
    debug_assert!(still_fails(ops), "minimize() needs a failing input");
    let mut cur: Vec<GenOp> = ops.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            if !candidate.is_empty() && still_fails(&candidate) {
                cur = candidate;
                progressed = true;
                // Same start: the next chunk slid into this position.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !progressed {
            return cur;
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(kind: u8) -> GenOp {
        GenOp {
            kind,
            sel: 0,
            sel2: 0,
            seed: 0,
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // "Fails" iff kind 13 is present.
        let ops: Vec<GenOp> = (0..20).map(|k| op(k as u8 % 14)).collect();
        let min = minimize(&ops, |c| c.iter().any(|o| o.kind == 13));
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].kind, 13);
    }

    #[test]
    fn keeps_a_required_pair_in_order() {
        // "Fails" iff a kind-2 op appears somewhere after a kind-1 op.
        let ops: Vec<GenOp> = vec![op(5), op(1), op(9), op(9), op(2), op(7)];
        let fails = |c: &[GenOp]| {
            let first1 = c.iter().position(|o| o.kind == 1);
            match first1 {
                Some(i) => c[i..].iter().any(|o| o.kind == 2),
                None => false,
            }
        };
        let min = minimize(&ops, fails);
        assert_eq!(min.iter().map(|o| o.kind).collect::<Vec<_>>(), vec![1, 2]);
    }
}
