//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Symbolic assumptions** (NW): strip the `n = q·b + 1` relation and
//!    the non-overlap proof fails conservatively — measuring exactly what
//!    the paper's §III-D says failure costs (1.1–1.5×, never wrong
//!    results).
//! 2. **Mapnest in-place construction** (LBM): disable §V-A(e) and every
//!    cell row goes through a private buffer + copy again.
//! 3. **Allocation hoisting** (Hotspot): disable the hoisting pass and
//!    safety property 2 fails at the concat — no part can be built in the
//!    result grid.

use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, Mode};
use arraymem_symbolic::Env;
use arraymem_workloads as w;
use criterion::{criterion_group, criterion_main, Criterion};

fn run(case: &w::Case, opts: &Options) -> std::time::Duration {
    let compiled = compile(&case.program, opts).unwrap();
    let (_, stats) = run_program(
        &compiled.program,
        &case.inputs,
        &case.kernels,
        Mode::Memory,
        1,
    )
    .unwrap();
    stats.total_time
}

fn bench(c: &mut Criterion) {
    // 1. NW with vs without the shape relation feeding the prover.
    let nw = w::nw::case("ablation", 16, 16, 2);
    let full = Options {
        short_circuit: true,
        env: nw.env.clone(),
        ..Options::default()
    };
    let no_env = Options {
        short_circuit: true,
        env: Env::new(),
        ..Options::default()
    };
    let mut g = c.benchmark_group("ablation/nw_assumptions");
    g.sample_size(10);
    g.bench_function("with_shape_relation", |b| b.iter(|| run(&nw, &full)));
    g.bench_function("without_shape_relation", |b| b.iter(|| run(&nw, &no_env)));
    g.finish();

    // 2. LBM with vs without the mapnest in-place rule.
    let lbm = w::lbm::case("ablation", (16, 16, 8), 4, 2);
    let full = Options {
        short_circuit: true,
        env: lbm.env.clone(),
        ..Options::default()
    };
    let no_mapnest = Options {
        mapnest_in_place: false,
        ..full.clone()
    };
    let mut g = c.benchmark_group("ablation/lbm_mapnest");
    g.sample_size(10);
    g.bench_function("in_place_rows", |b| b.iter(|| run(&lbm, &full)));
    g.bench_function("private_row_copies", |b| b.iter(|| run(&lbm, &no_mapnest)));
    g.finish();

    // 3. Hotspot with vs without allocation hoisting.
    let hs = w::hotspot::case("ablation", 128, 8, 2);
    let full = Options {
        short_circuit: true,
        env: hs.env.clone(),
        ..Options::default()
    };
    let no_hoist = Options {
        hoist: false,
        ..full.clone()
    };
    let mut g = c.benchmark_group("ablation/hotspot_hoisting");
    g.sample_size(10);
    g.bench_function("hoisted_allocations", |b| b.iter(|| run(&hs, &full)));
    g.bench_function("no_hoisting", |b| b.iter(|| run(&hs, &no_hoist)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
