//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Symbolic assumptions** (NW): strip the `n = q·b + 1` relation and
//!    the non-overlap proof fails conservatively — measuring exactly what
//!    the paper's §III-D says failure costs (1.1–1.5×, never wrong
//!    results).
//! 2. **Mapnest in-place construction** (LBM): disable §V-A(e) and every
//!    cell row goes through a private buffer + copy again.
//! 3. **Allocation hoisting** (Hotspot): disable the hoisting pass and
//!    safety property 2 fails at the concat — no part can be built in the
//!    result grid.

mod common;

use arraymem_core::{compile, Options};
use arraymem_exec::{run_program, Mode};
use arraymem_workloads as w;

fn run(case: &w::Case, opts: &Options) -> std::time::Duration {
    let compiled = compile(&case.program, opts).unwrap();
    let (_, stats) = run_program(
        &compiled.program,
        &case.inputs,
        &case.kernels,
        Mode::Memory,
        1,
    )
    .unwrap();
    stats.total_time
}

fn bench_pair(group: &str, labels: [&str; 2], case: &w::Case, opts: [&Options; 2]) {
    for (label, o) in labels.iter().zip(opts) {
        let t = common::sample(|| {
            std::hint::black_box(run(case, o));
        });
        println!("{group}/{label}  {t:>12.3?}");
    }
}

fn main() {
    // 1. NW with vs without the shape relation feeding the prover.
    let nw = w::nw::case("ablation", 16, 16, 2);
    let full = Options::optimized().with_env(nw.env.clone());
    let no_env = Options::optimized();
    bench_pair(
        "ablation/nw_assumptions",
        ["with_shape_relation", "without_shape_relation"],
        &nw,
        [&full, &no_env],
    );

    // 2. LBM with vs without the mapnest in-place rule.
    let lbm = w::lbm::case("ablation", (16, 16, 8), 4, 2);
    let full = Options::optimized().with_env(lbm.env.clone());
    let no_mapnest = Options {
        mapnest_in_place: false,
        ..full.clone()
    };
    bench_pair(
        "ablation/lbm_mapnest",
        ["in_place_rows", "private_row_copies"],
        &lbm,
        [&full, &no_mapnest],
    );

    // 3. Hotspot with vs without allocation hoisting.
    let hs = w::hotspot::case("ablation", 128, 8, 2);
    let full = Options::optimized().with_env(hs.env.clone());
    let no_hoist = Options {
        hoist: false,
        ..full.clone()
    };
    bench_pair(
        "ablation/hotspot_hoisting",
        ["hoisted_allocations", "no_hoisting"],
        &hs,
        [&full, &no_hoist],
    );
}
