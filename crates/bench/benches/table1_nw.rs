//! Bench regenerating the rows of the paper's table (nw).

mod common;

fn main() {
    common::bench_table("nw");
}
