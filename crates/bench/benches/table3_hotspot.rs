//! Bench regenerating the rows of the paper's table (hotspot).

mod common;

fn main() {
    common::bench_table("hotspot");
}
