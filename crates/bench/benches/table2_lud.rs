//! Bench regenerating the rows of the paper's table (lud).

mod common;

fn main() {
    common::bench_table("lud");
}
