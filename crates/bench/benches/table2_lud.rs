//! Criterion bench regenerating the rows of the paper's Table 2 (lud).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_table(c, "lud");
}

criterion_group!(benches, bench);
criterion_main!(benches);
