//! Criterion bench regenerating the rows of the paper's Table 7 (nn).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_table(c, "nn");
}

criterion_group!(benches, bench);
criterion_main!(benches);
