//! Bench regenerating the rows of the paper's table (nn).

mod common;

fn main() {
    common::bench_table("nn");
}
