//! Criterion bench regenerating the rows of the paper's Table 6 (locvolcalib).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_table(c, "locvolcalib");
}

criterion_group!(benches, bench);
criterion_main!(benches);
