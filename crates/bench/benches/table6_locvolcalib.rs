//! Bench regenerating the rows of the paper's table (locvolcalib).

mod common;

fn main() {
    common::bench_table("locvolcalib");
}
