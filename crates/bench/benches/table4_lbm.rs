//! Bench regenerating the rows of the paper's table (lbm).

mod common;

fn main() {
    common::bench_table("lbm");
}
