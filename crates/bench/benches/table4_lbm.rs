//! Criterion bench regenerating the rows of the paper's Table 4 (lbm).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_table(c, "lbm");
}

criterion_group!(benches, bench);
criterion_main!(benches);
