//! Criterion bench regenerating the rows of the paper's Table 5 (optionpricing).

mod common;

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_table(c, "optionpricing");
}

criterion_group!(benches, bench);
criterion_main!(benches);
