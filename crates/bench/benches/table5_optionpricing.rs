//! Bench regenerating the rows of the paper's table (optionpricing).

mod common;

fn main() {
    common::bench_table("optionpricing");
}
