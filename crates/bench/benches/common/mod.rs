//! Shared criterion scaffolding: benchmark one paper table.

use arraymem_bench::tables::table_cases;
use criterion::Criterion;

/// Register ref/unopt/opt benchmark functions for every (quick-sized)
/// dataset of one table's benchmark.
pub fn bench_table(c: &mut Criterion, benchmark: &'static str) {
    for case in table_cases(benchmark, true) {
        let unopt = case.compile(false);
        let opt = case.compile(true);
        let mut group = c.benchmark_group(format!("{}/{}", case.name, case.dataset));
        group.sample_size(10);
        group.bench_function("reference", |b| {
            b.iter(|| std::hint::black_box((case.reference)(&case.inputs)))
        });
        group.bench_function("unopt_futhark", |b| {
            b.iter(|| std::hint::black_box(case.run(&unopt)))
        });
        group.bench_function("opt_futhark", |b| {
            b.iter(|| std::hint::black_box(case.run(&opt)))
        });
        group.finish();
    }
}
