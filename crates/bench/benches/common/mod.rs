//! Shared bench scaffolding: benchmark one paper table.
//!
//! Hand-rolled harness (warm-up + trimmed averaging over a fixed sample
//! count) instead of criterion, so `cargo bench` works with no network
//! and no third-party crates. Each `[[bench]]` target sets
//! `harness = false` and calls [`bench_table`] from its `main`.

use arraymem_bench::tables::table_cases;
use std::time::{Duration, Instant};

const SAMPLES: usize = 10;

/// Time one closure: warm-up once, then average `SAMPLES` runs.
pub fn sample<F: FnMut()>(mut f: F) -> Duration {
    f(); // warm-up, discarded
    let t0 = Instant::now();
    for _ in 0..SAMPLES {
        f();
    }
    t0.elapsed() / SAMPLES as u32
}

/// Benchmark ref/unopt/opt for every (quick-sized) dataset of one table's
/// benchmark, printing one line per variant.
#[allow(dead_code)] // each [[bench]] target uses a subset of this module
pub fn bench_table(benchmark: &'static str) {
    for case in table_cases(benchmark, true).expect("known benchmark") {
        let unopt = case.compile(false);
        let opt = case.compile(true);
        let group = format!("{}/{}", case.name, case.dataset);
        let r = sample(|| {
            std::hint::black_box((case.reference)(&case.inputs));
        });
        println!("{group}/reference        {:>12.3?}", r);
        let u = sample(|| {
            std::hint::black_box(case.run(&unopt));
        });
        println!("{group}/unopt_futhark    {:>12.3?}", u);
        let o = sample(|| {
            std::hint::black_box(case.run(&opt));
        });
        println!("{group}/opt_futhark      {:>12.3?}", o);
    }
}
