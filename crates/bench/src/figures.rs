//! Figure artifacts: the paper's non-table figures regenerated as text —
//! access-pattern dumps (Figs. 2 and 10), the index-function chain of
//! Fig. 3, and the NW non-overlap derivation of Fig. 9.

use arraymem_lmad::overlap::non_overlap_traced;
use arraymem_lmad::{ConcreteLmad, Dim, IndexFn, Lmad, Transform, TripletSlice};
use arraymem_symbolic::{sym, Env, Poly};

fn v(name: &str) -> Poly {
    Poly::var(sym(name))
}

fn c(x: i64) -> Poly {
    Poly::constant(x)
}

/// Fig. 2: the NW anti-diagonal access pattern, rendered on a small
/// blocked matrix. `W` cells are written, `v`/`h` are the read bars.
pub fn fig2_nw_pattern(q: i64, b: i64, diag: i64) -> String {
    let n = q * b + 1;
    let lookup = |_s| None;
    let at = |off: Poly, dims: Vec<Dim>| -> Vec<i64> {
        Lmad::new(off, dims).eval(&lookup).unwrap().points()
    };
    let i = diag;
    let bs = n * b - b;
    let w = at(
        c(i * b + n + 1),
        vec![
            Dim::new(c(i + 1), c(bs)),
            Dim::new(c(b), c(n)),
            Dim::new(c(b), c(1)),
        ],
    );
    let rv = at(
        c(i * b),
        vec![Dim::new(c(i + 1), c(bs)), Dim::new(c(b + 1), c(n))],
    );
    let rh = at(
        c(i * b + 1),
        vec![Dim::new(c(i + 1), c(bs)), Dim::new(c(b), c(1))],
    );
    let mut grid = vec![b'.'; (n * n) as usize];
    for x in rv {
        grid[x as usize] = b'v';
    }
    for x in rh {
        grid[x as usize] = b'h';
    }
    for x in w {
        grid[x as usize] = b'W';
    }
    let mut s = format!(
        "Fig. 2 — NW anti-diagonal {diag} of a {q}x{q}-blocked matrix (b={b}, n={n}):\n\
         W = write set (green blocks), v/h = vertical/horizontal read bars\n"
    );
    for r in 0..n {
        for cc in 0..n {
            s.push(grid[(r * n + cc) as usize] as char);
        }
        s.push('\n');
    }
    s
}

/// Fig. 3: the index-function computation chain, printed step by step.
pub fn fig3_chain() -> String {
    let mut s = String::from("Fig. 3 — index function computations (no arrays manifested):\n");
    let as_ = IndexFn::row_major(&[c(64)]);
    s.push_str(&format!("  as = (0..63)            ixfn: {as_:?}\n"));
    let bs = as_
        .transform(&Transform::Reshape(vec![c(8), c(8)]))
        .unwrap();
    s.push_str(&format!("  bs = unflatten 8 8 as   ixfn: {bs:?}\n"));
    let cs = bs.transform(&Transform::Permute(vec![1, 0])).unwrap();
    s.push_str(&format!("  cs = transpose bs       ixfn: {cs:?}\n"));
    let ds = cs
        .transform(&Transform::Slice(vec![
            TripletSlice::range(c(1), c(2), c(2)),
            TripletSlice::range(c(4), c(4), c(1)),
        ]))
        .unwrap();
    s.push_str(&format!("  ds = cs[1:3:2, 4:8:1]   ixfn: {ds:?}\n"));
    let flat = ds.transform(&Transform::Reshape(vec![c(8)])).unwrap();
    let es = flat
        .transform(&Transform::Slice(vec![TripletSlice::range(
            c(2),
            c(6),
            c(1),
        )]))
        .unwrap();
    s.push_str(&format!("  es = (flatten ds)[2:]   ixfn: {es:?}\n"));
    let conc = es.eval(&|_| None).unwrap();
    s.push_str(&format!(
        "  es[5] -> flat offset {} in the memory of as\n",
        conc.index(&[5])
    ));
    s
}

/// Fig. 9: the machine-checked non-overlap derivation for NW.
pub fn fig9_proof() -> String {
    let mut env = Env::new();
    env.define(sym("n"), v("q") * v("b") + c(1));
    env.assume_ge(sym("q"), 2);
    env.assume_ge(sym("b"), 2);
    env.assume_ge(sym("i"), 0);
    let w = Lmad::new(
        v("i") * v("b") + v("n") + c(1),
        vec![
            Dim::new(v("i") + c(1), v("n") * v("b") - v("b")),
            Dim::new(v("b"), v("n")),
            Dim::new(v("b"), c(1)),
        ],
    );
    let rvert = Lmad::new(
        v("i") * v("b"),
        vec![
            Dim::new(v("i") + c(1), v("n") * v("b") - v("b")),
            Dim::new(v("b") + c(1), v("n")),
        ],
    );
    let proof = non_overlap_traced(&w, &rvert, &env);
    let mut s =
        String::from("Fig. 9 — proving W ∩ Rvert = ∅ for NW (n = q·b+1, q ≥ 2, b ≥ 2, i ≥ 0):\n");
    for line in &proof.trace {
        s.push_str("  ");
        s.push_str(line);
        s.push('\n');
    }
    s.push_str(&format!("  VERDICT: disjoint = {}\n", proof.disjoint));
    s
}

/// Fig. 10: LUD and Hotspot access patterns on a small grid.
pub fn fig10_patterns() -> String {
    let mut s = String::from("Fig. 10a — LUD step k=1 on a 4x4-blocked matrix (b=2):\n");
    let (q, b) = (4i64, 2i64);
    let n = q * b;
    let k = 1i64;
    let mut grid = vec![b'.'; (n * n) as usize];
    let mark = |grid: &mut Vec<u8>, l: ConcreteLmad, ch: u8| {
        for x in l.points() {
            grid[x as usize] = ch;
        }
    };
    // Green diagonal, blue row perimeter, yellow column perimeter, red interior.
    mark(
        &mut grid,
        ConcreteLmad {
            offset: k * b * n + k * b,
            dims: vec![(b, n), (b, 1)],
        },
        b'G',
    );
    let m = q - 1 - k;
    mark(
        &mut grid,
        ConcreteLmad {
            offset: k * b * n + (k + 1) * b,
            dims: vec![(m, b), (b, n), (b, 1)],
        },
        b'B',
    );
    mark(
        &mut grid,
        ConcreteLmad {
            offset: (k + 1) * b * n + k * b,
            dims: vec![(m, b * n), (b, n), (b, 1)],
        },
        b'Y',
    );
    mark(
        &mut grid,
        ConcreteLmad {
            offset: (k + 1) * b * n + (k + 1) * b,
            dims: vec![(m, b * n), (m, b), (b, n), (b, 1)],
        },
        b'R',
    );
    for r in 0..n {
        for cc in 0..n {
            s.push(grid[(r * n + cc) as usize] as char);
        }
        s.push('\n');
    }
    s.push_str(
        "\nFig. 10b — Hotspot partition (T/B = boundary rows incl. corners, M = interior):\n",
    );
    let hn = 8;
    for r in 0..hn {
        for _ in 0..hn {
            s.push(if r == 0 {
                'T'
            } else if r == hn - 1 {
                'B'
            } else {
                'M'
            });
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_marks_disjoint_sets() {
        let s = fig2_nw_pattern(3, 2, 1);
        assert!(s.contains('W') && s.contains('v') && s.contains('h'));
    }

    #[test]
    fn fig3_reproduces_offset_59() {
        assert!(fig3_chain().contains("flat offset 59"));
    }

    #[test]
    fn fig9_proof_succeeds() {
        let s = fig9_proof();
        assert!(s.contains("VERDICT: disjoint = true"), "{s}");
        assert!(s.contains("splitting"));
    }

    #[test]
    fn fig10_renders() {
        let s = fig10_patterns();
        assert!(s.contains('G') && s.contains('R') && s.contains('Y') && s.contains('B'));
    }
}
