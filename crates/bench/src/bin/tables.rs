//! Regenerate the paper's tables and figure artifacts.
//!
//! ```text
//! tables                 # all seven tables, full (scaled) datasets
//! tables --quick         # tiny datasets, normal run counts
//! tables --smoke         # tiny datasets, one measured run each (CI)
//! tables --table N       # one table
//! tables --figures       # print the figure artifacts instead
//! tables --check         # run cases under the checked-mode sanitizer
//!                        # instead of measuring; exit 1 on any finding
//! ```

use arraymem_bench::tables::{all_tables, check_table, run_table, RunMode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        let is_table_arg = i > 0 && args[i - 1] == "--table";
        if !is_table_arg
            && !matches!(
                a.as_str(),
                "--quick" | "--smoke" | "--figures" | "--table" | "--check"
            )
        {
            eprintln!("error: unknown argument {a:?}");
            eprintln!("usage: tables [--quick] [--smoke] [--table N] [--figures] [--check]");
            std::process::exit(2);
        }
    }
    let mode = if args.iter().any(|a| a == "--smoke") {
        RunMode::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        RunMode::Quick
    } else {
        RunMode::Full
    };
    if args.iter().any(|a| a == "--figures") {
        println!("{}", arraymem_bench::figures::fig2_nw_pattern(4, 3, 2));
        println!("{}", arraymem_bench::figures::fig3_chain());
        println!("{}", arraymem_bench::figures::fig9_proof());
        println!("{}", arraymem_bench::figures::fig10_patterns());
        return;
    }
    let only: Option<usize> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    if let Some(t) = only {
        if !(1..=7).contains(&t) {
            eprintln!("error: no table {t}; the paper has tables 1-7");
            std::process::exit(2);
        }
    }
    let check = args.iter().any(|a| a == "--check");
    let mut total_findings = 0u64;
    for spec in all_tables() {
        if let Some(t) = only {
            if spec.number != t {
                continue;
            }
        }
        if check {
            match check_table(&spec, mode) {
                Ok((report, findings)) => {
                    print!("{report}");
                    total_findings += findings;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            match run_table(&spec, mode) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
    }
    if check {
        if total_findings > 0 {
            eprintln!("checked mode: {total_findings} sanitizer findings");
            std::process::exit(1);
        }
        println!("checked mode: all cases clean");
    }
}
