//! Regenerate the paper's tables and figure artifacts.
//!
//! ```text
//! tables                 # all tables (paper I-VII + irregular VIII-X),
//!                        # full (scaled) datasets
//! tables --quick         # tiny datasets, normal run counts
//! tables --smoke         # tiny datasets, one measured run each (CI)
//! tables --table N       # one table
//! tables --figures       # print the figure artifacts instead
//! tables --check         # run cases under the checked-mode sanitizer
//!                        # instead of measuring; exit 1 on any finding
//! tables --json PATH     # also write timing + mechanism rows as JSON
//! tables --threads LIST  # measure each table at every thread count in
//!                        # the comma-separated LIST, e.g. 1,2,4,8
//! tables --server N      # also run the multi-tenant server sweep: N
//!                        # concurrent clients round-robin over tenants
//! tables --tenants M     # tenant count for --server (default 4)
//! ```

use arraymem_bench::tables::{
    all_tables, check_table, measure_table_at, render_json, render_mechanism, render_server,
    render_table, run_server_bench, RunMode, ServerBenchRow, TableSpec,
};
use arraymem_workloads::Measurement;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for (i, a) in args.iter().enumerate() {
        let is_value_arg = i > 0
            && (args[i - 1] == "--table"
                || args[i - 1] == "--json"
                || args[i - 1] == "--threads"
                || args[i - 1] == "--server"
                || args[i - 1] == "--tenants");
        if !is_value_arg
            && !matches!(
                a.as_str(),
                "--quick"
                    | "--smoke"
                    | "--figures"
                    | "--table"
                    | "--check"
                    | "--json"
                    | "--threads"
                    | "--server"
                    | "--tenants"
            )
        {
            eprintln!("error: unknown argument {a:?}");
            eprintln!(
                "usage: tables [--quick] [--smoke] [--table N] [--figures] [--check] \
                 [--json PATH] [--threads LIST] [--server N_CLIENTS] [--tenants M]"
            );
            std::process::exit(2);
        }
    }
    let mode = if args.iter().any(|a| a == "--smoke") {
        RunMode::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        RunMode::Quick
    } else {
        RunMode::Full
    };
    if args.iter().any(|a| a == "--figures") {
        println!("{}", arraymem_bench::figures::fig2_nw_pattern(4, 3, 2));
        println!("{}", arraymem_bench::figures::fig3_chain());
        println!("{}", arraymem_bench::figures::fig9_proof());
        println!("{}", arraymem_bench::figures::fig10_patterns());
        return;
    }
    let only: Option<usize> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    if let Some(t) = only {
        if !(1..=10).contains(&t) {
            eprintln!(
                "error: no table {t}; the paper has tables 1-7, plus 8-10 for the \
                 irregular-access family"
            );
            std::process::exit(2);
        }
    }
    let json_path: Option<&String> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    if args.iter().any(|a| a == "--json") && json_path.is_none() {
        eprintln!("error: --json requires a path");
        std::process::exit(2);
    }
    // Thread counts to measure at: the default pool width, or a sweep.
    let thread_counts: Vec<usize> = match args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
    {
        Some(list) => {
            let parsed: Result<Vec<usize>, _> =
                list.split(',').map(|s| s.trim().parse::<usize>()).collect();
            match parsed {
                Ok(ts) if !ts.is_empty() && ts.iter().all(|&t| t > 0) => ts,
                _ => {
                    eprintln!("error: --threads takes a comma-separated list of positive counts");
                    std::process::exit(2);
                }
            }
        }
        None => {
            if args.iter().any(|a| a == "--threads") {
                eprintln!("error: --threads requires a list, e.g. --threads 1,2,4,8");
                std::process::exit(2);
            }
            vec![arraymem_exec::default_threads()]
        }
    };
    // Server sweep: client count (0 = off) and tenant fan-out.
    let server_clients: usize = match args
        .iter()
        .position(|a| a == "--server")
        .and_then(|i| args.get(i + 1))
    {
        Some(n) => match n.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --server takes a positive client count");
                std::process::exit(2);
            }
        },
        None => {
            if args.iter().any(|a| a == "--server") {
                eprintln!("error: --server requires a client count, e.g. --server 16");
                std::process::exit(2);
            }
            0
        }
    };
    let server_tenants: usize = match args
        .iter()
        .position(|a| a == "--tenants")
        .and_then(|i| args.get(i + 1))
    {
        Some(n) => match n.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --tenants takes a positive tenant count");
                std::process::exit(2);
            }
        },
        None => 4,
    };
    let check = args.iter().any(|a| a == "--check");
    let mut total_findings = 0u64;
    let mut measured: Vec<(TableSpec, Vec<Measurement>)> = Vec::new();
    let mut server_specs: Vec<TableSpec> = Vec::new();
    for spec in all_tables() {
        if let Some(t) = only {
            if spec.number != t {
                continue;
            }
        }
        if check {
            match check_table(&spec, mode) {
                Ok((report, findings)) => {
                    print!("{report}");
                    total_findings += findings;
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            let mut rows = Vec::new();
            for &t in &thread_counts {
                match measure_table_at(&spec, mode, t) {
                    Ok(mut r) => rows.append(&mut r),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(2);
                    }
                }
            }
            println!("{}{}", render_table(&spec, &rows), render_mechanism(&rows));
            measured.push((spec, rows));
            server_specs.push(spec);
        }
    }
    let server_rows: Vec<ServerBenchRow> = if server_clients > 0 && !check {
        match run_server_bench(&server_specs, mode, server_clients, server_tenants) {
            Ok(rows) => {
                println!("{}", render_server(&rows));
                rows
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    } else {
        Vec::new()
    };
    if let Some(path) = json_path {
        if check {
            eprintln!("error: --json is for measurement runs, not --check");
            std::process::exit(2);
        }
        if let Err(e) = std::fs::write(path, render_json(&measured, &server_rows)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }
    if check {
        if total_findings > 0 {
            eprintln!("checked mode: {total_findings} sanitizer findings");
            std::process::exit(1);
        }
        println!("checked mode: all cases clean");
    }
}
