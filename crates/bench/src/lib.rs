//! Benchmark & table harness: regenerates the paper's Tables I-VII and
//! the figure artifacts (access-pattern dumps, the Fig. 9 proof trace).

pub mod figures;
pub mod tables;

pub use tables::{
    all_tables, check_table, render_table, run_table, table_cases, RunMode, TableSpec,
};
